"""MIMO device power: the paper's central low-power challenge.

"Multiple transmit and receive RF chains, not to mention the additional
baseband processing involved, significantly increase the power consumption
over single antenna devices."

The model composes per-chain RF power, shared synthesis, the PA at its
waveform-driven back-off, and baseband that scales with both stream count
(FFT/detection per stream, plus O(Nss^2)-ish MIMO detection) and decoded
bit rate (Viterbi/LDPC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.components import (
    BASEBAND_SISO_W,
    RF_CHAIN_RX_W,
    RF_CHAIN_TX_OVERHEAD_W,
    SHARED_W,
    viterbi_power_w,
)
from repro.power.pa import pa_power_draw_w


@dataclass
class MimoPowerModel:
    """Power model of an Ntx x Nrx WLAN device.

    Parameters
    ----------
    n_tx, n_rx : int
        RF chain counts.
    tx_power_w : float
        Total radiated power (split across TX chains).
    papr_backoff_db : float
        PA back-off demanded by the waveform (≈3 dB CCK, ≈8-10 dB OFDM).
    pa_class : str
        "A" or "AB".
    bandwidth_scale : float
        1.0 for 20 MHz, 2.0 for 40 MHz (ADC/baseband scale with it).
    """

    n_tx: int = 1
    n_rx: int = 1
    tx_power_w: float = 0.05
    papr_backoff_db: float = 9.0
    pa_class: str = "AB"
    bandwidth_scale: float = 1.0

    def __post_init__(self):
        if self.n_tx < 1 or self.n_rx < 1:
            raise ConfigurationError("chain counts must be >= 1")
        if self.tx_power_w <= 0:
            raise ConfigurationError("tx power must be positive")

    def rx_power_w(self, data_rate_mbps=54.0, active_chains=None):
        """Receive-mode power with ``active_chains`` RX chains awake."""
        chains = self.n_rx if active_chains is None else int(active_chains)
        if not 1 <= chains <= self.n_rx:
            raise ConfigurationError(
                f"active chains must be 1..{self.n_rx}, got {chains}"
            )
        rf = chains * _rx_chain_power_w(self.bandwidth_scale)
        baseband = self.baseband_power_w(data_rate_mbps, streams=chains)
        return SHARED_W + rf + baseband

    def tx_power_total_w(self, data_rate_mbps=54.0):
        """Transmit-mode power: PA(s) at back-off + chain overhead + BB."""
        pa = pa_power_draw_w(self.tx_power_w, self.papr_backoff_db,
                             self.pa_class)
        rf = self.n_tx * RF_CHAIN_TX_OVERHEAD_W * self.bandwidth_scale
        baseband = self.baseband_power_w(data_rate_mbps, streams=self.n_tx)
        return SHARED_W + pa + rf + baseband

    def baseband_power_w(self, data_rate_mbps, streams=None):
        """Digital baseband: per-stream FFT/filtering plus decoding.

        Per-stream cost replicates the SISO baseband; MIMO detection adds
        a quadratic cross-term (matrix work per subcarrier); the decoder
        scales with aggregate bit rate.
        """
        streams = streams or max(self.n_tx, self.n_rx)
        per_stream = BASEBAND_SISO_W * self.bandwidth_scale * streams
        mimo_detection = 0.030 * self.bandwidth_scale * streams * (streams - 1)
        decoder = viterbi_power_w(data_rate_mbps)
        return per_stream + mimo_detection + decoder

    def idle_listen_power_w(self):
        """Power while idle-listening with every chain awake."""
        return self.rx_power_w(data_rate_mbps=0.0)

    def sniff_power_w(self):
        """Idle-listen with a single chain awake (the paper's mitigation)."""
        return self.rx_power_w(data_rate_mbps=0.0, active_chains=1)


def _rx_chain_power_w(bandwidth_scale):
    """Per-chain RX power with ADC/filtering scaled by bandwidth."""
    return RF_CHAIN_RX_W * bandwidth_scale
