"""Energy-per-bit and battery-life calculators."""

from __future__ import annotations

from repro.errors import ConfigurationError


def energy_per_bit_j(power_w, throughput_mbps):
    """Joules consumed per delivered bit."""
    if power_w < 0:
        raise ConfigurationError("power must be >= 0")
    if throughput_mbps <= 0:
        raise ConfigurationError("throughput must be positive")
    return power_w / (throughput_mbps * 1e6)


def battery_life_hours(battery_wh, average_power_w):
    """Runtime of a battery at an average power draw."""
    if battery_wh <= 0 or average_power_w <= 0:
        raise ConfigurationError("battery and power must be positive")
    return battery_wh / average_power_w
