"""Per-component RF chain power, 2005-era CMOS/SiGe WLAN silicon.

Representative values from the product generation the paper's author was
shipping (absolute numbers matter less than their structure: every extra
MIMO chain replicates the whole RX line-up and most of the TX line-up).
All values in watts.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: One receive chain: LNA + mixer + filters + VGA + ADC pair.
RX_COMPONENTS_W = {
    "lna": 0.020,
    "mixer": 0.030,
    "baseband_filter": 0.025,
    "vga": 0.020,
    "adc_pair": 0.060,
}

#: One transmit chain, excluding the PA itself: DAC pair + mixer + driver.
TX_COMPONENTS_W = {
    "dac_pair": 0.040,
    "mixer": 0.030,
    "driver_amp": 0.050,
}

#: Shared across chains: synthesizer/VCO + clocking.
SHARED_COMPONENTS_W = {
    "synthesizer": 0.060,
    "clocking": 0.015,
}

RF_CHAIN_RX_W = sum(RX_COMPONENTS_W.values())
RF_CHAIN_TX_OVERHEAD_W = sum(TX_COMPONENTS_W.values())
SHARED_W = sum(SHARED_COMPONENTS_W.values())

#: Baseband digital power for a SISO 54 Mbps OFDM modem (FFT + Viterbi +
#: control), 130/90 nm class.
BASEBAND_SISO_W = 0.180


def adc_power_w(sample_rate_hz, effective_bits, fom_j_per_step=0.5e-12):
    """ADC power from the classic figure-of-merit ``P = FoM * 2^ENOB * fs``.

    The default FoM (0.5 pJ/step) is typical of the era; doubling either
    bandwidth (40 MHz channels) or resolution (64-QAM -> higher) shows up
    directly, one of the hidden costs of the rate race.
    """
    if sample_rate_hz <= 0 or effective_bits <= 0:
        raise ConfigurationError("sample rate and bits must be positive")
    return fom_j_per_step * (2.0 ** effective_bits) * sample_rate_hz


def viterbi_power_w(bit_rate_mbps, energy_per_bit_nj=1.2):
    """Viterbi decoder power scaling linearly with decoded bit rate."""
    if bit_rate_mbps < 0:
        raise ConfigurationError("bit rate must be >= 0")
    return energy_per_bit_nj * 1e-9 * bit_rate_mbps * 1e6
