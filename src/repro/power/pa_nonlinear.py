"""Behavioural PA nonlinearity (Rapp model) and its waveform damage.

E12 assumes the PA must be backed off by the waveform's PAPR; this module
shows *why*. The Rapp solid-state PA model compresses amplitudes
smoothly toward saturation:

    g(a) = a / (1 + (a / A_sat)^(2 p))^(1 / (2 p))

Driving an OFDM waveform closer to saturation raises efficiency but
creates in-band distortion (EVM) and spectral regrowth that violates the
transmit mask — the linearity/efficiency tension at the heart of the
paper's low-power section.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class RappPa:
    """Rapp-model power amplifier.

    Parameters
    ----------
    saturation_amplitude : float
        Output amplitude ceiling A_sat.
    smoothness : float
        Rapp p parameter (2-3 typical for solid-state PAs; higher =
        sharper knee).
    """

    def __init__(self, saturation_amplitude=1.0, smoothness=2.0):
        if saturation_amplitude <= 0 or smoothness <= 0:
            raise ConfigurationError("saturation and smoothness must be > 0")
        self.a_sat = float(saturation_amplitude)
        self.p = float(smoothness)

    def amplify(self, waveform, backoff_db=0.0):
        """Pass a waveform through the PA at the given input back-off.

        The waveform is scaled so its RMS sits ``backoff_db`` below
        saturation, amplified, then normalised back to unit RMS drive for
        easy comparison (the distortion stays).
        """
        waveform = np.asarray(waveform, dtype=np.complex128).ravel()
        rms = np.sqrt(np.mean(np.abs(waveform) ** 2))
        if rms == 0:
            raise ConfigurationError("waveform has zero power")
        drive = waveform / rms * self.a_sat * 10.0 ** (-backoff_db / 20.0)
        amps = np.abs(drive)
        gain = 1.0 / (1.0 + (amps / self.a_sat) ** (2 * self.p)) ** (
            1.0 / (2 * self.p)
        )
        return drive * gain

    def am_am(self, input_amplitudes):
        """The AM/AM curve: output amplitude for each input amplitude."""
        a = np.asarray(input_amplitudes, dtype=float)
        return a / (1.0 + (a / self.a_sat) ** (2 * self.p)) ** (
            1.0 / (2 * self.p)
        )


def error_vector_magnitude(reference, distorted):
    """RMS EVM (as a fraction) between a reference and a distorted signal.

    The distorted signal is first matched in complex gain (least squares),
    as a receiver's equaliser would, so pure scaling does not count as
    error.
    """
    reference = np.asarray(reference, dtype=np.complex128).ravel()
    distorted = np.asarray(distorted, dtype=np.complex128).ravel()
    if reference.shape != distorted.shape:
        raise ConfigurationError("signals must have equal length")
    ref_power = np.vdot(reference, reference).real
    if ref_power <= 0:
        raise ConfigurationError("reference has zero power")
    gain = np.vdot(reference, distorted) / ref_power
    error = distorted - gain * reference
    return float(np.sqrt(
        np.vdot(error, error).real / (np.abs(gain) ** 2 * ref_power)
    ))


def evm_db(reference, distorted):
    """EVM expressed in dB (20 log10 of the fraction)."""
    return float(20.0 * np.log10(
        max(error_vector_magnitude(reference, distorted), 1e-12)
    ))


#: EVM the standard requires per constellation (clause 17.3.9.6.3), in dB.
REQUIRED_EVM_DB = {6: -5.0, 9: -8.0, 12: -10.0, 18: -13.0, 24: -16.0,
                   36: -19.0, 48: -22.0, 54: -25.0}


def max_rate_for_evm(evm_db_value):
    """Highest 802.11a rate whose TX-EVM requirement the PA still meets."""
    usable = [rate for rate, limit in REQUIRED_EVM_DB.items()
              if evm_db_value <= limit]
    return max(usable) if usable else None


def backoff_for_rate(waveform, rate_mbps, pa=None, backoffs_db=None):
    """Smallest back-off at which the PA's EVM supports ``rate_mbps``.

    Returns None when even the largest candidate back-off fails.
    """
    if rate_mbps not in REQUIRED_EVM_DB:
        raise ConfigurationError(f"no EVM requirement for {rate_mbps} Mbps")
    pa = pa or RappPa()
    if backoffs_db is None:
        backoffs_db = np.arange(0.0, 13.0, 0.5)
    for backoff in backoffs_db:
        distorted = pa.amplify(waveform, backoff_db=backoff)
        if evm_db(waveform, distorted) <= REQUIRED_EVM_DB[rate_mbps]:
            return float(backoff)
    return None
