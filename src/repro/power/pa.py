"""Power-amplifier efficiency vs output back-off.

A linear PA must keep the waveform's peaks below its saturation point, so
the *average* output sits PAPR dB below saturation ("back-off"). Drain
efficiency then collapses:

* class A:  eta = eta_max * (P_avg / P_sat)          (linear in back-off)
* class AB: eta = eta_max * sqrt(P_avg / P_sat)      (between A and B)

with eta_max = 0.5 (class A) / ~0.65 (class AB idealised). This is the
mechanism behind the paper's "low power efficiency of the power
amplifier ... to achieve the necessary high linearity".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

PA_CLASSES = {
    "A": {"eta_max": 0.5, "exponent": 1.0},
    "AB": {"eta_max": 0.65, "exponent": 0.5},
}


def backoff_required_db(papr_db, headroom_db=0.0):
    """Output back-off a waveform demands: its PAPR plus extra headroom."""
    papr_db = float(papr_db)
    if papr_db < 0:
        raise ConfigurationError("PAPR cannot be negative")
    return papr_db + headroom_db


def pa_efficiency(backoff_db, pa_class="AB"):
    """Drain efficiency at ``backoff_db`` of output back-off."""
    if pa_class not in PA_CLASSES:
        raise ConfigurationError(
            f"pa_class must be one of {sorted(PA_CLASSES)}, got {pa_class!r}"
        )
    params = PA_CLASSES[pa_class]
    ratio = 10.0 ** (-np.asarray(backoff_db, dtype=float) / 10.0)
    return params["eta_max"] * ratio ** params["exponent"]


def pa_power_draw_w(tx_power_w, backoff_db, pa_class="AB"):
    """DC power the PA consumes to emit ``tx_power_w`` at this back-off."""
    if tx_power_w <= 0:
        raise ConfigurationError("tx power must be positive")
    eta = pa_efficiency(backoff_db, pa_class)
    return tx_power_w / eta
