"""Peak-to-average power ratio of transmit waveforms.

"Beginning with the introduction of OFDM, the high peak-to-average ratios
characteristic of spectrally efficient modulation have resulted in low
power efficiency of the power amplifier..." — measured here directly on
the library's own waveforms (DSSS is constant-envelope-ish; OFDM peaks
~10 dB above average).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def papr_db(waveform):
    """Peak-to-average power ratio of a complex waveform, in dB."""
    waveform = np.asarray(waveform).ravel()
    if waveform.size == 0:
        raise ConfigurationError("empty waveform")
    power = np.abs(waveform) ** 2
    mean = power.mean()
    if mean <= 0:
        raise ConfigurationError("waveform has zero power")
    return float(10.0 * np.log10(power.max() / mean))


def papr_ccdf(waveform, thresholds_db=None, block_len=80):
    """CCDF of per-block PAPR: P(PAPR > threshold).

    Splitting the waveform into ``block_len``-sample blocks (one OFDM
    symbol by default) mirrors how PAPR statistics are reported.

    Returns
    -------
    (thresholds_db, ccdf) : (numpy.ndarray, numpy.ndarray)
    """
    waveform = np.asarray(waveform).ravel()
    if waveform.size < block_len:
        raise ConfigurationError("waveform shorter than one block")
    if thresholds_db is None:
        thresholds_db = np.arange(0.0, 13.0, 0.5)
    thresholds_db = np.asarray(thresholds_db, dtype=float)
    n_blocks = waveform.size // block_len
    blocks = waveform[: n_blocks * block_len].reshape(n_blocks, block_len)
    power = np.abs(blocks) ** 2
    block_papr_db = 10.0 * np.log10(
        power.max(axis=1) / np.maximum(power.mean(axis=1), 1e-30)
    )
    ccdf = np.array([(block_papr_db > t).mean() for t in thresholds_db])
    return thresholds_db, ccdf


def papr_at_probability(waveform, probability=0.001, block_len=80):
    """The PAPR exceeded with the given probability (e.g. 0.1% point)."""
    if not 0 < probability < 1:
        raise ConfigurationError("probability must be in (0, 1)")
    waveform = np.asarray(waveform).ravel()
    n_blocks = waveform.size // block_len
    if n_blocks < 1:
        raise ConfigurationError("waveform shorter than one block")
    blocks = waveform[: n_blocks * block_len].reshape(n_blocks, block_len)
    power = np.abs(blocks) ** 2
    block_papr_db = 10.0 * np.log10(
        power.max(axis=1) / np.maximum(power.mean(axis=1), 1e-30)
    )
    return float(np.quantile(block_papr_db, 1.0 - probability))
