"""Platform power budgets.

"In computer notebooks, wireless power consumption represents only a
fraction of the overall platform power budget. On the other hand, smaller
form factor devices impose more stringent power requirements."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Platform:
    """A host platform's power envelope (era-typical watts)."""

    name: str
    total_power_w: float
    description: str


PLATFORMS = {
    "notebook": Platform("notebook", 25.0, "mainstream 2005 laptop, display on"),
    "thin-notebook": Platform("thin-notebook", 12.0, "ultraportable"),
    "pda": Platform("pda", 1.5, "handheld organiser / early smartphone"),
    "voip-handset": Platform("voip-handset", 0.8, "Wi-Fi phone"),
}


def wlan_power_share(wlan_power_w, platform="notebook"):
    """Fraction of the platform budget the WLAN subsystem consumes."""
    if isinstance(platform, str):
        if platform not in PLATFORMS:
            raise ConfigurationError(
                f"unknown platform {platform!r}; choose from {sorted(PLATFORMS)}"
            )
        platform = PLATFORMS[platform]
    if wlan_power_w < 0:
        raise ConfigurationError("WLAN power must be >= 0")
    return wlan_power_w / platform.total_power_w
