"""Power modelling — the paper's "Low Power" section as code.

papr
    Peak-to-average power ratio measurement and CCDF (why OFDM hurts).
pa
    Power-amplifier efficiency vs back-off (class A / class AB), and the
    back-off a waveform's PAPR demands.
components
    2005-era per-component RF chain power numbers.
chains
    MIMO device power: multiple RF chains + baseband scaling.
adaptive
    The paper's mitigation: sleep all but one RX chain until a packet is
    detected.
energy
    Energy-per-bit and battery-life calculators.
platform
    Platform power budgets: WLAN share in notebooks vs handhelds.
"""

from repro.power.adaptive import adaptive_rx_power_w
from repro.power.chains import MimoPowerModel
from repro.power.components import RF_CHAIN_RX_W, RF_CHAIN_TX_OVERHEAD_W
from repro.power.energy import battery_life_hours, energy_per_bit_j
from repro.power.pa import (
    backoff_required_db,
    pa_efficiency,
    pa_power_draw_w,
)
from repro.power.papr import papr_ccdf, papr_db
from repro.power.platform import PLATFORMS, wlan_power_share

__all__ = [
    "adaptive_rx_power_w",
    "MimoPowerModel",
    "RF_CHAIN_RX_W",
    "RF_CHAIN_TX_OVERHEAD_W",
    "battery_life_hours",
    "energy_per_bit_j",
    "backoff_required_db",
    "pa_efficiency",
    "pa_power_draw_w",
    "papr_ccdf",
    "papr_db",
    "PLATFORMS",
    "wlan_power_share",
]
