"""Adaptive RX chain switching.

"MIMO systems could reduce power by switching off all but one receive
chain until a packet is detected, switching on the additional chains only
as required to decode high rate traffic."

The model: a fraction ``busy`` of the time the device actually receives
MIMO traffic (all chains on); the rest it idle-listens. Static operation
keeps all chains on always; adaptive operation sniffs on one chain and
wakes the rest on detection, paying a wake-up energy per packet.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def adaptive_rx_power_w(model, busy_fraction, packets_per_s=0.0,
                        wake_energy_j=2e-6, data_rate_mbps=54.0):
    """Average receive-path power with and without chain switching.

    Parameters
    ----------
    model : MimoPowerModel
    busy_fraction : float
        Fraction of time spent actually receiving frames.
    packets_per_s : float
        Detection events per second (each costs ``wake_energy_j``).
    wake_energy_j : float
        Energy to power up the extra chains (settling, calibration).

    Returns
    -------
    dict with ``static_w``, ``adaptive_w`` and ``saving_fraction``.
    """
    if not 0 <= busy_fraction <= 1:
        raise ConfigurationError("busy_fraction must be in [0, 1]")
    if packets_per_s < 0 or wake_energy_j < 0:
        raise ConfigurationError("rates and energies must be >= 0")
    rx_all = model.rx_power_w(data_rate_mbps)
    idle_all = model.idle_listen_power_w()
    sniff = model.sniff_power_w()
    static = busy_fraction * rx_all + (1.0 - busy_fraction) * idle_all
    adaptive = (busy_fraction * rx_all
                + (1.0 - busy_fraction) * sniff
                + packets_per_s * wake_energy_j)
    saving = 1.0 - adaptive / static if static > 0 else 0.0
    return {
        "static_w": static,
        "adaptive_w": adaptive,
        "saving_fraction": saving,
    }
