"""Range analysis: how far a rate reaches, and how gains stretch it.

The paper claims MIMO extends range "several-fold". Mechanically, a
diversity/beamforming gain of G dB multiplies range by
``10^(G / (10 n))`` under a path-loss exponent n; fading-margin reduction
from diversity adds to G. These helpers quantify that chain.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.errors import ConfigurationError


def range_for_snr_m(required_snr_db, budget=None):
    """Range for a required SNR under a default (or given) link budget."""
    budget = budget or LinkBudget()
    return budget.range_for_snr(required_snr_db)


def range_ratio_from_gain_db(gain_db, path_loss_exponent=3.5):
    """Range multiplication from an SNR gain beyond the breakpoint."""
    if path_loss_exponent <= 0:
        raise ConfigurationError("exponent must be positive")
    return 10.0 ** (np.asarray(gain_db, dtype=float)
                    / (10.0 * path_loss_exponent))


def rate_vs_distance(standard, distances_m, budget=None):
    """Best sustainable rate at each distance (Mbps; 0 when out of range)."""
    budget = budget or LinkBudget()
    distances_m = np.atleast_1d(np.asarray(distances_m, dtype=float))
    rates = np.zeros(distances_m.size)
    for i, d in enumerate(distances_m):
        entry = standard.rate_at_snr(budget.snr_at(d))
        rates[i] = 0.0 if entry is None else entry.rate_mbps
    return rates
