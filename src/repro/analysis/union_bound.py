"""Union-bound BER for the (133, 171) convolutional code.

The first terms of the code's distance spectrum give the classic
high-SNR approximation

    Pb <= sum_d  B_d * P2(d)

with ``P2(d) = Q(sqrt(2 d R Eb/N0))`` for soft-decision BPSK. Used to
sanity-check the simulated coded waterfalls (and as the analysis the
LDPC comparison is judged against).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ber_theory import q_function
from repro.errors import ConfigurationError

#: Information-bit weight spectrum B_d of the K=7 (133, 171) mother code,
#: first terms from the literature (d_free = 10).
WEIGHT_SPECTRUM = {
    "1/2": {10: 36, 12: 211, 14: 1404, 16: 11633, 18: 77433},
    # Punctured spectra (Haccoun & Begin tables, leading terms).
    "2/3": {6: 3, 7: 70, 8: 285, 9: 1276, 10: 6160},
    "3/4": {5: 42, 6: 201, 7: 1492, 8: 10469, 9: 62935},
}

CODE_RATE_VALUES = {"1/2": 0.5, "2/3": 2.0 / 3.0, "3/4": 0.75}


def union_bound_ber(ebn0_db, rate="1/2"):
    """Soft-decision union-bound BER at the given Eb/N0.

    Tight above ~4 dB; a (loose) upper bound below.
    """
    if rate not in WEIGHT_SPECTRUM:
        raise ConfigurationError(
            f"no spectrum table for rate {rate!r}; have "
            f"{sorted(WEIGHT_SPECTRUM)}"
        )
    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    r = CODE_RATE_VALUES[rate]
    total = np.zeros_like(np.asarray(ebn0, dtype=float))
    for d, b_d in WEIGHT_SPECTRUM[rate].items():
        total = total + b_d * q_function(np.sqrt(2.0 * d * r * ebn0))
    return total


def union_bound_per(ebn0_db, n_bits, rate="1/2"):
    """Union-bound PER for an ``n_bits`` payload.

    Combines :func:`union_bound_ber` with the independent-bit-error
    packet model ``1 - (1 - BER)^n``. Like the BER bound it is tight
    only at high SNR — the low-SNR union bound can exceed 1, so the
    result is clipped to [0, 1].
    """
    from repro.analysis.per import per_from_ber

    if n_bits <= 0:
        raise ConfigurationError(f"n_bits must be positive, got {n_bits}")
    ber = np.minimum(union_bound_ber(ebn0_db, rate), 1.0)
    return per_from_ber(ber, int(n_bits))


def coding_gain_db(rate="1/2", target_ber=1e-5):
    """Asymptotic soft-decision coding gain: 10 log10(R * d_free)."""
    from repro.phy.convolutional import free_distance

    r = CODE_RATE_VALUES.get(rate)
    if r is None:
        raise ConfigurationError(f"unknown rate {rate!r}")
    return float(10.0 * np.log10(r * free_distance(rate)))
