"""Link budgets: TX power to SNR at distance, and back.

Combines the dual-slope TGn path loss with the receiver noise floor to
answer "what SNR does a station see at d metres?" and its inverse "how far
can I be and still hold SNR x?" — the backbone of every range experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.awgn import noise_floor_dbm
from repro.channel.pathloss import (
    breakpoint_path_loss_db,
    free_space_path_loss_db,
)
from repro.errors import ConfigurationError, LinkBudgetError


@dataclass
class LinkBudget:
    """A point-to-point radio link's budget.

    Parameters
    ----------
    tx_power_dbm : float
        Total transmit power (17 dBm is a typical 802.11 client).
    frequency_hz : float
    bandwidth_hz : float
    noise_figure_db : float
    antenna_gain_db : float
        Combined TX+RX fixed antenna gain.
    breakpoint_m : float
        Dual-slope breakpoint distance.
    path_loss_exponent : float
        Slope beyond the breakpoint.
    fade_margin_db : float
        Extra margin subtracted from the budget (slow fading allowance);
        diversity techniques reduce the margin needed.
    """

    tx_power_dbm: float = 17.0
    frequency_hz: float = 5.18e9
    bandwidth_hz: float = 20e6
    noise_figure_db: float = 7.0
    antenna_gain_db: float = 0.0
    breakpoint_m: float = 5.0
    path_loss_exponent: float = 3.5
    fade_margin_db: float = 0.0

    @property
    def noise_dbm(self):
        """Receiver noise floor."""
        return noise_floor_dbm(self.bandwidth_hz, self.noise_figure_db)

    def snr_at(self, distance_m):
        """Mean SNR (dB) at a distance under the dual-slope law."""
        loss = breakpoint_path_loss_db(
            distance_m, self.frequency_hz,
            self.breakpoint_m, self.path_loss_exponent,
        )
        return (self.tx_power_dbm + self.antenna_gain_db - loss
                - self.fade_margin_db - self.noise_dbm)

    def range_for_snr(self, required_snr_db):
        """Largest distance (m) at which ``required_snr_db`` is still met."""
        budget_db = (self.tx_power_dbm + self.antenna_gain_db
                     - self.fade_margin_db - self.noise_dbm
                     - required_snr_db)
        # Loss allowed = budget_db. Invert the dual-slope law.
        fs_at_bp = free_space_path_loss_db(self.breakpoint_m,
                                           self.frequency_hz)
        if budget_db <= 0:
            raise LinkBudgetError(
                f"SNR {required_snr_db} dB unreachable: budget {budget_db:.1f} dB"
            )
        fs_at_1m = free_space_path_loss_db(1.0, self.frequency_hz)
        if budget_db <= fs_at_bp:
            # Still in the free-space region: 20 dB/decade.
            return 10.0 ** ((budget_db - fs_at_1m) / 20.0)
        extra = budget_db - fs_at_bp
        return self.breakpoint_m * 10.0 ** (
            extra / (10.0 * self.path_loss_exponent)
        )

    def max_distance_for_rate(self, standard, rate_mbps):
        """Range at which ``standard`` sustains ``rate_mbps``."""
        entry = next(
            (r for r in standard.rates if r.rate_mbps == rate_mbps), None
        )
        if entry is None:
            raise ConfigurationError(
                f"{standard.name} has no {rate_mbps} Mbps rate"
            )
        return self.range_for_snr(entry.required_snr_db)
