"""Packet error rate and throughput models."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def per_from_ber(ber, n_bits):
    """PER for independent bit errors: ``1 - (1 - BER)^n``."""
    ber = np.asarray(ber, dtype=float)
    if np.any((ber < 0) | (ber > 1)):
        raise ConfigurationError("BER must lie in [0, 1]")
    if n_bits <= 0:
        raise ConfigurationError("n_bits must be positive")
    # expm1 keeps precision for tiny BER.
    return -np.expm1(n_bits * np.log1p(-np.minimum(ber, 1.0 - 1e-16)))


def per_from_snr(snr_db, required_snr_db, steepness_db=1.5):
    """Smooth link abstraction: PER vs SNR as a logistic waterfall.

    System-level simulators commonly replace the full PHY with a logistic
    PER curve centred on the rate's required SNR; ``steepness_db`` is the
    10-90% transition half-width.
    """
    snr_db = np.asarray(snr_db, dtype=float)
    if steepness_db <= 0:
        raise ConfigurationError("steepness must be positive")
    return 1.0 / (1.0 + np.exp((snr_db - required_snr_db) / steepness_db *
                               np.log(9.0)))


def throughput_mbps(rate_mbps, per, overhead_fraction=0.0):
    """Goodput after packet loss and protocol overhead."""
    per = np.asarray(per, dtype=float)
    if np.any((per < 0) | (per > 1)):
        raise ConfigurationError("PER must lie in [0, 1]")
    if not 0 <= overhead_fraction < 1:
        raise ConfigurationError("overhead fraction must be in [0, 1)")
    return rate_mbps * (1.0 - per) * (1.0 - overhead_fraction)
