"""Shannon-capacity helpers for spectral-efficiency arguments."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def shannon_capacity_bps(bandwidth_hz, snr_db):
    """AWGN channel capacity ``B log2(1 + SNR)`` in bits/s."""
    if bandwidth_hz <= 0:
        raise ConfigurationError("bandwidth must be positive")
    snr = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    return bandwidth_hz * np.log2(1.0 + snr)


def snr_required_db(spectral_efficiency_bps_hz):
    """Minimum SNR for a spectral efficiency on a SISO AWGN channel.

    Inverts Shannon: ``SNR = 2^eta - 1``. At 15 bps/Hz this is ~45 dB —
    the number that shows why the paper says SISO had hit its practical
    ceiling and MIMO was needed.
    """
    eta = np.asarray(spectral_efficiency_bps_hz, dtype=float)
    if np.any(eta <= 0):
        raise ConfigurationError("spectral efficiency must be positive")
    return 10.0 * np.log10(2.0 ** eta - 1.0)
