"""Closed-form analysis: BER theory, link budgets, range, PER, trends.

These are the yardsticks the Monte-Carlo simulations are validated
against, and the machinery for the paper's range and evolution claims.
"""

from repro.analysis.ber_theory import (
    ber_mqam_awgn,
    ber_psk_awgn,
    ber_rayleigh_bpsk,
    ber_rayleigh_mrc,
    q_function,
)
from repro.analysis.capacity import shannon_capacity_bps, snr_required_db
from repro.analysis.linkbudget import LinkBudget
from repro.analysis.per import (
    per_from_ber,
    per_from_snr,
    throughput_mbps,
)
from repro.analysis.range import (
    range_for_snr_m,
    range_ratio_from_gain_db,
    rate_vs_distance,
)
from repro.analysis.trends import (
    fit_exponential_trend,
    predict_next_generation,
)

__all__ = [
    "ber_mqam_awgn",
    "ber_psk_awgn",
    "ber_rayleigh_bpsk",
    "ber_rayleigh_mrc",
    "q_function",
    "shannon_capacity_bps",
    "snr_required_db",
    "LinkBudget",
    "per_from_ber",
    "per_from_snr",
    "throughput_mbps",
    "range_for_snr_m",
    "range_ratio_from_gain_db",
    "rate_vs_distance",
    "fit_exponential_trend",
    "predict_next_generation",
]
