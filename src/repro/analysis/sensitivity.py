"""Receiver sensitivity: required SNR plus physics.

Sensitivity = noise floor (kTB + NF) + required SNR. Inverting the
registry's SNR table through this relation reproduces each standard's
published sensitivity column, closing the loop between the link
abstraction and the numbers vendors printed on data sheets.
"""

from __future__ import annotations

from repro.channel.awgn import noise_floor_dbm
from repro.errors import ConfigurationError
from repro.standards.registry import get_standard


def sensitivity_dbm(required_snr_db, bandwidth_hz=20e6, noise_figure_db=7.0):
    """Minimum received power to hold ``required_snr_db``."""
    return noise_floor_dbm(bandwidth_hz, noise_figure_db) + required_snr_db


def sensitivity_table(standard, bandwidth_hz=20e6, noise_figure_db=7.0):
    """Per-rate sensitivities of a generation.

    Returns a list of (rate_mbps, sensitivity_dbm), sorted by rate.
    """
    std = get_standard(standard) if isinstance(standard, str) else standard
    rows = []
    for entry in sorted(std.rates, key=lambda r: (r.rate_mbps,
                                                  r.required_snr_db)):
        rows.append((
            entry.rate_mbps,
            sensitivity_dbm(entry.required_snr_db, bandwidth_hz,
                            noise_figure_db),
        ))
    return rows


def snr_from_sensitivity(sensitivity_dbm_value, bandwidth_hz=20e6,
                         noise_figure_db=7.0):
    """Back out the implied SNR requirement from a data-sheet sensitivity."""
    if bandwidth_hz <= 0:
        raise ConfigurationError("bandwidth must be positive")
    return sensitivity_dbm_value - noise_floor_dbm(bandwidth_hz,
                                                   noise_figure_db)
