"""Closed-form bit error rates in AWGN and Rayleigh fading.

Used throughout the tests to validate the Monte-Carlo PHY simulations, and
by the range analysis to show the diversity orders behind the paper's MIMO
range claims.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb, erfc

from repro.errors import ConfigurationError


def q_function(x):
    """Gaussian tail probability Q(x)."""
    return 0.5 * erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def ber_psk_awgn(ebn0_db, bits_per_symbol=1):
    """BER of Gray-coded BPSK/QPSK in AWGN: Q(sqrt(2 Eb/N0))."""
    if bits_per_symbol not in (1, 2):
        raise ConfigurationError("PSK helper covers BPSK and QPSK only")
    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    return q_function(np.sqrt(2.0 * ebn0))


def ber_mqam_awgn(ebn0_db, bits_per_symbol):
    """Approximate BER of Gray-coded square M-QAM in AWGN.

    The standard nearest-neighbour approximation
    ``4/log2(M) * (1 - 1/sqrt(M)) * Q(sqrt(3 log2(M)/(M-1) * Eb/N0))``.
    """
    if bits_per_symbol not in (2, 4, 6, 8):
        raise ConfigurationError(
            f"square M-QAM needs even bits/symbol, got {bits_per_symbol}"
        )
    m = 2 ** bits_per_symbol
    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    arg = np.sqrt(3.0 * bits_per_symbol / (m - 1.0) * ebn0)
    return (4.0 / bits_per_symbol) * (1.0 - 1.0 / np.sqrt(m)) * q_function(arg)


def ber_rayleigh_bpsk(ebn0_db):
    """Exact BPSK BER in flat Rayleigh fading: 0.5 (1 - sqrt(g/(1+g)))."""
    gamma = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    return 0.5 * (1.0 - np.sqrt(gamma / (1.0 + gamma)))


def ber_rayleigh_mrc(ebn0_db, n_branches):
    """Exact BPSK BER with L-branch MRC in i.i.d. Rayleigh fading.

    ``Pb = p^L * sum_k C(L-1+k, k) (1-p)^k`` with
    ``p = (1 - mu)/2``, ``mu = sqrt(g/(1+g))`` and per-branch mean Eb/N0 g.
    Slope on a log-log plot is the diversity order L — the mechanism behind
    MIMO range extension.
    """
    if n_branches < 1:
        raise ConfigurationError("need at least one branch")
    gamma = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    mu = np.sqrt(gamma / (1.0 + gamma))
    p = 0.5 * (1.0 - mu)
    q = 0.5 * (1.0 + mu)
    total = np.zeros_like(np.asarray(gamma, dtype=float))
    for k in range(n_branches):
        total += comb(n_branches - 1 + k, k) * q ** k
    return p ** n_branches * total


def diversity_order_estimate(snr_db, error_rates):
    """Estimate the diversity order as the high-SNR log-log slope."""
    snr_db = np.asarray(snr_db, dtype=float)
    error_rates = np.asarray(error_rates, dtype=float)
    mask = error_rates > 0
    if mask.sum() < 2:
        raise ConfigurationError("need at least two nonzero error rates")
    x = snr_db[mask][-2:]
    y = np.log10(error_rates[mask][-2:])
    return float(-(y[1] - y[0]) / ((x[1] - x[0]) / 10.0))
