"""The paper's historical trend, as a fitted law.

"...efficiencies up to 15 bps/Hz ... which maintains the historical trend
of fivefold increases with each new standard." This module fits the
geometric growth law to the generation data and extrapolates it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def fit_exponential_trend(generation_indices, values):
    """Least-squares fit of ``v = a * r^g`` (log-linear regression).

    Returns
    -------
    (ratio, prefactor) : (float, float)
        ``ratio`` is the per-generation multiplier (the paper says ~5).
    """
    g = np.asarray(generation_indices, dtype=float)
    v = np.asarray(values, dtype=float)
    if g.size != v.size or g.size < 2:
        raise ConfigurationError("need >= 2 matching points")
    if np.any(v <= 0):
        raise ConfigurationError("values must be positive for a log fit")
    slope, intercept = np.polyfit(g, np.log(v), 1)
    return float(np.exp(slope)), float(np.exp(intercept))


def predict_next_generation(values):
    """Extrapolate one generation beyond the observed values."""
    values = np.asarray(values, dtype=float)
    ratio, prefactor = fit_exponential_trend(np.arange(values.size), values)
    return float(prefactor * ratio ** values.size)


def trend_departure(values, n_fit):
    """How later points depart from a trend fitted on the first ``n_fit``.

    Fits the geometric law on ``values[:n_fit]`` and returns, for every
    point, the ratio of the actual value to the fitted/extrapolated one
    (1.0 = exactly on trend, < 1 = below it). This is how the extended
    generational arc quantifies the flattening after the paper's era:
    the fivefold law extrapolated past 802.11n overshoots what 802.11ac
    and 802.11ax actually shipped.

    Returns
    -------
    (departures, predicted) : (numpy.ndarray, numpy.ndarray)
    """
    values = np.asarray(values, dtype=float)
    n_fit = int(n_fit)
    if not 2 <= n_fit <= values.size:
        raise ConfigurationError(
            f"n_fit must be 2..{values.size}, got {n_fit}"
        )
    ratio, prefactor = fit_exponential_trend(
        np.arange(n_fit), values[:n_fit]
    )
    predicted = prefactor * ratio ** np.arange(values.size)
    return values / predicted, predicted
