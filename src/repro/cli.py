"""Command-line interface: ``python -m repro <command>``.

Commands
--------
evolution
    Print the paper's generation table and the fitted fivefold law.
link PHY CHANNEL SNR
    Run a quick link simulation (e.g. ``link ofdm-54 rayleigh 28``).
    ``--precision 0.1`` switches to adaptive Monte-Carlo: packets are
    sent until the PER confidence interval is relatively tight enough
    (or ``--max-trials`` is hit). Every run prints the Wilson CI.
mac N_STATIONS
    DCF saturation throughput vs the Bianchi model.
regulatory
    The regulatory narrative with measured processing gains.
rates [STANDARD]
    Dump a generation's rate table (default 802.11a).
experiment [ID | --list]
    Run one quick paper experiment, or enumerate them all.
campaign run|resume|watch|ls|show|report
    Parallel sweep orchestrator over the persistent results store
    (``campaign run e3-dsss-cck --workers 4 --report``). ``run`` exits
    nonzero when points remain failed after the retry budget
    (``--retries``/``--timeout``); ``show --failures`` prints the
    per-point failure table. ``run --trace`` records structured
    telemetry (spans + counters) to ``results/<name>/trace/``.
    ``--backend local-queue`` shards the grid into leased work units
    that survive worker death; ``--store sqlite`` (or
    ``REPRO_STORE=sqlite``) keeps records in an indexed WAL-journaled
    database instead of JSONL. ``campaign resume NAME`` picks a killed
    run back up from whatever its store already holds — the completed
    grid is bit-identical to an uninterrupted run. Store-backed runs
    keep ``results/<name>/status.json`` fresh while they execute;
    ``campaign watch NAME`` tails it with a refreshing progress view
    (``--once --json`` for scripting), ``--heartbeat`` tunes the
    cadence.
bench diff BASELINE CURRENT
    Compare two ``--bench-json`` benchmark dumps metric by metric
    against per-metric tolerances; exits nonzero on a regression in a
    machine-independent (ratio/count) metric — the CI perf gate.
trace report NAME
    Render a traced campaign's telemetry: per-point timing breakdown,
    MC trial throughput, slowest spans, cache/retry counters.
surface build|ls|show|validate
    Precomputed PER surfaces for network-scale simulation
    (``surface build grid-a --phys ofdm-6,ofdm-54 --snr 0:30:2``).
    ``build`` runs one campaign cell per (phy, payload, SNR) — cached,
    resumable, parallel via ``--workers`` — and serializes the surface
    next to the campaign records; ``validate`` cross-checks it against
    fresh waveform runs. ``link --surrogate NAME`` answers a link query
    from a surface instead of the waveform simulator.

Installed as the ``repro`` console script, so ``repro campaign ls`` and
``python -m repro campaign ls`` are equivalent.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.core.evolution import fivefold_law, format_evolution_table
from repro.core.link import LinkSimulator
from repro.errors import ReproError
from repro.mac.bianchi import bianchi_saturation_throughput
from repro.mac.dcf import DcfSimulator
from repro.standards.registry import GENERATIONS, get_standard
from repro.standards.regulatory import regulatory_report


def _cmd_evolution(_args):
    print(format_evolution_table())
    ratio, _ = fivefold_law()
    print(f"\nfitted per-generation multiplier: {ratio:.2f}x (paper: ~5x)")
    return 0


def _cmd_link(args):
    if args.surrogate:
        from repro.campaign import make_store
        from repro.surrogate import AbstractLink, load_surface

        surface = load_surface(make_store(args.results), args.surrogate)
        sim = AbstractLink(surface, args.phy, rng=args.seed)
        if surface.channel != args.channel:
            print(f"note: surface {args.surrogate!r} was built over "
                  f"{surface.channel!r}; the channel argument "
                  f"{args.channel!r} is ignored")
    else:
        sim = LinkSimulator(args.phy, args.channel, rng=args.seed,
                            kernels=getattr(args, "kernels", None))
    run_kwargs = dict(n_packets=args.packets, payload_bytes=args.bytes,
                      precision=args.precision,
                      max_trials=args.max_trials)
    if not args.surrogate:
        run_kwargs["analytic_floor"] = getattr(args, "analytic_floor",
                                               None)
    tracer = obs.Tracer() if args.trace else None
    if tracer is not None:
        with obs.use_tracer(tracer):
            result = sim.run(args.snr, **run_kwargs)
    else:
        result = sim.run(args.snr, **run_kwargs)
    mc = result.mc
    per_lo, per_hi = result.per_ci()
    budget = (f"adaptive to precision {args.precision:g}"
              if args.precision is not None
              else f"{args.packets} packets")
    backend = (f"surrogate surface {args.surrogate!r}" if args.surrogate
               else "waveform")
    print(f"{args.phy} over {sim.channel_name} @ {args.snr:.1f} dB "
          f"({budget}, {args.bytes} B payloads, {backend}):")
    if getattr(result, "analytic", False):
        print(f"  PER     : {result.per:.3e}  "
              f"(union bound, no packets sent)")
        print(f"  BER     : {result.ber:.2e}  (union bound)")
    else:
        print(f"  PER     : {result.per:.3f}  "
              f"[{per_lo:.3f}, {per_hi:.3f}] @ {mc.confidence:.0%}")
        print(f"  BER     : {result.ber:.2e}")
    print(f"  goodput : {result.goodput_mbps:.2f} Mbps "
          f"(PHY rate {result.rate_mbps:.1f})")
    print(f"  trials  : {mc.n_trials} ({mc.stop_reason})")
    if tracer is not None:
        print("\ntrace summary:")
        for line in obs.summary_table(tracer.summary()):
            print(f"  {line}")
    return 0


def _cmd_mac(args):
    sim = DcfSimulator(args.stations, "802.11a", 54, 1500, rng=args.seed)
    result = sim.run(args.duration)
    model = bianchi_saturation_throughput(args.stations, "802.11a", 54, 1500)
    print(f"{args.stations} saturated stations, 802.11a @ 54 Mbps, 1500 B:")
    print(f"  simulated goodput : {result.throughput_mbps:.1f} Mbps")
    print(f"  Bianchi model     : {model:.1f} Mbps")
    print(f"  P(collision)      : {result.collision_probability:.2f}")
    print(f"  Jain fairness     : {result.jain_fairness:.3f}")
    return 0


def _cmd_regulatory(_args):
    for row in regulatory_report():
        gain = row["processing_gain_db"]
        gain_s = f"{gain:5.1f} dB" if gain is not None else "   --   "
        print(f"{row['standard']:<18} {gain_s}  {row['mechanism']}")
        print(f"{'':<28}{row['status']}")
    return 0


def _cmd_experiment(args):
    from repro.core.experiments import list_experiments, run_experiment

    if args.list_ids or args.id is None:
        print("available quick experiments (full versions: pytest "
              "benchmarks/ --benchmark-only):")
        for key, desc in list_experiments():
            print(f"  {key:<4} {desc}")
        return 0
    for line in run_experiment(args.id):
        print(line)
    return 0


def _campaign_store(args, name=None, spec_default=None):
    """The results store this campaign subcommand should talk to.

    Resolution: ``--store`` flag > ``REPRO_STORE`` env > the spec's
    ``store`` knob > whichever backend already holds records for
    ``name`` > jsonl. The detection step is what makes
    ``campaign resume NAME`` land on the store the killed run was
    using, whatever the current default is.
    """
    from repro.campaign import make_store, resolve_store_backend

    backend = resolve_store_backend(
        root=args.results, name=name,
        explicit=getattr(args, "store", None), spec_default=spec_default)
    return make_store(args.results, backend)


def _print_run_result(args, spec, result):
    """Shared tail of ``campaign run``/``resume``: report + exit code."""
    from repro.campaign import failure_lines, format_pivot
    from repro.campaign.report import result_lines
    from repro.errors import ConfigurationError

    for line in result_lines(result):
        print(line)
    if getattr(args, "trace", False) and result.extras.get("trace_path"):
        print(f"trace: {result.extras['trace_path']} "
              f"(render with: repro trace report {spec.name})")
    if getattr(args, "report", False):
        report = spec.meta.get("report", {})
        if report.get("value") and report.get("rows"):
            try:
                for line in format_pivot(result.records,
                                         report["value"],
                                         report["rows"],
                                         report.get("cols")):
                    print(line)
            except ConfigurationError as exc:
                # e.g. every point failed: there is no table, but the
                # failure summary below is the useful report.
                print(f"no report: {exc}")
    for line in failure_lines(result.records):
        print(line)
    return 1 if result.n_failed else 0


def _cmd_campaign_watch(args):
    import json as json_module
    import time

    from repro.campaign import make_store
    from repro.errors import ConfigurationError
    from repro.obs import live

    store = make_store(args.results)
    path = store.status_path(args.name)

    def emit(status):
        if args.json:
            print(json_module.dumps(status, sort_keys=True,
                                    indent=2 if args.once else None))
        else:
            print("\n".join(live.status_lines(status)))

    if args.once:
        emit(live.refresh_ages(live.read_status(path)))
        return 0

    interval = max(0.1, float(args.interval))
    tty = sys.stdout.isatty()
    erase = 0
    try:
        while True:
            try:
                status = live.refresh_ages(live.read_status(path))
            except ConfigurationError:
                if tty and erase:
                    sys.stdout.write(f"\x1b[{erase}A\x1b[J")
                print(f"waiting for {path} ...")
                erase = 1 if tty else 0
                time.sleep(interval)
                continue
            if tty and erase:
                sys.stdout.write(f"\x1b[{erase}A\x1b[J")
            if args.json:
                emit(status)
                erase = 0
            else:
                lines = live.status_lines(status)
                print("\n".join(lines))
                erase = len(lines)
            if status.get("state") != "running":
                return 0 if status.get("state") == "done" else 1
            time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 130


def _cmd_bench(args):
    import json as json_module

    from repro.obs import bench

    report = bench.diff_benches(
        bench.load_bench(args.baseline),
        bench.load_bench(args.current),
        tol_overrides=bench.parse_tol_overrides(args.tol),
        gate_all=args.gate_all)
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    print(f"bench diff: {args.baseline} (baseline) vs {args.current}")
    for line in bench.diff_lines(report, verbose=args.verbose):
        print(line)
    return 0 if report["ok"] else 1


def _cmd_campaign(args):
    from repro.campaign import (builtin_campaigns, failure_lines,
                                format_pivot, load_spec, resume_campaign,
                                run_campaign, scan_campaigns, summary_lines)

    if args.subcommand == "watch":
        return _cmd_campaign_watch(args)

    if args.subcommand == "run":
        spec = load_spec(args.spec)
        if args.precision is not None or args.max_trials is not None:
            # Fold the precision target into the spec's fixed params so
            # it participates in every point's cache key — adaptive and
            # fixed-budget runs of the same campaign never collide.
            from repro.campaign.spec import CampaignSpec

            data = spec.to_dict()
            if args.precision is not None:
                data["fixed"]["precision"] = args.precision
            if args.max_trials is not None:
                data["fixed"]["max_trials"] = args.max_trials
            spec = CampaignSpec.from_dict(data)
        store = _campaign_store(args, name=spec.name,
                                spec_default=spec.store)
        try:
            result = run_campaign(spec, workers=args.workers, store=store,
                                  force=args.force,
                                  echo=print if args.verbose else None,
                                  retries=args.retries,
                                  timeout_s=args.timeout,
                                  trace=args.trace, backend=args.backend,
                                  shard_size=args.shard_size,
                                  heartbeat_s=args.heartbeat)
        finally:
            store.close()
        return _print_run_result(args, spec, result)

    if args.subcommand == "resume":
        store = _campaign_store(args, name=args.name)
        try:
            result = resume_campaign(
                args.name, store, workers=args.workers,
                echo=print if args.verbose else None,
                retries=args.retries, timeout_s=args.timeout,
                trace=args.trace, backend=args.backend,
                shard_size=args.shard_size,
                heartbeat_s=args.heartbeat)
        finally:
            store.close()
        return _print_run_result(args, result.spec, result)

    if args.subcommand == "ls":
        campaigns = scan_campaigns(args.results)
        if not campaigns:
            print(f"no campaigns under {args.results!r}; built-ins you can "
                  "run: " + ", ".join(sorted(builtin_campaigns())))
            return 0
        for name, n_records, backend in campaigns:
            print(f"{name:<24} {n_records:>5} record(s)  [{backend}]")
        return 0

    if args.subcommand == "show":
        store = _campaign_store(args, name=args.name)
        try:
            spec = store.load_spec(args.name)
            print(f"{spec.name}: kind={spec.kind} "
                  f"base_seed={spec.base_seed} "
                  f"({spec.n_points} grid points)")
            for factor, values in spec.factors.items():
                print(f"  factor {factor}: {list(values)}")
            for key, value in spec.fixed.items():
                print(f"  fixed  {key}: {value}")
            # Each consumer streams its own cursor — records are never
            # materialized as a list, whatever the campaign size.
            for line in summary_lines(store.iter_records(args.name),
                                      name=spec.name):
                print(line)
            if args.failures:
                lines = failure_lines(store.iter_records(args.name))
                for line in lines or ["no failed points"]:
                    print(line)
        finally:
            store.close()
        return 0

    # report
    store = _campaign_store(args, name=args.name)
    try:
        spec = store.load_spec(args.name)
        defaults = spec.meta.get("report", {})
        value = args.value or defaults.get("value")
        rows = args.rows or defaults.get("rows")
        cols = args.cols if args.cols is not None else defaults.get("cols")
        if not value or not rows:
            print("this campaign declares no default report; pass --value "
                  "and --rows (optionally --cols)")
            return 2
        title = f"{spec.name}: {value}"
        for line in format_pivot(store.iter_records(args.name), value,
                                 rows, cols, title=title):
            print(line)
    finally:
        store.close()
    return 0


def _parse_value_list(text, name, cast):
    """Parse ``"a,b,c"`` or ``"lo:hi:step"`` grid specs from the CLI."""
    from repro.errors import ConfigurationError

    text = str(text).strip()
    try:
        if ":" in text:
            parts = [float(p) for p in text.split(":")]
            if len(parts) != 3 or parts[2] <= 0:
                raise ValueError
            lo, hi, step = parts
            import numpy as np

            n = int(np.floor((hi - lo) / step + 1e-9)) + 1
            if n < 1:
                raise ValueError
            return [cast(lo + k * step) for k in range(n)]
        return [cast(float(p)) for p in text.split(",") if p.strip()]
    except ValueError:
        raise ConfigurationError(
            f"{name} must be 'v1,v2,...' or 'lo:hi:step', got {text!r}"
        ) from None


def _cmd_surface(args):
    from repro.campaign import make_store
    from repro.surrogate import (build_surface, list_surfaces, load_surface,
                                 validate_surface)

    store = make_store(args.results)

    if args.subcommand == "build":
        phys = [p.strip() for p in args.phys.split(",") if p.strip()]
        surface = build_surface(
            args.name, phys,
            snr_db=_parse_value_list(args.snr, "--snr", float),
            payload_bytes=_parse_value_list(args.payload, "--payload", int),
            channel=args.channel, n_packets=args.packets,
            precision=args.precision, max_trials=args.max_trials,
            base_seed=args.seed, store=store, workers=args.workers,
            trace=args.trace, echo=print if args.verbose else None,
            force=args.force)
        for line in surface.summary_lines():
            print(line)
        print(f"build: {surface.meta['n_executed']} executed, "
              f"{surface.meta['n_cached']} cached "
              f"in {surface.meta['build_wall_time_s']:.1f} s")
        print(f"saved under {store.campaign_dir(surface.name)}")
        return 0

    if args.subcommand == "ls":
        names = list_surfaces(store)
        if not names:
            print(f"no surfaces under {store.root!r}; build one with "
                  "'repro surface build <name> --phys ... --snr ...'")
            return 0
        for name in names:
            s = load_surface(store, name)
            print(f"{name:<24} {len(s.phys)} phy(s) x "
                  f"{s.payload_bytes.size} payload(s) x "
                  f"{s.snr_db.size} SNR(s)  [{s.channel}]")
        return 0

    if args.subcommand == "show":
        for line in load_surface(store, args.name).summary_lines():
            print(line)
        return 0

    # validate
    surface = load_surface(store, args.name)
    report = validate_surface(
        surface,
        phys=([p.strip() for p in args.phys.split(",") if p.strip()]
              if args.phys else None),
        snr_db=(_parse_value_list(args.snr, "--snr", float)
                if args.snr else None),
        payload_bytes=(_parse_value_list(args.payload, "--payload", int)
                       if args.payload else None),
        n_packets=args.packets, seed=args.seed)
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_trace(args):
    from repro.campaign import make_store

    # Trace files live on the filesystem whatever holds the records, so
    # any backend's trace_path works; make_store keeps env resolution.
    store = make_store(args.results)
    path = store.trace_path(args.name)
    if path is None:
        # A missing trace is an expected state (the campaign simply ran
        # without --trace), not a usage error: say so plainly and exit 1
        # so scripts can branch on it.
        print(f"no trace recorded for campaign {args.name!r} under "
              f"{store.root!r}; run it with --trace first")
        return 1
    events = obs.read_trace(path)
    if not any(e.get("type") == "span" for e in events):
        print(f"no trace recorded for campaign {args.name!r}: "
              f"{path} holds no spans (empty or truncated trace)")
        return 1
    for line in obs.trace_report_lines(events, top=args.top,
                                       campaign=args.name):
        print(line)
    return 0


def _cmd_rates(args):
    std = get_standard(args.standard)
    print(f"{std.name} ({std.year}, {std.phy_type}, "
          f"{std.bandwidth_mhz:.0f} MHz):")
    for entry in sorted(std.rates, key=lambda r: (r.rate_mbps,
                                                  r.required_snr_db)):
        print(f"  {entry.rate_mbps:7.1f} Mbps  needs {entry.required_snr_db:5.1f} dB"
              f"  ({entry.modulation}, r={entry.code_rate})")
    return 0


def build_parser():
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wireless LAN: Past, Present, and Future — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("evolution", help="the paper's generation table")

    p_link = sub.add_parser("link", help="run a link simulation")
    p_link.add_argument("phy", help="e.g. ofdm-54, cck-11, ht-12")
    p_link.add_argument("channel", nargs="?", default="awgn",
                        help="awgn | rayleigh | tgn-A..F")
    p_link.add_argument("snr", nargs="?", type=float, default=25.0)
    p_link.add_argument("--packets", type=int, default=50)
    p_link.add_argument("--bytes", type=int, default=200)
    p_link.add_argument("--seed", type=int, default=0)
    p_link.add_argument("--precision", type=float, default=None,
                        help="adaptive mode: stop when the relative CI "
                             "half-width on the PER drops below this")
    p_link.add_argument("--kernels", default=None,
                        choices=("auto", "numpy", "numba"),
                        help="decoder kernel backend (default: "
                             "REPRO_KERNELS or auto)")
    p_link.add_argument("--analytic-floor", type=float, default=None,
                        metavar="PER",
                        help="skip Monte-Carlo when the union-bound PER "
                             "is at or below this floor (OFDM on AWGN)")
    p_link.add_argument("--max-trials", type=int, default=None,
                        help="trial ceiling for adaptive mode")
    p_link.add_argument("--trace", action="store_true",
                        help="collect telemetry and print the span/"
                             "counter summary after the run")
    p_link.add_argument("--surrogate", default=None, metavar="SURFACE",
                        help="answer from a prebuilt PER surface instead "
                             "of the waveform simulator (see 'surface "
                             "build')")
    p_link.add_argument("--results", default="results",
                        help="results store the surface lives in "
                             "(default: results/)")

    p_mac = sub.add_parser("mac", help="DCF contention study")
    p_mac.add_argument("stations", type=int)
    p_mac.add_argument("--duration", type=float, default=0.5)
    p_mac.add_argument("--seed", type=int, default=0)

    sub.add_parser("regulatory", help="the regulatory narrative")

    p_exp = sub.add_parser("experiment",
                           help="run a quick paper experiment (E1..)")
    p_exp.add_argument("id", nargs="?", default=None,
                       help="experiment id, e.g. E6; omit to list")
    p_exp.add_argument("--list", action="store_true", dest="list_ids",
                       help="enumerate all experiment ids with descriptions")

    p_camp = sub.add_parser(
        "campaign", help="parallel sweep orchestrator + results store")
    camp_sub = p_camp.add_subparsers(dest="subcommand", required=True)

    def add_results_arg(p):
        p.add_argument("--results", default="results",
                       help="results store directory (default: results/)")

    def add_store_arg(p):
        from repro.campaign.spec import STORE_BACKENDS

        p.add_argument("--store", default=None, choices=STORE_BACKENDS,
                       help="results store backend (default: $REPRO_STORE, "
                            "else the spec's store knob, else whichever "
                            "backend already holds this campaign's "
                            "records, else jsonl)")

    def add_backend_args(p):
        from repro.campaign.spec import EXECUTION_BACKENDS

        p.add_argument("--backend", default=None,
                       choices=EXECUTION_BACKENDS,
                       help="execution backend (default: the spec's "
                            "backend knob, else pool); records are "
                            "bit-identical either way")
        p.add_argument("--shard-size", type=int, default=None,
                       help="points per local-queue work unit "
                            "(default: ~4 units per worker)")

    def add_run_knobs(p):
        p.add_argument("--workers", type=int, default=1,
                       help="pool size; any value is bit-identical to 1")
        p.add_argument("--report", action="store_true",
                       help="print the spec's default pivot after running")
        p.add_argument("--verbose", action="store_true",
                       help="log per-point completions")
        p.add_argument("--retries", type=int, default=None,
                       help="extra attempts per failing point "
                            "(default: the spec's retries)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-point wall-clock budget in seconds; "
                            "0 disables (default: the spec's timeout_s)")
        p.add_argument("--trace", action="store_true",
                       help="record structured telemetry to "
                            "results/<name>/trace/ (read it back with "
                            "'repro trace report <name>')")
        p.add_argument("--heartbeat", type=float, default=None,
                       help="live-status cadence in seconds: how often "
                            "workers heartbeat and status.json refreshes "
                            "(default: $REPRO_HEARTBEAT_S, else 1.0)")
        add_backend_args(p)
        add_store_arg(p)
        add_results_arg(p)

    p_run = camp_sub.add_parser("run", help="run a campaign spec")
    p_run.add_argument("spec",
                       help="built-in campaign name or path to a .json spec")
    p_run.add_argument("--force", action="store_true",
                       help="recompute points even when cached")
    p_run.add_argument("--precision", type=float, default=None,
                       help="adaptive MC: per-point relative CI "
                            "half-width target (folded into the cache "
                            "key)")
    p_run.add_argument("--max-trials", type=int, default=None,
                       help="adaptive MC trial ceiling per point")
    add_run_knobs(p_run)

    p_resume = camp_sub.add_parser(
        "resume", help="pick up an interrupted campaign from its store")
    p_resume.add_argument("name",
                          help="campaign whose spec + partial records are "
                               "in the store")
    add_run_knobs(p_resume)

    p_watch = camp_sub.add_parser(
        "watch", help="tail a running campaign's live status")
    p_watch.add_argument("name", help="campaign being run with a store")
    p_watch.add_argument("--interval", type=float, default=2.0,
                         help="refresh period in seconds (default 2)")
    p_watch.add_argument("--once", action="store_true",
                         help="print one snapshot and exit (scripting)")
    p_watch.add_argument("--json", action="store_true",
                         help="emit the raw status.json document instead "
                              "of the rendered view")
    add_results_arg(p_watch)

    p_ls = camp_sub.add_parser("ls", help="list campaigns in the store")
    add_results_arg(p_ls)

    p_show = camp_sub.add_parser("show", help="spec + record summary")
    p_show.add_argument("name")
    p_show.add_argument("--failures", action="store_true",
                        help="also print the per-point failure table")
    add_store_arg(p_show)
    add_results_arg(p_show)

    p_rep = camp_sub.add_parser("report", help="pivot table over records")
    p_rep.add_argument("name")
    p_rep.add_argument("--value", default=None,
                       help="metric to tabulate (e.g. per)")
    p_rep.add_argument("--rows", default=None, help="row parameter")
    p_rep.add_argument("--cols", default=None, help="column parameter")
    add_store_arg(p_rep)
    add_results_arg(p_rep)

    p_surf = sub.add_parser(
        "surface", help="precomputed PER surfaces (network-scale links)")
    surf_sub = p_surf.add_subparsers(dest="subcommand", required=True)

    p_sbuild = surf_sub.add_parser(
        "build", help="measure a PER surface through the campaign runner")
    p_sbuild.add_argument("name", help="surface (= campaign) name")
    p_sbuild.add_argument("--phys", required=True,
                          help="comma-separated PHY names, e.g. "
                               "ofdm-6,ofdm-24,ofdm-54")
    p_sbuild.add_argument("--snr", required=True,
                          help="SNR grid: 'v1,v2,...' or 'lo:hi:step' dB")
    p_sbuild.add_argument("--payload", default="100",
                          help="payload grid in bytes: 'v1,v2,...' or "
                               "'lo:hi:step' (default 100)")
    p_sbuild.add_argument("--channel", default="awgn",
                          help="awgn | rayleigh | tgn-A..F")
    p_sbuild.add_argument("--packets", type=int, default=200,
                          help="packets per grid cell (default 200)")
    p_sbuild.add_argument("--precision", type=float, default=None,
                          help="adaptive MC: relative CI half-width "
                               "target per cell")
    p_sbuild.add_argument("--max-trials", type=int, default=None,
                          help="adaptive MC trial ceiling per cell")
    p_sbuild.add_argument("--seed", type=int, default=0)
    p_sbuild.add_argument("--workers", type=int, default=1,
                          help="campaign pool size (bit-identical to 1)")
    p_sbuild.add_argument("--force", action="store_true",
                          help="remeasure cells even when cached")
    p_sbuild.add_argument("--trace", action="store_true",
                          help="record build telemetry to the store")
    p_sbuild.add_argument("--verbose", action="store_true",
                          help="log per-cell completions")
    add_results_arg(p_sbuild)

    p_sls = surf_sub.add_parser("ls", help="list surfaces in the store")
    add_results_arg(p_sls)

    p_sshow = surf_sub.add_parser("show", help="grid + provenance summary")
    p_sshow.add_argument("name")
    add_results_arg(p_sshow)

    p_sval = surf_sub.add_parser(
        "validate",
        help="cross-check a surface against fresh waveform runs")
    p_sval.add_argument("name")
    p_sval.add_argument("--phys", default=None,
                        help="subset of phys to check (comma-separated)")
    p_sval.add_argument("--snr", default=None,
                        help="subset of grid SNRs to check")
    p_sval.add_argument("--payload", default=None,
                        help="subset of grid payloads to check")
    p_sval.add_argument("--packets", type=int, default=200,
                        help="fresh packets per checked cell (default 200)")
    p_sval.add_argument("--seed", type=int, default=20050307,
                        help="seed for the fresh measurements")
    add_results_arg(p_sval)

    p_trace = sub.add_parser("trace",
                             help="inspect telemetry from traced runs")
    trace_sub = p_trace.add_subparsers(dest="subcommand", required=True)
    p_trep = trace_sub.add_parser(
        "report", help="timing breakdown from a campaign's merged trace")
    p_trep.add_argument("name", help="campaign name (ran with --trace)")
    p_trep.add_argument("--top", type=int, default=10,
                        help="how many slowest spans to list (default 10)")
    add_results_arg(p_trep)

    p_bench = sub.add_parser(
        "bench", help="benchmark dump tooling (perf-regression gate)")
    bench_sub = p_bench.add_subparsers(dest="subcommand", required=True)
    p_bdiff = bench_sub.add_parser(
        "diff", help="compare two --bench-json dumps metric by metric")
    p_bdiff.add_argument("baseline",
                         help="committed baseline dump, e.g. BENCH_9.json")
    p_bdiff.add_argument("current",
                         help="fresh dump from 'pytest benchmarks/ "
                              "--benchmark-only --bench-json PATH'")
    p_bdiff.add_argument("--tol", action="append", default=None,
                         metavar="NAME=REL",
                         help="per-metric relative tolerance override "
                              "(NAME matches the metric id or a suffix); "
                              "repeatable")
    p_bdiff.add_argument("--gate-all", action="store_true",
                         help="also gate machine-dependent duration "
                              "metrics (off by default: CI machines "
                              "differ from baseline machines)")
    p_bdiff.add_argument("--verbose", action="store_true",
                         help="list every compared metric, not just "
                              "regressions")
    p_bdiff.add_argument("--json", action="store_true",
                         help="emit the full diff report as JSON")

    p_rates = sub.add_parser("rates", help="dump a rate table")
    p_rates.add_argument("standard", nargs="?", default="802.11a",
                         choices=sorted(GENERATIONS))
    return parser


_HANDLERS = {
    "evolution": _cmd_evolution,
    "link": _cmd_link,
    "mac": _cmd_mac,
    "regulatory": _cmd_regulatory,
    "experiment": _cmd_experiment,
    "campaign": _cmd_campaign,
    "surface": _cmd_surface,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "rates": _cmd_rates,
}


def main(argv=None):
    """Entry point; returns a process exit code.

    Library errors (bad names, malformed specs, unreportable stores)
    become a one-line ``error:`` message and exit code 2 — users of the
    console script get diagnostics, not tracebacks.
    """
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
