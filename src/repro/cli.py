"""Command-line interface: ``python -m repro <command>``.

Commands
--------
evolution
    Print the paper's generation table and the fitted fivefold law.
link PHY CHANNEL SNR
    Run a quick link simulation (e.g. ``link ofdm-54 rayleigh 28``).
mac N_STATIONS
    DCF saturation throughput vs the Bianchi model.
regulatory
    The regulatory narrative with measured processing gains.
rates [STANDARD]
    Dump a generation's rate table (default 802.11a).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.evolution import fivefold_law, format_evolution_table
from repro.core.link import LinkSimulator
from repro.mac.bianchi import bianchi_saturation_throughput
from repro.mac.dcf import DcfSimulator
from repro.standards.registry import GENERATIONS, get_standard
from repro.standards.regulatory import regulatory_report


def _cmd_evolution(_args):
    print(format_evolution_table())
    ratio, _ = fivefold_law()
    print(f"\nfitted per-generation multiplier: {ratio:.2f}x (paper: ~5x)")
    return 0


def _cmd_link(args):
    sim = LinkSimulator(args.phy, args.channel, rng=args.seed)
    result = sim.run(args.snr, n_packets=args.packets,
                     payload_bytes=args.bytes)
    print(f"{args.phy} over {args.channel} @ {args.snr:.1f} dB "
          f"({args.packets} x {args.bytes} B):")
    print(f"  PER     : {result.per:.3f}")
    print(f"  BER     : {result.ber:.2e}")
    print(f"  goodput : {result.goodput_mbps:.2f} Mbps "
          f"(PHY rate {result.rate_mbps:.1f})")
    return 0


def _cmd_mac(args):
    sim = DcfSimulator(args.stations, "802.11a", 54, 1500, rng=args.seed)
    result = sim.run(args.duration)
    model = bianchi_saturation_throughput(args.stations, "802.11a", 54, 1500)
    print(f"{args.stations} saturated stations, 802.11a @ 54 Mbps, 1500 B:")
    print(f"  simulated goodput : {result.throughput_mbps:.1f} Mbps")
    print(f"  Bianchi model     : {model:.1f} Mbps")
    print(f"  P(collision)      : {result.collision_probability:.2f}")
    print(f"  Jain fairness     : {result.jain_fairness:.3f}")
    return 0


def _cmd_regulatory(_args):
    for row in regulatory_report():
        gain = row["processing_gain_db"]
        gain_s = f"{gain:5.1f} dB" if gain is not None else "   --   "
        print(f"{row['standard']:<18} {gain_s}  {row['mechanism']}")
        print(f"{'':<28}{row['status']}")
    return 0


def _cmd_experiment(args):
    from repro.core.experiments import list_experiments, run_experiment

    if args.id is None:
        print("available quick experiments (full versions: pytest "
              "benchmarks/ --benchmark-only):")
        for key, desc in list_experiments():
            print(f"  {key:<4} {desc}")
        return 0
    for line in run_experiment(args.id):
        print(line)
    return 0


def _cmd_rates(args):
    std = get_standard(args.standard)
    print(f"{std.name} ({std.year}, {std.phy_type}, "
          f"{std.bandwidth_mhz:.0f} MHz):")
    for entry in sorted(std.rates, key=lambda r: (r.rate_mbps,
                                                  r.required_snr_db)):
        print(f"  {entry.rate_mbps:7.1f} Mbps  needs {entry.required_snr_db:5.1f} dB"
              f"  ({entry.modulation}, r={entry.code_rate})")
    return 0


def build_parser():
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wireless LAN: Past, Present, and Future — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("evolution", help="the paper's generation table")

    p_link = sub.add_parser("link", help="run a link simulation")
    p_link.add_argument("phy", help="e.g. ofdm-54, cck-11, ht-12")
    p_link.add_argument("channel", nargs="?", default="awgn",
                        help="awgn | rayleigh | tgn-A..F")
    p_link.add_argument("snr", nargs="?", type=float, default=25.0)
    p_link.add_argument("--packets", type=int, default=50)
    p_link.add_argument("--bytes", type=int, default=200)
    p_link.add_argument("--seed", type=int, default=0)

    p_mac = sub.add_parser("mac", help="DCF contention study")
    p_mac.add_argument("stations", type=int)
    p_mac.add_argument("--duration", type=float, default=0.5)
    p_mac.add_argument("--seed", type=int, default=0)

    sub.add_parser("regulatory", help="the regulatory narrative")

    p_exp = sub.add_parser("experiment",
                           help="run a quick paper experiment (E1..)")
    p_exp.add_argument("id", nargs="?", default=None,
                       help="experiment id, e.g. E6; omit to list")

    p_rates = sub.add_parser("rates", help="dump a rate table")
    p_rates.add_argument("standard", nargs="?", default="802.11a",
                         choices=sorted(GENERATIONS))
    return parser


_HANDLERS = {
    "evolution": _cmd_evolution,
    "link": _cmd_link,
    "mac": _cmd_mac,
    "regulatory": _cmd_regulatory,
    "experiment": _cmd_experiment,
    "rates": _cmd_rates,
}


def main(argv=None):
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
