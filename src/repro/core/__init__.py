"""The reproduction's core: end-to-end links and the evolution framework.

``repro.core.link`` runs any generation's PHY over any channel model and
measures BER/PER/throughput — the workhorse behind most experiments.
``repro.core.evolution`` encodes the paper's narrative: the generation
timeline, the fivefold spectral-efficiency law, and cross-generation
comparisons of rate, range and power.
"""

from repro.core.evolution import (
    evolution_report,
    format_evolution_table,
    spectral_efficiency_series,
)
from repro.core.link import LinkResult, LinkSimulator

__all__ = [
    "evolution_report",
    "format_evolution_table",
    "spectral_efficiency_series",
    "LinkResult",
    "LinkSimulator",
]
