"""End-to-end link simulation for every 802.11 generation.

A :class:`LinkSimulator` wires one PHY configuration to one channel model
and measures bit/packet error rates and goodput at given SNRs. PHY
configurations are named strings:

====================  =====================================================
name                  meaning
====================  =====================================================
``dsss-1, dsss-2``    802.11 Barker DSSS at 1 / 2 Mbps
``cck-5.5, cck-11``   802.11b CCK
``fhss-1, fhss-2``    802.11 FHSS (GFSK)
``ofdm-R``            802.11a/g OFDM, R in {6,9,12,18,24,36,48,54}
``ht-M``              802.11n HT MCS M (0-31), 20 MHz
``ht40-M``            802.11n HT MCS M, 40 MHz
``vht-M[-xS]``        802.11ac VHT MCS M (0-9), S streams (default 1), 20 MHz
``vht80-M-xS``        802.11ac VHT at 80 MHz (also vht40-, vht160-)
====================  =====================================================

Channels: ``awgn``, ``rayleigh`` (flat, per-packet) or ``tgn-X`` with X in
A-F (frequency-selective tapped delay line). SNR convention: average
received signal power per RX antenna over complex noise variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.channel.awgn import awgn_noise
from repro.channel.models import TGN_PROFILES, tgn_channel
from repro.core.mc import run_trials
from repro.core.mc.stats import rate_interval
from repro.errors import ConfigurationError, ReproError
from repro.phy.cck import CckPhy
from repro.phy.dsss import DsssPhy
from repro.phy.fhss import GfskModem
from repro.phy.mimo.ht import HtPhy, VhtPhy
from repro.phy.ofdm import OfdmPhy
from repro.utils.bits import bits_from_bytes, count_bit_errors
from repro.utils.rng import as_generator
from repro.utils.validation import require_snr_array, validate_link_run_args


@dataclass
class LinkResult:
    """Outcome of a batch of packet transmissions at one operating point.

    When produced by :meth:`LinkSimulator.run` the ``mc`` field carries
    the engine's :class:`~repro.core.mc.McResult` (CI on the PER, trial
    count, stop reason); :meth:`per_ci`/:meth:`ber_ci` recompute
    intervals from the stored counts at any confidence.
    """

    phy: str
    channel: str
    snr_db: float
    n_packets: int
    n_packet_errors: int
    n_bits: int
    n_bit_errors: int
    payload_bytes: int
    rate_mbps: float
    extras: dict = field(default_factory=dict)
    mc: object = None

    @property
    def per(self):
        """Packet error rate (``nan`` when no packets were sent).

        A zero-trial result used to report 0.0 — indistinguishable from
        a genuinely error-free measurement; ``nan`` makes "no data"
        loud instead of flattering.
        """
        if not self.n_packets:
            return float("nan")
        return self.n_packet_errors / self.n_packets

    @property
    def ber(self):
        """Raw payload bit error rate (``nan`` when no bits were sent)."""
        if not self.n_bits:
            return float("nan")
        return self.n_bit_errors / self.n_bits

    @property
    def goodput_mbps(self):
        """PHY rate discounted by packet loss."""
        return self.rate_mbps * (1.0 - self.per)

    def per_ci(self, confidence=0.95, method="wilson"):
        """``(lo, hi)`` interval on the packet error rate."""
        return rate_interval(self.n_packet_errors, self.n_packets,
                             confidence, method)

    def ber_ci(self, confidence=0.95, method="wilson"):
        """``(lo, hi)`` interval on the bit error rate.

        Treats payload bits as independent Bernoulli trials — optimistic
        under bursty decoders, but a usable yardstick.
        """
        return rate_interval(self.n_bit_errors, self.n_bits,
                             confidence, method)


class LinkSimulator:
    """Monte-Carlo link-level simulator.

    Parameters
    ----------
    phy : str
        PHY configuration name (see module docstring).
    channel : str
        "awgn", "rayleigh", or "tgn-A".."tgn-F".
    n_rx : int or None
        Receive antennas (defaults to the stream count; >1 enables receive
        diversity for HT PHYs).
    detector : str
        HT detector ("mmse", "zf", "ml").
    rng : seed or Generator

    Examples
    --------
    >>> sim = LinkSimulator("ofdm-24", "awgn", rng=1)
    >>> result = sim.run(snr_db=20.0, n_packets=50, payload_bytes=100)
    >>> result.per <= 1.0
    True
    """

    def __init__(self, phy, channel="awgn", n_rx=None, detector="mmse",
                 rng=None):
        self.phy_name = phy
        self.channel_name = channel
        self.rng = as_generator(rng)
        self._detector = detector
        self._make_phy(phy, n_rx, detector)
        self._validate_channel(channel)

    # -- construction -------------------------------------------------------

    def _make_phy(self, name, n_rx, detector):
        parts = name.split("-")
        kind = parts[0]
        if kind == "dsss":
            self._phy = DsssPhy(int(parts[1]))
            self._kind = "chips"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(parts[1])
            self.sample_rate = self._phy.chip_rate_hz
        elif kind == "cck":
            self._phy = CckPhy(float(parts[1]))
            self._kind = "chips"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(parts[1])
            self.sample_rate = 11e6
        elif kind == "fhss":
            rate = int(parts[1])
            self._phy = GfskModem(levels=2 if rate == 1 else 4,
                                  modulation_index=0.32 if rate == 1 else 0.45)
            self._kind = "fhss"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(rate)
            self.sample_rate = 1e6 * self._phy.sps
        elif kind == "ofdm":
            self._phy = OfdmPhy(int(parts[1]))
            self._kind = "ofdm"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(parts[1])
            self.sample_rate = 20e6
        elif kind in ("ht", "ht40"):
            bw = 40 if kind == "ht40" else 20
            mcs = int(parts[1])
            streams = mcs // 8 + 1
            self._phy = HtPhy(mcs=mcs, bandwidth_mhz=bw,
                              n_rx=n_rx or streams, detector=detector)
            self._kind = "ht"
            self.n_tx = streams
            self.n_rx = n_rx or streams
            self.rate_mbps = self._phy.data_rate_mbps()
            self.sample_rate = self._phy.sample_rate
        elif kind in ("vht", "vht40", "vht80", "vht160"):
            bw = int(kind[3:]) if len(kind) > 3 else 20
            mcs = int(parts[1])
            streams = int(parts[2].lstrip("x")) if len(parts) > 2 else 1
            self._phy = VhtPhy(mcs=mcs, spatial_streams=streams,
                               bandwidth_mhz=bw, n_rx=n_rx or streams,
                               detector=detector)
            self._kind = "ht"
            self.n_tx = streams
            self.n_rx = n_rx or streams
            self.rate_mbps = self._phy.data_rate_mbps()
            self.sample_rate = self._phy.sample_rate
        else:
            raise ConfigurationError(f"unknown PHY configuration {name!r}")

    def _validate_channel(self, channel):
        if channel in ("awgn", "rayleigh"):
            return
        if channel.startswith("tgn-") and channel[4:].upper() in TGN_PROFILES:
            return
        raise ConfigurationError(
            f"unknown channel {channel!r}; use 'awgn', 'rayleigh' or 'tgn-A'..'tgn-F'"
        )

    # -- channel application --------------------------------------------------

    def _apply_channel(self, tx):
        """Propagate an (n_tx, N) waveform; returns (n_rx, N)."""
        tx = np.atleast_2d(tx)
        if self.channel_name == "awgn":
            if self.n_rx == self.n_tx:
                return tx.copy()
            # Receive diversity in AWGN: repeat the signal on each antenna.
            return np.tile(tx.sum(axis=0), (self.n_rx, 1))
        if self.channel_name == "rayleigh":
            h = (self.rng.normal(size=(self.n_rx, self.n_tx))
                 + 1j * self.rng.normal(size=(self.n_rx, self.n_tx))) / np.sqrt(2)
            return h @ tx
        model = self.channel_name[4:].upper()
        tdl = tgn_channel(model, self.n_rx, self.n_tx,
                          sample_rate_hz=self.sample_rate, rng=self.rng)
        return tdl.apply(tx)

    # -- one packet -------------------------------------------------------------

    def _send_packet(self, payload, snr_db):
        """Returns (bit_errors, packet_error) for one payload transmission."""
        sent_bits = bits_from_bytes(payload)
        if self._kind == "chips":
            tx = self._phy.modulate(sent_bits)
        elif self._kind == "fhss":
            tx = self._phy.modulate(sent_bits)
        elif self._kind == "ofdm":
            tx = self._phy.transmit(payload)
        else:
            tx = self._phy.transmit(payload)
        rx = self._apply_channel(tx)
        # SNR convention: *average* received SNR. Channels have unit mean
        # gain per antenna pair, so the expected receive power per antenna
        # equals the total transmit power; scaling noise to that average
        # (not to the instantaneous packet power) preserves per-packet
        # fades — the whole point of diversity experiments.
        tx2d = np.atleast_2d(tx)
        total_tx_power = float(np.mean(np.abs(tx2d) ** 2)) * tx2d.shape[0]
        noise_var = total_tx_power / 10.0 ** (snr_db / 10.0)
        rx = rx + awgn_noise(rx.shape, noise_var, self.rng)

        try:
            if self._kind == "chips":
                got_bits = self._phy.demodulate(rx.ravel())
                bit_errs = count_bit_errors(sent_bits, got_bits)
            elif self._kind == "fhss":
                got_bits = self._phy.demodulate(rx.ravel(), sent_bits.size)
                bit_errs = count_bit_errors(sent_bits, got_bits)
            elif self._kind == "ofdm":
                got = self._phy.receive(rx.ravel(), noise_var)
                bit_errs = self._byte_errors(payload, got)
            else:
                got = self._phy.receive(rx, noise_var,
                                        psdu_bytes=len(payload))
                bit_errs = self._byte_errors(payload, got)
        except ReproError:
            # Undecodable frame: all payload bits counted in error.
            return sent_bits.size, True
        return bit_errs, bit_errs > 0

    @staticmethod
    def _byte_errors(sent, got):
        if len(got) != len(sent):
            return 8 * len(sent)
        return count_bit_errors(bits_from_bytes(sent), bits_from_bytes(got))

    # -- batched packets ----------------------------------------------------

    def _send_packet_batch(self, rng, m, payload_bytes, snr_db):
        """One vectorized PHY invocation covering ``m`` OFDM packets.

        Per packet the generator is consumed in exactly the scalar trial's
        order — payload bytes, then the channel realisation, then the
        noise normals (``awgn_noise`` scales *after* drawing, so the
        normals can be drawn before the TX power is known). Fixed-budget
        runs therefore stay bit-identical to the per-packet loop.
        """
        n = self._phy.n_samples(payload_bytes)
        snr_lin = 10.0 ** (snr_db / 10.0)
        tgn = self.channel_name.startswith("tgn-")
        payloads = []
        channels = []
        noise_raw = np.empty((m, self.n_rx, n), dtype=np.complex128)
        for i in range(m):
            payloads.append(bytes(rng.integers(0, 256, payload_bytes,
                                               dtype=np.uint8).tolist()))
            if self.channel_name == "rayleigh":
                channels.append(
                    (rng.normal(size=(self.n_rx, self.n_tx))
                     + 1j * rng.normal(size=(self.n_rx, self.n_tx)))
                    / np.sqrt(2)
                )
            elif tgn:
                tdl = tgn_channel(self.channel_name[4:].upper(), self.n_rx,
                                  self.n_tx, sample_rate_hz=self.sample_rate,
                                  rng=rng)
                channels.append((tdl, tdl.draw()))
            noise_raw[i] = (rng.normal(size=(self.n_rx, n))
                            + 1j * rng.normal(size=(self.n_rx, n)))

        tx = self._phy.transmit_batch(payloads)  # (m, n)
        noise_var = np.empty(m)
        rx = np.empty((m, n), dtype=np.complex128)
        for i in range(m):
            if self.channel_name == "awgn":
                rx[i] = tx[i]
            elif tgn:
                tdl, taps = channels[i]
                rx[i] = tdl.apply(tx[i][None, :], taps)[0]
            else:
                rx[i] = (channels[i] @ tx[i][None, :])[0]
            # Same power convention as the scalar path (n_tx = 1 here).
            noise_var[i] = float(np.mean(np.abs(tx[i][None, :]) ** 2))
            noise_var[i] = noise_var[i] / snr_lin
        rx += np.sqrt(noise_var / 2.0)[:, None] * noise_raw[:, 0, :]

        psdus = self._phy.receive_batch(rx, noise_var)
        obs.counter("link.packets", m)
        bit_sum = 0
        pkt_sum = 0
        for payload, got in zip(payloads, psdus):
            if got is None:
                errs = 8 * len(payload)
            else:
                errs = self._byte_errors(payload, got)
            bit_sum += errs
            pkt_sum += int(errs > 0)
        return {"packet_error": pkt_sum, "bit_errors": bit_sum}

    # -- batches ------------------------------------------------------------------

    def run(self, snr_db, n_packets=100, payload_bytes=100, *,
            precision=None, max_trials=None, confidence=0.95,
            batch_size=50, vectorized=None):
        """Send random payloads at one SNR through the MC engine.

        With ``precision=None`` (the default) exactly ``n_packets`` are
        sent, bit-identical to the seed-era serial loop at the same
        seed. With a precision target the engine keeps sending batches
        until the Wilson interval on the PER has relative half-width
        ``<= precision`` or ``max_trials`` packets have been spent;
        ``result.mc`` records which.

        ``vectorized`` selects the batched PHY path, which runs each MC
        batch of packets as one vectorized transmit/receive invocation
        (default: on for OFDM PHYs, which support it; the per-packet RNG
        draw order is preserved, so results are bit-identical either
        way). Pass ``False`` to force the per-packet loop.
        """
        snr_db, n_packets, payload_bytes = validate_link_run_args(
            snr_db, n_packets, payload_bytes)
        if vectorized is None:
            vectorized = self._kind == "ofdm"
        vectorized = bool(vectorized) and self._kind == "ofdm"

        def trial(rng):
            payload = bytes(rng.integers(0, 256, payload_bytes,
                                         dtype=np.uint8).tolist())
            errs, bad = self._send_packet(payload, snr_db)
            obs.counter("link.packets")
            return {"packet_error": int(bad), "bit_errors": int(errs)}

        def trial_batch(rng, m):
            return self._send_packet_batch(rng, m, payload_bytes, snr_db)

        with obs.span("link.run", phy=self.phy_name,
                      channel=self.channel_name,
                      snr_db=float(snr_db)) as span, obs.timed() as clock:
            mc = run_trials(trial_batch if vectorized else trial,
                            n_trials=int(n_packets),
                            target="packet_error", rng=self.rng,
                            precision=precision, max_trials=max_trials,
                            confidence=confidence, batch_size=batch_size,
                            vectorized=vectorized)
            span.set(n_trials=mc.n_trials, stop_reason=mc.stop_reason,
                     vectorized=vectorized,
                     packets_per_s=(mc.n_trials / clock.elapsed
                                    if clock.elapsed > 0 else 0.0))
        return LinkResult(
            phy=self.phy_name,
            channel=self.channel_name,
            snr_db=float(snr_db),
            n_packets=mc.n_trials,
            n_packet_errors=mc.n_events,
            n_bits=8 * payload_bytes * mc.n_trials,
            n_bit_errors=int(mc.totals.get("bit_errors", 0)),
            payload_bytes=payload_bytes,
            rate_mbps=self.rate_mbps,
            mc=mc,
        )

    def waterfall(self, snr_values_db, n_packets=100, payload_bytes=100,
                  **mc_kwargs):
        """Run a PER/BER sweep across SNR values; returns list of results.

        ``mc_kwargs`` (``precision``, ``max_trials``, ``confidence``,
        ``batch_size``) pass through to :meth:`run`, so an adaptive
        sweep spends few packets on saturated points and many on the
        waterfall knee. Empty or non-finite SNR arrays are rejected up
        front — the same contract the surrogate path enforces.
        """
        snrs = require_snr_array("snr_values_db", snr_values_db)
        with obs.span("link.waterfall", phy=self.phy_name,
                      channel=self.channel_name, n_points=len(snrs)):
            return [self.run(snr, n_packets, payload_bytes, **mc_kwargs)
                    for snr in snrs]

    def snr_for_per(self, target_per=0.1, lo_db=-5.0, hi_db=45.0,
                    n_packets=100, payload_bytes=100, tolerance_db=0.5,
                    **mc_kwargs):
        """Bisect the SNR at which PER crosses ``target_per``.

        Monte-Carlo noise makes this approximate; increase ``n_packets``
        (or pass ``precision=``) for tighter answers. The low edge is
        probed first: when the target PER already holds at ``lo_db``
        the answer is ``lo_db`` and no bisection iterations are spent.
        """
        if not 0 < target_per < 1:
            raise ConfigurationError("target PER must be in (0, 1)")
        lo, hi = float(lo_db), float(hi_db)
        with obs.span("link.snr_for_per", phy=self.phy_name,
                      channel=self.channel_name,
                      target_per=float(target_per)) as span:
            if self.run(lo, n_packets, payload_bytes,
                        **mc_kwargs).per <= target_per:
                span.set(snr_db=lo, low_edge=True)
                return lo
            if self.run(hi, n_packets, payload_bytes,
                        **mc_kwargs).per > target_per:
                raise ConfigurationError(
                    f"PER target {target_per} not met even at {hi} dB"
                )
            while hi - lo > tolerance_db:
                mid = 0.5 * (lo + hi)
                if self.run(mid, n_packets, payload_bytes,
                            **mc_kwargs).per > target_per:
                    lo = mid
                else:
                    hi = mid
            span.set(snr_db=0.5 * (lo + hi))
        return 0.5 * (lo + hi)
