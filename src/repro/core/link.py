"""End-to-end link simulation for every 802.11 generation.

A :class:`LinkSimulator` wires one PHY configuration to one channel model
and measures bit/packet error rates and goodput at given SNRs. PHY
configurations are named strings:

====================  =====================================================
name                  meaning
====================  =====================================================
``dsss-1, dsss-2``    802.11 Barker DSSS at 1 / 2 Mbps
``cck-5.5, cck-11``   802.11b CCK
``fhss-1, fhss-2``    802.11 FHSS (GFSK)
``ofdm-R``            802.11a/g OFDM, R in {6,9,12,18,24,36,48,54}
``ht-M``              802.11n HT MCS M (0-31), 20 MHz
``ht40-M``            802.11n HT MCS M, 40 MHz
``vht-M[-xS]``        802.11ac VHT MCS M (0-9), S streams (default 1), 20 MHz
``vht80-M-xS``        802.11ac VHT at 80 MHz (also vht40-, vht160-)
====================  =====================================================

Channels: ``awgn``, ``rayleigh`` (flat, per-packet) or ``tgn-X`` with X in
A-F (frequency-selective tapped delay line). SNR convention: average
received signal power per RX antenna over complex noise variance.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.analysis.union_bound import (
    WEIGHT_SPECTRUM,
    union_bound_ber,
    union_bound_per,
)
from repro.channel.awgn import awgn_noise
from repro.channel.models import TGN_PROFILES, tgn_channel
from repro.core.mc import analytic_result, run_grid_trials, run_trials
from repro.core.mc.stats import rate_interval
from repro.errors import ConfigurationError, ReproError
from repro.phy import kernels as phy_kernels
from repro.phy.cck import CckPhy
from repro.phy.dsss import DsssPhy
from repro.phy.fhss import GfskModem
from repro.phy.mimo.ht import HtPhy, VhtPhy
from repro.phy.ofdm import OfdmPhy
from repro.utils.bits import bits_from_bytes, count_bit_errors
from repro.utils.rng import as_generator
from repro.utils.validation import require_snr_array, validate_link_run_args


@dataclass
class LinkResult:
    """Outcome of a batch of packet transmissions at one operating point.

    When produced by :meth:`LinkSimulator.run` the ``mc`` field carries
    the engine's :class:`~repro.core.mc.McResult` (CI on the PER, trial
    count, stop reason); :meth:`per_ci`/:meth:`ber_ci` recompute
    intervals from the stored counts at any confidence.
    """

    phy: str
    channel: str
    snr_db: float
    n_packets: int
    n_packet_errors: int
    n_bits: int
    n_bit_errors: int
    payload_bytes: int
    rate_mbps: float
    extras: dict = field(default_factory=dict)
    mc: object = None

    @property
    def analytic(self):
        """True when this point was resolved by a closed-form bound.

        Analytic points send zero packets: ``mc`` carries an
        :func:`~repro.core.mc.analytic_result` record
        (``stop_reason="analytic"``) and ``per``/``ber`` report the
        union-bound values instead of measurements.
        """
        return (self.mc is not None
                and getattr(self.mc, "stop_reason", None) == "analytic")

    @property
    def per(self):
        """Packet error rate (``nan`` when no packets were sent).

        A zero-trial result used to report 0.0 — indistinguishable from
        a genuinely error-free measurement; ``nan`` makes "no data"
        loud instead of flattering. Analytic points report the
        union-bound PER.
        """
        if self.analytic:
            return float(self.mc.estimate)
        if not self.n_packets:
            return float("nan")
        return self.n_packet_errors / self.n_packets

    @property
    def ber(self):
        """Raw payload bit error rate (``nan`` when no bits were sent).

        Analytic points report the union-bound BER.
        """
        if self.analytic:
            return float(self.extras["analytic"]["ber"])
        if not self.n_bits:
            return float("nan")
        return self.n_bit_errors / self.n_bits

    @property
    def goodput_mbps(self):
        """PHY rate discounted by packet loss."""
        return self.rate_mbps * (1.0 - self.per)

    def per_ci(self, confidence=0.95, method="wilson"):
        """``(lo, hi)`` interval on the packet error rate.

        Analytic points report ``(0, bound)`` — the union bound is
        one-sided, so the upper edge is the bound itself.
        """
        if self.analytic:
            return 0.0, float(self.mc.ci_high)
        return rate_interval(self.n_packet_errors, self.n_packets,
                             confidence, method)

    def ber_ci(self, confidence=0.95, method="wilson"):
        """``(lo, hi)`` interval on the bit error rate.

        Treats payload bits as independent Bernoulli trials — optimistic
        under bursty decoders, but a usable yardstick. Analytic points
        report ``(0, bound)``.
        """
        if self.analytic:
            return 0.0, self.ber
        return rate_interval(self.n_bit_errors, self.n_bits,
                             confidence, method)


class LinkSimulator:
    """Monte-Carlo link-level simulator.

    Parameters
    ----------
    phy : str
        PHY configuration name (see module docstring).
    channel : str
        "awgn", "rayleigh", or "tgn-A".."tgn-F".
    n_rx : int or None
        Receive antennas (defaults to the stream count; >1 enables receive
        diversity for HT PHYs).
    detector : str
        HT detector ("mmse", "zf", "ml").
    rng : seed or Generator
    kernels : str or None
        Decoder kernel backend for this simulator's runs ("numpy",
        "numba" or "auto"); ``None`` defers to ``REPRO_KERNELS`` / the
        process-wide setting. Requesting "numba" without numba
        installed fails here, up front, with a
        :class:`~repro.errors.ConfigurationError`.

    Examples
    --------
    >>> sim = LinkSimulator("ofdm-24", "awgn", rng=1)
    >>> result = sim.run(snr_db=20.0, n_packets=50, payload_bytes=100)
    >>> result.per <= 1.0
    True
    """

    def __init__(self, phy, channel="awgn", n_rx=None, detector="mmse",
                 rng=None, kernels=None):
        self.phy_name = phy
        self.channel_name = channel
        self.rng = as_generator(rng)
        self._detector = detector
        self._make_phy(phy, n_rx, detector)
        self._validate_channel(channel)
        if kernels is not None:
            phy_kernels.require_backend(kernels)
        self.kernels = kernels

    def _kernel_ctx(self):
        if self.kernels is None:
            return contextlib.nullcontext()
        return phy_kernels.use_backend(self.kernels)

    # -- construction -------------------------------------------------------

    def _make_phy(self, name, n_rx, detector):
        parts = name.split("-")
        kind = parts[0]
        if kind == "dsss":
            self._phy = DsssPhy(int(parts[1]))
            self._kind = "chips"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(parts[1])
            self.sample_rate = self._phy.chip_rate_hz
        elif kind == "cck":
            self._phy = CckPhy(float(parts[1]))
            self._kind = "chips"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(parts[1])
            self.sample_rate = 11e6
        elif kind == "fhss":
            rate = int(parts[1])
            self._phy = GfskModem(levels=2 if rate == 1 else 4,
                                  modulation_index=0.32 if rate == 1 else 0.45)
            self._kind = "fhss"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(rate)
            self.sample_rate = 1e6 * self._phy.sps
        elif kind == "ofdm":
            self._phy = OfdmPhy(int(parts[1]))
            self._kind = "ofdm"
            self.n_tx = 1
            self.n_rx = 1
            self.rate_mbps = float(parts[1])
            self.sample_rate = 20e6
        elif kind in ("ht", "ht40"):
            bw = 40 if kind == "ht40" else 20
            mcs = int(parts[1])
            streams = mcs // 8 + 1
            self._phy = HtPhy(mcs=mcs, bandwidth_mhz=bw,
                              n_rx=n_rx or streams, detector=detector)
            self._kind = "ht"
            self.n_tx = streams
            self.n_rx = n_rx or streams
            self.rate_mbps = self._phy.data_rate_mbps()
            self.sample_rate = self._phy.sample_rate
        elif kind in ("vht", "vht40", "vht80", "vht160"):
            bw = int(kind[3:]) if len(kind) > 3 else 20
            mcs = int(parts[1])
            streams = int(parts[2].lstrip("x")) if len(parts) > 2 else 1
            self._phy = VhtPhy(mcs=mcs, spatial_streams=streams,
                               bandwidth_mhz=bw, n_rx=n_rx or streams,
                               detector=detector)
            self._kind = "ht"
            self.n_tx = streams
            self.n_rx = n_rx or streams
            self.rate_mbps = self._phy.data_rate_mbps()
            self.sample_rate = self._phy.sample_rate
        else:
            raise ConfigurationError(f"unknown PHY configuration {name!r}")

    def _validate_channel(self, channel):
        if channel in ("awgn", "rayleigh"):
            return
        if channel.startswith("tgn-") and channel[4:].upper() in TGN_PROFILES:
            return
        raise ConfigurationError(
            f"unknown channel {channel!r}; use 'awgn', 'rayleigh' or 'tgn-A'..'tgn-F'"
        )

    # -- channel application --------------------------------------------------

    def _apply_channel(self, tx):
        """Propagate an (n_tx, N) waveform; returns (n_rx, N)."""
        tx = np.atleast_2d(tx)
        if self.channel_name == "awgn":
            if self.n_rx == self.n_tx:
                return tx.copy()
            # Receive diversity in AWGN: repeat the signal on each antenna.
            return np.tile(tx.sum(axis=0), (self.n_rx, 1))
        if self.channel_name == "rayleigh":
            h = (self.rng.normal(size=(self.n_rx, self.n_tx))
                 + 1j * self.rng.normal(size=(self.n_rx, self.n_tx))) / np.sqrt(2)
            return h @ tx
        model = self.channel_name[4:].upper()
        tdl = tgn_channel(model, self.n_rx, self.n_tx,
                          sample_rate_hz=self.sample_rate, rng=self.rng)
        return tdl.apply(tx)

    # -- one packet -------------------------------------------------------------

    def _send_packet(self, payload, snr_db):
        """Returns (bit_errors, packet_error) for one payload transmission."""
        sent_bits = bits_from_bytes(payload)
        if self._kind == "chips":
            tx = self._phy.modulate(sent_bits)
        elif self._kind == "fhss":
            tx = self._phy.modulate(sent_bits)
        elif self._kind == "ofdm":
            tx = self._phy.transmit(payload)
        else:
            tx = self._phy.transmit(payload)
        rx = self._apply_channel(tx)
        # SNR convention: *average* received SNR. Channels have unit mean
        # gain per antenna pair, so the expected receive power per antenna
        # equals the total transmit power; scaling noise to that average
        # (not to the instantaneous packet power) preserves per-packet
        # fades — the whole point of diversity experiments.
        tx2d = np.atleast_2d(tx)
        total_tx_power = float(np.mean(np.abs(tx2d) ** 2)) * tx2d.shape[0]
        noise_var = total_tx_power / 10.0 ** (snr_db / 10.0)
        rx = rx + awgn_noise(rx.shape, noise_var, self.rng)

        try:
            if self._kind == "chips":
                got_bits = self._phy.demodulate(rx.ravel())
                bit_errs = count_bit_errors(sent_bits, got_bits)
            elif self._kind == "fhss":
                got_bits = self._phy.demodulate(rx.ravel(), sent_bits.size)
                bit_errs = count_bit_errors(sent_bits, got_bits)
            elif self._kind == "ofdm":
                got = self._phy.receive(rx.ravel(), noise_var)
                bit_errs = self._byte_errors(payload, got)
            else:
                got = self._phy.receive(rx, noise_var,
                                        psdu_bytes=len(payload))
                bit_errs = self._byte_errors(payload, got)
        except ReproError:
            # Undecodable frame: all payload bits counted in error.
            return sent_bits.size, True
        return bit_errs, bit_errs > 0

    @staticmethod
    def _byte_errors(sent, got):
        if len(got) != len(sent):
            return 8 * len(sent)
        return count_bit_errors(bits_from_bytes(sent), bits_from_bytes(got))

    # -- batched packets ----------------------------------------------------

    def _send_packet_batch(self, rng, m, payload_bytes, snr_db):
        """One vectorized PHY invocation covering ``m`` OFDM packets.

        Per packet the generator is consumed in exactly the scalar trial's
        order — payload bytes, then the channel realisation, then the
        noise normals (``awgn_noise`` scales *after* drawing, so the
        normals can be drawn before the TX power is known). Fixed-budget
        runs therefore stay bit-identical to the per-packet loop.
        """
        n = self._phy.n_samples(payload_bytes)
        snr_lin = 10.0 ** (snr_db / 10.0)
        tgn = self.channel_name.startswith("tgn-")
        payloads = []
        channels = []
        noise_raw = np.empty((m, self.n_rx, n), dtype=np.complex128)
        for i in range(m):
            payloads.append(bytes(rng.integers(0, 256, payload_bytes,
                                               dtype=np.uint8).tolist()))
            if self.channel_name == "rayleigh":
                channels.append(
                    (rng.normal(size=(self.n_rx, self.n_tx))
                     + 1j * rng.normal(size=(self.n_rx, self.n_tx)))
                    / np.sqrt(2)
                )
            elif tgn:
                tdl = tgn_channel(self.channel_name[4:].upper(), self.n_rx,
                                  self.n_tx, sample_rate_hz=self.sample_rate,
                                  rng=rng)
                channels.append((tdl, tdl.draw()))
            noise_raw[i] = (rng.normal(size=(self.n_rx, n))
                            + 1j * rng.normal(size=(self.n_rx, n)))

        tx = self._phy.transmit_batch(payloads)  # (m, n)
        noise_var = np.empty(m)
        rx = np.empty((m, n), dtype=np.complex128)
        for i in range(m):
            if self.channel_name == "awgn":
                rx[i] = tx[i]
            elif tgn:
                tdl, taps = channels[i]
                rx[i] = tdl.apply(tx[i][None, :], taps)[0]
            else:
                rx[i] = (channels[i] @ tx[i][None, :])[0]
            # Same power convention as the scalar path (n_tx = 1 here).
            noise_var[i] = float(np.mean(np.abs(tx[i][None, :]) ** 2))
            noise_var[i] = noise_var[i] / snr_lin
        rx += np.sqrt(noise_var / 2.0)[:, None] * noise_raw[:, 0, :]

        psdus = self._phy.receive_batch(rx, noise_var)
        obs.counter("link.packets", m)
        bit_sum = 0
        pkt_sum = 0
        for payload, got in zip(payloads, psdus):
            if got is None:
                errs = 8 * len(payload)
            else:
                errs = self._byte_errors(payload, got)
            bit_sum += errs
            pkt_sum += int(errs > 0)
        return {"packet_error": pkt_sum, "bit_errors": bit_sum}

    # -- analytic fast path -------------------------------------------------

    def analytic_bounds(self, snr_db, payload_bytes=100):
        """Closed-form PER/BER bounds at one operating point, or None.

        Only OFDM PHYs on AWGN have a usable closed form: the union
        bound over the (133, 171) distance spectrum at the point's
        Eb/N0 (20 MHz channel, so ``Eb/N0 = SNR + 10 log10(20/rate)``).
        The bound ignores channel-estimation noise and SIGNAL-field
        decode failures, so it is trustworthy only where it is already
        tiny — callers gate on a floor (see ``analytic_floor``) rather
        than using it as a general-purpose PER model.
        """
        if self._kind != "ofdm" or self.channel_name != "awgn":
            return None
        code_rate = self._phy.rate.code_rate
        if code_rate not in WEIGHT_SPECTRUM:
            return None
        ebn0_db = float(snr_db) + 10.0 * np.log10(20.0 / self.rate_mbps)
        ber = float(min(union_bound_ber(ebn0_db, code_rate), 1.0))
        per = float(union_bound_per(ebn0_db, 8 * int(payload_bytes),
                                    code_rate))
        return {"per": per, "ber": ber, "ebn0_db": ebn0_db,
                "code_rate": code_rate, "method": "union-bound"}

    def _analytic_short_circuit(self, snr_db, payload_bytes, floor,
                                confidence):
        """Analytic LinkResult when the bound clears the floor, else None."""
        if floor is None:
            return None
        floor = float(floor)
        if not 0.0 < floor < 1.0:
            raise ConfigurationError(
                f"analytic_floor must lie in (0, 1), got {floor}")
        bounds = self.analytic_bounds(snr_db, payload_bytes)
        if bounds is None or bounds["per"] > floor:
            return None
        mc = analytic_result(bounds["per"], target="packet_error",
                             confidence=confidence)
        obs.counter("link.analytic_points")
        return LinkResult(
            phy=self.phy_name,
            channel=self.channel_name,
            snr_db=float(snr_db),
            n_packets=0,
            n_packet_errors=0,
            n_bits=0,
            n_bit_errors=0,
            payload_bytes=int(payload_bytes),
            rate_mbps=self.rate_mbps,
            extras={"analytic": dict(bounds, floor=floor)},
            mc=mc,
        )

    # -- batches ------------------------------------------------------------------

    def run(self, snr_db, n_packets=100, payload_bytes=100, *,
            precision=None, max_trials=None, confidence=0.95,
            batch_size=50, vectorized=None, analytic_floor=None):
        """Send random payloads at one SNR through the MC engine.

        With ``precision=None`` (the default) exactly ``n_packets`` are
        sent, bit-identical to the seed-era serial loop at the same
        seed. With a precision target the engine keeps sending batches
        until the Wilson interval on the PER has relative half-width
        ``<= precision`` or ``max_trials`` packets have been spent;
        ``result.mc`` records which.

        ``vectorized`` selects the batched PHY path, which runs each MC
        batch of packets as one vectorized transmit/receive invocation
        (default: on for OFDM PHYs, which support it; the per-packet RNG
        draw order is preserved, so results are bit-identical either
        way). Pass ``False`` to force the per-packet loop.

        ``analytic_floor`` enables the analytic fast path: when the
        union-bound PER at this point is at or below the floor, no
        packets are sent at all — the result carries the bound with
        ``stop_reason="analytic"`` and consumes no RNG draws. Points
        the bound cannot cover (non-OFDM PHYs, fading channels, or
        bound above the floor) fall through to Monte-Carlo unchanged.
        """
        snr_db, n_packets, payload_bytes = validate_link_run_args(
            snr_db, n_packets, payload_bytes)
        shortcut = self._analytic_short_circuit(
            snr_db, payload_bytes, analytic_floor, confidence)
        if shortcut is not None:
            return shortcut
        if vectorized is None:
            vectorized = self._kind == "ofdm"
        vectorized = bool(vectorized) and self._kind == "ofdm"

        def trial(rng):
            payload = bytes(rng.integers(0, 256, payload_bytes,
                                         dtype=np.uint8).tolist())
            errs, bad = self._send_packet(payload, snr_db)
            obs.counter("link.packets")
            return {"packet_error": int(bad), "bit_errors": int(errs)}

        def trial_batch(rng, m):
            return self._send_packet_batch(rng, m, payload_bytes, snr_db)

        with obs.span("link.run", phy=self.phy_name,
                      channel=self.channel_name,
                      snr_db=float(snr_db)) as span, obs.timed() as clock, \
                self._kernel_ctx():
            mc = run_trials(trial_batch if vectorized else trial,
                            n_trials=int(n_packets),
                            target="packet_error", rng=self.rng,
                            precision=precision, max_trials=max_trials,
                            confidence=confidence, batch_size=batch_size,
                            vectorized=vectorized)
            span.set(n_trials=mc.n_trials, stop_reason=mc.stop_reason,
                     vectorized=vectorized,
                     packets_per_s=(mc.n_trials / clock.elapsed
                                    if clock.elapsed > 0 else 0.0))
        return LinkResult(
            phy=self.phy_name,
            channel=self.channel_name,
            snr_db=float(snr_db),
            n_packets=mc.n_trials,
            n_packet_errors=mc.n_events,
            n_bits=8 * payload_bytes * mc.n_trials,
            n_bit_errors=int(mc.totals.get("bit_errors", 0)),
            payload_bytes=payload_bytes,
            rate_mbps=self.rate_mbps,
            mc=mc,
        )

    def waterfall(self, snr_values_db, n_packets=100, payload_bytes=100,
                  **mc_kwargs):
        """Run a PER/BER sweep across SNR values; returns list of results.

        ``mc_kwargs`` (``precision``, ``max_trials``, ``confidence``,
        ``batch_size``) pass through to :meth:`run`, so an adaptive
        sweep spends few packets on saturated points and many on the
        waterfall knee. Empty or non-finite SNR arrays are rejected up
        front — the same contract the surrogate path enforces.
        """
        snrs = require_snr_array("snr_values_db", snr_values_db)
        with obs.span("link.waterfall", phy=self.phy_name,
                      channel=self.channel_name, n_points=len(snrs)):
            return [self.run(snr, n_packets, payload_bytes, **mc_kwargs)
                    for snr in snrs]

    def run_grid(self, snr_values_db, n_packets=100, payload_bytes=100, *,
                 cross_point=True, analytic_floor=None, confidence=0.95,
                 batch_size=50):
        """Cross-point sweep: all SNRs of this PHY in one kernel pass.

        Unlike :meth:`waterfall` (which runs the points one after the
        other, each with its own draws), a grid shares one payload /
        channel / noise realisation per trial index across every SNR
        (common random numbers) and amortises each transmit over all of
        them. Consumes exactly one draw from ``self.rng`` regardless of
        grid shape, so ``cross_point=True`` and the per-point reference
        ``cross_point=False`` are bit-identical. OFDM PHYs on
        awgn/rayleigh channels only; returns one result per SNR.
        """
        return run_link_grid(
            [self.phy_name], snr_values_db, n_packets, payload_bytes,
            channel=self.channel_name, cross_point=cross_point,
            analytic_floor=analytic_floor, confidence=confidence,
            batch_size=batch_size, rng=self.rng, kernels=self.kernels)[0]

    def snr_for_per(self, target_per=0.1, lo_db=-5.0, hi_db=45.0,
                    n_packets=100, payload_bytes=100, tolerance_db=0.5,
                    **mc_kwargs):
        """Bisect the SNR at which PER crosses ``target_per``.

        Monte-Carlo noise makes this approximate; increase ``n_packets``
        (or pass ``precision=``) for tighter answers. The low edge is
        probed first: when the target PER already holds at ``lo_db``
        the answer is ``lo_db`` and no bisection iterations are spent.
        """
        if not 0 < target_per < 1:
            raise ConfigurationError("target PER must be in (0, 1)")
        lo, hi = float(lo_db), float(hi_db)
        with obs.span("link.snr_for_per", phy=self.phy_name,
                      channel=self.channel_name,
                      target_per=float(target_per)) as span:
            if self.run(lo, n_packets, payload_bytes,
                        **mc_kwargs).per <= target_per:
                span.set(snr_db=lo, low_edge=True)
                return lo
            if self.run(hi, n_packets, payload_bytes,
                        **mc_kwargs).per > target_per:
                raise ConfigurationError(
                    f"PER target {target_per} not met even at {hi} dB"
                )
            while hi - lo > tolerance_db:
                mid = 0.5 * (lo + hi)
                if self.run(mid, n_packets, payload_bytes,
                            **mc_kwargs).per > target_per:
                    lo = mid
                else:
                    hi = mid
            span.set(snr_db=0.5 * (lo + hi))
        return 0.5 * (lo + hi)


# -- cross-point grids -------------------------------------------------------

def grid_trial_draws(entropy, t, payload_bytes, n_max, channel):
    """Base draws for grid trial ``t``: (payload, h, noise).

    One substream per trial index, derived only from ``entropy`` — the
    property every grid execution mode (cross-point, per-point,
    shared-memory pool) relies on for bit-identity. The noise normals
    are drawn interleaved (re, im) per sample so that a shorter PHY's
    noise vector is an exact prefix of a longer draw from the same
    substream: a pool materialised at the campaign's maximum sample
    count serves every rate in it.
    """
    g = np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=(int(t),)))
    payload = bytes(g.integers(0, 256, payload_bytes,
                               dtype=np.uint8).tolist())
    h = 1.0 + 0.0j
    if channel == "rayleigh":
        h = complex((g.normal() + 1j * g.normal()) / np.sqrt(2))
    raw = g.normal(size=(int(n_max), 2))
    return payload, h, raw[:, 0] + 1j * raw[:, 1]


def run_link_grid(phys, snr_values_db, n_packets=100, payload_bytes=100, *,
                  channel="awgn", cross_point=True, analytic_floor=None,
                  confidence=0.95, batch_size=50, rng=None, kernels=None,
                  draw_pool=None):
    """Run a whole (rate, SNR) grid through shared kernel invocations.

    The cross-point batcher behind :meth:`LinkSimulator.run_grid`. Trial
    ``i`` draws one payload, one channel realisation and one (maximum
    length) noise vector from a per-trial substream and reuses them at
    **every** grid point — payload bit generation and scrambling /
    coding / modulation happen once per rate (not once per SNR), and
    noise scaling is the only per-SNR work. Because draws hang off the
    trial index rather than a generator threaded through the points,
    ``cross_point=False`` (the per-point reference execution, one
    engine run per grid point) is bit-identical to the batched path —
    the property the grid tests pin down.

    Parameters
    ----------
    phys : str or list of str
        OFDM PHY names (e.g. ``["ofdm-6", "ofdm-54"]``).
    snr_values_db : array-like
        SNR points shared by every PHY.
    channel : str
        "awgn" or "rayleigh" (flat per-packet). TGN channels consume
        RNG inside the tap generator and cannot share draws; use
        :meth:`LinkSimulator.waterfall` for those.
    analytic_floor : float or None
        Union-bound fast path: grid points whose bound is at or below
        the floor send no packets and come back flagged
        ``stop_reason="analytic"``.
    kernels : str or None
        Decoder backend for the whole grid ("numpy"/"numba"/"auto").
    rng : seed or Generator
        Consumed exactly once (for the per-trial substream entropy).
    draw_pool : SharedDrawPool or None
        Pre-materialised base draws (see :mod:`repro.campaign.shm`).
        Used only when its entropy/shape match this grid — otherwise
        the draws are regenerated locally from the same substreams, so
        results are bit-identical with or without a pool.

    Returns
    -------
    list of lists of :class:`LinkResult`: ``results[p][s]`` for PHY
    ``p`` at SNR ``s``.
    """
    if isinstance(phys, str):
        phys = [phys]
    if not phys:
        raise ConfigurationError("phys must name at least one PHY")
    snrs = require_snr_array("snr_values_db", snr_values_db)
    _, n_packets, payload_bytes = validate_link_run_args(
        0.0, n_packets, payload_bytes)
    if channel not in ("awgn", "rayleigh"):
        raise ConfigurationError(
            f"cross-point grids support 'awgn' or 'rayleigh' channels, "
            f"got {channel!r}; run TGN sweeps through waterfall()")
    if kernels is not None:
        phy_kernels.require_backend(kernels)
    sims = [LinkSimulator(p, channel, kernels=kernels) for p in phys]
    for sim in sims:
        if sim._kind != "ofdm":
            raise ConfigurationError(
                f"cross-point grids support OFDM PHYs only, got "
                f"{sim.phy_name!r}; run it through waterfall()")
    if analytic_floor is not None:
        analytic_floor = float(analytic_floor)
        if not 0.0 < analytic_floor < 1.0:
            raise ConfigurationError(
                f"analytic_floor must lie in (0, 1), got {analytic_floor}")

    n_snr = len(snrs)
    n_points = len(sims) * n_snr
    snr_lin = 10.0 ** (snrs / 10.0)
    lengths = [sim._phy.n_samples(payload_bytes) for sim in sims]
    n_max = max(lengths)
    # One draw regardless of grid shape or execution mode: the entropy
    # seeds per-trial substreams, so draws depend only on the trial index.
    entropy = int(as_generator(rng).integers(0, 2 ** 63))
    if draw_pool is not None and not draw_pool.covers(
            entropy, n_packets, payload_bytes, n_max, channel):
        obs.counter("link.grid.pool_miss")
        draw_pool = None

    def batch_draws(lo, hi):
        m = hi - lo
        if draw_pool is not None:
            pay, hs_all, nz_all = draw_pool.arrays()
            payloads = [pay[t].tobytes() for t in range(lo, hi)]
            return payloads, hs_all[lo:hi], nz_all[lo:hi, :n_max]
        payloads = []
        hs = np.empty(m, dtype=np.complex128)
        noise = np.empty((m, n_max), dtype=np.complex128)
        for j, t in enumerate(range(lo, hi)):
            payload, h, nz = grid_trial_draws(entropy, t, payload_bytes,
                                              n_max, channel)
            payloads.append(payload)
            hs[j] = h
            noise[j] = nz
        return payloads, hs, noise

    def grid_fn(lo, hi, points):
        m = hi - lo
        payloads, hs, noise = batch_draws(lo, hi)
        pkt = np.zeros(points.size, dtype=np.int64)
        bits = np.zeros(points.size, dtype=np.int64)
        by_phy = {}
        for k, idx in enumerate(points):
            p, s = divmod(int(idx), n_snr)
            by_phy.setdefault(p, []).append((k, s))
        for p, cols in sorted(by_phy.items()):
            phy = sims[p]._phy
            n = lengths[p]
            tx = phy.transmit_batch(payloads)  # (m, n), shared by SNRs
            power = np.mean(np.abs(tx) ** 2, axis=1)
            rx_clean = hs[:, None] * tx if channel == "rayleigh" else tx
            for k, s in cols:
                noise_var = power / snr_lin[s]
                rx = (rx_clean
                      + np.sqrt(noise_var / 2.0)[:, None] * noise[:, :n])
                psdus = phy.receive_batch(rx, noise_var)
                for payload, got in zip(payloads, psdus):
                    if got is None:
                        errs = 8 * len(payload)
                    else:
                        errs = LinkSimulator._byte_errors(payload, got)
                    bits[k] += errs
                    pkt[k] += int(errs > 0)
            obs.counter("link.packets", m * len(cols))
        return {"packet_error": pkt, "bit_errors": bits}

    analytic = {}
    bounds_by_point = {}
    if analytic_floor is not None:
        for p, sim in enumerate(sims):
            for s, snr in enumerate(snrs):
                bounds = sim.analytic_bounds(snr, payload_bytes)
                if bounds is not None and bounds["per"] <= analytic_floor:
                    idx = p * n_snr + s
                    analytic[idx] = bounds["per"]
                    bounds_by_point[idx] = bounds

    with obs.span("link.grid", n_phys=len(sims), n_snrs=n_snr,
                  cross_point=bool(cross_point),
                  n_analytic=len(analytic)) as span, obs.timed() as clock, \
            (phy_kernels.use_backend(kernels) if kernels is not None
             else contextlib.nullcontext()):
        if cross_point:
            mcs = run_grid_trials(
                grid_fn, n_packets, n_points, target="packet_error",
                batch_size=batch_size, analytic=analytic,
                confidence=confidence)
        else:
            # Per-point reference execution: same draws, one engine run
            # per grid point. Exists to *prove* the batched path right.
            mcs = []
            for idx in range(n_points):
                def one_point(lo, hi, points, _idx=idx):
                    out = grid_fn(lo, hi,
                                  np.array([_idx], dtype=np.int64))
                    return out
                mcs.extend(run_grid_trials(
                    one_point, n_packets, 1, target="packet_error",
                    batch_size=batch_size,
                    analytic=({0: analytic[idx]} if idx in analytic
                              else None),
                    confidence=confidence))
        sent = sum(mc.n_trials for mc in mcs)
        span.set(n_packets=sent,
                 packets_per_s=(sent / clock.elapsed
                                if clock.elapsed > 0 else 0.0))
        if analytic:
            obs.counter("link.analytic_points", len(analytic))

    results = []
    for p, sim in enumerate(sims):
        row = []
        for s, snr in enumerate(snrs):
            idx = p * n_snr + s
            mc = mcs[idx]
            if mc.stop_reason == "analytic":
                row.append(LinkResult(
                    phy=sim.phy_name, channel=channel, snr_db=float(snr),
                    n_packets=0, n_packet_errors=0, n_bits=0,
                    n_bit_errors=0, payload_bytes=payload_bytes,
                    rate_mbps=sim.rate_mbps,
                    extras={"analytic": dict(bounds_by_point[idx],
                                             floor=analytic_floor)},
                    mc=mc))
            else:
                row.append(LinkResult(
                    phy=sim.phy_name, channel=channel, snr_db=float(snr),
                    n_packets=mc.n_trials, n_packet_errors=mc.n_events,
                    n_bits=8 * payload_bytes * mc.n_trials,
                    n_bit_errors=int(mc.totals.get("bit_errors", 0)),
                    payload_bytes=payload_bytes, rate_mbps=sim.rate_mbps,
                    mc=mc))
        results.append(row)
    return results
