"""Adaptive Monte-Carlo engine with confidence intervals end-to-end.

``repro.core.mc`` is the one trial loop under every simulator in the
library: link PER/BER sweeps, cooperative relaying, coded cooperation,
mesh coverage sampling and MIMO capacity ensembles all drive their
trials through :func:`run_trials` instead of hand-rolled ``for`` loops.

Two guarantees:

* **determinism** — fixed-budget mode consumes the caller's RNG in
  exactly the seed-era order, so results are bit-identical to the
  pre-engine loops at the same seed;
* **honest precision** — adaptive mode stops when the confidence
  interval on the target rate is relatively tight enough (or a ceiling
  is hit), and every result carries its CI, trial count and stop
  reason, so 0/100 and 0/100000 packets stop looking like the same
  number.
"""

from repro.core.mc.engine import (
    DEFAULT_MAX_TRIALS,
    McResult,
    STOP_REASONS,
    analytic_result,
    run_grid_trials,
    run_trials,
)
from repro.core.mc.stats import (
    MeanAccumulator,
    QuantileAccumulator,
    RateAccumulator,
    clopper_pearson_interval,
    rate_interval,
    wilson_interval,
)

__all__ = [
    "DEFAULT_MAX_TRIALS",
    "McResult",
    "STOP_REASONS",
    "analytic_result",
    "run_grid_trials",
    "run_trials",
    "MeanAccumulator",
    "QuantileAccumulator",
    "RateAccumulator",
    "clopper_pearson_interval",
    "rate_interval",
    "wilson_interval",
]
