"""Streaming statistics for Monte-Carlo estimation.

Every quantitative claim the library regenerates is an estimate from a
finite trial count, so every estimate deserves an interval. This module
supplies the interval mathematics and the streaming accumulators the
:mod:`repro.core.mc.engine` driver feeds batch by batch:

* :func:`wilson_interval` — the default for error *rates* (PER, BLER,
  outage, coverage). Well behaved at the extremes (0/n and n/n) where
  the naive normal interval collapses to a point.
* :func:`clopper_pearson_interval` — exact (conservative) binomial
  interval, for when guaranteed coverage matters more than width.
* :class:`RateAccumulator` / :class:`MeanAccumulator` /
  :class:`QuantileAccumulator` — constant-memory (rate/mean) or
  value-retaining (quantile) accumulators sharing one protocol:
  ``add``, ``n_trials``, ``estimate()``, ``interval()`` and
  ``rel_half_width()``.

Accumulation is deliberately *sequential* (one ``+=`` per trial) so the
fixed-budget mode of the engine reproduces the seed-era ``for`` loops
bit for bit — pairwise/numpy reductions would change the rounding of
the running totals.
"""

from __future__ import annotations

import numpy as np
from scipy.special import betaincinv, ndtri

from repro.errors import ConfigurationError

#: Interval methods usable for Bernoulli rates.
RATE_METHODS = ("wilson", "clopper-pearson")


def _check_counts(k, n):
    k, n = int(k), int(n)
    if n < 0 or k < 0 or k > n:
        raise ConfigurationError(
            f"need 0 <= k <= n for a rate interval, got k={k}, n={n}"
        )
    return k, n


def _z_value(confidence):
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return float(ndtri(0.5 * (1.0 + confidence)))


def wilson_interval(k, n, confidence=0.95):
    """Wilson score interval for a Bernoulli rate ``k / n``.

    Returns ``(lo, hi)`` with ``0 <= lo <= hi <= 1``. Unlike the normal
    ("Wald") interval it never degenerates at ``k = 0`` or ``k = n`` —
    0 errors in 100 packets and 0 in 100000 report visibly different
    upper bounds, which is the whole point of shipping error bars.
    """
    k, n = _check_counts(k, n)
    z = _z_value(confidence)
    if n == 0:
        return 0.0, 1.0
    p = k / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    half = z * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    # centre - half is analytically 0 at k = 0 (and centre + half is 1
    # at k = n) but rounds to ~1e-19 off; pin the exact edges.
    lo = 0.0 if k == 0 else max(0.0, float(centre - half))
    hi = 1.0 if k == n else min(1.0, float(centre + half))
    return lo, hi


def clopper_pearson_interval(k, n, confidence=0.95):
    """Exact (Clopper–Pearson) binomial interval for ``k / n``.

    Guaranteed coverage at every ``(k, n)`` at the price of being wider
    than Wilson; the standard yardstick when validating simulations
    against analytical bounds.
    """
    k, n = _check_counts(k, n)
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if n == 0:
        return 0.0, 1.0
    alpha = 1.0 - confidence
    lo = 0.0 if k == 0 else float(betaincinv(k, n - k + 1, alpha / 2.0))
    hi = 1.0 if k == n else float(betaincinv(k + 1, n - k, 1.0 - alpha / 2.0))
    return lo, hi


def rate_interval(k, n, confidence=0.95, method="wilson"):
    """Dispatch to the named rate-interval method."""
    if method == "wilson":
        return wilson_interval(k, n, confidence)
    if method == "clopper-pearson":
        return clopper_pearson_interval(k, n, confidence)
    raise ConfigurationError(
        f"unknown rate interval method {method!r}; use one of "
        f"{', '.join(RATE_METHODS)}"
    )


# -- accumulators ------------------------------------------------------------


class RateAccumulator:
    """Streaming Bernoulli-rate estimate: ``n_events`` out of ``n_trials``.

    Constant memory; feed it ``add(k, n)`` per batch.
    """

    def __init__(self, method="wilson"):
        if method not in RATE_METHODS:
            raise ConfigurationError(
                f"unknown rate interval method {method!r}; use one of "
                f"{', '.join(RATE_METHODS)}"
            )
        self.method = method
        self.n_trials = 0
        self.n_events = 0

    def add(self, k, n):
        """Record ``k`` target events observed across ``n`` new trials."""
        k, n = _check_counts(k, n)
        self.n_events += k
        self.n_trials += n

    def estimate(self):
        """The point estimate ``k / n`` (``nan`` before any trial)."""
        if self.n_trials == 0:
            return float("nan")
        return self.n_events / self.n_trials

    def interval(self, confidence=0.95):
        """``(lo, hi)`` interval on the rate at ``confidence``."""
        return rate_interval(self.n_events, self.n_trials, confidence,
                             self.method)

    def rel_half_width(self, confidence=0.95):
        """CI half-width relative to the estimate (``inf`` while k = 0).

        A zero-event estimate has no scale to be relative to, so the
        adaptive stop can never trigger on it — the engine runs such
        points to their trial ceiling instead of declaring fake
        precision on 0.0.
        """
        if self.n_trials == 0 or self.n_events == 0:
            return float("inf")
        lo, hi = self.interval(confidence)
        return (hi - lo) / (2.0 * self.estimate())


class MeanAccumulator:
    """Streaming mean (scalar- or vector-valued) with a normal-theory CI.

    Keeps running ``sum`` and ``sum of squares``, accumulated one trial
    at a time so a single-batch run is bit-identical to the seed-era
    sequential loops it replaced.
    """

    def __init__(self):
        self.n_trials = 0
        self._sum = None
        self._sumsq = None

    def add(self, values):
        """Record per-trial values, shape ``(m,)`` or ``(m, d)``."""
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise ConfigurationError(
                "mean accumulator needs per-trial values of shape (m,) "
                f"or (m, d), got shape {values.shape}"
            )
        if self._sum is None:
            self._sum = np.zeros(values.shape[1])
            self._sumsq = np.zeros(values.shape[1])
        for v in values:  # sequential: bit-identical to the legacy loops
            self._sum += v
            self._sumsq += v * v
        self.n_trials += values.shape[0]

    def estimate(self):
        """Running mean: a float, or an array for vector values."""
        if self.n_trials == 0:
            return float("nan")
        mean = self._sum / self.n_trials
        return mean if mean.size > 1 else float(mean[0])

    def _half_width(self, confidence):
        n = self.n_trials
        if n < 2:
            return np.full_like(np.atleast_1d(self._sum), np.inf) \
                if self._sum is not None else float("inf")
        var = (self._sumsq - self._sum * self._sum / n) / (n - 1)
        var = np.maximum(var, 0.0)
        return _z_value(confidence) * np.sqrt(var / n)

    def interval(self, confidence=0.95):
        """Normal-theory ``(lo, hi)`` on the mean (``nan`` when empty)."""
        if self.n_trials == 0:
            return float("nan"), float("nan")
        mean = self._sum / self.n_trials
        half = self._half_width(confidence)
        lo, hi = mean - half, mean + half
        if mean.size > 1:
            return lo, hi
        return float(lo[0]), float(hi[0])

    def rel_half_width(self, confidence=0.95):
        """Worst relative half-width across vector components."""
        if self.n_trials < 2:
            return float("inf")
        mean = self._sum / self.n_trials
        half = self._half_width(confidence)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(mean != 0.0, half / np.abs(mean), np.inf)
        return float(np.max(rel))


class QuantileAccumulator:
    """Streaming quantile estimate with a distribution-free order-stat CI.

    Has to retain the sample (quantiles are not sufficient-statistic
    friendly), so memory is ``O(n_trials)`` — bounded by the engine's
    trial ceiling.
    """

    def __init__(self, q):
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._chunks = []
        self.n_trials = 0

    def add(self, values):
        """Record a chunk of per-trial values (flattened)."""
        values = np.asarray(values, dtype=float).ravel()
        self._chunks.append(values)
        self.n_trials += values.size

    def _values(self):
        return np.concatenate(self._chunks) if self._chunks \
            else np.empty(0)

    def estimate(self):
        """The empirical ``q``-quantile of everything seen so far."""
        if self.n_trials == 0:
            return float("nan")
        return float(np.quantile(self._values(), self.q))

    def interval(self, confidence=0.95):
        """Distribution-free CI from binomial fluctuation of the rank."""
        n = self.n_trials
        if n == 0:
            return float("nan"), float("nan")
        z = _z_value(confidence)
        ordered = np.sort(self._values())
        spread = z * np.sqrt(n * self.q * (1.0 - self.q))
        lo_rank = int(np.clip(np.floor(n * self.q - spread), 0, n - 1))
        hi_rank = int(np.clip(np.ceil(n * self.q + spread), 0, n - 1))
        return float(ordered[lo_rank]), float(ordered[hi_rank])

    def rel_half_width(self, confidence=0.95):
        """CI half-width relative to the estimate (``inf`` near 0)."""
        if self.n_trials < 2:
            return float("inf")
        est = self.estimate()
        if est == 0.0:
            return float("inf")
        lo, hi = self.interval(confidence)
        return (hi - lo) / (2.0 * abs(est))
