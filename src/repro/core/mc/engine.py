"""The adaptive Monte-Carlo trial driver behind every simulation loop.

One engine, two modes:

**Fixed budget** (``precision=None``) replays exactly ``n_trials``
trials in submission order against the caller's generator — bit for bit
what the seed-era hand-rolled ``for _ in range(n)`` loops computed,
because the engine adds no draws of its own and batches preserve the
stream order (regression-tested in ``tests/test_mc.py``).

**Adaptive** (``precision=p``) keeps running batches until the
confidence interval on the target statistic is *relatively* tight
enough — half-width ≤ ``p`` × estimate — or a trial ceiling is hit. A
saturated operating point (PER ≈ 1) settles within a few batches
instead of burning the full budget; a zero-event point can never claim
precision and runs to the ceiling, which is exactly the honesty the
interval is for.

Trial functions
---------------
Scalar form (default): ``trial_fn(rng) -> dict`` mapping metric names
to per-trial numbers; the engine sums them across trials. Vectorised
form (``vectorized=True``): ``trial_fn(rng, m) -> dict`` covering ``m``
trials at once — values are batch *sums* for the ``"rate"`` estimand
and per-trial value arrays (shape ``(m,)`` or ``(m, d)``) for the
``"mean"``/``"quantile"`` estimands.

The ``target`` key selects the statistic the stopping rule watches:

* ``estimand="rate"`` — the target counts Bernoulli events; the
  estimate is an error rate with a Wilson (or Clopper–Pearson) CI;
* ``estimand="mean"`` — the target carries per-trial values; the
  estimate is their mean with a normal-theory CI;
* ``estimand="quantile"`` — per-trial values, estimate is the
  ``quantile``-quantile with a distribution-free order-statistic CI.

Every run returns an :class:`McResult` carrying the estimate, the CI,
the consumed trial count, the stop reason, and the summed totals of all
non-target metrics — enough for a caller to rebuild its legacy result
object *and* ship error bars.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.core.mc.stats import (
    MeanAccumulator,
    QuantileAccumulator,
    RateAccumulator,
)
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator

#: Default trial ceiling for adaptive runs that never reach precision.
DEFAULT_MAX_TRIALS = 100_000

#: Stop reasons an :class:`McResult` may carry. ``analytic`` marks a
#: point that never ran a trial: a closed-form bound already pinned the
#: target below the caller's confidence floor (see
#: :func:`analytic_result`).
STOP_REASONS = ("budget", "precision", "max_trials", "analytic")


@dataclass
class McResult:
    """Outcome of one :func:`run_trials` invocation.

    ``estimate``/``ci_low``/``ci_high`` are floats for scalar
    estimands and arrays for vector-valued means. ``totals`` holds the
    summed non-target metrics (e.g. accumulated bit errors alongside a
    packet-error-rate target).
    """

    estimate: object
    ci_low: object
    ci_high: object
    n_trials: int
    confidence: float
    stop_reason: str
    method: str
    target: str
    estimand: str = "rate"
    n_events: int = None
    precision: float = None
    totals: dict = field(default_factory=dict)

    @property
    def half_width(self):
        """Half the CI width (same shape as ``estimate``)."""
        return (np.asarray(self.ci_high) - np.asarray(self.ci_low)) / 2.0

    @property
    def rel_half_width(self):
        """Half-width relative to the estimate (``inf`` at estimate 0)."""
        est = np.abs(np.asarray(self.estimate, dtype=float))
        half = np.asarray(self.half_width, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(est > 0.0, half / est, np.inf)
        return float(rel) if rel.ndim == 0 else rel

    def ci(self):
        """The ``(lo, hi)`` interval as a tuple."""
        return self.ci_low, self.ci_high


def analytic_result(estimate, *, target, method="union-bound",
                    confidence=0.95, totals=None):
    """An :class:`McResult` for a point resolved without any MC trials.

    The caller's closed-form bound stands in for the estimate: the
    interval is ``[0, bound]`` (the bound is an upper bound, so the
    truth lies below it), ``n_trials`` is 0 and the stop reason is
    ``"analytic"`` — stores, reports and the CLI all surface the flag,
    and trial-count summaries fold the point in at zero cost.
    """
    estimate = float(estimate)
    if not 0.0 <= estimate <= 1.0:
        raise ConfigurationError(
            f"analytic rate estimate must be in [0, 1], got {estimate}")
    obs.counter("mc.stop.analytic")
    obs_metrics.count("mc.stop.analytic")
    return McResult(
        estimate=estimate,
        ci_low=0.0,
        ci_high=estimate,
        n_trials=0,
        confidence=float(confidence),
        stop_reason="analytic",
        method=str(method),
        target=target,
        estimand="rate",
        n_events=0,
        precision=None,
        totals=dict(totals or {}),
    )


def _make_accumulator(estimand, method, quantile):
    if estimand == "rate":
        return RateAccumulator(method=method)
    if estimand == "mean":
        if quantile is not None:
            raise ConfigurationError(
                "quantile= only applies to estimand='quantile'"
            )
        return MeanAccumulator()
    if estimand == "quantile":
        if quantile is None:
            raise ConfigurationError(
                "estimand='quantile' needs the quantile= argument"
            )
        return QuantileAccumulator(quantile)
    raise ConfigurationError(
        f"unknown estimand {estimand!r}; use 'rate', 'mean' or 'quantile'"
    )


def _validate(n_trials, precision, max_trials, batch_size):
    if int(batch_size) < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    if precision is None:
        if n_trials is None or int(n_trials) < 1:
            raise ConfigurationError(
                "fixed-budget mode needs n_trials >= 1 "
                "(or pass precision= for adaptive mode)"
            )
        return int(n_trials), None, None
    precision = float(precision)
    if not precision > 0.0:
        raise ConfigurationError(
            f"precision must be > 0, got {precision}"
        )
    max_trials = DEFAULT_MAX_TRIALS if max_trials is None else int(max_trials)
    if max_trials < 1:
        raise ConfigurationError(
            f"max_trials must be >= 1, got {max_trials}"
        )
    return None, precision, max_trials


def run_trials(trial_fn, n_trials=None, *, target, rng=None,
               precision=None, max_trials=None, batch_size=100,
               confidence=0.95, method="wilson", estimand="rate",
               quantile=None, vectorized=False):
    """Drive ``trial_fn`` to a fixed budget or a precision target.

    Parameters
    ----------
    trial_fn : callable
        ``trial_fn(rng) -> dict`` of per-trial metrics, or — with
        ``vectorized=True`` — ``trial_fn(rng, m) -> dict`` covering
        ``m`` trials (see the module docstring for the value
        conventions per estimand).
    n_trials : int or None
        Fixed trial budget. Required when ``precision`` is ``None``;
        ignored in adaptive mode.
    target : str
        The metric key the stopping rule (and the CI) applies to.
    rng : seed or Generator
        Passed straight through to ``trial_fn``; giving the caller's
        own generator preserves the legacy draw order exactly.
    precision : float or None
        Adaptive mode: stop once the CI half-width on the target drops
        below ``precision`` × estimate. ``None`` = fixed budget.
    max_trials : int or None
        Adaptive trial ceiling (default ``DEFAULT_MAX_TRIALS``).
    batch_size : int
        Trials between CI checks in adaptive mode (and the vectorised
        chunk size).
    confidence : float
        CI confidence level, in (0, 1).
    method : str
        Rate-interval flavour: ``"wilson"`` or ``"clopper-pearson"``.
    estimand : str
        ``"rate"`` (default), ``"mean"`` or ``"quantile"``.
    quantile : float or None
        Which quantile to estimate when ``estimand="quantile"``.
    vectorized : bool
        Whether ``trial_fn`` processes whole batches.

    Returns
    -------
    McResult
    """
    budget, precision, ceiling = _validate(n_trials, precision, max_trials,
                                           batch_size)
    acc = _make_accumulator(estimand, method, quantile)
    rng = as_generator(rng)
    totals = {}

    def consume(m):
        """Run ``m`` trials, feed the accumulator, sum the extras."""
        if vectorized:
            out = dict(trial_fn(rng, m))
        else:
            out = {}
            values = []
            for _ in range(m):
                result = trial_fn(rng)
                for key, val in result.items():
                    if estimand != "rate" and key == target:
                        values.append(val)
                    else:
                        out[key] = out.get(key, 0) + val
            if estimand != "rate":
                out[target] = np.asarray(values)
        if target not in out:
            raise ConfigurationError(
                f"trial function never produced target metric {target!r}; "
                f"got keys {sorted(out)}"
            )
        for key, val in out.items():
            if key == target:
                continue
            totals[key] = totals.get(key, 0) + val
        if estimand == "rate":
            acc.add(out[target], m)
            totals[target] = acc.n_events
        else:
            values = np.asarray(out[target])
            if values.ndim == 0 or values.shape[0] != m:
                raise ConfigurationError(
                    f"target {target!r} must carry one value per trial "
                    f"(expected leading dimension {m}, got shape "
                    f"{values.shape})"
                )
            acc.add(values)

    def run_batch(m):
        """One traced batch; histograms its latency when metrics are on."""
        registry = obs_metrics.current_registry()
        with obs.span("mc.batch", n=m):
            if registry is None:
                consume(m)
            else:
                t0 = time.perf_counter()
                consume(m)
                registry.observe("mc.batch_s",
                                 time.perf_counter() - t0)

    with obs.span("mc.run_trials", target=target, estimand=estimand,
                  mode="fixed" if precision is None
                  else "adaptive") as mc_span, obs.timed() as clock:
        if precision is None:
            # Fixed budget. Vectorised trial functions are fed in
            # batch_size chunks so a large budget never materialises the
            # whole waveform batch at once; generator draws are consumed
            # value-by-value, so chunking leaves the stream (and thus
            # every result) identical to one full-budget call — and to
            # the seed-era hand-rolled sequential loops.
            if vectorized:
                remaining = budget
                while remaining > 0:
                    m = min(int(batch_size), remaining)
                    run_batch(m)
                    remaining -= m
            else:
                run_batch(budget)
            stop_reason = "budget"
        else:
            stop_reason = "max_trials"
            while acc.n_trials < ceiling:
                m = min(int(batch_size), ceiling - acc.n_trials)
                run_batch(m)
                if acc.rel_half_width(confidence) <= precision:
                    stop_reason = "precision"
                    break
        obs.counter("mc.trials", acc.n_trials)
        obs.counter(f"mc.stop.{stop_reason}")
        obs_metrics.count("mc.trials", acc.n_trials)
        obs_metrics.count(f"mc.stop.{stop_reason}")
        if clock.elapsed > 0:
            obs_metrics.gauge("mc.trials_per_s",
                              acc.n_trials / clock.elapsed)
        mc_span.set(n_trials=acc.n_trials, stop_reason=stop_reason,
                    trials_per_s=(acc.n_trials / clock.elapsed
                                  if clock.elapsed > 0 else 0.0))

    lo, hi = acc.interval(confidence)
    return McResult(
        estimate=acc.estimate(),
        ci_low=lo,
        ci_high=hi,
        n_trials=acc.n_trials,
        confidence=float(confidence),
        stop_reason=stop_reason,
        method=method if estimand == "rate" else
        ("normal" if estimand == "mean" else "order-stat"),
        target=target,
        estimand=estimand,
        n_events=getattr(acc, "n_events", None),
        precision=precision,
        totals=totals,
    )


def run_grid_trials(grid_fn, n_trials, n_points, *, target,
                    batch_size=100, analytic=None, confidence=0.95,
                    method="wilson"):
    """Fixed-budget Bernoulli trials for *many* grid points at once.

    Cross-point batching: one ``grid_fn`` invocation covers a slice of
    the trial budget for **every** still-active point, so a sweep's
    kernels (transmit, channel, decode) amortise across its whole
    (SNR, rate) grid instead of one operating point at a time.

    Parameters
    ----------
    grid_fn : callable
        ``grid_fn(lo, hi, points) -> dict`` running trials ``lo..hi-1``
        for each point index in ``points`` (a 1-D int array). Values
        are per-point *batch sums*, shape ``(len(points),)`` — the
        ``target`` entry counts Bernoulli events. The trial index, not
        a generator, carries the randomness: trial ``i`` must use the
        same underlying draws for every point (common random numbers),
        which is what makes cross-point and per-point execution of the
        same scheme bit-identical.
    n_trials : int
        Fixed per-point trial budget.
    n_points : int
        Grid size; results come back as a list of this length.
    batch_size : int
        Trials per ``grid_fn`` invocation.
    analytic : dict or None
        ``{point_index: bound}`` for points a closed-form bound already
        resolved below the caller's confidence floor: they are excluded
        from every ``grid_fn`` call and returned as
        :func:`analytic_result` records (``stop_reason="analytic"``).
    confidence, method
        Per-point Wilson (or Clopper-Pearson) interval parameters.

    Returns
    -------
    list of :class:`McResult`, one per point in index order.
    """
    n_points = int(n_points)
    if n_points < 1:
        raise ConfigurationError(f"n_points must be >= 1, got {n_points}")
    budget = int(n_trials)
    if budget < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {budget}")
    if int(batch_size) < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}")
    analytic = {int(i): float(v) for i, v in (analytic or {}).items()}
    for i in analytic:
        if not 0 <= i < n_points:
            raise ConfigurationError(
                f"analytic point index {i} outside grid of {n_points}")
    active = np.array([i for i in range(n_points) if i not in analytic],
                      dtype=np.int64)
    accs = {int(i): RateAccumulator(method=method) for i in active}
    totals = {int(i): {} for i in active}

    with obs.span("mc.run_grid", target=target, n_points=n_points,
                  n_analytic=len(analytic)) as span, obs.timed() as clock:
        done = 0
        while active.size and done < budget:
            m = min(int(batch_size), budget - done)
            registry = obs_metrics.current_registry()
            with obs.span("mc.batch", n=m * active.size):
                t0 = time.perf_counter()
                out = dict(grid_fn(done, done + m, active))
                if registry is not None:
                    registry.observe("mc.batch_s",
                                     time.perf_counter() - t0)
            if target not in out:
                raise ConfigurationError(
                    f"grid function never produced target metric "
                    f"{target!r}; got keys {sorted(out)}")
            for key, vals in out.items():
                vals = np.asarray(vals)
                if vals.shape[:1] != (active.size,):
                    raise ConfigurationError(
                        f"grid metric {key!r} must carry one value per "
                        f"active point (expected leading dimension "
                        f"{active.size}, got shape {vals.shape})")
                for j, i in enumerate(active):
                    i = int(i)
                    if key == target:
                        accs[i].add(vals[j], m)
                        totals[i][target] = accs[i].n_events
                    else:
                        totals[i][key] = totals[i].get(key, 0) + vals[j]
            done += m
        n_run = done * active.size
        obs.counter("mc.trials", n_run)
        obs_metrics.count("mc.trials", n_run)
        if active.size:
            obs.counter("mc.stop.budget", active.size)
            obs_metrics.count("mc.stop.budget", active.size)
        if clock.elapsed > 0:
            obs_metrics.gauge("mc.trials_per_s", n_run / clock.elapsed)
        span.set(n_trials=n_run,
                 trials_per_s=(n_run / clock.elapsed
                               if clock.elapsed > 0 else 0.0))

    results = []
    for i in range(n_points):
        if i in analytic:
            results.append(analytic_result(
                analytic[i], target=target, confidence=confidence))
            continue
        acc = accs[i]
        lo, hi = acc.interval(confidence)
        results.append(McResult(
            estimate=acc.estimate(),
            ci_low=lo,
            ci_high=hi,
            n_trials=acc.n_trials,
            confidence=float(confidence),
            stop_reason="budget",
            method=method,
            target=target,
            estimand="rate",
            n_events=acc.n_events,
            precision=None,
            totals=totals[i],
        ))
    return results
