"""The paper's core narrative as an executable framework.

Builds the generation-by-generation comparison the paper walks through —
rate, spectral efficiency, the fivefold law, range, and the regulatory
regime that shaped each step — combining the standards registry with
link-budget analysis and (optionally) measured link simulations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.analysis.trends import fit_exponential_trend
from repro.standards.registry import GENERATIONS, evolution_table

#: Regulatory regime the paper associates with each generation.
REGULATORY_NOTES = {
    "802.11": "FCC 10 dB processing-gain mandate (spread spectrum required)",
    "802.11b": "Mandate relaxed: DSSS-like signature suffices (CCK)",
    "802.11a": "5 GHz opened without spreading rules: OFDM allowed",
    "802.11g": "OFDM permitted into 2.4 GHz",
    "802.11n": "No regulatory barrier: limited by technology (MIMO)",
}


def spectral_efficiency_series():
    """(generation names, spectral efficiencies) along the paper's chain.

    The chain is 802.11 -> 802.11b -> 802.11a/g -> 802.11n; a and g share
    a PHY so only one entry represents the OFDM step.
    """
    names = ["802.11", "802.11b", "802.11a", "802.11n"]
    effs = [GENERATIONS[n].spectral_efficiency for n in names]
    return names, np.array(effs)


def evolution_report(budget=None):
    """Rows of the full evolution table plus derived quantities.

    Each row extends :func:`repro.standards.evolution_table` with the
    regulatory note and the computed range of the generation's lowest and
    highest rate under a common link budget.
    """
    budget = budget or LinkBudget()
    rows = evolution_table()
    for row in rows:
        std = GENERATIONS[row["standard"]]
        row["regulation"] = REGULATORY_NOTES[row["standard"]]
        lowest = min(std.rates, key=lambda r: r.rate_mbps)
        highest = max(std.rates, key=lambda r: r.rate_mbps)
        row["range_at_min_rate_m"] = budget.range_for_snr(
            lowest.required_snr_db
        )
        row["range_at_max_rate_m"] = budget.range_for_snr(
            highest.required_snr_db
        )
    return rows


def fivefold_law():
    """Fit the per-generation spectral-efficiency multiplier.

    Returns
    -------
    (ratio, efficiencies) : (float, numpy.ndarray)
        The paper's claim is ratio ~ 5.
    """
    _, effs = spectral_efficiency_series()
    ratio, _ = fit_exponential_trend(np.arange(effs.size), effs)
    return ratio, effs


def format_evolution_table(rows=None):
    """Render the evolution report as an aligned text table."""
    rows = rows or evolution_report()
    header = (
        f"{'standard':<10} {'year':>5} {'PHY':<10} {'Mbps':>6} "
        f"{'MHz':>5} {'bps/Hz':>7} {'xprev':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = row["ratio_to_previous"]
        lines.append(
            f"{row['standard']:<10} {row['year']:>5} {row['phy']:<10} "
            f"{row['max_rate_mbps']:>6.0f} {row['bandwidth_mhz']:>5.0f} "
            f"{row['spectral_efficiency_bps_hz']:>7.2f} "
            f"{'-' if ratio is None else f'{ratio:>5.1f}x'}"
        )
    return "\n".join(lines)
