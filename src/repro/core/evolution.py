"""The paper's core narrative as an executable framework.

Builds the generation-by-generation comparison the paper walks through —
rate, spectral efficiency, the fivefold law, range, and the regulatory
regime that shaped each step — combining the standards registry with
link-budget analysis and (optionally) measured link simulations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.analysis.trends import fit_exponential_trend
from repro.standards.registry import (
    GENERATIONS,
    evolution_table,
    generation_order,
)

#: Regulatory regime the paper associates with each generation (and, for
#: the post-paper generations, the constraint that shaped them).
REGULATORY_NOTES = {
    "802.11": "FCC 10 dB processing-gain mandate (spread spectrum required)",
    "802.11b": "Mandate relaxed: DSSS-like signature suffices (CCK)",
    "802.11a": "5 GHz opened without spreading rules: OFDM allowed",
    "802.11g": "OFDM permitted into 2.4 GHz",
    "802.11n": "No regulatory barrier: limited by technology (MIMO)",
    "802.11ac": "5 GHz-only; 80/160 MHz channels within existing allocations",
    "802.11ax": "Efficiency over peak rate: dense-deployment rules (OFDMA)",
}


def spectral_efficiency_series(extended=False):
    """(generation names, spectral efficiencies) along the paper's chain.

    The chain is derived from the registry's historical order with
    shared-PHY generations collapsed to one step (802.11g rides on
    802.11a's OFDM entry). By default it stops at 802.11n, where the
    paper's own trend table ends; ``extended=True`` carries it through
    every registered generation (802.11ac, 802.11ax).
    """
    order = generation_order()
    names, seen_phy = [], set()
    for name in order:
        phy = GENERATIONS[name].phy_type
        if phy in seen_phy:
            continue
        seen_phy.add(phy)
        names.append(name)
    if not extended:
        names = names[: names.index("802.11n") + 1]
    effs = [GENERATIONS[n].spectral_efficiency for n in names]
    return names, np.array(effs)


def evolution_report(budget=None):
    """Rows of the full evolution table plus derived quantities.

    Each row extends :func:`repro.standards.evolution_table` with the
    regulatory note and the computed range of the generation's lowest and
    highest rate under a common link budget.
    """
    budget = budget or LinkBudget()
    rows = evolution_table()
    for row in rows:
        std = GENERATIONS[row["standard"]]
        row["regulation"] = REGULATORY_NOTES[row["standard"]]
        lowest = min(std.rates, key=lambda r: r.rate_mbps)
        highest = max(std.rates, key=lambda r: r.rate_mbps)
        row["range_at_min_rate_m"] = budget.range_for_snr(
            lowest.required_snr_db
        )
        row["range_at_max_rate_m"] = budget.range_for_snr(
            highest.required_snr_db
        )
    return rows


def fivefold_law(extended=False):
    """Fit the per-generation spectral-efficiency multiplier.

    Returns
    -------
    (ratio, efficiencies) : (float, numpy.ndarray)
        The paper's claim is ratio ~ 5 over its own chain (the default);
        with ``extended=True`` the fit covers 802.11ac/ax too, where the
        growth rate visibly flattens — the paper's law held for exactly
        the era it described.
    """
    _, effs = spectral_efficiency_series(extended=extended)
    ratio, _ = fit_exponential_trend(np.arange(effs.size), effs)
    return ratio, effs


def format_evolution_table(rows=None):
    """Render the evolution report as an aligned text table."""
    rows = rows or evolution_report()
    header = (
        f"{'standard':<10} {'year':>5} {'PHY':<13} {'Mbps':>6} "
        f"{'MHz':>5} {'bps/Hz':>7} {'xprev':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = row["ratio_to_previous"]
        lines.append(
            f"{row['standard']:<10} {row['year']:>5} {row['phy']:<13} "
            f"{row['max_rate_mbps']:>6.0f} {row['bandwidth_mhz']:>5.0f} "
            f"{row['spectral_efficiency_bps_hz']:>7.2f} "
            f"{'-' if ratio is None else f'{ratio:>5.1f}x'}"
        )
    return "\n".join(lines)
