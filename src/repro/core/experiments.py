"""Quick-running versions of the reproduction experiments.

The authoritative experiment harness is ``benchmarks/`` (pytest-benchmark,
full sample counts). This registry exposes *fast* variants of the same
computations for interactive use — ``python -m repro experiment E6`` — so
a user can regenerate any paper claim in seconds without pytest.

Each experiment function returns printable lines; ``run_experiment``
dispatches by id.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _e1_evolution():
    from repro.core.evolution import fivefold_law, format_evolution_table

    ratio, _ = fivefold_law()
    return [format_evolution_table(),
            f"fitted multiplier: {ratio:.2f}x per generation (paper: ~5x)"]


def _e2_processing_gain():
    from repro.phy.dsss import measure_processing_gain, processing_gain_db

    measured = measure_processing_gain(n_symbols=1500, rng=0)
    return [f"theory 10*log10(11) = {processing_gain_db():.2f} dB",
            f"measured            = {measured:.2f} dB (FCC mandate: 10 dB)"]


def _e3_dsss_cck():
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="e3-quick", kind="link",
        factors={"phy": ["dsss-1", "dsss-2", "cck-5.5", "cck-11"]},
        fixed={"channel": "awgn", "snr_db": 6.0,
               "n_packets": 20, "payload_bytes": 50},
        base_seed=1,
    )
    result = run_campaign(spec)
    lines = ["PER at 6 dB SNR (AWGN), 20 x 50 B packets:"]
    for rec in result.records:
        lines.append(f"  {rec['params']['phy']:<9}: "
                     f"{rec['metrics']['per']:.2f}")
    lines.append("(full grid: python -m repro campaign run e3-dsss-cck)")
    return lines


def _e4_ofdm():
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="e4-quick", kind="link",
        factors={"phy": ["ofdm-6", "ofdm-24", "ofdm-54"]},
        fixed={"channel": "awgn", "snr_db": 20.0,
               "n_packets": 10, "payload_bytes": 60},
        base_seed=1,
    )
    result = run_campaign(spec)
    lines = ["PER at 20 dB SNR (AWGN), 10 x 60 B packets:"]
    for rec in result.records:
        rate = rec["params"]["phy"].split("-")[1]
        lines.append(f"  {rate:>2} Mbps: {rec['metrics']['per']:.2f}")
    lines.append("(full grid: python -m repro campaign run e4-ofdm)")
    return lines


def _e5_mimo_rate():
    from repro.standards.mcs import ht_data_rate_mbps

    return [f"{s} stream(s): {ht_data_rate_mbps(8 * s - 1, 40, 'short'):5.0f}"
            f" Mbps @ 40 MHz SGI" for s in (1, 2, 3, 4)]


def _e6_mimo_range():
    from repro.analysis.range import range_ratio_from_gain_db
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="e6-quick", kind="mimo-range",
        factors={"antennas": ["1x1", "2x2", "4x4"]},
        fixed={"n_draws": 1500, "outage": 0.01},
        base_seed=0,
    )
    result = run_campaign(spec)
    lines = []
    siso = None
    for rec in result.records:
        margin = rec["metrics"]["margin_db"]
        siso = margin if siso is None else siso
        ratio = float(range_ratio_from_gain_db(siso - margin))
        lines.append(f"{rec['params']['antennas']}: 1%-outage margin "
                     f"{margin:5.1f} dB -> range x{ratio:.2f}")
    lines.append("(full grid: python -m repro campaign run e6-mimo-range)")
    return lines


def _e7_ldpc():
    from repro.phy.ldpc import LdpcCode

    code = LdpcCode.from_standard(648, "1/2")
    rng = np.random.default_rng(0)
    lines = []
    for ebn0 in (1.5, 2.5, 3.5):
        sigma2 = 1.0 / (2 * code.rate * 10 ** (ebn0 / 10))
        errs = 0
        for _ in range(6):
            info = rng.integers(0, 2, code.k).astype(np.int8)
            cw = code.encode(info)
            y = (1 - 2.0 * cw) + rng.normal(0, np.sqrt(sigma2), code.n)
            dec, _, _ = code.decode(2 * y / sigma2)
            errs += int((code.extract_info(dec) != info).sum())
        lines.append(f"Eb/N0 {ebn0:.1f} dB: LDPC BER {errs / (6 * code.k):.4f}")
    return lines


def _e9_mesh():
    from repro.mesh.network import MeshNetwork
    from repro.mesh.topology import line_positions

    lines = []
    for span in (20.0, 40.0, 56.0):
        net = MeshNetwork(line_positions(3, span / 2))
        direct = net.link_rate_mbps(0, 2) or 0.0
        routed = net.end_to_end_throughput_mbps(0, 2)
        lines.append(f"{span:4.0f} m: direct {direct:5.1f} vs "
                     f"routed {routed:5.1f} Mbps")
    return lines


def _e11_coop():
    from repro.coop.outage import (df_outage_probability,
                                   direct_outage_probability)

    snrs = np.array([10.0, 20.0, 30.0])
    d = direct_outage_probability(snrs)
    c = df_outage_probability(snrs)
    return [f"SNR {s:.0f} dB: direct {a:.1e}, DF relay {b:.1e}"
            for s, a, b in zip(snrs, d, c)]


def _e12_papr():
    from repro.phy.dsss import DsssPhy
    from repro.phy.ofdm import OfdmPhy
    from repro.power.pa import pa_efficiency
    from repro.power.papr import papr_at_probability, papr_db
    from repro.utils.bits import random_bits

    rng = np.random.default_rng(0)
    msg = bytes(rng.integers(0, 256, 300, dtype=np.uint8).tolist())
    dsss = papr_db(DsssPhy(2).modulate(random_bits(1000, rng)))
    ofdm = papr_at_probability(OfdmPhy(54).transmit(msg), 0.01)
    return [
        f"DSSS PAPR {dsss:.1f} dB -> class-AB eta {pa_efficiency(dsss):.0%}",
        f"OFDM PAPR {ofdm:.1f} dB -> class-AB eta {pa_efficiency(ofdm):.0%}",
    ]


def _e13_chains():
    from repro.power.chains import MimoPowerModel

    return [f"{n}x{n} RX: {1000 * MimoPowerModel(n, n).rx_power_w(54.0 * n):.0f} mW"
            for n in (1, 2, 4)]


def _e15_mac():
    from repro.mac.bianchi import bianchi_saturation_throughput
    from repro.mac.dcf import DcfSimulator

    lines = []
    for n in (1, 10, 30):
        sim = DcfSimulator(n, "802.11a", 54, 1500, rng=0).run(0.2)
        model = bianchi_saturation_throughput(n, "802.11a", 54, 1500)
        lines.append(f"n={n:2d}: sim {sim.throughput_mbps:5.1f}, "
                     f"Bianchi {model:5.1f} Mbps")
    return lines


def _e17_trend():
    from repro.analysis.trends import predict_next_generation
    from repro.core.evolution import spectral_efficiency_series
    from repro.standards.registry import GENERATIONS

    _, effs = spectral_efficiency_series()
    shipped = GENERATIONS["802.11ac"].spectral_efficiency
    return [f"next generation extrapolates to "
            f"{predict_next_generation(effs):.0f} bps/Hz "
            f"(802.11ac shipped {shipped:.0f}; see E25)"]


def _e24_surrogate_mesh():
    from repro.mesh.coverage import coverage_result
    from repro.mesh.topology import random_positions
    from repro.surrogate import AbstractLink, build_surface

    # Precompute the PHY once: a small 802.11a base-rate surface...
    surface = build_surface(
        "e24-quick", ["ofdm-6"], snr_db=[-2.0, 0.0, 2.0, 4.0, 6.0, 10.0],
        payload_bytes=[60], n_packets=30, base_seed=18)
    link = AbstractLink(surface, rng=18)
    # ...then serve a 1000-station mesh from the table.
    positions = random_positions(1000, 1500.0, rng=18)
    result = coverage_result(positions, 1500.0, link=link,
                             max_per=0.1, n_samples=20000, rng=18)
    frac = result.n_events / result.n_trials
    return [
        f"surface: {surface.n_cells} cells, "
        f"{surface.total_trials} waveform packets (precomputed once)",
        "mesh   : 1000 stations over 1500 m x 1500 m, portal node 0",
        f"coverage (PER <= 0.1): {frac:.1%} "
        f"[{result.ci_low:.1%}, {result.ci_high:.1%}]",
        f"{result.n_trials} user placements answered from the table "
        "(timing: benchmarks/test_bench_surrogate.py)",
    ]


def _e25_extended_trend():
    from repro.analysis.trends import trend_departure
    from repro.core.evolution import (
        fivefold_law,
        format_evolution_table,
        spectral_efficiency_series,
    )

    names, effs = spectral_efficiency_series(extended=True)
    n_paper = names.index("802.11n") + 1
    departures, predicted = trend_departure(effs, n_paper)
    ratio_paper, _ = fivefold_law()
    ratio_ext, _ = fivefold_law(extended=True)
    lines = [format_evolution_table()]
    lines.append(
        f"paper-era fit (through 11n): {ratio_paper:.2f}x per generation"
    )
    lines.append(
        f"extended fit (through 11ax): {ratio_ext:.2f}x per generation"
    )
    for name, eff, pred, dep in zip(
        names[n_paper:], effs[n_paper:],
        predicted[n_paper:], departures[n_paper:],
    ):
        lines.append(
            f"{name}: fivefold law predicts {pred:.0f} bps/Hz, "
            f"shipped {eff:.1f} ({dep:.0%} of trend)"
        )
    lines.append("the paper's 5x law held exactly for the era it described")
    return lines


def _e26_mu_vs_su():
    import numpy as np

    from repro.phy.mimo.mu import mu_su_throughput

    rng = np.random.default_rng(26)
    n_tx, snr_db, n_drops = 8, 30.0, 40
    lines = [
        f"{n_tx}-antenna AP, 80 MHz VHT, {snr_db:.0f} dB total SNR, "
        f"{n_drops} Rayleigh drops:"
    ]
    for n_users in (2, 4, 8):
        mu = su = 0.0
        for _ in range(n_drops):
            h = (rng.normal(size=(n_users, n_tx))
                 + 1j * rng.normal(size=(n_users, n_tx))) / np.sqrt(2)
            res = mu_su_throughput(h, snr_db, bandwidth_mhz=80)
            mu += res["mu_mbps"]
            su += res["su_mbps"]
        lines.append(
            f"  {n_users} users: MU-MIMO {mu / n_drops:7.0f} Mbps vs "
            f"SU/TDMA {su / n_drops:6.0f} Mbps "
            f"({mu / max(su, 1e-12):.1f}x)"
        )
    lines.append("(waveform-level ZF validation: tests/test_mu_ofdma.py)")
    return lines


_REGISTRY = {
    "E1": ("evolution table (0.1 -> 15 bps/Hz)", _e1_evolution),
    "E2": ("DSSS processing gain", _e2_processing_gain),
    "E3": ("DSSS/CCK rate ladder", _e3_dsss_cck),
    "E4": ("802.11a OFDM waterfall points", _e4_ofdm),
    "E5": ("MIMO rate scaling to 600 Mbps", _e5_mimo_rate),
    "E6": ("MIMO diversity range extension", _e6_mimo_range),
    "E7": ("LDPC waterfall", _e7_ldpc),
    "E9": ("mesh multi-hop vs direct", _e9_mesh),
    "E11": ("cooperative diversity outage", _e11_coop),
    "E12": ("PAPR and PA efficiency", _e12_papr),
    "E13": ("MIMO chain power", _e13_chains),
    "E15": ("DCF vs Bianchi", _e15_mac),
    "E17": ("fivefold-law extrapolation", _e17_trend),
    "E24": ("1000-station mesh off a PER surface", _e24_surrogate_mesh),
    "E25": ("C6 trend extended through 802.11ax", _e25_extended_trend),
    "E26": ("MU-MIMO vs single-user TDMA downlink", _e26_mu_vs_su),
}


def list_experiments():
    """(id, description) pairs for every quick experiment."""
    return [(key, desc) for key, (desc, _) in _REGISTRY.items()]


def run_experiment(experiment_id):
    """Run one quick experiment; returns its printable lines."""
    key = experiment_id.upper()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(_REGISTRY)} (full versions live in benchmarks/)"
        )
    description, func = _REGISTRY[key]
    return [f"{key}: {description}", "-" * 40] + list(func())
