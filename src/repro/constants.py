"""Physical and 802.11 protocol constants used across the library.

Values follow the base 802.11-1999 standard and its a/b/g amendments, plus
the High Throughput (802.11n) parameters the paper anticipates.
"""

# -- physics ---------------------------------------------------------------

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum [m/s]."""

BOLTZMANN = 1.380_649e-23
"""Boltzmann constant [J/K]."""

ROOM_TEMPERATURE_K = 290.0
"""Reference noise temperature [K] used for thermal-noise floors."""

THERMAL_NOISE_DBM_PER_HZ = -173.977
"""kT at 290 K expressed in dBm/Hz."""

# -- carrier frequencies ---------------------------------------------------

BAND_2_4_GHZ = 2.412e9
"""Centre frequency of 2.4 GHz channel 1 [Hz]."""

BAND_5_GHZ = 5.18e9
"""Centre frequency of 5 GHz channel 36 [Hz]."""

# -- channelisation --------------------------------------------------------

CHANNEL_BANDWIDTH_HZ = 20e6
"""Nominal 802.11 channel bandwidth [Hz]."""

WIDE_CHANNEL_BANDWIDTH_HZ = 40e6
"""802.11n 40 MHz bonded channel bandwidth [Hz]."""

# -- DSSS / HR-DSSS PHY (802.11 / 802.11b) ----------------------------------

BARKER_SEQUENCE = (1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1)
"""The 11-chip Barker code used by the 802.11 DSSS PHY."""

DSSS_CHIP_RATE_HZ = 11e6
"""802.11 DSSS chip rate [chips/s]."""

FCC_PROCESSING_GAIN_DB = 10.0
"""Minimum processing gain mandated by the original FCC part-15 rules [dB]."""

# -- OFDM PHY (802.11a/g) ----------------------------------------------------

OFDM_FFT_SIZE = 64
OFDM_DATA_SUBCARRIERS = 48
OFDM_PILOT_SUBCARRIERS = 4
OFDM_CP_LENGTH = 16
OFDM_SYMBOL_SAMPLES = OFDM_FFT_SIZE + OFDM_CP_LENGTH
OFDM_SAMPLE_RATE_HZ = 20e6
OFDM_SYMBOL_DURATION_S = OFDM_SYMBOL_SAMPLES / OFDM_SAMPLE_RATE_HZ  # 4 us
OFDM_SUBCARRIER_SPACING_HZ = OFDM_SAMPLE_RATE_HZ / OFDM_FFT_SIZE  # 312.5 kHz

OFDM_PILOT_INDICES = (-21, -7, 7, 21)
"""Logical subcarrier indices carrying pilots in 802.11a."""

OFDM_PILOT_POLARITY = (1, 1, 1, -1)
"""First-symbol pilot values on the pilot subcarriers, in index order."""

# -- HT PHY (802.11n) --------------------------------------------------------

HT_MAX_SPATIAL_STREAMS = 4
HT_DATA_SUBCARRIERS_20MHZ = 52
HT_DATA_SUBCARRIERS_40MHZ = 108
HT_GI_LONG_S = 0.8e-6
HT_GI_SHORT_S = 0.4e-6

# -- MAC timing (per PHY generation) -----------------------------------------

SIFS_DSSS_S = 10e-6
SIFS_OFDM_S = 16e-6
SLOT_DSSS_S = 20e-6
SLOT_OFDM_S = 9e-6

CW_MIN_DSSS = 31
CW_MIN_OFDM = 15
CW_MAX = 1023

MAC_HEADER_BYTES = 24
"""Three-address data MAC header (no QoS field)."""

FCS_BYTES = 4
ACK_BYTES = 14
RTS_BYTES = 20
CTS_BYTES = 14
