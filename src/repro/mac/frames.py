"""MAC frame descriptors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constants import ACK_BYTES, CTS_BYTES, FCS_BYTES, MAC_HEADER_BYTES, RTS_BYTES
from repro.errors import ConfigurationError


class FrameType(enum.Enum):
    """The frame kinds the simulators exchange."""

    DATA = "data"
    ACK = "ack"
    RTS = "rts"
    CTS = "cts"
    BEACON = "beacon"


_FIXED_SIZES = {
    FrameType.ACK: ACK_BYTES,
    FrameType.RTS: RTS_BYTES,
    FrameType.CTS: CTS_BYTES,
}


@dataclass
class Frame:
    """One MAC frame in flight.

    ``payload_bytes`` applies to DATA/BEACON frames; control frames have
    fixed sizes.
    """

    frame_type: FrameType
    source: int
    destination: int
    payload_bytes: int = 0
    sequence: int = 0
    retries: int = 0
    created_at: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be >= 0")

    @property
    def total_bytes(self):
        """On-air MPDU size including header and FCS."""
        if self.frame_type in _FIXED_SIZES:
            return _FIXED_SIZES[self.frame_type]
        return MAC_HEADER_BYTES + self.payload_bytes + FCS_BYTES
