"""802.11 power-save mode (PSM) vs constantly-awake mode (CAM).

The paper closes on exactly this: "Wireless LAN protocols currently make
few concessions to issues of power management as compared to cellular air
interface standards." This model quantifies what legacy PSM buys and what
it costs in latency: a station dozes between beacons, wakes for every TIM
(traffic indication map), and stays awake to drain buffered downlink
packets.

Implemented as a discrete-event simulation on :class:`EventScheduler`
with a closed-form cross-check (:func:`psm_duty_cycle`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.events import EventScheduler
from repro.mac.timing import MacTiming
from repro.utils.rng import as_generator

BEACON_INTERVAL_S = 0.1024
"""The customary 100 TU beacon interval."""


@dataclass
class PsmResult:
    """Energy/latency outcome of one power-save simulation."""

    mode: str
    duration_s: float
    awake_s: float
    packets_delivered: int
    energy_j: float
    mean_latency_s: float

    @property
    def duty_cycle(self):
        """Fraction of time the radio is awake."""
        return self.awake_s / self.duration_s if self.duration_s else 0.0

    @property
    def average_power_w(self):
        """Mean power draw over the run."""
        return self.energy_j / self.duration_s if self.duration_s else 0.0

    def energy_per_bit_j(self, payload_bytes):
        """Delivered-energy efficiency."""
        bits = 8.0 * payload_bytes * self.packets_delivered
        return self.energy_j / bits if bits else float("inf")


class PowerSaveModel:
    """Downlink PSM/CAM energy simulation for one station.

    Parameters
    ----------
    awake_power_w : float
        Radio power while awake/receiving (2005-era client: ~0.9 W).
    doze_power_w : float
        Power while dozing (~50 mW with the radio down).
    rx_power_w : float or None
        Power while actively receiving a frame (defaults to awake power).
    beacon_interval_s : float
    beacon_duration_s : float
        Time awake to receive each beacon/TIM.
    standard, rate_mbps : PHY generation and downlink rate (for airtimes).
    """

    def __init__(self, awake_power_w=0.9, doze_power_w=0.05,
                 rx_power_w=None, beacon_interval_s=BEACON_INTERVAL_S,
                 beacon_duration_s=1e-3, standard="802.11b",
                 rate_mbps=11.0):
        if awake_power_w <= 0 or doze_power_w < 0:
            raise ConfigurationError("powers must be positive")
        if doze_power_w >= awake_power_w:
            raise ConfigurationError("doze power should be below awake power")
        self.awake_power_w = awake_power_w
        self.doze_power_w = doze_power_w
        self.rx_power_w = rx_power_w or awake_power_w
        self.beacon_interval_s = beacon_interval_s
        self.beacon_duration_s = beacon_duration_s
        self.timing = MacTiming.for_standard(standard)
        self.rate_mbps = rate_mbps

    def _packet_drain_time(self, payload_bytes):
        """Time awake to retrieve one buffered packet (PS-Poll + data + ACK)."""
        return (self.timing.control_airtime_s(20)  # PS-Poll
                + self.timing.sifs_s
                + self.timing.data_airtime_s(payload_bytes, self.rate_mbps)
                + self.timing.sifs_s
                + self.timing.control_airtime_s(14))

    def simulate(self, mode="psm", duration_s=10.0,
                 packet_rate_per_s=10.0, payload_bytes=500, rng=None):
        """Run the event-driven model.

        Parameters
        ----------
        mode : str
            "psm" (doze between beacons) or "cam" (always awake).
        packet_rate_per_s : float
            Poisson downlink arrival rate at the AP for this station.
        """
        if mode not in ("psm", "cam"):
            raise ConfigurationError(f"mode must be 'psm' or 'cam', got {mode!r}")
        rng = as_generator(rng)
        sched = EventScheduler()
        state = {
            "buffered": [],       # arrival times awaiting delivery
            "awake_s": 0.0,
            "rx_s": 0.0,
            "delivered": 0,
            "latencies": [],
        }
        drain_time = self._packet_drain_time(payload_bytes)

        def arrival():
            state["buffered"].append(sched.now)
            gap = rng.exponential(1.0 / packet_rate_per_s)
            if sched.now + gap < duration_s:
                sched.schedule_in(gap, arrival)
            if mode == "cam" and state["buffered"]:
                deliver_all()

        def deliver_all():
            for t_arr in state["buffered"]:
                state["latencies"].append(sched.now - t_arr)
                state["rx_s"] += drain_time
                state["delivered"] += 1
            state["buffered"].clear()

        def beacon():
            state["awake_s"] += self.beacon_duration_s
            if state["buffered"]:
                deliver_all()
            if sched.now + self.beacon_interval_s < duration_s:
                sched.schedule_in(self.beacon_interval_s, beacon)

        sched.schedule(rng.exponential(1.0 / packet_rate_per_s), arrival)
        if mode == "psm":
            sched.schedule(self.beacon_interval_s, beacon)
        sched.run(until=duration_s)

        if mode == "cam":
            awake = duration_s
            energy = (self.awake_power_w * (duration_s - state["rx_s"])
                      + self.rx_power_w * state["rx_s"])
        else:
            awake = state["awake_s"] + state["rx_s"]
            awake = min(awake, duration_s)
            energy = (self.awake_power_w * state["awake_s"]
                      + self.rx_power_w * state["rx_s"]
                      + self.doze_power_w * (duration_s - awake))
        return PsmResult(
            mode=mode,
            duration_s=duration_s,
            awake_s=awake,
            packets_delivered=state["delivered"],
            energy_j=energy,
            mean_latency_s=(float(np.mean(state["latencies"]))
                            if state["latencies"] else 0.0),
        )

    def psm_duty_cycle(self, packet_rate_per_s=10.0, payload_bytes=500):
        """Closed-form expected PSM duty cycle (cross-check for the DES)."""
        per_beacon = packet_rate_per_s * self.beacon_interval_s
        awake_per_interval = (self.beacon_duration_s
                              + per_beacon
                              * self._packet_drain_time(payload_bytes))
        return min(awake_per_interval / self.beacon_interval_s, 1.0)
