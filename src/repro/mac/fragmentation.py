"""MAC fragmentation: trading overhead for error resilience.

802.11's fragmentation threshold splits big MSDUs into fragments that are
individually acknowledged; a bit error only costs one fragment's
retransmission instead of the whole frame. The optimum fragment size
falls as the channel worsens — one of the few link-adaptation knobs the
original MAC offered, and a neat illustration of the overhead arithmetic
behind the throughput numbers in E15.
"""

from __future__ import annotations

from repro.analysis.per import per_from_ber
from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming


def fragment_sizes(msdu_bytes, threshold_bytes):
    """Fragment an MSDU at a threshold; returns the fragment payload list."""
    if msdu_bytes <= 0 or threshold_bytes <= 0:
        raise ConfigurationError("sizes must be positive")
    n_full = msdu_bytes // threshold_bytes
    sizes = [threshold_bytes] * n_full
    remainder = msdu_bytes - n_full * threshold_bytes
    if remainder:
        sizes.append(remainder)
    return sizes


def effective_throughput_mbps(msdu_bytes, threshold_bytes, ber,
                              standard="802.11a", rate_mbps=54.0,
                              max_retries=10):
    """Goodput of a fragmented MSDU over a link with bit error rate ``ber``.

    Each fragment is retransmitted until it succeeds (capped at
    ``max_retries`` expected attempts); the expected airtime of a fragment
    with success probability p is ``t / p`` (geometric retries).
    """
    timing = MacTiming.for_standard(standard)
    total_time = 0.0
    for size in fragment_sizes(msdu_bytes, threshold_bytes):
        mpdu_bits = 8 * (size + 28)  # header + FCS overhead per fragment
        p_ok = 1.0 - float(per_from_ber(ber, mpdu_bits))
        p_ok = max(p_ok, 1.0 / max_retries)
        t_frag = timing.success_duration_s(size, rate_mbps)
        total_time += t_frag / p_ok
    return 8.0 * msdu_bytes / total_time / 1e6


def optimal_fragment_size(msdu_bytes, ber, standard="802.11a",
                          rate_mbps=54.0, candidates=None):
    """Fragment threshold maximising goodput at the given BER.

    Returns
    -------
    (best_threshold, best_throughput_mbps)
    """
    if candidates is None:
        candidates = [64, 128, 256, 512, 1024, 1500, 2304]
    candidates = [c for c in candidates if c > 0]
    if not candidates:
        raise ConfigurationError("no candidate thresholds")
    best = max(
        ((c, effective_throughput_mbps(msdu_bytes, c, ber, standard,
                                       rate_mbps))
         for c in candidates),
        key=lambda pair: pair[1],
    )
    return best


def fragmentation_study(msdu_bytes=1500, standard="802.11a",
                        rate_mbps=54.0, bers=None):
    """Optimal fragment size across channel qualities.

    Returns rows of (ber, best_threshold, best_throughput, unfragmented
    throughput) — the crossover where fragmentation starts paying.
    """
    if bers is None:
        bers = [1e-7, 1e-6, 1e-5, 1e-4, 3e-4]
    rows = []
    for ber in bers:
        best_thr, best_tput = optimal_fragment_size(
            msdu_bytes, ber, standard, rate_mbps
        )
        whole = effective_throughput_mbps(msdu_bytes, msdu_bytes, ber,
                                          standard, rate_mbps)
        rows.append((ber, best_thr, best_tput, whole))
    return rows
