"""802.11g ERP protection: the price of dropping OFDM into 2.4 GHz.

The paper notes that "with additional regulatory changes, the same OFDM
technology was allowed into the 2.4 GHz band and was standardized as
802.11g". The catch: legacy 802.11b stations cannot *hear* OFDM frames,
so in mixed cells every OFDM transmission must be announced with a
DSSS-rate protection exchange (CTS-to-self, or RTS/CTS) that legacy
radios understand. The protection frames run at 1-11 Mbps and eat a large
slice of the airtime — which is why real-world 802.11g throughput
collapsed whenever one 802.11b client associated.
"""

from __future__ import annotations

from repro.constants import CTS_BYTES, RTS_BYTES
from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming


def protected_exchange_duration_s(payload_bytes, rate_mbps,
                                  mechanism="cts-to-self",
                                  protection_rate_mbps=11.0):
    """Duration of one protected OFDM data exchange in a mixed cell.

    ``mechanism`` is "none", "cts-to-self" (one DSSS-rate CTS) or
    "rts-cts" (a full DSSS-rate handshake).
    """
    if mechanism not in ("none", "cts-to-self", "rts-cts"):
        raise ConfigurationError(f"unknown mechanism {mechanism!r}")
    ofdm = MacTiming.for_standard("802.11g")
    legacy = MacTiming.for_standard("802.11b")
    total = ofdm.success_duration_s(payload_bytes, rate_mbps)
    if mechanism == "cts-to-self":
        total += legacy.control_airtime_s(
            CTS_BYTES, protection_rate_mbps) + ofdm.sifs_s
    elif mechanism == "rts-cts":
        total += (legacy.control_airtime_s(RTS_BYTES, protection_rate_mbps)
                  + legacy.control_airtime_s(CTS_BYTES, protection_rate_mbps)
                  + 2 * ofdm.sifs_s)
    return total


def protected_throughput_mbps(payload_bytes=1500, rate_mbps=54.0,
                              mechanism="cts-to-self",
                              protection_rate_mbps=11.0):
    """Single-station goodput of a protected 802.11g link."""
    t = protected_exchange_duration_s(payload_bytes, rate_mbps, mechanism,
                                      protection_rate_mbps)
    timing = MacTiming.for_standard("802.11g")
    t += timing.cw_min / 2.0 * timing.slot_s
    return 8.0 * payload_bytes / t / 1e6


def coexistence_study(payload_bytes=1500, rate_mbps=54.0):
    """The 802.11g coexistence table.

    Returns rows of (label, goodput_mbps) for a pure-g cell, CTS-to-self
    protection at 11 and 1 Mbps, and full RTS/CTS protection — plus the
    pure-802.11b baseline for perspective.
    """
    rows = [
        ("pure 802.11g (no protection)",
         protected_throughput_mbps(payload_bytes, rate_mbps, "none")),
        ("mixed cell, CTS-to-self @11 Mbps",
         protected_throughput_mbps(payload_bytes, rate_mbps,
                                   "cts-to-self", 11.0)),
        ("mixed cell, CTS-to-self @1 Mbps",
         protected_throughput_mbps(payload_bytes, rate_mbps,
                                   "cts-to-self", 1.0)),
        ("mixed cell, RTS/CTS @1 Mbps",
         protected_throughput_mbps(payload_bytes, rate_mbps,
                                   "rts-cts", 1.0)),
    ]
    legacy = MacTiming.for_standard("802.11b")
    t_b = (legacy.success_duration_s(payload_bytes, 11.0)
           + legacy.cw_min / 2.0 * legacy.slot_s)
    rows.append(("pure 802.11b @11 Mbps", 8.0 * payload_bytes / t_b / 1e6))
    return rows
