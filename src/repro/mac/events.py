"""A minimal discrete-event simulation kernel.

Events are (time, sequence, callback, args) tuples on a heap; the sequence
number breaks ties deterministically in insertion order. Used by the
power-save model and available for any time-driven simulation built on the
library.
"""

from __future__ import annotations

import heapq

from repro.errors import SimulationError


class EventScheduler:
    """Priority-queue event loop.

    Examples
    --------
    >>> sched = EventScheduler()
    >>> hits = []
    >>> sched.schedule(1.0, hits.append, "a")
    >>> sched.schedule(0.5, hits.append, "b")
    >>> sched.run()
    >>> hits
    ['b', 'a']
    """

    def __init__(self):
        self._queue = []
        self._sequence = 0
        self.now = 0.0
        self._running = False

    def schedule(self, at_time, callback, *args):
        """Schedule ``callback(*args)`` at absolute time ``at_time``."""
        if at_time < self.now:
            raise SimulationError(
                f"cannot schedule at {at_time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (float(at_time), self._sequence,
                                     callback, args))
        self._sequence += 1

    def schedule_in(self, delay, callback, *args):
        """Schedule ``callback(*args)`` after a relative ``delay``."""
        self.schedule(self.now + delay, callback, *args)

    def run(self, until=None, max_events=None):
        """Process events in time order.

        Parameters
        ----------
        until : float, optional
            Stop once the next event is beyond this time (the clock is
            left at ``until``).
        max_events : int, optional
            Safety cap on processed events.
        """
        processed = 0
        self._running = True
        while self._queue and self._running:
            if max_events is not None and processed >= max_events:
                break
            at_time, _, callback, args = self._queue[0]
            if until is not None and at_time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = at_time
            callback(*args)
            processed += 1
        self._running = False
        return processed

    def stop(self):
        """Stop the loop after the current event (call from a callback)."""
        self._running = False

    @property
    def pending(self):
        """Number of events still queued."""
        return len(self._queue)
