"""Hidden-terminal simulation: carrier sense with spatial limits.

The single-cell DCF simulator assumes everyone hears everyone. In real
deployments two stations can both reach the AP yet not hear each other —
the *hidden terminal* problem, the scenario RTS/CTS exists for (and a
preview of the coordination problems mesh networking multiplies).

The model: stations at positions transmit to a common AP. A station's
carrier sense only sees transmitters within ``carrier_sense_range_m``.
Transmissions overlap in time; a frame is lost when a hidden transmitter
overlaps it at the AP. With RTS/CTS, the CTS (heard by *everyone* in the
cell, since all stations hear the AP) reserves the medium, so only the
short RTS is vulnerable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming
from repro.utils.rng import as_generator


@dataclass
class HiddenResult:
    """Outcome of a hidden-terminal run."""

    n_stations: int
    duration_s: float
    attempts: int
    successes: int
    collisions: int
    hidden_pairs: int

    @property
    def success_ratio(self):
        """Fraction of attempts that were delivered."""
        return self.successes / self.attempts if self.attempts else 0.0

    def throughput_mbps(self, payload_bytes, _rate=None):
        """Delivered goodput."""
        return (8.0 * payload_bytes * self.successes
                / self.duration_s / 1e6 if self.duration_s else 0.0)


class HiddenTerminalSimulator:
    """Two-or-more stations around an AP with limited carrier sense.

    Parameters
    ----------
    positions : (N, 2) array
        Station positions; the AP sits at the origin.
    carrier_sense_range_m : float
        Maximum distance at which one station's transmission is audible to
        another.
    standard, rate_mbps, payload_bytes : PHY configuration.
    attempt_rate_per_s : float
        Each station starts a transmission attempt at this Poisson rate
        whenever it senses the medium idle.
    rts_cts : bool
    rng : seed or Generator
    """

    def __init__(self, positions, carrier_sense_range_m=80.0,
                 standard="802.11b", rate_mbps=11.0, payload_bytes=1000,
                 attempt_rate_per_s=100.0, rts_cts=False, rng=None):
        self.positions = np.asarray(positions, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ConfigurationError("positions must be (N, 2)")
        if attempt_rate_per_s <= 0:
            raise ConfigurationError("attempt rate must be positive")
        self.n = self.positions.shape[0]
        self.cs_range = float(carrier_sense_range_m)
        self.timing = MacTiming.for_standard(standard)
        self.rate_mbps = float(rate_mbps)
        self.payload_bytes = int(payload_bytes)
        self.attempt_rate = float(attempt_rate_per_s)
        self.rts_cts = bool(rts_cts)
        self.rng = as_generator(rng)
        deltas = self.positions[:, None, :] - self.positions[None, :, :]
        self._audible = np.sqrt((deltas ** 2).sum(axis=2)) <= self.cs_range

    def hidden_pair_count(self):
        """Number of station pairs that cannot hear each other."""
        hidden = ~self._audible
        np.fill_diagonal(hidden, False)
        return int(hidden.sum() // 2)

    def run(self, duration_s=1.0):
        """Simulate; returns a :class:`HiddenResult`.

        Time advances event by event: each station draws Poisson attempt
        times; an attempt defers (is re-drawn) if the station currently
        *hears* an ongoing transmission, and the vulnerable window of an
        in-flight frame is the whole frame (basic) or just the RTS
        handshake (RTS/CTS) — once the CTS is out, everyone defers.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        frame_s = self.timing.data_airtime_s(self.payload_bytes,
                                             self.rate_mbps)
        rts_s = self.timing.control_airtime_s(20)
        cts_s = self.timing.control_airtime_s(14)
        vulnerable_s = (rts_s + self.timing.sifs_s + cts_s if self.rts_cts
                        else frame_s)
        exchange_s = self.timing.success_duration_s(
            self.payload_bytes, self.rate_mbps, self.rts_cts
        )

        next_attempt = self.rng.exponential(
            1.0 / self.attempt_rate, size=self.n
        )
        # In-flight transmissions: (station, start, end, protected_from).
        # A frame is credited as a success only when it *ends* uncollided.
        ongoing = []
        attempts = successes = collisions = 0
        now = 0.0
        while True:
            station = int(np.argmin(next_attempt))
            now = float(next_attempt[station])
            if now >= duration_s:
                break
            finished = [tx for tx in ongoing if tx[2] <= now]
            successes += len(finished)
            ongoing = [tx for tx in ongoing if tx[2] > now]
            # Carrier sense: defer if an audible transmission is on air, or
            # if any protected (post-CTS) exchange is running.
            audible_busy = any(
                self._audible[station, other] for other, _, end, prot in
                ongoing
            )
            protected_busy = any(prot <= now < end
                                 for _, _, end, prot in ongoing)
            if audible_busy or protected_busy:
                busy_until = max(end for _, _, end, _ in ongoing)
                next_attempt[station] = busy_until + self.rng.exponential(
                    1.0 / self.attempt_rate
                )
                continue
            attempts += 1
            # A hidden transmitter still inside its vulnerable window when
            # we start destroys both frames.
            victims = [
                tx for tx in ongoing
                if not self._audible[station, tx[0]] and tx[3] > now
            ]
            end = now + exchange_s
            protected_from = now + vulnerable_s
            if victims:
                collisions += 1  # the new frame dies...
                for victim in victims:  # ...and so do the overlapped ones
                    ongoing.remove(victim)
                    collisions += 1
            else:
                ongoing.append((station, now, end, protected_from))
            next_attempt[station] = end + self.rng.exponential(
                1.0 / self.attempt_rate
            )
        successes += sum(1 for tx in ongoing if tx[2] <= duration_s)
        return HiddenResult(
            n_stations=self.n,
            duration_s=duration_s,
            attempts=attempts,
            successes=successes,
            collisions=collisions,
            hidden_pairs=self.hidden_pair_count(),
        )
