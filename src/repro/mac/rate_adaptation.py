"""Link rate adaptation over the generations' rate ladders.

Every rate ladder in the paper (1-2, 1-11, 6-54 Mbps, MCS 0-31) only pays
off if stations pick the right rung as the channel changes. Two classic
controllers are provided:

* :class:`ArfController` — Auto Rate Fallback (Kamerman & Monteban, the
  algorithm 2005-era cards actually shipped): step down after consecutive
  failures, probe upward after a success streak.
* :class:`SnrRateController` — genie-aided selection straight from the
  standard's SNR table with hysteresis; the upper bound ARF chases.

:func:`simulate_rate_adaptation` runs either controller over a fading SNR
trace using the logistic PER link abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.per import per_from_snr
from repro.errors import ConfigurationError
from repro.standards.registry import get_standard
from repro.utils.rng import as_generator


class ArfController:
    """Auto Rate Fallback.

    Parameters
    ----------
    standard : Standard or str
        Supplies the ordered rate ladder.
    up_after : int
        Consecutive successes before probing the next rate up.
    down_after : int
        Consecutive failures before stepping down.
    """

    def __init__(self, standard="802.11a", up_after=10, down_after=2):
        std = get_standard(standard) if isinstance(standard, str) else standard
        self.ladder = sorted(std.rates, key=lambda r: r.rate_mbps)
        if up_after < 1 or down_after < 1:
            raise ConfigurationError("streak lengths must be >= 1")
        self.up_after = up_after
        self.down_after = down_after
        self.index = 0
        self._successes = 0
        self._failures = 0

    @property
    def current_rate(self):
        """The rate entry currently in use."""
        return self.ladder[self.index]

    def choose_rate(self, snr_db=None):
        """Rate for the next packet (ARF ignores the SNR argument)."""
        return self.current_rate

    def record(self, success):
        """Feed back the outcome of the last transmission."""
        if success:
            self._successes += 1
            self._failures = 0
            if (self._successes >= self.up_after
                    and self.index < len(self.ladder) - 1):
                self.index += 1
                self._successes = 0
        else:
            self._failures += 1
            self._successes = 0
            if self._failures >= self.down_after and self.index > 0:
                self.index -= 1
                self._failures = 0


class SnrRateController:
    """Genie-aided SNR-threshold rate selection with hysteresis."""

    def __init__(self, standard="802.11a", margin_db=1.0):
        std = get_standard(standard) if isinstance(standard, str) else standard
        self.standard = std
        self.ladder = sorted(std.rates, key=lambda r: r.rate_mbps)
        self.margin_db = margin_db
        self._last = self.ladder[0]

    @property
    def current_rate(self):
        """The most recently chosen rate entry."""
        return self._last

    def choose_rate(self, snr_db):
        """Highest rate whose threshold (plus margin) the SNR clears."""
        usable = [r for r in self.ladder
                  if r.required_snr_db + self.margin_db <= snr_db]
        self._last = usable[-1] if usable else self.ladder[0]
        return self._last

    def record(self, success):
        """SNR selection is open loop; outcomes are ignored."""


@dataclass
class AdaptationResult:
    """Outcome of a rate-adaptation run."""

    packets: int
    successes: int
    throughput_mbps: float
    mean_rate_mbps: float
    rate_switches: int

    @property
    def success_ratio(self):
        """Fraction of packets delivered."""
        return self.successes / self.packets if self.packets else 0.0


def fading_snr_trace(mean_snr_db, n_steps, doppler_hz=5.0,
                     packet_rate_hz=100.0, rng=None):
    """Per-packet SNR trace: mean SNR plus a Jakes-correlated Rayleigh fade."""
    from repro.channel.fading import jakes_process

    rng = as_generator(rng)
    fade = jakes_process(n_steps, doppler_hz, packet_rate_hz, rng=rng)
    gain_db = 10.0 * np.log10(np.maximum(np.abs(fade) ** 2, 1e-6))
    return mean_snr_db + gain_db


def simulate_rate_adaptation(controller, snr_trace_db, payload_bits=8000,
                             rng=None, link=None):
    """Run a controller over a per-packet SNR trace (saturated sender).

    Each step transmits one packet at the controller's chosen rate; the
    success probability comes from the logistic PER abstraction around the
    rate's required SNR. Throughput is airtime based — delivered payload
    bits over the channel time consumed — so slow rates pay their real
    cost and the result is directly comparable to the PHY rates.

    ``link`` replaces the logistic abstraction with a measured PER
    oracle — an :class:`~repro.surrogate.AbstractLink` over a surface
    whose phys cover the controller's ladder: each packet's success
    probability becomes ``link.per_for_rate(rate, snr)``, so the
    controller is exercised against the PHY the paper actually
    simulates instead of a smooth stand-in.
    """
    rng = as_generator(rng)
    snr_trace_db = np.asarray(snr_trace_db, dtype=float).ravel()
    if snr_trace_db.size == 0:
        raise ConfigurationError("empty SNR trace")
    successes = 0
    switches = 0
    rate_sum = 0.0
    airtime_s = 0.0
    last_rate = None
    for snr in snr_trace_db:
        entry = controller.choose_rate(snr)
        if last_rate is not None and entry.rate_mbps != last_rate:
            switches += 1
        last_rate = entry.rate_mbps
        rate_sum += entry.rate_mbps
        airtime_s += payload_bits / (entry.rate_mbps * 1e6)
        if link is not None:
            per = float(link.per_for_rate(entry.rate_mbps, snr))
        else:
            per = float(per_from_snr(snr, entry.required_snr_db))
        success = bool(rng.random() > per)
        controller.record(success)
        successes += success
    throughput = successes * payload_bits / airtime_s / 1e6
    return AdaptationResult(
        packets=snr_trace_db.size,
        successes=successes,
        throughput_mbps=throughput,
        mean_rate_mbps=rate_sum / snr_trace_db.size,
        rate_switches=switches,
    )
