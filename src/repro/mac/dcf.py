"""Event-driven DCF (CSMA/CA with binary exponential backoff).

The simulator advances in contention "virtual slots": stations hold
backoff counters; the smallest counter fires first; equal counters
collide. Successful exchanges and collisions freeze everyone else's
countdown for the exchange duration, exactly as carrier sense dictates.
This is the canonical model Bianchi's analysis describes, so the two are
directly comparable (benchmark E15).

Supports saturated or Poisson sources, RTS/CTS, retry limits and
per-station fairness statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming
from repro.mac.traffic import PoissonSource, SaturatedSource
from repro.utils.rng import as_generator


@dataclass
class DcfResult:
    """Aggregate and per-station outcome of a DCF run."""

    n_stations: int
    duration_s: float
    payload_bytes: int
    rate_mbps: float
    successes: int
    collisions: int
    drops: int
    per_station_successes: list
    delays_s: list = field(default_factory=list)
    #: Per-station transmission attempts that ended in a collision. One
    #: collision *event* involves >= 2 attempts, so this exceeds
    #: ``collisions``; legacy results (built without it) carry 0.
    collision_attempts: int = 0

    @property
    def throughput_mbps(self):
        """Aggregate MAC goodput in Mbps."""
        bits = 8.0 * self.payload_bytes * self.successes
        return bits / self.duration_s / 1e6 if self.duration_s > 0 else 0.0

    @property
    def collision_probability(self):
        """Fraction of per-station transmission attempts that collided.

        This is Bianchi's conditional collision probability p — the
        chance that *a station's* transmission meets another — so the
        denominator counts station attempts, not channel events.
        Counting each collision event once (the old
        ``successes + collisions``) undercounts the colliding attempts
        and biases the estimate low, increasingly so at high station
        counts where 3+-way collisions are common. For legacy results
        without the per-attempt count, ``2 * collisions`` is the best
        available reconstruction (every collision involves at least two
        attempts).
        """
        colliding = self.collision_attempts if self.collision_attempts \
            else 2 * self.collisions
        attempts = self.successes + colliding
        return colliding / attempts if attempts else 0.0

    @property
    def efficiency(self):
        """Goodput as a fraction of the PHY rate."""
        return self.throughput_mbps / self.rate_mbps

    @property
    def jain_fairness(self):
        """Jain's fairness index over per-station success counts."""
        x = np.asarray(self.per_station_successes, dtype=float)
        if x.sum() == 0:
            return 1.0
        return float(x.sum() ** 2 / (x.size * (x ** 2).sum()))

    @property
    def mean_delay_s(self):
        """Mean head-of-line access delay of successful transmissions."""
        return float(np.mean(self.delays_s)) if self.delays_s else 0.0

    def per_station_throughput_mbps(self):
        """Each station's delivered goodput."""
        if self.duration_s <= 0:
            return [0.0] * self.n_stations
        return [8.0 * self.payload_bytes * s / self.duration_s / 1e6
                for s in self.per_station_successes]


class _Station:
    def __init__(self, index, source, cw_min, cw_max, rng):
        self.index = index
        self.source = source
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.rng = rng
        self.cw = cw_min
        self.retries = 0
        self.backoff = None
        self.hol_since = None  # head-of-line packet age start

    def ensure_backoff(self, now):
        """Draw a fresh backoff if idle with traffic pending."""
        if self.backoff is None and self.source.has_packet(now):
            self.backoff = int(self.rng.integers(0, self.cw + 1))
            if self.hol_since is None:
                self.hol_since = now

    def on_success(self, now):
        self.cw = self.cw_min
        self.retries = 0
        self.backoff = None
        delay = now - self.hol_since if self.hol_since is not None else 0.0
        self.hol_since = None
        self.source.next_payload(now)
        return delay

    def on_collision(self, max_retries):
        """Double CW; returns True if the packet must be dropped."""
        self.retries += 1
        self.cw = min(2 * (self.cw + 1) - 1, self.cw_max)
        self.backoff = None
        if self.retries > max_retries:
            self.cw = self.cw_min
            self.retries = 0
            self.hol_since = None
            return True
        return False


class DcfSimulator:
    """Single-collision-domain DCF simulator.

    Parameters
    ----------
    n_stations : int
    standard : str or Standard
        Which generation's timing to use (e.g. "802.11b", "802.11a").
    rate_mbps : float or sequence of float
        Data rate for DATA frames; a sequence gives each station its own
        rate (the multirate "performance anomaly" configuration — one
        distant 6 Mbps laptop slows the whole cell).
    payload_bytes : int
    rts_cts : bool
    max_retries : int
    offered_load_mbps : float or None
        Per-station offered load; None = saturated.
    rng : seed or Generator

    Examples
    --------
    >>> sim = DcfSimulator(5, "802.11a", 54, payload_bytes=1500, rng=1)
    >>> result = sim.run(duration_s=0.5)
    >>> 0 < result.throughput_mbps < 54
    True
    """

    def __init__(self, n_stations, standard="802.11a", rate_mbps=54.0,
                 payload_bytes=1500, rts_cts=False, max_retries=7,
                 offered_load_mbps=None, rng=None):
        if n_stations < 1:
            raise ConfigurationError("need at least one station")
        self.n = int(n_stations)
        self.timing = MacTiming.for_standard(standard)
        rates = np.atleast_1d(np.asarray(rate_mbps, dtype=float))
        if rates.size == 1:
            rates = np.full(self.n, rates[0])
        if rates.size != self.n:
            raise ConfigurationError(
                f"got {rates.size} rates for {self.n} stations"
            )
        self.station_rates = rates
        self.rate_mbps = float(rates.mean())
        self.payload_bytes = int(payload_bytes)
        self.rts_cts = bool(rts_cts)
        self.max_retries = int(max_retries)
        self.rng = as_generator(rng)
        self.stations = []
        for i in range(self.n):
            if offered_load_mbps is None:
                source = SaturatedSource(self.payload_bytes)
            else:
                pkt_rate = offered_load_mbps * 1e6 / (8.0 * self.payload_bytes)
                source = PoissonSource(pkt_rate, self.payload_bytes,
                                       rng=self.rng)
            self.stations.append(
                _Station(i, source, self.timing.cw_min, self.timing.cw_max,
                         self.rng)
            )
        self._t_success = [
            self.timing.success_duration_s(self.payload_bytes, r,
                                           self.rts_cts)
            for r in rates
        ]
        self._t_collision = [
            self.timing.collision_duration_s(self.payload_bytes, r,
                                             self.rts_cts)
            for r in rates
        ]

    def run(self, duration_s=1.0):
        """Simulate ``duration_s`` of channel time."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        now = 0.0
        successes = 0
        collisions = 0
        collision_attempts = 0
        drops = 0
        per_station = [0] * self.n
        delays = []
        slot = self.timing.slot_s

        while now < duration_s:
            for st in self.stations:
                st.ensure_backoff(now)
            active = [st for st in self.stations if st.backoff is not None]
            if not active:
                # Idle: jump to the next Poisson arrival (or end).
                next_times = [
                    st.source.next_arrival_time(now)
                    for st in self.stations
                    if isinstance(st.source, PoissonSource)
                ]
                now = min(next_times) if next_times else duration_s
                continue
            min_backoff = min(st.backoff for st in active)
            now += min_backoff * slot
            transmitters = [st for st in active if st.backoff == min_backoff]
            for st in active:
                st.backoff -= min_backoff
            if len(transmitters) == 1:
                st = transmitters[0]
                delays.append(st.on_success(now))
                per_station[st.index] += 1
                successes += 1
                now += self._t_success[st.index]
            else:
                collisions += 1
                collision_attempts += len(transmitters)
                for st in transmitters:
                    if st.on_collision(self.max_retries):
                        drops += 1
                # The channel stays busy for the longest colliding frame.
                now += max(self._t_collision[st.index]
                           for st in transmitters)
            # Remaining stations resume their countdown after the busy
            # period (carrier sense), modelled by not advancing backoffs.

        return DcfResult(
            n_stations=self.n,
            duration_s=now,
            payload_bytes=self.payload_bytes,
            rate_mbps=self.rate_mbps,
            successes=successes,
            collisions=collisions,
            drops=drops,
            per_station_successes=per_station,
            delays_s=delays,
            collision_attempts=collision_attempts,
        )
