"""Frame aggregation: why 600 Mbps needed a new MAC.

Without aggregation every MPDU pays the full preamble + IFS + backoff +
ACK tax, so MAC goodput *saturates* as the PHY rate grows — at infinite
PHY rate the 802.11a MAC still cannot exceed ~50 Mbps with 1500-byte
frames. 802.11n's A-MPDU aggregation amortises the overhead over many
MPDUs answered by one Block ACK, which is what lets the paper's 600 Mbps
PHY become user throughput.
"""

from __future__ import annotations

from repro.constants import ACK_BYTES
from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming

BLOCK_ACK_BYTES = 32
MPDU_DELIMITER_BYTES = 4


def single_frame_efficiency(rate_mbps, payload_bytes=1500,
                            standard="802.11a"):
    """MAC goodput (Mbps) of classic one-MPDU-per-ACK operation."""
    timing = MacTiming.for_standard(standard)
    t = timing.success_duration_s(payload_bytes, rate_mbps)
    t += timing.cw_min / 2.0 * timing.slot_s  # mean backoff
    return 8.0 * payload_bytes / t / 1e6


def throughput_ceiling_mbps(payload_bytes=1500, standard="802.11a"):
    """Limit of single-frame goodput as the PHY rate goes to infinity.

    At infinite rate the payload is free; the preamble, IFS, ACK and
    backoff remain — the famous MAC throughput ceiling.
    """
    timing = MacTiming.for_standard(standard)
    overhead = (timing.preamble_s  # data PPDU preamble, payload time -> 0
                + timing.sifs_s
                + timing.control_airtime_s(ACK_BYTES)
                + timing.difs_s
                + timing.cw_min / 2.0 * timing.slot_s)
    if standard in ("802.11a", "802.11g", "802.11n"):
        overhead += 4e-6  # the SIGNAL/first symbol never vanishes
    return 8.0 * payload_bytes / overhead / 1e6


def ampdu_efficiency(rate_mbps, n_mpdus, payload_bytes=1500,
                     standard="802.11a", max_ampdu_bytes=65535):
    """MAC goodput with ``n_mpdus`` aggregated under one Block ACK."""
    if n_mpdus < 1:
        raise ConfigurationError("need at least one MPDU")
    timing = MacTiming.for_standard(standard)
    total_payload = n_mpdus * payload_bytes
    ampdu_bytes = n_mpdus * (payload_bytes + MPDU_DELIMITER_BYTES + 28)
    if ampdu_bytes > max_ampdu_bytes:
        raise ConfigurationError(
            f"A-MPDU of {ampdu_bytes} B exceeds the {max_ampdu_bytes} B cap"
        )
    t = (timing.data_airtime_s(ampdu_bytes - 28, rate_mbps)
         + timing.sifs_s
         + timing.control_airtime_s(BLOCK_ACK_BYTES)
         + timing.difs_s
         + timing.cw_min / 2.0 * timing.slot_s)
    return 8.0 * total_payload / t / 1e6


def aggregation_study(rates_mbps=None, payload_bytes=1500,
                      standard="802.11a"):
    """Single-frame vs aggregated goodput across PHY rates.

    Returns rows of (phy_rate, single_frame, ampdu_8, ampdu_32,
    efficiency_single) showing the ceiling and its cure.
    """
    if rates_mbps is None:
        rates_mbps = [54.0, 130.0, 300.0, 600.0]
    rows = []
    for rate in rates_mbps:
        single = single_frame_efficiency(rate, payload_bytes, standard)
        agg8 = ampdu_efficiency(rate, 8, payload_bytes, standard)
        agg32 = ampdu_efficiency(rate, 32, payload_bytes, standard)
        rows.append((rate, single, agg8, agg32, single / rate))
    return rows
