"""MAC/PHY timing: interframe spaces, slots, and frame airtimes.

Airtime formulas follow each generation's PLCP rules: long-preamble
DSSS/CCK (192 us header then payload at the data rate) and OFDM (20 us
preamble+SIGNAL then 4 us symbols of N_DBPS bits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ACK_BYTES, CTS_BYTES, FCS_BYTES, MAC_HEADER_BYTES, RTS_BYTES
from repro.errors import ConfigurationError
from repro.standards.registry import Standard, get_standard

_OFDM_NDBPS = {6: 24, 9: 36, 12: 48, 18: 72, 24: 96, 36: 144, 48: 192, 54: 216}


@dataclass(frozen=True)
class MacTiming:
    """Timing parameters for one PHY generation.

    Build via :meth:`for_standard`; durations are in seconds.
    """

    phy_type: str
    slot_s: float
    sifs_s: float
    cw_min: int
    cw_max: int
    preamble_s: float
    basic_rate_mbps: float

    @classmethod
    def for_standard(cls, standard):
        """Timing for a :class:`Standard` or a standard name."""
        if isinstance(standard, str):
            standard = get_standard(standard)
        if not isinstance(standard, Standard):
            raise ConfigurationError("expected a Standard or its name")
        basic = min(r.rate_mbps for r in standard.rates)
        return cls(
            phy_type=standard.phy_type,
            slot_s=standard.slot_time_s,
            sifs_s=standard.sifs_s,
            cw_min=standard.cw_min,
            cw_max=1023,
            preamble_s=standard.preamble_s,
            basic_rate_mbps=basic,
        )

    @property
    def difs_s(self):
        """DIFS = SIFS + 2 slots."""
        return self.sifs_s + 2.0 * self.slot_s

    @property
    def eifs_s(self):
        """EIFS = SIFS + ACK-at-basic-rate + DIFS."""
        return self.sifs_s + self.control_airtime_s(ACK_BYTES) + self.difs_s

    # -- airtimes ----------------------------------------------------------

    def data_airtime_s(self, payload_bytes, rate_mbps):
        """Airtime of a data MPDU (MAC header + payload + FCS).

        OFDM PHYs round up to whole 4 us symbols; DSSS/CCK PHYs transmit
        the long PLCP preamble then the MPDU at the data rate.
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload must be >= 0 bytes")
        mpdu_bits = 8 * (MAC_HEADER_BYTES + payload_bytes + FCS_BYTES)
        return self._ppdu_airtime_s(mpdu_bits, rate_mbps)

    def control_airtime_s(self, frame_bytes, rate_mbps=None):
        """Airtime of a control frame (ACK/RTS/CTS) at the basic rate."""
        rate = rate_mbps or self.basic_rate_mbps
        return self._ppdu_airtime_s(8 * frame_bytes, rate)

    def _ppdu_airtime_s(self, n_bits, rate_mbps):
        if rate_mbps <= 0:
            raise ConfigurationError("rate must be positive")
        if self.phy_type in ("OFDM", "MIMO-OFDM"):
            ndbps = _OFDM_NDBPS.get(int(rate_mbps), None)
            if ndbps is None:
                # HT or non-tabulated rate: bits per 4 us symbol.
                ndbps = rate_mbps * 4.0
            n_sym = int(np.ceil((16 + n_bits + 6) / ndbps))
            return self.preamble_s + n_sym * 4e-6
        return self.preamble_s + n_bits / (rate_mbps * 1e6)

    # -- exchange durations ---------------------------------------------------

    def success_duration_s(self, payload_bytes, rate_mbps, rts_cts=False):
        """Busy time of one successful exchange, including trailing DIFS."""
        t = (self.data_airtime_s(payload_bytes, rate_mbps)
             + self.sifs_s + self.control_airtime_s(ACK_BYTES) + self.difs_s)
        if rts_cts:
            t += (self.control_airtime_s(RTS_BYTES) + self.sifs_s
                  + self.control_airtime_s(CTS_BYTES) + self.sifs_s)
        return t

    def collision_duration_s(self, payload_bytes, rate_mbps, rts_cts=False):
        """Busy time wasted by a collision (EIFS recovery)."""
        if rts_cts:
            return self.control_airtime_s(RTS_BYTES) + self.eifs_s
        return self.data_airtime_s(payload_bytes, rate_mbps) + self.eifs_s

    def overhead_breakdown(self, payload_bytes, rate_mbps):
        """Where one successful exchange's airtime goes.

        Returns a dict of fractions (summing to 1): ``payload`` (the user
        bits at the data rate), ``preamble`` (PLCP), ``headers`` (MAC
        header+FCS at the data rate), ``ack`` (SIFS + ACK) and ``ifs``
        (DIFS + mean backoff at CWmin/2). This is the arithmetic behind
        "54 Mbps sells, ~30 Mbps delivers".
        """
        payload_s = 8.0 * payload_bytes / (rate_mbps * 1e6)
        data_s = self.data_airtime_s(payload_bytes, rate_mbps)
        preamble_s = self.preamble_s
        header_s = max(data_s - preamble_s - payload_s, 0.0)
        ack_s = self.sifs_s + self.control_airtime_s(ACK_BYTES)
        ifs_s = self.difs_s + self.cw_min / 2.0 * self.slot_s
        total = data_s + ack_s + ifs_s
        return {
            "payload": payload_s / total,
            "preamble": preamble_s / total,
            "headers": header_s / total,
            "ack": ack_s / total,
            "ifs": ifs_s / total,
        }
