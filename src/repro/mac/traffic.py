"""Traffic sources for MAC simulations."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


class SaturatedSource:
    """Always has a packet ready — Bianchi's saturation assumption."""

    def __init__(self, payload_bytes=1500):
        if payload_bytes <= 0:
            raise ConfigurationError("payload must be positive")
        self.payload_bytes = payload_bytes

    def has_packet(self, now):
        """A saturated queue is never empty."""
        return True

    def next_payload(self, now):
        """Pop the head-of-line packet size."""
        return self.payload_bytes


class PoissonSource:
    """Poisson arrivals at a fixed packet size.

    Maintains an arrival backlog so the MAC can ask "is a packet waiting at
    time t?" without global coordination.
    """

    def __init__(self, rate_pkts_per_s, payload_bytes=1500, rng=None):
        if rate_pkts_per_s <= 0 or payload_bytes <= 0:
            raise ConfigurationError("rate and payload must be positive")
        self.rate = float(rate_pkts_per_s)
        self.payload_bytes = payload_bytes
        self.rng = as_generator(rng)
        self._next_arrival = self._draw()
        self.backlog = 0

    def _draw(self):
        return self.rng.exponential(1.0 / self.rate)

    def _advance(self, now):
        while self._next_arrival <= now:
            self.backlog += 1
            self._next_arrival += self._draw()

    def has_packet(self, now):
        """True if at least one arrival happened by ``now``."""
        self._advance(now)
        return self.backlog > 0

    def next_payload(self, now):
        """Pop one queued packet (call only after has_packet is True)."""
        self._advance(now)
        if self.backlog <= 0:
            raise ConfigurationError("no packet queued at this time")
        self.backlog -= 1
        return self.payload_bytes

    def next_arrival_time(self, now):
        """Time of the next future arrival (for idle fast-forwarding)."""
        self._advance(now)
        return self._next_arrival
