"""Bianchi's analytical model of DCF saturation throughput.

G. Bianchi, "Performance Analysis of the IEEE 802.11 Distributed
Coordination Function", JSAC 2000. The per-station transmit probability
tau and conditional collision probability p satisfy the fixed point

    tau = 2 (1 - 2p) / ((1 - 2p)(W + 1) + p W (1 - (2p)^m))
    p   = 1 - (1 - tau)^(n-1)

with W = CWmin + 1 and m backoff stages. Saturation throughput follows
from the slot-type decomposition. Used to validate the DCF simulator in
benchmark E15.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming


def bianchi_tau(n_stations, cw_min=15, m_stages=6):
    """Solve the Bianchi fixed point; returns (tau, p)."""
    if n_stations < 1:
        raise ConfigurationError("need at least one station")
    w = cw_min + 1

    def tau_of_p(p):
        if p >= 0.5 - 1e-12:
            # Degenerate branch of the closed form; evaluate the limit-safe
            # general expression instead.
            stages = np.arange(m_stages + 1)
            expected_w = (1 - p) * np.sum(
                (p ** stages) * (np.minimum(w * 2.0 ** stages, 1024) + 1)
            ) / (1 - p ** (m_stages + 1)) if p < 1 else 1024 + 1
            return 2.0 / (expected_w + 1)
        return (2.0 * (1 - 2 * p)
                / ((1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m_stages)))

    if n_stations == 1:
        return tau_of_p(0.0), 0.0

    def fixed_point(p):
        tau = tau_of_p(p)
        return p - (1.0 - (1.0 - tau) ** (n_stations - 1))

    p_star = brentq(fixed_point, 1e-12, 1 - 1e-9)
    return tau_of_p(p_star), p_star


def bianchi_saturation_throughput(n_stations, standard="802.11a",
                                  rate_mbps=54.0, payload_bytes=1500,
                                  rts_cts=False, m_stages=6):
    """Saturation goodput (Mbps) predicted by the Bianchi model."""
    timing = MacTiming.for_standard(standard)
    tau, _ = bianchi_tau(n_stations, cw_min=timing.cw_min, m_stages=m_stages)
    n = n_stations
    p_tr = 1.0 - (1.0 - tau) ** n
    p_s = n * tau * (1.0 - tau) ** (n - 1) / p_tr if p_tr > 0 else 0.0
    t_s = timing.success_duration_s(payload_bytes, rate_mbps, rts_cts)
    t_c = timing.collision_duration_s(payload_bytes, rate_mbps, rts_cts)
    sigma = timing.slot_s
    payload_time = 8.0 * payload_bytes  # bits
    denom = ((1.0 - p_tr) * sigma + p_tr * p_s * t_s
             + p_tr * (1.0 - p_s) * t_c)
    return p_tr * p_s * payload_time / denom / 1e6
