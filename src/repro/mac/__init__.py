"""802.11 MAC layer: DCF contention, analytical models, power save.

The MAC is where protocol overhead eats PHY rate (why 54 Mbps yields
~30 Mbps of goodput) and where the paper's power-management critique
lives. Contents:

events
    A generic discrete-event kernel (heapq-based).
timing
    Per-generation MAC/PHY timing: slots, IFS, airtimes.
frames
    Frame descriptors and sizes.
traffic
    Saturated and Poisson traffic sources.
dcf
    Event-driven CSMA/CA with binary exponential backoff, optional
    RTS/CTS, per-station statistics.
bianchi
    Bianchi's analytical saturation-throughput model (validation yardstick
    for the DCF simulator).
powersave
    802.11 power-save mode (PSM) vs constantly-awake (CAM) energy model.
rate_adaptation
    ARF and SNR-threshold rate selection over the generations' ladders.
"""

from repro.mac.bianchi import bianchi_saturation_throughput, bianchi_tau
from repro.mac.dcf import DcfResult, DcfSimulator
from repro.mac.events import EventScheduler
from repro.mac.frames import Frame, FrameType
from repro.mac.hidden import HiddenTerminalSimulator
from repro.mac.powersave import PowerSaveModel, PsmResult
from repro.mac.rate_adaptation import (
    ArfController,
    SnrRateController,
    simulate_rate_adaptation,
)
from repro.mac.timing import MacTiming
from repro.mac.traffic import PoissonSource, SaturatedSource

__all__ = [
    "ArfController",
    "SnrRateController",
    "simulate_rate_adaptation",
    "bianchi_saturation_throughput",
    "bianchi_tau",
    "DcfResult",
    "DcfSimulator",
    "EventScheduler",
    "Frame",
    "FrameType",
    "HiddenTerminalSimulator",
    "PowerSaveModel",
    "PsmResult",
    "MacTiming",
    "PoissonSource",
    "SaturatedSource",
]
