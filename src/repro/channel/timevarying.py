"""Time-varying multipath: mobility inside a packet.

The static tapped delay line assumes the channel holds still between the
training field and the last data symbol. With motion it does not: each tap
evolves as a Jakes process, the preamble-based channel estimate goes stale
and long packets start failing — a real constraint on preamble-trained
OFDM (and one of the reasons pilot tracking exists).
"""

from __future__ import annotations

import numpy as np

from repro.channel.fading import jakes_process
from repro.channel.multipath import exponential_pdp
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


class TimeVaryingChannel:
    """MIMO tapped delay line whose taps move (Jakes Doppler).

    Parameters
    ----------
    n_rx, n_tx : int
    rms_delay_spread_s : float
    sample_rate_hz : float
    doppler_hz : float
        Maximum Doppler shift (v/c * f_c); 0 reduces to the static TDL.
    rng : seed or Generator

    Examples
    --------
    >>> ch = TimeVaryingChannel(1, 1, 50e-9, 20e6, doppler_hz=200.0, rng=0)
    >>> y = ch.apply(tx_wave)          # tx_wave: (n_tx, N) -> (n_rx, N)
    """

    def __init__(self, n_rx, n_tx, rms_delay_spread_s, sample_rate_hz,
                 doppler_hz=0.0, rng=None):
        if n_rx < 1 or n_tx < 1:
            raise ConfigurationError("antenna counts must be >= 1")
        if doppler_hz < 0:
            raise ConfigurationError("doppler must be >= 0")
        self.n_rx = int(n_rx)
        self.n_tx = int(n_tx)
        self.sample_rate = float(sample_rate_hz)
        self.doppler_hz = float(doppler_hz)
        self.pdp = exponential_pdp(rms_delay_spread_s, 1.0 / sample_rate_hz)
        self.rng = as_generator(rng)

    @property
    def n_taps(self):
        """Number of delay taps."""
        return self.pdp.size

    def coherence_time_s(self):
        """Clarke's rule-of-thumb coherence time 0.423 / f_d (inf if static)."""
        if self.doppler_hz == 0:
            return float("inf")
        return 0.423 / self.doppler_hz

    def tap_processes(self, n_samples):
        """Draw (n_rx, n_tx, n_taps, n_samples) evolving tap gains."""
        gains = np.empty((self.n_rx, self.n_tx, self.n_taps, n_samples),
                         dtype=np.complex128)
        for r in range(self.n_rx):
            for t in range(self.n_tx):
                for l in range(self.n_taps):
                    gains[r, t, l] = np.sqrt(self.pdp[l]) * jakes_process(
                        n_samples, self.doppler_hz, self.sample_rate,
                        rng=self.rng,
                    )
        return gains

    def apply(self, signal, gains=None):
        """Pass an (n_tx, N) waveform through the moving channel.

        Returns (n_rx, N); supply ``gains`` (from :meth:`tap_processes`)
        to reuse one realisation.
        """
        signal = np.atleast_2d(np.asarray(signal, dtype=np.complex128))
        if signal.shape[0] != self.n_tx:
            raise ConfigurationError(
                f"signal has {signal.shape[0]} streams, channel expects "
                f"{self.n_tx}"
            )
        n = signal.shape[1]
        if gains is None:
            gains = self.tap_processes(n)
        out = np.zeros((self.n_rx, n), dtype=np.complex128)
        for l in range(self.n_taps):
            delayed = np.zeros_like(signal)
            if l == 0:
                delayed[:] = signal
            else:
                delayed[:, l:] = signal[:, :-l]
            for r in range(self.n_rx):
                for t in range(self.n_tx):
                    out[r] += gains[r, t, l, :n] * delayed[t]
        return out
