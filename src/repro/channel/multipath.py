"""Frequency-selective MIMO multipath: the tapped delay line.

Taps follow an exponential power delay profile with a configurable RMS
delay spread; each tap fades independently (Rayleigh, or Ricean on the
first tap), independently per TX-RX antenna pair. This is the standard
abstraction behind the IEEE TGn channel models used to evaluate 802.11n
proposals.
"""

from __future__ import annotations

import numpy as np

from repro.channel.fading import rayleigh_fading
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


def exponential_pdp(rms_delay_spread_s, sample_period_s, cutoff_db=25.0):
    """Normalised exponential power delay profile sampled at the chip rate.

    Returns tap powers summing to 1; a zero delay spread gives one tap.
    """
    if rms_delay_spread_s < 0 or sample_period_s <= 0:
        raise ConfigurationError("delay spread >= 0 and sample period > 0")
    if rms_delay_spread_s < sample_period_s / 50.0:
        # Far below the tap spacing the channel is effectively flat (and
        # exp(-delay/spread) would underflow).
        return np.array([1.0])
    n_taps = max(int(np.ceil(
        cutoff_db / 10.0 * np.log(10.0) * rms_delay_spread_s / sample_period_s
    )), 1) + 1
    delays = np.arange(n_taps) * sample_period_s
    powers = np.exp(-delays / rms_delay_spread_s)
    return powers / powers.sum()


class TappedDelayLine:
    """Per-packet random MIMO multipath channel.

    Parameters
    ----------
    n_rx, n_tx : int
    rms_delay_spread_s : float
        0 gives a single (flat) Rayleigh tap.
    sample_rate_hz : float
        Simulation sample rate (tap spacing = one sample).
    k_factor_db : float or None
        If set, the first tap is Ricean with this K factor (line of sight).
    rng : seed or Generator

    Examples
    --------
    >>> tdl = TappedDelayLine(2, 2, 50e-9, 20e6, rng=1)
    >>> taps = tdl.draw()                # (n_rx, n_tx, n_taps)
    >>> y = tdl.apply(tx_wave, taps)     # tx_wave: (n_tx, N) -> (n_rx, N)
    """

    def __init__(self, n_rx, n_tx, rms_delay_spread_s, sample_rate_hz,
                 k_factor_db=None, rng=None):
        if n_rx < 1 or n_tx < 1:
            raise ConfigurationError("antenna counts must be >= 1")
        self.n_rx = int(n_rx)
        self.n_tx = int(n_tx)
        self.pdp = exponential_pdp(rms_delay_spread_s, 1.0 / sample_rate_hz)
        self.k_factor_db = k_factor_db
        self.rng = as_generator(rng)

    @property
    def n_taps(self):
        """Number of delay taps."""
        return self.pdp.size

    def draw(self):
        """Draw one channel realisation: (n_rx, n_tx, n_taps), E||.||^2 = 1
        per antenna pair."""
        taps = rayleigh_fading((self.n_rx, self.n_tx, self.n_taps), self.rng)
        scaled = taps * np.sqrt(self.pdp)
        if self.k_factor_db is not None:
            # Ricean first tap: deterministic LOS plus scaled scatter,
            # preserving the tap-0 average power.
            k = 10.0 ** (self.k_factor_db / 10.0)
            scaled[:, :, 0] = (
                np.sqrt(k / (k + 1.0) * self.pdp[0])
                + scaled[:, :, 0] / np.sqrt(k + 1.0)
            )
        return scaled

    def apply(self, signal, taps=None):
        """Convolve a (n_tx, N) signal through the channel -> (n_rx, N).

        Output is truncated to the input length (trailing tail dropped),
        matching a receiver that windows on the packet.
        """
        signal = np.atleast_2d(np.asarray(signal, dtype=np.complex128))
        if signal.shape[0] != self.n_tx:
            raise ConfigurationError(
                f"signal has {signal.shape[0]} streams, channel expects "
                f"{self.n_tx}"
            )
        if taps is None:
            taps = self.draw()
        n = signal.shape[1]
        out = np.zeros((self.n_rx, n), dtype=np.complex128)
        for r in range(self.n_rx):
            for t in range(self.n_tx):
                out[r] += np.convolve(signal[t], taps[r, t])[:n]
        return out

    def frequency_response(self, taps, n_fft=64):
        """Per-subcarrier response: (n_fft, n_rx, n_tx)."""
        freq = np.fft.fft(taps, n=n_fft, axis=2)  # (n_rx, n_tx, n_fft)
        return np.transpose(freq, (2, 0, 1))
