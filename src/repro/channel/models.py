"""IEEE TGn channel model profiles A-F (simplified).

The TGn models define environments from a flat-fading office (A) through
large open spaces (F). The full cluster structure is simplified here to a
single exponential power delay profile with each model's RMS delay spread
and breakpoint distance — the parameters that control frequency
selectivity and range, which is what the reproduction experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.multipath import TappedDelayLine
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TgnProfile:
    """Environment parameters of one TGn model."""

    name: str
    description: str
    rms_delay_spread_ns: float
    breakpoint_m: float
    k_factor_db: float  # LOS K factor inside the breakpoint (dB)


TGN_PROFILES = {
    "A": TgnProfile("A", "flat fading reference", 0.0, 5.0, 0.0),
    "B": TgnProfile("B", "residential", 15.0, 5.0, 0.0),
    "C": TgnProfile("C", "small office", 30.0, 5.0, 0.0),
    "D": TgnProfile("D", "typical office", 50.0, 10.0, 3.0),
    "E": TgnProfile("E", "large office", 100.0, 20.0, 6.0),
    "F": TgnProfile("F", "large open space", 150.0, 30.0, 6.0),
}


def tgn_channel(model, n_rx=1, n_tx=1, sample_rate_hz=20e6, los=False,
                rng=None):
    """Build a :class:`TappedDelayLine` for TGn model ``model``.

    Parameters
    ----------
    model : str
        One of "A".."F".
    los : bool
        Apply the model's Ricean K factor to the first tap (station within
        the breakpoint distance).
    """
    key = str(model).upper()
    if key not in TGN_PROFILES:
        raise ConfigurationError(
            f"unknown TGn model {model!r}; choose from {sorted(TGN_PROFILES)}"
        )
    profile = TGN_PROFILES[key]
    return TappedDelayLine(
        n_rx=n_rx,
        n_tx=n_tx,
        rms_delay_spread_s=profile.rms_delay_spread_ns * 1e-9,
        sample_rate_hz=sample_rate_hz,
        k_factor_db=profile.k_factor_db if los else None,
        rng=rng,
    )
