"""Radio channel models: AWGN, flat fading, multipath, path loss.

The paper's claims about range and diversity only show up in *fading*
channels, so this package provides the statistical models the 802.11n task
group itself used to evaluate proposals: i.i.d. Rayleigh/Ricean flat
fading, exponential-power-delay-profile tapped delay lines parameterised
like TGn models A-F, and the IEEE dual-slope breakpoint path loss.
"""

from repro.channel.awgn import add_awgn, awgn_noise, noise_floor_dbm
from repro.channel.fading import (
    jakes_process,
    rayleigh_fading,
    ricean_fading,
)
from repro.channel.multipath import TappedDelayLine
from repro.channel.models import TGN_PROFILES, TgnProfile, tgn_channel
from repro.channel.timevarying import TimeVaryingChannel
from repro.channel.pathloss import (
    breakpoint_path_loss_db,
    free_space_path_loss_db,
    log_distance_path_loss_db,
    shadowing_db,
)

__all__ = [
    "add_awgn",
    "awgn_noise",
    "noise_floor_dbm",
    "jakes_process",
    "rayleigh_fading",
    "ricean_fading",
    "TappedDelayLine",
    "TimeVaryingChannel",
    "TGN_PROFILES",
    "TgnProfile",
    "tgn_channel",
    "breakpoint_path_loss_db",
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "shadowing_db",
]
