"""Flat (frequency-non-selective) fading processes.

Rayleigh fading models the dense-multipath, no-line-of-sight indoor
environment where the paper's "several-fold" MIMO range extension arises;
Ricean fading adds a line-of-sight component; the Jakes sum-of-sinusoids
process adds time correlation for mobility studies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


def rayleigh_fading(shape, rng=None):
    """i.i.d. CN(0, 1) fading coefficients (unit average power)."""
    rng = as_generator(rng)
    shape = tuple(np.atleast_1d(shape).astype(int)) if not np.isscalar(shape) \
        else (int(shape),)
    return (rng.normal(size=shape) + 1j * rng.normal(size=shape)) / np.sqrt(2.0)


def ricean_fading(shape, k_factor_db=6.0, rng=None):
    """Ricean fading with the given K factor (LOS-to-scatter power ratio)."""
    k = 10.0 ** (k_factor_db / 10.0)
    los = np.sqrt(k / (k + 1.0))
    nlos = np.sqrt(1.0 / (k + 1.0))
    return los + nlos * rayleigh_fading(shape, rng)


def jakes_process(n_samples, doppler_hz, sample_rate_hz, n_oscillators=32,
                  rng=None):
    """Time-correlated Rayleigh process by the sum-of-sinusoids method.

    The autocorrelation approximates the Clarke/Jakes spectrum
    ``J0(2 pi f_d tau)``; unit average power.
    """
    if doppler_hz < 0 or sample_rate_hz <= 0:
        raise ConfigurationError("doppler must be >= 0 and sample rate > 0")
    rng = as_generator(rng)
    t = np.arange(int(n_samples)) / sample_rate_hz
    if doppler_hz == 0:
        coeff = rayleigh_fading(1, rng)[0]
        return np.full(int(n_samples), coeff)
    arrival = rng.uniform(0, 2 * np.pi, n_oscillators)
    phase_i = rng.uniform(0, 2 * np.pi, n_oscillators)
    phase_q = rng.uniform(0, 2 * np.pi, n_oscillators)
    doppler_shifts = doppler_hz * np.cos(arrival)
    arg = 2 * np.pi * np.outer(t, doppler_shifts)
    in_phase = np.cos(arg + phase_i).sum(axis=1)
    quadrature = np.cos(arg + phase_q).sum(axis=1)
    # Each cos term has mean-square 1/2, so I and Q each carry n_osc/2;
    # dividing by sqrt(n_osc) yields unit total power.
    return (in_phase + 1j * quadrature) / np.sqrt(float(n_oscillators))
