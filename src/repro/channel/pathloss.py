"""Large-scale path loss and shadowing.

The IEEE 802.11 TGn channel models use a dual-slope law: free space
(exponent 2) up to a breakpoint distance, exponent 3.5 beyond it, plus
log-normal shadowing. Range claims in the benchmarks are all evaluated
against this law.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


def free_space_path_loss_db(distance_m, frequency_hz):
    """Friis free-space path loss."""
    distance_m = np.asarray(distance_m, dtype=float)
    if np.any(distance_m <= 0) or frequency_hz <= 0:
        raise ConfigurationError("distance and frequency must be positive")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 20.0 * np.log10(4.0 * np.pi * distance_m / wavelength)


def log_distance_path_loss_db(distance_m, frequency_hz, exponent=3.5,
                              reference_m=1.0):
    """Single-slope log-distance law anchored at free space @ reference."""
    distance_m = np.asarray(distance_m, dtype=float)
    if np.any(distance_m <= 0):
        raise ConfigurationError("distance must be positive")
    ref_loss = free_space_path_loss_db(reference_m, frequency_hz)
    return ref_loss + 10.0 * exponent * np.log10(distance_m / reference_m)


def breakpoint_path_loss_db(distance_m, frequency_hz, breakpoint_m=5.0,
                            exponent_after=3.5):
    """IEEE TGn dual-slope path loss.

    Free space up to ``breakpoint_m``, then slope ``exponent_after``.
    """
    distance_m = np.asarray(distance_m, dtype=float)
    if np.any(distance_m <= 0) or breakpoint_m <= 0:
        raise ConfigurationError("distances must be positive")
    fs = free_space_path_loss_db(np.minimum(distance_m, breakpoint_m),
                                 frequency_hz)
    beyond = np.maximum(distance_m / breakpoint_m, 1.0)
    extra = 10.0 * exponent_after * np.log10(beyond)
    result = fs + extra
    return float(result) if np.isscalar(distance_m) or result.ndim == 0 \
        else result


def shadowing_db(shape=None, sigma_db=4.0, rng=None):
    """Log-normal shadowing samples (zero-mean Gaussian in dB)."""
    if sigma_db < 0:
        raise ConfigurationError("sigma must be >= 0")
    rng = as_generator(rng)
    if shape is None:
        return float(rng.normal(0.0, sigma_db))
    return rng.normal(0.0, sigma_db, size=shape)


def received_power_dbm(tx_power_dbm, distance_m, frequency_hz,
                       breakpoint_m=5.0, exponent_after=3.5,
                       antenna_gain_db=0.0, shadow_db=0.0):
    """Link-budget received power under the dual-slope law."""
    loss = breakpoint_path_loss_db(distance_m, frequency_hz,
                                   breakpoint_m, exponent_after)
    return tx_power_dbm + antenna_gain_db - loss - shadow_db
