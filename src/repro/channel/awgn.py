"""Additive white Gaussian noise and thermal-noise bookkeeping."""

from __future__ import annotations

import numpy as np

from repro.constants import THERMAL_NOISE_DBM_PER_HZ
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


def awgn_noise(shape, noise_var, rng=None):
    """Complex circular Gaussian noise of total variance ``noise_var``."""
    if noise_var < 0:
        raise ConfigurationError(f"noise_var must be >= 0, got {noise_var}")
    rng = as_generator(rng)
    scale = np.sqrt(noise_var / 2.0)
    return scale * (rng.normal(size=shape) + 1j * rng.normal(size=shape))


def add_awgn(signal, snr_db, rng=None, measure_power=True):
    """Add AWGN at the requested SNR.

    Parameters
    ----------
    signal : complex array (any shape; rows treated jointly)
    snr_db : float
        Desired ratio of measured signal power to complex noise variance.
    measure_power : bool
        If True the signal power is measured; if False unit power is
        assumed (useful when zero-padding would bias the estimate).

    Returns
    -------
    (noisy, noise_var) : (numpy.ndarray, float)
    """
    signal = np.asarray(signal, dtype=np.complex128)
    power = float(np.mean(np.abs(signal) ** 2)) if measure_power else 1.0
    noise_var = power / 10.0 ** (snr_db / 10.0)
    return signal + awgn_noise(signal.shape, noise_var, rng), noise_var


def noise_floor_dbm(bandwidth_hz, noise_figure_db=7.0):
    """Receiver noise floor: kTB plus the front-end noise figure."""
    if bandwidth_hz <= 0:
        raise ConfigurationError("bandwidth must be positive")
    return (
        THERMAL_NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + noise_figure_db
    )
