"""Coded cooperation: the relay sends *new parity*, not a repeat.

The paper is specific: third parties "regenerate and relay, **with
appropriate coding**, the original transmission". Plain decode-and-forward
repeats the same symbols (repetition coding); *coded cooperation*
(Hunter & Nosratinia) has the relay transmit additional redundancy
instead, so the destination assembles a stronger code.

Implementation on the library's own convolutional machinery: the source
broadcasts the rate-3/4-punctured subset of the mother code; a relay that
decodes it re-encodes and transmits the complementary (stolen) bits. The
destination fills the mother code's positions from both slots and decodes
at rate 1/2 — coding gain *plus* spatial diversity, against the same
airtime as repetition DF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.channel.fading import rayleigh_fading
from repro.core.mc import run_trials
from repro.errors import ConfigurationError
from repro.phy import convolutional as cc
from repro.phy.modulation import Modulator
from repro.utils.bits import random_bits
from repro.utils.rng import as_generator

_FIRST_RATE = "3/4"  # what the source sends in slot 1


def _puncture_masks(n_mother_bits):
    """Boolean masks of mother-code positions sent in slot 1 and slot 2."""
    first = cc._puncture_mask(n_mother_bits, _FIRST_RATE)
    return first, ~first


@dataclass
class CodedCoopResult:
    """Outcome of one coded-cooperation configuration at one SNR.

    ``mc`` carries the engine's :class:`~repro.core.mc.McResult` for
    the *coded-cooperation BLER* — the target statistic of adaptive
    runs — including its confidence interval and stop reason.
    """

    snr_db: float
    n_blocks: int
    bler_direct: float
    bler_repetition: float
    bler_coded: float
    relay_decode_rate: float
    mc: object = None


class CodedCooperationSimulator:
    """Compare direct, repetition-DF and coded cooperation.

    All three schemes use the same two time slots and total energy:

    * direct — source sends the rate-3/4 code twice (repetition to itself);
    * repetition DF — relay repeats the same rate-3/4 coded bits; the
      destination MRC-combines the two copies;
    * coded cooperation — relay sends the complementary parity; the
      destination decodes the assembled rate-1/2 code.

    Parameters
    ----------
    info_bits : int
        Information bits per block.
    relay_gain_db : float
        Mean SNR advantage of the relay's links over the direct link.
    rng : seed or Generator
    """

    def __init__(self, info_bits=96, relay_gain_db=3.0, rng=None):
        if info_bits < 12:
            raise ConfigurationError("need at least 12 info bits")
        self.info_bits = int(info_bits)
        self.relay_gain = 10.0 ** (relay_gain_db / 10.0)
        self.rng = as_generator(rng)
        self.modulator = Modulator(1)  # BPSK keeps the comparison clean
        self.n_mother = 2 * (self.info_bits + 6)
        self._mask1, self._mask2 = _puncture_masks(self.n_mother)

    def _receive(self, symbols, h, noise_var):
        """Quasi-static fade ``h`` plus fresh noise."""
        noise = np.sqrt(noise_var / 2.0) * (
            self.rng.normal(size=symbols.size)
            + 1j * self.rng.normal(size=symbols.size)
        )
        return h * symbols + noise

    def _llrs(self, received, h, noise_var):
        eq = received / h
        nv = noise_var / np.abs(h) ** 2
        return self.modulator.demodulate_soft(eq, nv)

    def _one_block(self, rng, noise_var):
        """Simulate one block; returns the per-trial metric increments."""
        bits = random_bits(self.info_bits, rng)
        mother = cc.encode(bits, terminate=True).astype(float)
        slot1_bits = mother[self._mask1]
        slot2_bits = mother[self._mask2]
        x1 = self.modulator.modulate(slot1_bits.astype(np.int8))

        # Quasi-static block fading: one draw per link per block (the
        # regime where diversity, not SNR averaging, decides outcomes).
        h_sd = rayleigh_fading(1, rng)[0]
        h_sr = rayleigh_fading(1, rng)[0] * np.sqrt(self.relay_gain)
        h_rd = rayleigh_fading(1, rng)[0] * np.sqrt(self.relay_gain)

        # Slot 1: source broadcast; destination and relay listen.
        y_d1 = self._receive(x1, h_sd, noise_var)
        y_r1 = self._receive(x1, h_sr, noise_var)
        llr_d1 = self._llrs(y_d1, h_sd, noise_var)

        # Relay decodes the 3/4 code.
        llr_r1 = self._llrs(y_r1, h_sr, noise_var)
        relay_bits = cc.viterbi_decode(llr_r1, self.info_bits,
                                       rate=_FIRST_RATE)
        relay_ok = bool(np.array_equal(relay_bits, bits))

        # --- direct: source repeats slot 1 itself (same fade: no
        # spatial diversity, only 3 dB of chase-combining gain).
        y_d2 = self._receive(x1, h_sd, noise_var)
        llr_sum = llr_d1 + self._llrs(y_d2, h_sd, noise_var)
        direct_hat = cc.viterbi_decode(llr_sum, self.info_bits,
                                       rate=_FIRST_RATE)

        # --- repetition DF: relay repeats slot-1 bits if it decoded.
        if relay_ok:
            y_rep = self._receive(x1, h_rd, noise_var)
            llr_rep = llr_d1 + self._llrs(y_rep, h_rd, noise_var)
        else:
            llr_rep = llr_d1
        rep_hat = cc.viterbi_decode(llr_rep, self.info_bits,
                                    rate=_FIRST_RATE)

        # --- coded cooperation: relay sends the complementary parity.
        if relay_ok:
            x2 = self.modulator.modulate(slot2_bits.astype(np.int8))
            y_c2 = self._receive(x2, h_rd, noise_var)
            mother_llrs = np.zeros(self.n_mother)
            mother_llrs[self._mask1] = llr_d1
            mother_llrs[self._mask2] = self._llrs(y_c2, h_rd, noise_var)
            coded_hat = cc.viterbi_decode(mother_llrs, self.info_bits,
                                          rate="1/2")
        else:
            coded_hat = cc.viterbi_decode(llr_d1, self.info_bits,
                                          rate=_FIRST_RATE)

        return {
            "direct_failure": int(not np.array_equal(direct_hat, bits)),
            "repetition_failure": int(not np.array_equal(rep_hat, bits)),
            "coded_failure": int(not np.array_equal(coded_hat, bits)),
            "relay_decode": int(relay_ok),
        }

    def run(self, snr_db, n_blocks=200, *, precision=None, max_trials=None,
            confidence=0.95, batch_size=100):
        """Measure block error rates for all three schemes at one SNR.

        With ``precision=None`` exactly ``n_blocks`` run (bit-identical
        to the seed-era loop); with a precision target the engine stops
        once the Wilson CI on the coded-cooperation BLER is relatively
        tight enough or ``max_trials`` blocks have been spent.
        """
        noise_var = 10.0 ** (-snr_db / 10.0)
        with obs.span("coop.coded.run", snr_db=float(snr_db)) as span:
            mc = run_trials(
                lambda rng: self._one_block(rng, noise_var),
                n_trials=int(n_blocks), target="coded_failure", rng=self.rng,
                precision=precision, max_trials=max_trials,
                confidence=confidence, batch_size=batch_size)
            span.set(n_trials=mc.n_trials, stop_reason=mc.stop_reason)
        n = mc.n_trials
        return CodedCoopResult(
            snr_db=float(snr_db),
            n_blocks=n,
            bler_direct=mc.totals["direct_failure"] / n,
            bler_repetition=mc.totals["repetition_failure"] / n,
            bler_coded=mc.n_events / n,
            relay_decode_rate=mc.totals["relay_decode"] / n,
            mc=mc,
        )

    def sweep(self, snr_values_db, n_blocks=200, **mc_kwargs):
        """Run across an SNR grid."""
        return [self.run(s, n_blocks, **mc_kwargs)
                for s in np.atleast_1d(snr_values_db)]
