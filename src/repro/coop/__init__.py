"""Cooperative diversity — the paper's "future developments" section.

"Third parties which can successfully decode an on-going exchange will
effectively regenerate and relay, with appropriate coding, the original
transmission in order to improve the effective link quality between the
intended parties." Modules:

outage
    Closed-form outage probabilities for direct, decode-and-forward and
    selection cooperation (diversity order 1 vs 2).
relay
    Symbol-level Monte-Carlo of DF and AF relaying with MRC combining.
selection
    Best-relay selection among candidate third parties.
power_sharing
    The paper's energy angle: a mains-powered relay "shares the power
    burden" of a battery device.
"""

from repro.coop.coded import CodedCooperationSimulator
from repro.coop.outage import (
    df_outage_probability,
    direct_outage_probability,
    selection_outage_probability,
)
from repro.coop.power_sharing import cooperative_energy_per_bit
from repro.coop.relay import RelaySimulator
from repro.coop.selection import best_relay_index

__all__ = [
    "CodedCooperationSimulator",
    "df_outage_probability",
    "direct_outage_probability",
    "selection_outage_probability",
    "cooperative_energy_per_bit",
    "RelaySimulator",
    "best_relay_index",
]
