"""Relay selection: choosing the best third party to cooperate with."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def best_relay_index(snr_sr_db, snr_rd_db):
    """Max-min relay selection.

    The end-to-end quality of a DF relay path is limited by its weaker
    hop; the standard criterion picks the relay maximising
    ``min(SNR_sr, SNR_rd)``.

    Parameters
    ----------
    snr_sr_db, snr_rd_db : arrays of per-candidate link SNRs (dB).

    Returns
    -------
    int
        Index of the selected relay.
    """
    sr = np.atleast_1d(np.asarray(snr_sr_db, dtype=float))
    rd = np.atleast_1d(np.asarray(snr_rd_db, dtype=float))
    if sr.shape != rd.shape or sr.size == 0:
        raise ConfigurationError("need matching non-empty SNR arrays")
    return int(np.argmax(np.minimum(sr, rd)))


def selection_gain_db(snr_sr_db, snr_rd_db):
    """Bottleneck-SNR gain of best-relay over random-relay selection."""
    sr = np.atleast_1d(np.asarray(snr_sr_db, dtype=float))
    rd = np.atleast_1d(np.asarray(snr_rd_db, dtype=float))
    if sr.shape != rd.shape or sr.size == 0:
        raise ConfigurationError("need matching non-empty SNR arrays")
    bottlenecks = np.minimum(sr, rd)
    return float(bottlenecks.max() - bottlenecks.mean())
