"""Cooperative power sharing: offloading TX energy onto mains-powered
third parties.

"Mesh or cooperative diversity schemes could 'share' some of the power
burden with willing third party devices that are less power constrained,
such as a device that is drawing power from an electrical outlet rather
than a battery."

Model: a battery device must deliver data to a destination at distance d.
Directly, it transmits with enough power to close the whole link. With a
relay at fractional position f along the path, the battery device only
closes the (f*d) hop; the relay (mains powered) closes the rest. Required
TX power scales as distance^n (path-loss exponent), and each hop transmits
for 1/rate of the time per bit.
"""

from __future__ import annotations

from repro.analysis.linkbudget import LinkBudget
from repro.errors import ConfigurationError
from repro.standards.registry import get_standard


def _tx_energy_per_bit_j(budget, standard, distance_m, tx_power_w,
                         overhead_power_w=0.0):
    """Battery energy per bit for one hop at the rate the link supports."""
    snr = budget.snr_at(distance_m)
    entry = standard.rate_at_snr(snr)
    if entry is None:
        return None
    return (tx_power_w + overhead_power_w) / (entry.rate_mbps * 1e6)


def cooperative_energy_per_bit(distance_m, relay_fraction=0.5,
                               standard="802.11a", budget=None,
                               tx_power_w=0.1, overhead_power_w=0.8):
    """Battery-side energy per delivered bit, direct vs via a relay.

    Parameters
    ----------
    distance_m : float
        Source-destination distance.
    relay_fraction : float
        Relay position along the path (0-1); the battery device only
        transmits over ``relay_fraction * distance_m``.
    tx_power_w : float
        RF transmit power (drawn while transmitting).
    overhead_power_w : float
        Rest-of-chain power while transmitting (PA overhead, baseband).

    Returns
    -------
    dict
        ``direct_j_per_bit``, ``cooperative_j_per_bit``, ``saving_ratio``
        (direct / cooperative; > 1 means the relay saves battery energy),
        and the rates of each segment. Entries are None when a segment is
        out of range — note the *direct* link dying first is precisely the
        regime where cooperation shines.
    """
    if not 0 < relay_fraction < 1:
        raise ConfigurationError("relay_fraction must be in (0, 1)")
    budget = budget or LinkBudget(tx_power_dbm=10 * _log10_mw(tx_power_w))
    std = get_standard(standard) if isinstance(standard, str) else standard

    direct = _tx_energy_per_bit_j(budget, std, distance_m, tx_power_w,
                                  overhead_power_w)
    battery_hop = _tx_energy_per_bit_j(
        budget, std, relay_fraction * distance_m, tx_power_w,
        overhead_power_w,
    )
    relay_rate = std.rate_at_snr(
        budget.snr_at((1.0 - relay_fraction) * distance_m)
    )
    result = {
        "direct_j_per_bit": direct,
        "cooperative_j_per_bit": battery_hop,
        "relay_hop_rate_mbps": None if relay_rate is None
        else relay_rate.rate_mbps,
        "saving_ratio": None,
    }
    if direct is not None and battery_hop is not None and battery_hop > 0:
        result["saving_ratio"] = direct / battery_hop
    return result


def _log10_mw(power_w):
    """log10 of power in milliwatts (helper for dBm conversion)."""
    import numpy as np

    if power_w <= 0:
        raise ConfigurationError("power must be positive")
    return float(np.log10(power_w * 1e3))
