"""Symbol-level Monte-Carlo simulation of cooperative relaying.

Two-slot orthogonal cooperation over flat Rayleigh links:

* slot 1 — the source broadcasts; destination and relay both listen;
* slot 2 — decode-and-forward: the relay re-modulates *if it decoded the
  block correctly* (regeneration, as the paper describes);
  amplify-and-forward: the relay scales and repeats its noisy copy;
* the destination MRC-combines its two observations.

BER and block-outage are measured against the direct (no-relay) baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.channel.fading import rayleigh_fading
from repro.core.mc import run_trials
from repro.errors import ConfigurationError
from repro.phy.modulation import Modulator
from repro.utils.bits import random_bits
from repro.utils.rng import as_generator


@dataclass
class RelayResult:
    """Error statistics of one cooperative configuration at one SNR.

    ``mc`` carries the engine's :class:`~repro.core.mc.McResult` for
    the *cooperative outage rate* — the target statistic of adaptive
    runs — including its confidence interval and stop reason.
    """

    protocol: str
    snr_db: float
    n_blocks: int
    ber_direct: float
    ber_cooperative: float
    outage_direct: float
    outage_cooperative: float
    relay_decode_rate: float
    mc: object = None


class RelaySimulator:
    """Cooperative-diversity link simulator.

    Parameters
    ----------
    protocol : str
        "df" (decode-and-forward) or "af" (amplify-and-forward).
    bits_per_symbol : int
        Modulation order (1 = BPSK, 2 = QPSK, ...).
    relay_gain_db : float
        Mean SNR advantage of the source-relay and relay-destination links
        over the direct link (relays are usually *between* the endpoints).
    rng : seed or Generator
    """

    def __init__(self, protocol="df", bits_per_symbol=1, relay_gain_db=0.0,
                 rng=None):
        if protocol not in ("df", "af"):
            raise ConfigurationError(f"protocol must be 'df' or 'af', got {protocol!r}")
        self.protocol = protocol
        self.modulator = Modulator(bits_per_symbol)
        self.relay_gain = 10.0 ** (relay_gain_db / 10.0)
        self.rng = as_generator(rng)

    def _noise(self, shape, var):
        return np.sqrt(var / 2.0) * (
            self.rng.normal(size=shape) + 1j * self.rng.normal(size=shape)
        )

    def _one_block(self, rng, block_bits, noise_var):
        """Simulate one block; returns the per-trial metric increments."""
        bits = random_bits(block_bits, rng)
        x = self.modulator.modulate(bits)
        h_sd = rayleigh_fading(1, rng)[0]
        h_sr = rayleigh_fading(1, rng)[0] * np.sqrt(self.relay_gain)
        h_rd = rayleigh_fading(1, rng)[0] * np.sqrt(self.relay_gain)

        y_sd = h_sd * x + self._noise(x.shape, noise_var)
        y_sr = h_sr * x + self._noise(x.shape, noise_var)

        # Direct baseline: coherent detection of slot-1 copy only.
        direct_hat = self.modulator.demodulate_hard(y_sd / h_sd)
        d_errs = int(np.count_nonzero(direct_hat != bits))

        if self.protocol == "df":
            relay_hat = self.modulator.demodulate_hard(y_sr / h_sr)
            relay_ok = bool(np.array_equal(relay_hat, bits))
            if relay_ok:
                x_r = self.modulator.modulate(relay_hat)
                y_rd = h_rd * x_r + self._noise(x.shape, noise_var)
                # MRC of the two coherent copies.
                num = (np.conj(h_sd) * y_sd + np.conj(h_rd) * y_rd)
                den = np.abs(h_sd) ** 2 + np.abs(h_rd) ** 2
                coop_hat = self.modulator.demodulate_hard(num / den)
            else:
                coop_hat = direct_hat
        else:  # amplify and forward
            # Relay normalises its received power to 1 then repeats.
            amp = 1.0 / np.sqrt(np.abs(h_sr) ** 2 + noise_var)
            y_rd = h_rd * amp * y_sr + self._noise(x.shape, noise_var)
            # Effective AF channel and noise for MRC weighting.
            h_eff = h_rd * amp * h_sr
            var_eff = noise_var * (np.abs(h_rd * amp) ** 2 + 1.0)
            num = (np.conj(h_sd) * y_sd / noise_var
                   + np.conj(h_eff) * y_rd / var_eff)
            den = (np.abs(h_sd) ** 2 / noise_var
                   + np.abs(h_eff) ** 2 / var_eff)
            coop_hat = self.modulator.demodulate_hard(num / den)
            relay_ok = True

        c_errs = int(np.count_nonzero(coop_hat != bits))
        return {
            "direct_bit_errors": d_errs,
            "coop_bit_errors": c_errs,
            "direct_outage": int(d_errs > 0),
            "coop_outage": int(c_errs > 0),
            "relay_decode": int(relay_ok),
        }

    def run(self, snr_db, n_blocks=200, block_bits=128, *,
            precision=None, max_trials=None, confidence=0.95,
            batch_size=100):
        """Simulate blocks at direct-link mean SNR ``snr_db``.

        Returns a :class:`RelayResult`. A block is in outage when any bit
        in it is wrong (uncoded block error). With ``precision=None``
        exactly ``n_blocks`` run (bit-identical to the seed-era loop);
        with a precision target the engine stops once the Wilson CI on
        the cooperative outage rate is relatively tight enough or
        ``max_trials`` blocks have been spent.
        """
        if block_bits % self.modulator.bits_per_symbol != 0:
            raise ConfigurationError(
                "block_bits must divide evenly into symbols"
            )
        snr = 10.0 ** (snr_db / 10.0)
        noise_var = 1.0 / snr

        with obs.span("relay.run", protocol=self.protocol,
                      snr_db=float(snr_db)) as span:
            mc = run_trials(
                lambda rng: self._one_block(rng, block_bits, noise_var),
                n_trials=int(n_blocks), target="coop_outage", rng=self.rng,
                precision=precision, max_trials=max_trials,
                confidence=confidence, batch_size=batch_size)
            span.set(n_trials=mc.n_trials, stop_reason=mc.stop_reason)

        n = mc.n_trials
        total_bits = block_bits * n
        return RelayResult(
            protocol=self.protocol,
            snr_db=float(snr_db),
            n_blocks=n,
            ber_direct=mc.totals["direct_bit_errors"] / total_bits,
            ber_cooperative=mc.totals["coop_bit_errors"] / total_bits,
            outage_direct=mc.totals["direct_outage"] / n,
            outage_cooperative=mc.n_events / n,
            relay_decode_rate=mc.totals["relay_decode"] / n,
            mc=mc,
        )

    def sweep(self, snr_values_db, n_blocks=200, block_bits=128,
              **mc_kwargs):
        """Run across an SNR grid; returns a list of results."""
        return [self.run(s, n_blocks, block_bits, **mc_kwargs)
                for s in np.atleast_1d(snr_values_db)]
