"""Symbol-level Monte-Carlo simulation of cooperative relaying.

Two-slot orthogonal cooperation over flat Rayleigh links:

* slot 1 — the source broadcasts; destination and relay both listen;
* slot 2 — decode-and-forward: the relay re-modulates *if it decoded the
  block correctly* (regeneration, as the paper describes);
  amplify-and-forward: the relay scales and repeats its noisy copy;
* the destination MRC-combines its two observations.

BER and block-outage are measured against the direct (no-relay) baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.fading import rayleigh_fading
from repro.errors import ConfigurationError
from repro.phy.modulation import Modulator
from repro.utils.bits import random_bits
from repro.utils.rng import as_generator


@dataclass
class RelayResult:
    """Error statistics of one cooperative configuration at one SNR."""

    protocol: str
    snr_db: float
    n_blocks: int
    ber_direct: float
    ber_cooperative: float
    outage_direct: float
    outage_cooperative: float
    relay_decode_rate: float


class RelaySimulator:
    """Cooperative-diversity link simulator.

    Parameters
    ----------
    protocol : str
        "df" (decode-and-forward) or "af" (amplify-and-forward).
    bits_per_symbol : int
        Modulation order (1 = BPSK, 2 = QPSK, ...).
    relay_gain_db : float
        Mean SNR advantage of the source-relay and relay-destination links
        over the direct link (relays are usually *between* the endpoints).
    rng : seed or Generator
    """

    def __init__(self, protocol="df", bits_per_symbol=1, relay_gain_db=0.0,
                 rng=None):
        if protocol not in ("df", "af"):
            raise ConfigurationError(f"protocol must be 'df' or 'af', got {protocol!r}")
        self.protocol = protocol
        self.modulator = Modulator(bits_per_symbol)
        self.relay_gain = 10.0 ** (relay_gain_db / 10.0)
        self.rng = as_generator(rng)

    def _noise(self, shape, var):
        return np.sqrt(var / 2.0) * (
            self.rng.normal(size=shape) + 1j * self.rng.normal(size=shape)
        )

    def run(self, snr_db, n_blocks=200, block_bits=128):
        """Simulate ``n_blocks`` blocks at direct-link mean SNR ``snr_db``.

        Returns a :class:`RelayResult`. A block is in outage when any bit
        in it is wrong (uncoded block error).
        """
        if block_bits % self.modulator.bits_per_symbol != 0:
            raise ConfigurationError(
                "block_bits must divide evenly into symbols"
            )
        snr = 10.0 ** (snr_db / 10.0)
        noise_var = 1.0 / snr
        direct_bit_errs = 0
        coop_bit_errs = 0
        direct_outages = 0
        coop_outages = 0
        relay_decodes = 0
        total_bits = 0

        for _ in range(int(n_blocks)):
            bits = random_bits(block_bits, self.rng)
            x = self.modulator.modulate(bits)
            h_sd = rayleigh_fading(1, self.rng)[0]
            h_sr = rayleigh_fading(1, self.rng)[0] * np.sqrt(self.relay_gain)
            h_rd = rayleigh_fading(1, self.rng)[0] * np.sqrt(self.relay_gain)

            y_sd = h_sd * x + self._noise(x.shape, noise_var)
            y_sr = h_sr * x + self._noise(x.shape, noise_var)

            # Direct baseline: coherent detection of slot-1 copy only.
            direct_hat = self.modulator.demodulate_hard(y_sd / h_sd)
            d_errs = int(np.count_nonzero(direct_hat != bits))
            direct_bit_errs += d_errs
            direct_outages += int(d_errs > 0)

            if self.protocol == "df":
                relay_hat = self.modulator.demodulate_hard(y_sr / h_sr)
                relay_ok = bool(np.array_equal(relay_hat, bits))
                relay_decodes += int(relay_ok)
                if relay_ok:
                    x_r = self.modulator.modulate(relay_hat)
                    y_rd = h_rd * x_r + self._noise(x.shape, noise_var)
                    # MRC of the two coherent copies.
                    num = (np.conj(h_sd) * y_sd + np.conj(h_rd) * y_rd)
                    den = np.abs(h_sd) ** 2 + np.abs(h_rd) ** 2
                    coop_hat = self.modulator.demodulate_hard(num / den)
                else:
                    coop_hat = direct_hat
            else:  # amplify and forward
                # Relay normalises its received power to 1 then repeats.
                amp = 1.0 / np.sqrt(np.abs(h_sr) ** 2 + noise_var)
                y_rd = h_rd * amp * y_sr + self._noise(x.shape, noise_var)
                # Effective AF channel and noise for MRC weighting.
                h_eff = h_rd * amp * h_sr
                var_eff = noise_var * (np.abs(h_rd * amp) ** 2 + 1.0)
                num = (np.conj(h_sd) * y_sd / noise_var
                       + np.conj(h_eff) * y_rd / var_eff)
                den = (np.abs(h_sd) ** 2 / noise_var
                       + np.abs(h_eff) ** 2 / var_eff)
                coop_hat = self.modulator.demodulate_hard(num / den)
                relay_decodes += 1

            c_errs = int(np.count_nonzero(coop_hat != bits))
            coop_bit_errs += c_errs
            coop_outages += int(c_errs > 0)
            total_bits += block_bits

        return RelayResult(
            protocol=self.protocol,
            snr_db=float(snr_db),
            n_blocks=int(n_blocks),
            ber_direct=direct_bit_errs / total_bits,
            ber_cooperative=coop_bit_errs / total_bits,
            outage_direct=direct_outages / n_blocks,
            outage_cooperative=coop_outages / n_blocks,
            relay_decode_rate=relay_decodes / n_blocks,
        )

    def sweep(self, snr_values_db, n_blocks=200, block_bits=128):
        """Run across an SNR grid; returns a list of results."""
        return [self.run(s, n_blocks, block_bits)
                for s in np.atleast_1d(snr_values_db)]
