"""Outage probabilities of cooperative schemes in Rayleigh fading.

A link with mean SNR g is in outage for target spectral efficiency R when
``log2(1 + SNR) < R``; with exponentially distributed instantaneous SNR
the probability is ``1 - exp(-(2^R - 1)/g)``.

Decode-and-forward (orthogonal two-slot cooperation, as in Laneman et al.)
halves the rate per slot (the 2R exponent) but provides diversity order 2
— the slope change the relay benchmark shows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _threshold(spectral_efficiency, slots=1):
    return 2.0 ** (slots * spectral_efficiency) - 1.0


def direct_outage_probability(mean_snr_db, spectral_efficiency=1.0):
    """Outage of the direct link (diversity order 1)."""
    g = 10.0 ** (np.asarray(mean_snr_db, dtype=float) / 10.0)
    return -np.expm1(-_threshold(spectral_efficiency) / g)


def df_outage_probability(mean_snr_sd_db, mean_snr_sr_db=None,
                          mean_snr_rd_db=None, spectral_efficiency=1.0):
    """Outage of orthogonal decode-and-forward relaying.

    The DF relay listens in slot 1 and retransmits in slot 2, so each link
    must support 2R bits/slot. Outage requires either (relay failed AND
    direct failed) or (relay decoded AND the MRC of both copies failed).

    Parameters default to equal mean SNR on every link.
    """
    g_sd = 10.0 ** (np.asarray(mean_snr_sd_db, dtype=float) / 10.0)
    g_sr = g_sd if mean_snr_sr_db is None else \
        10.0 ** (np.asarray(mean_snr_sr_db, dtype=float) / 10.0)
    g_rd = g_sd if mean_snr_rd_db is None else \
        10.0 ** (np.asarray(mean_snr_rd_db, dtype=float) / 10.0)
    thr = _threshold(spectral_efficiency, slots=2)
    p_sr_fail = -np.expm1(-thr / g_sr)
    p_sd_fail = -np.expm1(-thr / g_sd)
    # MRC of two independent exponential branches with means g_sd, g_rd.
    p_mrc_fail = _mrc2_outage(thr, g_sd, g_rd)
    return p_sr_fail * p_sd_fail + (1.0 - p_sr_fail) * p_mrc_fail


def _mrc2_outage(threshold, g1, g2):
    """P(X1 + X2 < t) for independent exponentials with means g1, g2."""
    g1 = np.asarray(g1, dtype=float)
    g2 = np.asarray(g2, dtype=float)
    same = np.isclose(g1, g2)
    with np.errstate(divide="ignore", invalid="ignore"):
        general = 1.0 - (
            g1 * np.exp(-threshold / g1) - g2 * np.exp(-threshold / g2)
        ) / (g1 - g2)
    # Equal-mean limit: Erlang-2 CDF.
    x = threshold / np.where(g1 > 0, g1, 1.0)
    equal = 1.0 - np.exp(-x) * (1.0 + x)
    return np.where(same, equal, general)


def selection_outage_probability(mean_snr_db, n_relays,
                                 spectral_efficiency=1.0):
    """Outage with best-of-N relay selection plus the direct path.

    Idealised selection cooperation: outage only if the direct path *and*
    all N relay paths fail (diversity order N+1). All links share the same
    mean SNR.
    """
    if n_relays < 0:
        raise ConfigurationError("n_relays must be >= 0")
    g = 10.0 ** (np.asarray(mean_snr_db, dtype=float) / 10.0)
    thr = _threshold(spectral_efficiency, slots=2)
    p_single = -np.expm1(-thr / g)
    return p_single ** (n_relays + 1)


def diversity_order(snr_db, outage):
    """Empirical diversity order: negative high-SNR log-log slope."""
    snr_db = np.asarray(snr_db, dtype=float)
    outage = np.asarray(outage, dtype=float)
    mask = outage > 0
    if mask.sum() < 2:
        raise ConfigurationError("need two nonzero outage points")
    x = snr_db[mask][-2:] / 10.0
    y = np.log10(outage[mask][-2:])
    return float(-(y[1] - y[0]) / (x[1] - x[0]))
