"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts an ``rng`` argument
that may be ``None`` (fresh default generator), an integer seed, a
:class:`numpy.random.SeedSequence`, or an existing
:class:`numpy.random.Generator`. :func:`as_generator` normalises all
four, so simulations are reproducible whenever a seed is supplied.

For parallel work the module offers counter-based substreams:
:func:`substream` derives the ``index``-th child of a base seed through
``SeedSequence`` spawning, so stream ``i`` is the same object no matter
how many workers exist or in which order points execute. This is what
makes ``repro.campaign`` runs bit-identical at any worker count.
"""

from __future__ import annotations

import numpy as np


def as_generator(rng=None):
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng : None, int, numpy.random.SeedSequence, or numpy.random.Generator
        ``None`` yields a freshly seeded generator; an int or
        ``SeedSequence`` is used as the seed; a Generator is passed
        through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_seeds(base, n):
    """``n`` independent child :class:`~numpy.random.SeedSequence` objects.

    Children are derived with ``SeedSequence(base).spawn(n)``, so the
    streams are statistically independent of each other *and* of the
    parent, and depend only on ``(base, index)`` — never on how many
    siblings were requested or on spawn order.

    Parameters
    ----------
    base : int or numpy.random.SeedSequence
        Root entropy. An existing ``SeedSequence`` is spawned from
        directly (note that spawning mutates its child counter).
    n : int
        Number of children, >= 0.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    seq = base if isinstance(base, np.random.SeedSequence) \
        else np.random.SeedSequence(base)
    return seq.spawn(int(n))


def substream(base, index):
    """The ``index``-th child seed of ``base``, derived statelessly.

    Equivalent to ``spawn_seeds(base, index + 1)[index]`` but O(1): the
    child is constructed directly from the spawn key, so a worker can
    derive its own stream without coordinating with anyone.

    Parameters
    ----------
    base : int
        Root entropy (an integer base seed).
    index : int
        Substream index, >= 0.
    """
    if index < 0:
        raise ValueError(f"substream index must be >= 0, got {index}")
    return np.random.SeedSequence(base, spawn_key=(int(index),))
