"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts an ``rng`` argument
that may be ``None`` (fresh default generator), an integer seed, or an
existing :class:`numpy.random.Generator`. :func:`as_generator` normalises
all three, so simulations are reproducible whenever a seed is supplied.
"""

from __future__ import annotations

import numpy as np


def as_generator(rng=None):
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng : None, int, or numpy.random.Generator
        ``None`` yields a freshly seeded generator; an int is used as the
        seed; a Generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
