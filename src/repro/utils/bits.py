"""Bit-vector helpers.

Throughout the library, "bits" means a 1-D :class:`numpy.ndarray` of dtype
``int8`` (or any integer dtype) holding values 0/1, transmitted LSB-first
within each byte as 802.11 specifies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodingError


def random_bits(n, rng):
    """Return ``n`` uniformly random bits as an int8 array.

    Parameters
    ----------
    n : int
        Number of bits.
    rng : numpy.random.Generator
        Source of randomness.
    """
    return rng.integers(0, 2, size=int(n), dtype=np.int8)


def bits_from_bytes(data):
    """Expand ``bytes`` (or an iterable of ints 0..255) to bits, LSB first."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little").astype(np.int8)


def bytes_from_bits(bits):
    """Pack a bit array (LSB first per byte) back into ``bytes``.

    Raises
    ------
    CodingError
        If the bit count is not a multiple of 8.
    """
    bits = np.asarray(bits)
    if bits.size % 8 != 0:
        raise CodingError(f"cannot pack {bits.size} bits into whole bytes")
    return np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()


def int_to_bits(value, width):
    """Little-endian bit expansion of ``value`` into ``width`` bits."""
    if value < 0 or value >= (1 << width):
        raise CodingError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.int8)


def bits_to_int(bits):
    """Inverse of :func:`int_to_bits`."""
    bits = np.asarray(bits).astype(np.int64)
    return int((bits << np.arange(bits.size)).sum())


def count_bit_errors(sent, received):
    """Number of positions where two equal-length bit arrays differ."""
    sent = np.asarray(sent)
    received = np.asarray(received)
    if sent.shape != received.shape:
        raise CodingError(
            f"bit arrays differ in shape: {sent.shape} vs {received.shape}"
        )
    return int(np.count_nonzero(sent != received))
