"""Small argument-validation helpers that raise :class:`ConfigurationError`."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def require_positive(name, value):
    """Raise unless ``value`` is a positive number; returns the value."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_finite(name, value):
    """Raise unless ``value`` is a finite real number; returns ``float``."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be a real number, got {value!r}"
        ) from None
    if not math.isfinite(value):
        raise ConfigurationError(
            f"{name} must be finite, got {value!r}"
        )
    return value


def require_snr_array(name, values):
    """Validate an SNR sweep array: non-empty, all entries finite.

    Returns the values as a 1-D float array. Shared by the waveform
    :class:`~repro.core.link.LinkSimulator` and the surrogate
    :class:`~repro.surrogate.AbstractLink` so both reject bad sweeps
    with identical :class:`ConfigurationError` messages.
    """
    arr = np.atleast_1d(np.asarray(values, dtype=float)).ravel()
    if arr.size == 0:
        raise ConfigurationError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        bad = arr[~np.isfinite(arr)][0]
        raise ConfigurationError(
            f"{name} must contain only finite values, found {bad!r}"
        )
    return arr


def validate_link_run_args(snr_db, n_packets, payload_bytes):
    """Validate one link measurement's arguments; returns them normalised.

    The shared front door for :meth:`LinkSimulator.run` and
    :meth:`AbstractLink.run`: a NaN SNR, a zero packet budget, or a
    non-positive payload fails identically on the waveform and surrogate
    paths. Returns ``(float snr_db, int n_packets, int payload_bytes)``.
    """
    snr_db = require_finite("snr_db", snr_db)
    try:
        n_packets = int(n_packets)
        payload_int = int(payload_bytes)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"n_packets and payload_bytes must be integers, got "
            f"{n_packets!r} and {payload_bytes!r}"
        ) from None
    if isinstance(payload_bytes, float) and not float(
            payload_bytes).is_integer():
        raise ConfigurationError(
            f"payload_bytes must be a whole number of bytes, got "
            f"{payload_bytes!r}"
        )
    if n_packets < 1:
        raise ConfigurationError(
            f"n_packets must be >= 1, got {n_packets}"
        )
    if payload_int < 1:
        raise ConfigurationError(
            f"payload_bytes must be >= 1, got {payload_int}"
        )
    return snr_db, n_packets, payload_int


def require_in(name, value, allowed):
    """Raise unless ``value`` is one of ``allowed``; returns the value."""
    if value not in allowed:
        raise ConfigurationError(
            f"{name} must be one of {sorted(allowed, key=str)}, got {value!r}"
        )
    return value


def require_power_of_two(name, value):
    """Raise unless ``value`` is a positive power of two; returns the value."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")
    return value
