"""Small argument-validation helpers that raise :class:`ConfigurationError`."""

from __future__ import annotations

from repro.errors import ConfigurationError


def require_positive(name, value):
    """Raise unless ``value`` is a positive number; returns the value."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_in(name, value, allowed):
    """Raise unless ``value`` is one of ``allowed``; returns the value."""
    if value not in allowed:
        raise ConfigurationError(
            f"{name} must be one of {sorted(allowed, key=str)}, got {value!r}"
        )
    return value


def require_power_of_two(name, value):
    """Raise unless ``value`` is a positive power of two; returns the value."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")
    return value
