"""Decibel and power unit conversions."""

from __future__ import annotations

import numpy as np


def db_to_linear(db):
    """Convert a power ratio from dB to linear scale."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear):
    """Convert a linear power ratio to dB."""
    return 10.0 * np.log10(np.asarray(linear, dtype=float))


def dbm_to_watts(dbm):
    """Convert dBm to watts."""
    return 10.0 ** ((np.asarray(dbm, dtype=float) - 30.0) / 10.0)


def watts_to_dbm(watts):
    """Convert watts to dBm."""
    return 10.0 * np.log10(np.asarray(watts, dtype=float)) + 30.0


def ebn0_to_snr_db(ebn0_db, bits_per_symbol, code_rate=1.0, samples_per_symbol=1):
    """Convert Eb/N0 [dB] to per-sample SNR [dB].

    SNR = Eb/N0 * (information bits per symbol) / (samples per symbol), i.e.
    ``SNR_dB = EbN0_dB + 10 log10(bits_per_symbol * code_rate /
    samples_per_symbol)``.
    """
    factor = bits_per_symbol * code_rate / samples_per_symbol
    return np.asarray(ebn0_db, dtype=float) + 10.0 * np.log10(factor)


def snr_db_to_ebn0(snr_db, bits_per_symbol, code_rate=1.0, samples_per_symbol=1):
    """Inverse of :func:`ebn0_to_snr_db`."""
    factor = bits_per_symbol * code_rate / samples_per_symbol
    return np.asarray(snr_db, dtype=float) - 10.0 * np.log10(factor)
