"""Shared low-level utilities: bit manipulation, unit conversion, RNG, CRC."""

from repro.utils.bits import (
    bits_from_bytes,
    bits_to_int,
    bytes_from_bits,
    count_bit_errors,
    int_to_bits,
    random_bits,
)
from repro.utils.conversion import (
    db_to_linear,
    dbm_to_watts,
    ebn0_to_snr_db,
    linear_to_db,
    snr_db_to_ebn0,
    watts_to_dbm,
)
from repro.utils.crc import crc32
from repro.utils.rng import as_generator
from repro.utils.validation import (
    require_in,
    require_positive,
    require_power_of_two,
)

__all__ = [
    "bits_from_bytes",
    "bits_to_int",
    "bytes_from_bits",
    "count_bit_errors",
    "int_to_bits",
    "random_bits",
    "db_to_linear",
    "dbm_to_watts",
    "ebn0_to_snr_db",
    "linear_to_db",
    "snr_db_to_ebn0",
    "watts_to_dbm",
    "crc32",
    "as_generator",
    "require_in",
    "require_positive",
    "require_power_of_two",
]
