"""CRC-32 as used for the 802.11 FCS (frame check sequence).

Implemented from the polynomial definition (reflected 0x04C11DB7) with a
precomputed table, so frame-level simulations can detect residual errors
exactly the way real hardware does.
"""

from __future__ import annotations

import numpy as np

_POLY_REFLECTED = 0xEDB88320


def _build_table():
    table = np.zeros(256, dtype=np.uint32)
    for i in range(256):
        crc = i
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table[i] = crc
    return table


_TABLE = _build_table()


def crc32(data):
    """CRC-32 (IEEE 802.3 / 802.11 FCS) of ``data`` (bytes-like)."""
    crc = 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ int(_TABLE[(crc ^ byte) & 0xFF])
    return crc ^ 0xFFFFFFFF


def append_fcs(data):
    """Return ``data`` with its 4-byte little-endian FCS appended."""
    return bytes(data) + crc32(data).to_bytes(4, "little")


def check_fcs(frame):
    """True if the final 4 bytes of ``frame`` are a valid FCS for the rest."""
    if len(frame) < 4:
        return False
    body, fcs = frame[:-4], frame[-4:]
    return crc32(body).to_bytes(4, "little") == bytes(fcs)
