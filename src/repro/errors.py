"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
simulation failures.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation object was configured with invalid parameters."""


class DemodulationError(ReproError):
    """A receiver could not make sense of the waveform it was given."""


class CodingError(ReproError):
    """An encoder/decoder was driven with inconsistent block sizes."""


class SimulationError(ReproError):
    """A discrete-event or Monte-Carlo simulation reached an invalid state."""


class LinkBudgetError(ReproError):
    """A link-budget computation was asked for an unachievable operating point."""


class PointExecutionError(ReproError):
    """A campaign sweep point exhausted its attempt budget without success.

    Carries enough context to locate and re-run the point: its grid
    ``index``, resolved ``params``, how many ``attempts`` were made, and
    the final ``outcome`` (``"error"`` or ``"timeout"``).
    """

    def __init__(self, message, index=None, params=None, attempts=None,
                 outcome="error"):
        super().__init__(message)
        self.index = index
        self.params = dict(params) if params else {}
        self.attempts = attempts
        self.outcome = outcome
