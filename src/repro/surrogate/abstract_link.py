"""AbstractLink: the waveform simulator's consumer surface, table-driven.

:class:`AbstractLink` mirrors :class:`~repro.core.link.LinkSimulator`'s
consumer API — ``run`` / ``waterfall`` / ``snr_for_per``, returning the
same :class:`~repro.core.link.LinkResult` — but instead of modulating
waveforms it interpolates a precomputed :class:`PerSurface` and draws
packet outcomes as vectorized Bernoulli trials. A packet that cost the
waveform path milliseconds costs the surrogate one comparison against a
uniform draw, which is what lets :mod:`repro.mesh` and
:mod:`repro.mac` scale to thousands of stations.

:class:`WaveformLink` is the same consumer surface backed by a real
:class:`LinkSimulator` with per-SNR memoization — the reference
implementation surrogate results are validated against, and the slow
side of every speedup figure.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.link import LinkResult, LinkSimulator
from repro.core.mc import run_trials
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator
from repro.utils.validation import require_snr_array, validate_link_run_args


class AbstractLink:
    """Interpolating link-level oracle over one surface phy.

    Parameters
    ----------
    surface : PerSurface
        The precomputed grid (see :mod:`repro.surrogate.builder`).
    phy : str or None
        Which of the surface's phys this link speaks for. ``None`` is
        allowed when the surface holds exactly one.
    rng : seed or Generator
        Stream for the Bernoulli packet draws.
    out_of_grid : str
        ``"clamp"`` (default) pins queries beyond the grid edge to the
        edge value; ``"error"`` raises — choose it when silently flat
        tails would corrupt a study.
    """

    def __init__(self, surface, phy=None, rng=None, out_of_grid="clamp"):
        if phy is None:
            if len(surface.phys) != 1:
                raise ConfigurationError(
                    f"surface {surface.name!r} holds {len(surface.phys)} "
                    f"phys ({', '.join(surface.phys)}); pass phy= to pick "
                    "one"
                )
            phy = surface.phys[0]
        self.surface = surface
        self.phy_name = str(phy)
        self.channel_name = surface.channel
        self.rate_mbps = float(surface.rate_mbps[surface.phy_index(phy)])
        self.rng = as_generator(rng)
        self.out_of_grid = out_of_grid
        # Fail fast on a bad policy instead of on the first query.
        surface.per_at(self.phy_name, float(surface.snr_db[0]),
                       out_of_grid=out_of_grid)

    def for_phy(self, phy, rng=None):
        """A sibling link over another phy of the same surface."""
        return AbstractLink(self.surface, phy,
                            rng if rng is not None else self.rng,
                            self.out_of_grid)

    # -- interpolated queries (no randomness) -------------------------------

    def per_at(self, snr_db, payload_bytes=None):
        """Interpolated PER at ``snr_db`` (scalar or array)."""
        return self.surface.per_at(self.phy_name, snr_db, payload_bytes,
                                   self.out_of_grid)

    def ber_at(self, snr_db, payload_bytes=None):
        """Interpolated payload BER at ``snr_db`` (scalar or array)."""
        return self.surface.interpolate(self.phy_name, snr_db,
                                        payload_bytes, self.out_of_grid,
                                        values="ber")

    def per_for_rate(self, rate_mbps, snr_db, payload_bytes=None):
        """PER of the surface phy running at ``rate_mbps``.

        Rate controllers hold a ladder of Mbps values; this resolves
        each to its surface phy so one link can serve a whole ladder.
        """
        return self.surface.per_for_rate(rate_mbps, snr_db, payload_bytes,
                                         self.out_of_grid)

    # -- sampled packet outcomes --------------------------------------------

    def packet_success(self, snr_db, payload_bytes=None, rng=None):
        """Bernoulli packet outcomes: ``True`` where delivery succeeded.

        Vectorized: ``snr_db`` may be an array (one packet per entry)
        and the result has its shape. Scalar in, scalar out.
        """
        rng = self.rng if rng is None else as_generator(rng)
        per = self.per_at(snr_db, payload_bytes)
        if np.ndim(per) == 0:
            return bool(rng.random() >= per)
        return rng.random(np.shape(per)) >= per

    def run(self, snr_db, n_packets=100, payload_bytes=100, *,
            precision=None, max_trials=None, confidence=0.95,
            batch_size=1000, vectorized=None):
        """Drop-in for :meth:`LinkSimulator.run`, Bernoulli-backed.

        Packet errors are drawn against the interpolated PER and bit
        errors against the interpolated BER (a marginal approximation:
        real bit errors cluster inside lost packets, the surrogate
        draws them independently — PER statistics are exact, joint
        bit/packet statistics are not). Arguments are validated by the
        same front door as the waveform path, so bad input fails with
        identical messages; ``vectorized`` is accepted for signature
        parity and ignored (the surrogate is always vectorized).
        """
        snr_db, n_packets, payload_bytes = validate_link_run_args(
            snr_db, n_packets, payload_bytes)
        del vectorized
        per = float(self.per_at(snr_db, payload_bytes))
        ber = float(self.ber_at(snr_db, payload_bytes))
        n_bits_per_packet = 8 * payload_bytes

        def trial_batch(rng, m):
            errors = rng.random(m) < per
            obs.counter("surrogate.packets", m)
            return {
                "packet_error": int(errors.sum()),
                "bit_errors": int(rng.binomial(m * n_bits_per_packet, ber)),
            }

        with obs.span("surrogate.run", phy=self.phy_name,
                      channel=self.channel_name,
                      snr_db=float(snr_db)) as span:
            mc = run_trials(trial_batch, n_trials=int(n_packets),
                            target="packet_error", rng=self.rng,
                            precision=precision, max_trials=max_trials,
                            confidence=confidence, batch_size=batch_size,
                            vectorized=True)
            span.set(n_trials=mc.n_trials, stop_reason=mc.stop_reason)
        return LinkResult(
            phy=self.phy_name,
            channel=self.channel_name,
            snr_db=float(snr_db),
            n_packets=mc.n_trials,
            n_packet_errors=mc.n_events,
            n_bits=n_bits_per_packet * mc.n_trials,
            n_bit_errors=int(mc.totals.get("bit_errors", 0)),
            payload_bytes=payload_bytes,
            rate_mbps=self.rate_mbps,
            extras={"surrogate": True, "surface": self.surface.name,
                    "per_interpolated": per},
            mc=mc,
        )

    def waterfall(self, snr_values_db, n_packets=100, payload_bytes=100,
                  **mc_kwargs):
        """Drop-in for :meth:`LinkSimulator.waterfall`."""
        snrs = require_snr_array("snr_values_db", snr_values_db)
        with obs.span("surrogate.waterfall", phy=self.phy_name,
                      n_points=len(snrs)):
            return [self.run(snr, n_packets, payload_bytes, **mc_kwargs)
                    for snr in snrs]

    def snr_for_per(self, target_per=0.1, lo_db=-5.0, hi_db=45.0,
                    n_packets=100, payload_bytes=100, tolerance_db=0.5,
                    **mc_kwargs):
        """Drop-in for :meth:`LinkSimulator.snr_for_per`, noise-free.

        Bisects the *interpolated* PER curve directly — no packets are
        drawn, so the answer is deterministic at ``tolerance_db``
        resolution. ``n_packets`` and MC kwargs are accepted for
        signature parity and ignored. The waveform method's contract is
        kept: the low edge short-circuits and an unreachable target
        raises the same :class:`ConfigurationError`.
        """
        del n_packets, mc_kwargs
        if not 0 < target_per < 1:
            raise ConfigurationError("target PER must be in (0, 1)")
        lo, hi = float(lo_db), float(hi_db)
        payload = int(payload_bytes)
        with obs.span("surrogate.snr_for_per", phy=self.phy_name,
                      target_per=float(target_per)) as span:
            if self.per_at(lo, payload) <= target_per:
                span.set(snr_db=lo, low_edge=True)
                return lo
            if self.per_at(hi, payload) > target_per:
                raise ConfigurationError(
                    f"PER target {target_per} not met even at {hi} dB"
                )
            while hi - lo > tolerance_db:
                mid = 0.5 * (lo + hi)
                if self.per_at(mid, payload) > target_per:
                    lo = mid
                else:
                    hi = mid
            span.set(snr_db=0.5 * (lo + hi))
        return 0.5 * (lo + hi)


class WaveformLink:
    """The same per-SNR oracle surface, backed by real waveforms.

    Answers :meth:`per_at` by actually running
    :meth:`LinkSimulator.run` — memoized per quantized SNR so a mesh
    with thousands of near-identical links does not re-measure the same
    operating point. This is the reference the surrogate is validated
    against, and the baseline every speedup figure divides by.
    """

    def __init__(self, phy, channel="awgn", rng=None, n_packets=100,
                 payload_bytes=100, quantize_db=0.5, **sim_kwargs):
        self.sim = LinkSimulator(phy, channel, rng=rng, **sim_kwargs)
        self.phy_name = self.sim.phy_name
        self.channel_name = self.sim.channel_name
        self.rate_mbps = self.sim.rate_mbps
        self.n_packets = int(n_packets)
        self.payload_bytes = int(payload_bytes)
        self.quantize_db = float(quantize_db)
        if not self.quantize_db > 0:
            raise ConfigurationError(
                f"quantize_db must be positive, got {quantize_db!r}"
            )
        self._cache = {}

    def _result_at(self, snr_db):
        q = round(float(snr_db) / self.quantize_db) * self.quantize_db
        result = self._cache.get(q)
        if result is None:
            result = self.sim.run(q, self.n_packets, self.payload_bytes)
            self._cache[q] = result
        return result

    def per_at(self, snr_db, payload_bytes=None):
        """Measured PER at ``snr_db`` (scalar or array), memoized."""
        del payload_bytes  # fixed per link; kept for surface parity
        arr = np.asarray(snr_db, dtype=float)
        if arr.ndim == 0:
            return self._result_at(arr).per
        return np.array([self._result_at(s).per for s in arr.ravel()]
                        ).reshape(arr.shape)

    def per_ci_at(self, snr_db, confidence=0.95):
        """Wilson ``(lo, hi)`` of the memoized measurement at one SNR."""
        return self._result_at(snr_db).per_ci(confidence)

    def packet_success(self, snr_db, payload_bytes=None, rng=None):
        """Bernoulli outcomes against the *measured* PER (vectorized)."""
        rng = self.sim.rng if rng is None else as_generator(rng)
        per = self.per_at(snr_db, payload_bytes)
        if np.ndim(per) == 0:
            return bool(rng.random() >= per)
        return rng.random(np.shape(per)) >= per

    def per_for_rate(self, rate_mbps, snr_db, payload_bytes=None):
        """Surface parity; only this link's own rate is answerable."""
        if not np.isclose(float(rate_mbps), self.rate_mbps,
                          rtol=1e-9, atol=1e-6):
            raise ConfigurationError(
                f"WaveformLink({self.phy_name!r}) runs at "
                f"{self.rate_mbps} Mbps, not {rate_mbps}"
            )
        return self.per_at(snr_db, payload_bytes)
