"""Cross-check a PER surface against the waveform path it summarizes.

Two independent checks, reported per cell:

``mc-agreement``
    Re-measure a subset of grid cells with a *fresh*
    :class:`~repro.core.link.LinkSimulator` (different seed than the
    build) and require the surface's stored Wilson CI to overlap the
    fresh measurement's CI. Two draws of the same Bernoulli rate whose
    intervals are disjoint mean the surface no longer describes the
    simulator that built it — code drift, a stale cache, or a corrupted
    file.

``union-bound``
    For convolutionally-coded OFDM phys, compare the high-SNR grid tail
    against the :mod:`analysis.union_bound` analytic bound. The bound
    is an upper bound on BER (tight above ~4 dB Eb/N0), so a measured
    PER far *above* the bound-implied PER at the grid's top SNR flags a
    broken surface; sitting below it is expected.

:func:`validate_surface` runs both and returns a
:class:`ValidationReport` whose ``ok`` is the gate CI uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.analysis.per import per_from_ber
from repro.analysis.union_bound import WEIGHT_SPECTRUM, union_bound_ber
from repro.core.link import LinkSimulator
from repro.errors import ConfigurationError

#: The union-bound check only flags gross violations: measured PER must
#: exceed the bound-implied PER by more than this factor to fail (MC
#: noise and bound looseness both live inside the slack).
UNION_BOUND_SLACK = 10.0


@dataclass
class CellCheck:
    """One validation comparison at one grid cell."""

    kind: str  # "mc-agreement" | "union-bound"
    phy: str
    snr_db: float
    payload_bytes: int
    ok: bool
    detail: str

    def line(self):
        """One formatted report row for this check."""
        mark = "ok " if self.ok else "FAIL"
        return (f"  [{mark}] {self.kind:<12} {self.phy:<10} "
                f"{self.snr_db:6.1f} dB {self.payload_bytes:5d} B  "
                f"{self.detail}")


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_surface`."""

    surface_name: str
    checks: list = field(default_factory=list)

    @property
    def ok(self):
        """True when every check passed (vacuously true when empty)."""
        return all(c.ok for c in self.checks)

    @property
    def n_failed(self):
        """Number of failing checks."""
        return sum(not c.ok for c in self.checks)

    def lines(self):
        """Printable report (the body of ``repro surface validate``)."""
        verdict = ("OK" if self.ok
                   else f"FAILED ({self.n_failed}/{len(self.checks)})")
        out = [f"surface {self.surface_name!r} validation: {verdict} "
               f"({len(self.checks)} checks)"]
        out.extend(c.line() for c in self.checks)
        return out


def _ofdm_code_rate(phy):
    """Convolutional code rate string of an OFDM phy name, or ``None``."""
    if not phy.startswith("ofdm-"):
        return None
    from repro.phy.ofdm import OfdmPhy

    rate = OfdmPhy(int(phy.split("-")[1])).rate.code_rate
    return rate if rate in WEIGHT_SPECTRUM else None


def _intervals_overlap(a, b):
    return a[0] <= b[1] and b[0] <= a[1]


def validate_surface(surface, phys=None, snr_db=None, payload_bytes=None,
                     n_packets=200, confidence=0.95, seed=20050307,
                     union_bound_slack=UNION_BOUND_SLACK):
    """Cross-check ``surface`` against fresh waveform measurements.

    ``phys``/``snr_db``/``payload_bytes`` subset the grid (``None``
    checks everything on that axis — fine for small surfaces, subsample
    for big ones). ``seed`` deliberately differs from any build seed:
    agreement must hold across independent MC draws, not replay one.
    """
    phys = list(surface.phys) if phys is None else [str(p) for p in phys]
    snrs = (surface.snr_db if snr_db is None
            else np.atleast_1d(np.asarray(snr_db, dtype=float)))
    pays = (surface.payload_bytes if payload_bytes is None
            else np.atleast_1d(np.asarray(payload_bytes)).astype(int))
    for phy in phys:
        surface.phy_index(phy)  # unknown phy fails before any MC spend
    for snr in snrs:
        for pay in pays:
            # Checks compare stored cells, so the subset must hit grid
            # points exactly; interpolated comparisons would mix MC
            # noise with interpolation error and prove nothing.
            surface.cell(phys[0], float(snr), int(pay))

    report = ValidationReport(surface_name=surface.name)
    with obs.span("surrogate.validate", surface=surface.name,
                  n_phys=len(phys), n_snrs=len(snrs)) as span:
        for i_phy, phy in enumerate(phys):
            sim = LinkSimulator(phy, surface.channel,
                                rng=seed + 1000 * i_phy)
            for pay in pays:
                for snr in snrs:
                    stored = surface.cell(phy, float(snr), int(pay))
                    fresh = sim.run(float(snr), n_packets, int(pay))
                    fresh_ci = fresh.per_ci(confidence)
                    stored_ci = (stored["ci_low"], stored["ci_high"])
                    agree = _intervals_overlap(stored_ci, fresh_ci)
                    report.checks.append(CellCheck(
                        kind="mc-agreement", phy=phy, snr_db=float(snr),
                        payload_bytes=int(pay), ok=agree,
                        detail=(f"stored {stored['per']:.4f} "
                                f"[{stored_ci[0]:.4f}, {stored_ci[1]:.4f}]"
                                f" vs fresh {fresh.per:.4f} "
                                f"[{fresh_ci[0]:.4f}, {fresh_ci[1]:.4f}]"),
                    ))
                    obs.counter("surrogate.validate.mc_checks")

            code_rate = _ofdm_code_rate(phy)
            if code_rate is None or surface.channel != "awgn":
                continue  # the bound models coded OFDM over AWGN only
            rate_mbps = float(surface.rate_mbps[surface.phy_index(phy)])
            top_snr = float(snrs[-1])
            for pay in pays:
                stored = surface.cell(phy, top_snr, int(pay))
                # SNR (per 20 MHz symbol bandwidth) -> Eb/N0 at the
                # PHY's information rate.
                ebn0_db = top_snr + 10.0 * np.log10(20.0 / rate_mbps)
                bound_ber = float(union_bound_ber(ebn0_db, code_rate))
                bound_per = float(per_from_ber(min(bound_ber, 1.0),
                                               8 * int(pay)))
                limit = min(1.0, union_bound_slack * bound_per
                            + 3.0 / max(stored["n_trials"], 1))
                ok = stored["per"] <= limit
                report.checks.append(CellCheck(
                    kind="union-bound", phy=phy, snr_db=top_snr,
                    payload_bytes=int(pay), ok=ok,
                    detail=(f"measured PER {stored['per']:.4g} vs bound "
                            f"{bound_per:.4g} (rate {code_rate}, "
                            f"Eb/N0 {ebn0_db:.1f} dB, limit "
                            f"{limit:.4g})"),
                ))
                obs.counter("surrogate.validate.bound_checks")
        span.set(ok=report.ok, n_checks=len(report.checks),
                 n_failed=report.n_failed)
    return report


def require_valid(report):
    """Raise :class:`ConfigurationError` when a report has failures."""
    if not report.ok:
        first = next(c for c in report.checks if not c.ok)
        raise ConfigurationError(
            f"surface {report.surface_name!r} failed validation "
            f"({report.n_failed} checks): {first.kind} at {first.phy} "
            f"{first.snr_db:g} dB — {first.detail}"
        )
    return report
