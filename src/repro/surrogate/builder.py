"""Build PER surfaces through the campaign runner.

A surface build is just a campaign: one ``surface-link`` point per
``(phy, payload_bytes, snr_db)`` cell, fanned out by
:func:`~repro.campaign.runner.run_campaign` with everything that buys —
per-point deterministic seeding, adaptive MC precision, content-hash
caching (a rebuild with the same settings costs nothing and a widened
grid only pays for the new cells), fault isolation with retries, and
:mod:`repro.obs` tracing. The builder's own job is small: lay the grid
out, run it, fold the records into a :class:`PerSurface`, and persist
it next to the campaign's records.
"""

from __future__ import annotations

import os

import numpy as np

from repro import obs
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError
from repro.surrogate.surface import (SURFACE_META_FILE, PerSurface)

#: The point kind surface cells run as (registered in campaign.runner).
SURFACE_KIND = "surface-link"


def _clean_axis(name, values, integer=False):
    cast = (lambda v: int(v)) if integer else (lambda v: float(v))
    try:
        cleaned = sorted({cast(v) for v in np.atleast_1d(values).ravel()})
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be a sequence of numbers, got {values!r}"
        ) from None
    if not cleaned:
        raise ConfigurationError(f"{name} must not be empty")
    if not all(np.isfinite(cleaned)):
        raise ConfigurationError(f"{name} must be finite, got {values!r}")
    if integer and cleaned[0] < 1:
        raise ConfigurationError(
            f"{name} entries must be >= 1, got {cleaned[0]}"
        )
    return cleaned


def surface_spec(name, phys, snr_db, payload_bytes=(100,), channel="awgn",
                 n_packets=200, precision=None, max_trials=None,
                 confidence=0.95, base_seed=0):
    """The :class:`CampaignSpec` whose grid is one surface.

    Factor order is ``phy``, ``payload_bytes``, ``snr_db`` (last varies
    fastest), so cell ``(i_phy, i_pay, i_snr)`` is grid index
    ``(i_phy * n_pay + i_pay) * n_snr + i_snr`` — the layout
    :func:`build_surface` relies on when folding records into arrays.
    """
    phys = [str(p) for p in np.atleast_1d(phys).ravel()]
    if len(set(phys)) != len(phys):
        raise ConfigurationError(f"phys must be unique, got {phys}")
    fixed = {
        "channel": str(channel),
        "n_packets": int(n_packets),
        "confidence": float(confidence),
    }
    if precision is not None:
        fixed["precision"] = float(precision)
    if max_trials is not None:
        fixed["max_trials"] = int(max_trials)
    return CampaignSpec(
        name=str(name),
        kind=SURFACE_KIND,
        factors={
            "phy": phys,
            "payload_bytes": _clean_axis("payload_bytes", payload_bytes,
                                         integer=True),
            "snr_db": _clean_axis("snr_db", snr_db),
        },
        fixed=fixed,
        base_seed=int(base_seed),
    )


def build_surface(name, phys, snr_db, payload_bytes=(100,), channel="awgn",
                  n_packets=200, precision=None, max_trials=None,
                  confidence=0.95, base_seed=0, store=None, workers=1,
                  trace=False, echo=None, force=False):
    """Measure (or re-load from cache) one PER surface; returns it.

    With a ``store`` the campaign's cells are content-hash cached —
    interrupted builds resume where they stopped, identical rebuilds
    are free — and the finished surface is serialized into the
    campaign's results directory. ``precision`` (relative CI half-width
    target) with ``max_trials`` switches each cell's MC engine into
    adaptive mode; without it every cell spends exactly ``n_packets``.
    """
    spec = surface_spec(name, phys, snr_db, payload_bytes, channel,
                        n_packets, precision, max_trials, confidence,
                        base_seed)
    phy_list = spec.factors["phy"]
    pay_axis = spec.factors["payload_bytes"]
    snr_axis = spec.factors["snr_db"]
    n_phy, n_pay, n_snr = len(phy_list), len(pay_axis), len(snr_axis)

    with obs.span("surrogate.build", surface=spec.name, channel=channel,
                  n_cells=n_phy * n_pay * n_snr) as span:
        result = run_campaign(spec, workers=workers, store=store,
                              force=force, echo=echo, trace=trace)
        result.check()
        obs.counter("surrogate.cells.executed", result.n_executed)
        obs.counter("surrogate.cells.cached", result.n_cached)

        shape = (n_phy, n_pay, n_snr)
        per = np.full(shape, np.nan)
        ci_low = np.full(shape, np.nan)
        ci_high = np.full(shape, np.nan)
        ber = np.full(shape, np.nan)
        n_trials = np.zeros(shape)
        rate_mbps = np.zeros(n_phy)
        metrics = result.metrics_by_index()
        for i_phy in range(n_phy):
            for i_pay in range(n_pay):
                for i_snr in range(n_snr):
                    m = metrics[(i_phy * n_pay + i_pay) * n_snr + i_snr]
                    per[i_phy, i_pay, i_snr] = m["per"]
                    ci_low[i_phy, i_pay, i_snr] = m["per_ci_low"]
                    ci_high[i_phy, i_pay, i_snr] = m["per_ci_high"]
                    ber[i_phy, i_pay, i_snr] = m["ber"]
                    n_trials[i_phy, i_pay, i_snr] = m["n_trials"]
                    rate_mbps[i_phy] = m["rate_mbps"]

        code_version = result.records[0]["code_version"]
        surface = PerSurface(
            name=spec.name,
            channel=str(channel),
            phys=phy_list,
            rate_mbps=rate_mbps,
            snr_db=snr_axis,
            payload_bytes=pay_axis,
            per=per,
            per_ci_low=ci_low,
            per_ci_high=ci_high,
            ber=ber,
            n_trials=n_trials,
            meta={
                "base_seed": int(base_seed),
                "kind": SURFACE_KIND,
                "code_version": code_version,
                "n_packets": int(n_packets),
                "precision": precision,
                "max_trials": max_trials,
                "confidence": float(confidence),
                "build_wall_time_s": result.wall_time_s,
                "n_cached": result.n_cached,
                "n_executed": result.n_executed,
            },
        )
        if store is not None:
            surface.save(store.campaign_dir(spec.name))
        span.set(n_cached=result.n_cached, n_executed=result.n_executed,
                 total_trials=surface.total_trials)
    return surface


def surface_dir(store, name):
    """Directory a surface named ``name`` lives in under ``store``."""
    return store.campaign_dir(name)


def load_surface(store, name):
    """Load a previously built surface from the results store."""
    return PerSurface.load(surface_dir(store, name))


def list_surfaces(store):
    """Sorted names of every surface persisted under ``store``.

    A campaign directory counts when it holds a surface sidecar —
    plain (non-surface) campaigns in the same store are skipped.
    """
    if not os.path.isdir(store.root):
        return []
    names = []
    for entry in sorted(os.listdir(store.root)):
        if os.path.exists(os.path.join(store.root, entry,
                                       SURFACE_META_FILE)):
            names.append(entry)
    return names
