"""Dense PER surfaces: the PHY, precomputed once and queried forever.

A :class:`PerSurface` is a packet-error-rate grid

    PER[phy, payload_bytes, snr_db]

measured by the waveform simulator (one Monte-Carlo campaign per
surface, see :mod:`repro.surrogate.builder`) together with everything a
consumer needs to trust it: per-cell Wilson confidence intervals, trial
counts, the builder's base seed, the point-kind ``code_version``, and
the MC precision settings. Surfaces serialize to ``surface.npz`` (the
arrays) plus a ``surface.json`` sidecar (human-readable metadata) in a
campaign's results directory.

Interpolation happens in log-PER: PER waterfalls span many decades, so
linear interpolation of ``log10(PER)`` between grid points follows the
exponential tail instead of chord-cutting across it. Exact grid points
return the stored value exactly (including exact zeros), and queries
outside the grid follow an explicit policy — ``"clamp"`` to the edge or
``"error"``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: Bump when the on-disk layout changes incompatibly.
SURFACE_FORMAT = 1

#: File names inside a surface directory.
SURFACE_FILE = "surface.npz"
SURFACE_META_FILE = "surface.json"

#: Log-domain floor: a measured PER of 0 participates in interpolation
#: as this value (its true value is only bounded by the cell's CI).
PER_LOG_FLOOR = 1e-12

#: Out-of-grid query policies.
OUT_OF_GRID_POLICIES = ("clamp", "error")


def _json_safe(value):
    """Replace non-finite floats with ``None`` for strict-JSON sidecars."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _check_axis(name, values, integer=False):
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ConfigurationError(f"surface axis {name!r} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(
            f"surface axis {name!r} must be finite, got {values!r}"
        )
    if arr.size > 1 and not np.all(np.diff(arr) > 0):
        raise ConfigurationError(
            f"surface axis {name!r} must be strictly increasing, "
            f"got {list(arr)}"
        )
    if integer:
        if not np.all(arr == np.round(arr)) or np.any(arr < 1):
            raise ConfigurationError(
                f"surface axis {name!r} must hold positive integers, "
                f"got {values!r}"
            )
        return arr.astype(int)
    return arr


def _axis_position(grid, q):
    """``(lower index, fractional weight)`` of queries ``q`` on ``grid``.

    A single-point axis pins every query to its one cell (weight 0);
    exact grid hits produce an exact 0.0 or 1.0 weight, which is what
    lets :meth:`PerSurface.interpolate` return stored values verbatim.
    """
    if grid.size == 1:
        return np.zeros(q.shape, dtype=int), np.zeros(q.shape)
    i = np.clip(np.searchsorted(grid, q, side="right") - 1, 0,
                grid.size - 2)
    t = (q - grid[i]) / (grid[i + 1] - grid[i])
    return i, np.clip(t, 0.0, 1.0)


@dataclass
class PerSurface:
    """A precomputed PER(phy, payload, SNR) grid with full provenance.

    Arrays are indexed ``[i_phy, i_payload, i_snr]``. ``meta`` carries
    the build provenance: base seed, point-kind code version, MC
    precision/confidence, packet budgets — everything needed to decide
    whether two surfaces are comparable (and to rebuild this one).
    """

    name: str
    channel: str
    phys: list
    rate_mbps: np.ndarray
    snr_db: np.ndarray
    payload_bytes: np.ndarray
    per: np.ndarray
    per_ci_low: np.ndarray
    per_ci_high: np.ndarray
    ber: np.ndarray
    n_trials: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.phys = [str(p) for p in self.phys]
        if not self.phys:
            raise ConfigurationError("surface needs at least one phy")
        if len(set(self.phys)) != len(self.phys):
            raise ConfigurationError(
                f"surface phys must be unique, got {self.phys}"
            )
        self.snr_db = _check_axis("snr_db", self.snr_db)
        self.payload_bytes = _check_axis("payload_bytes",
                                         self.payload_bytes, integer=True)
        self.rate_mbps = np.asarray(self.rate_mbps, dtype=float).ravel()
        if self.rate_mbps.size != len(self.phys):
            raise ConfigurationError(
                f"rate_mbps must carry one rate per phy "
                f"({len(self.phys)}), got {self.rate_mbps.size}"
            )
        shape = (len(self.phys), self.payload_bytes.size, self.snr_db.size)
        for attr in ("per", "per_ci_low", "per_ci_high", "ber", "n_trials"):
            arr = np.asarray(getattr(self, attr), dtype=float)
            if arr.shape != shape:
                raise ConfigurationError(
                    f"surface array {attr!r} must have shape "
                    f"(n_phy, n_payload, n_snr) = {shape}, got {arr.shape}"
                )
            setattr(self, attr, arr)
        finite = self.per[np.isfinite(self.per)]
        if np.any((finite < 0.0) | (finite > 1.0)):
            raise ConfigurationError("surface PER values must lie in [0, 1]")
        self.meta = dict(self.meta)

    # -- introspection -------------------------------------------------------

    @property
    def shape(self):
        """``(n_phy, n_payload, n_snr)``."""
        return self.per.shape

    @property
    def n_cells(self):
        """Total grid cells."""
        return int(np.prod(self.shape))

    @property
    def total_trials(self):
        """Waveform packets spent building the whole surface."""
        return int(np.nansum(self.n_trials))

    def phy_index(self, phy):
        """Index of ``phy`` on the phy axis (raises when absent)."""
        try:
            return self.phys.index(str(phy))
        except ValueError:
            raise ConfigurationError(
                f"surface {self.name!r} has no phy {phy!r}; available: "
                f"{', '.join(self.phys)}"
            ) from None

    def rate_index(self, rate_mbps):
        """Index of the phy whose PHY rate matches ``rate_mbps``."""
        match = np.nonzero(np.isclose(self.rate_mbps, float(rate_mbps),
                                      rtol=1e-9, atol=1e-6))[0]
        if match.size == 0:
            raise ConfigurationError(
                f"surface {self.name!r} has no phy at {rate_mbps} Mbps; "
                f"rates: {sorted(set(self.rate_mbps.tolist()))}"
            )
        return int(match[0])

    # -- interpolation -------------------------------------------------------

    def _clip_axis(self, name, grid, q, out_of_grid):
        if out_of_grid not in OUT_OF_GRID_POLICIES:
            raise ConfigurationError(
                f"out_of_grid must be one of {OUT_OF_GRID_POLICIES}, "
                f"got {out_of_grid!r}"
            )
        if not np.all(np.isfinite(q)):
            raise ConfigurationError(
                f"{name} queries must be finite"
            )
        lo, hi = float(grid[0]), float(grid[-1])
        if out_of_grid == "error":
            bad = (q < lo) | (q > hi)
            if np.any(bad):
                value = float(np.asarray(q).ravel()[
                    np.nonzero(np.asarray(bad).ravel())[0][0]])
                raise ConfigurationError(
                    f"{name}={value:g} is outside the surface grid "
                    f"[{lo:g}, {hi:g}] (out_of_grid='error'; pass "
                    f"out_of_grid='clamp' to pin to the edge)"
                )
        return np.clip(q, lo, hi)

    def interpolate(self, phy, snr_db, payload_bytes=None,
                    out_of_grid="clamp", values="per"):
        """Log-domain bilinear interpolation over (payload, SNR).

        ``values`` selects the grid: ``"per"`` (default) or ``"ber"``.
        Exact grid points return stored values verbatim (zeros stay
        exact zeros); off-grid queries interpolate ``log10(value)``
        with zeros floored at :data:`PER_LOG_FLOOR`, and a query whose
        entire weight lands on zero cells stays 0. Scalar inputs get a
        scalar back; arrays broadcast.
        """
        if values not in ("per", "ber"):
            raise ConfigurationError(
                f"values must be 'per' or 'ber', got {values!r}"
            )
        plane = (self.per if values == "per" else self.ber)[
            self.phy_index(phy)]
        if payload_bytes is None:
            payload_bytes = int(self.payload_bytes[0])
        snr = np.asarray(snr_db, dtype=float)
        pay = np.asarray(payload_bytes, dtype=float)
        scalar = snr.ndim == 0 and pay.ndim == 0
        snr, pay = np.atleast_1d(snr), np.atleast_1d(pay)
        snr, pay = np.broadcast_arrays(snr, pay)
        snr = self._clip_axis("snr_db", self.snr_db, snr, out_of_grid)
        pay = self._clip_axis("payload_bytes",
                              self.payload_bytes.astype(float), pay,
                              out_of_grid)
        i_s, t_s = _axis_position(self.snr_db, snr)
        i_p, t_p = _axis_position(self.payload_bytes.astype(float), pay)
        j_s = np.minimum(i_s + 1, self.snr_db.size - 1)
        j_p = np.minimum(i_p + 1, self.payload_bytes.size - 1)

        corners = (plane[i_p, i_s], plane[i_p, j_s],
                   plane[j_p, i_s], plane[j_p, j_s])
        weights = ((1.0 - t_p) * (1.0 - t_s), (1.0 - t_p) * t_s,
                   t_p * (1.0 - t_s), t_p * t_s)
        logs = [np.log10(np.maximum(c, PER_LOG_FLOOR)) for c in corners]
        out = 10.0 ** sum(w * g for w, g in zip(weights, logs))
        # All interpolation weight on measured-zero cells -> exactly 0.
        zero_weight = sum(w * (c == 0.0) for w, c in zip(weights, corners))
        out = np.where(zero_weight >= 1.0, 0.0, out)
        # Exact grid hits return the stored value bit for bit.
        for w, c in zip(weights, corners):
            out = np.where(w == 1.0, c, out)
        return float(out.ravel()[0]) if scalar else out

    def per_at(self, phy, snr_db, payload_bytes=None, out_of_grid="clamp"):
        """Interpolated PER for one phy (see :meth:`interpolate`)."""
        return self.interpolate(phy, snr_db, payload_bytes, out_of_grid,
                                values="per")

    def per_for_rate(self, rate_mbps, snr_db, payload_bytes=None,
                     out_of_grid="clamp"):
        """Interpolated PER selected by PHY rate instead of phy name.

        The entry point rate controllers use: a ladder speaks in Mbps,
        the surface in phy names; :meth:`rate_index` bridges them.
        """
        return self.interpolate(self.phys[self.rate_index(rate_mbps)],
                                snr_db, payload_bytes, out_of_grid,
                                values="per")

    def cell(self, phy, snr_db, payload_bytes=None):
        """Stored stats of one exact grid cell.

        Returns ``{"per", "ci_low", "ci_high", "ber", "n_trials"}``;
        raises when ``(snr_db, payload_bytes)`` is not a grid point.
        """
        i_phy = self.phy_index(phy)
        if payload_bytes is None:
            payload_bytes = int(self.payload_bytes[0])
        i_s = np.nonzero(np.isclose(self.snr_db, float(snr_db)))[0]
        i_p = np.nonzero(self.payload_bytes == int(payload_bytes))[0]
        if i_s.size == 0 or i_p.size == 0:
            raise ConfigurationError(
                f"({snr_db} dB, {payload_bytes} B) is not a grid point of "
                f"surface {self.name!r}"
            )
        i_s, i_p = int(i_s[0]), int(i_p[0])
        return {
            "per": float(self.per[i_phy, i_p, i_s]),
            "ci_low": float(self.per_ci_low[i_phy, i_p, i_s]),
            "ci_high": float(self.per_ci_high[i_phy, i_p, i_s]),
            "ber": float(self.ber[i_phy, i_p, i_s]),
            "n_trials": int(self.n_trials[i_phy, i_p, i_s]),
        }

    # -- persistence ---------------------------------------------------------

    def save(self, directory):
        """Write ``surface.npz`` + ``surface.json`` into ``directory``."""
        os.makedirs(directory, exist_ok=True)
        np.savez_compressed(
            os.path.join(directory, SURFACE_FILE),
            snr_db=self.snr_db,
            payload_bytes=self.payload_bytes,
            rate_mbps=self.rate_mbps,
            per=self.per,
            per_ci_low=self.per_ci_low,
            per_ci_high=self.per_ci_high,
            ber=self.ber,
            n_trials=self.n_trials,
        )
        sidecar = {
            "format": SURFACE_FORMAT,
            "name": self.name,
            "channel": self.channel,
            "phys": list(self.phys),
            "rate_mbps": [float(r) for r in self.rate_mbps],
            "snr_db": [float(s) for s in self.snr_db],
            "payload_bytes": [int(p) for p in self.payload_bytes],
            "meta": _json_safe(self.meta),
        }
        path = os.path.join(directory, SURFACE_META_FILE)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(sidecar, fh, indent=2, sort_keys=True,
                      allow_nan=False)
            fh.write("\n")
        return directory

    @classmethod
    def load(cls, directory):
        """Load a surface previously written by :meth:`save`."""
        meta_path = os.path.join(directory, SURFACE_META_FILE)
        data_path = os.path.join(directory, SURFACE_FILE)
        if not (os.path.exists(meta_path) and os.path.exists(data_path)):
            raise ConfigurationError(
                f"{directory!r} holds no PER surface "
                f"({SURFACE_META_FILE} + {SURFACE_FILE})"
            )
        with open(meta_path, "r", encoding="utf-8") as fh:
            try:
                sidecar = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"surface sidecar {meta_path}: invalid JSON ({exc})"
                ) from None
        if sidecar.get("format") != SURFACE_FORMAT:
            raise ConfigurationError(
                f"surface {directory!r} has format "
                f"{sidecar.get('format')!r}; this build reads format "
                f"{SURFACE_FORMAT}"
            )
        with np.load(data_path) as arrays:
            return cls(
                name=sidecar["name"],
                channel=sidecar["channel"],
                phys=list(sidecar["phys"]),
                rate_mbps=arrays["rate_mbps"],
                snr_db=arrays["snr_db"],
                payload_bytes=arrays["payload_bytes"],
                per=arrays["per"],
                per_ci_low=arrays["per_ci_low"],
                per_ci_high=arrays["per_ci_high"],
                ber=arrays["ber"],
                n_trials=arrays["n_trials"],
                meta=dict(sidecar.get("meta", {})),
            )

    def summary_lines(self):
        """Printable overview (the body of ``repro surface show``)."""
        lines = [
            f"surface {self.name!r}: {len(self.phys)} phy(s) x "
            f"{self.payload_bytes.size} payload(s) x "
            f"{self.snr_db.size} SNR(s) over {self.channel!r}",
            f"  snr_db        : {self.snr_db[0]:g} .. {self.snr_db[-1]:g} "
            f"({self.snr_db.size} points)",
            f"  payload_bytes : {[int(p) for p in self.payload_bytes]}",
            f"  waveform cost : {self.total_trials} packets "
            f"({self.n_cells} cells)",
        ]
        for key in ("base_seed", "code_version", "precision", "max_trials",
                    "confidence", "n_packets"):
            if key in self.meta:
                lines.append(f"  {key:<13} : {self.meta[key]}")
        for i, phy in enumerate(self.phys):
            per_row = self.per[i, 0]
            lines.append(
                f"  {phy:<12} {self.rate_mbps[i]:6.1f} Mbps  PER "
                f"{per_row[0]:.3f} -> {per_row[-1]:.3f} across the grid"
            )
        return lines
