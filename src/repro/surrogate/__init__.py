"""repro.surrogate: precomputed PER surfaces for network-scale runs.

The waveform simulator (:mod:`repro.core.link`) prices every packet at
full baseband cost, which caps PHY-realistic studies at a handful of
stations. This package precomputes that cost once — a
:class:`PerSurface` grid of PER(phy, payload, SNR) measured through the
campaign runner with error bars and provenance — and then serves
packets from the table: :class:`AbstractLink` interpolates log-PER and
draws vectorized Bernoulli outcomes behind the same consumer API as
:class:`~repro.core.link.LinkSimulator`, so :mod:`repro.mesh` and
:mod:`repro.mac` consumers scale to thousands of stations without
knowing which backend they run on. :mod:`repro.surrogate.validate`
keeps the table honest against the waveform path it summarizes.
"""

from repro.surrogate.abstract_link import AbstractLink, WaveformLink
from repro.surrogate.builder import (build_surface, list_surfaces,
                                     load_surface, surface_spec)
from repro.surrogate.surface import PerSurface
from repro.surrogate.validate import (ValidationReport, require_valid,
                                      validate_surface)

__all__ = [
    "AbstractLink",
    "PerSurface",
    "ValidationReport",
    "WaveformLink",
    "build_surface",
    "list_surfaces",
    "load_surface",
    "require_valid",
    "surface_spec",
    "validate_surface",
]
