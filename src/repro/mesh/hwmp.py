"""HWMP-style on-demand route discovery over the event kernel.

`MeshNetwork` computes best paths with global knowledge; a real 802.11s
mesh *discovers* them: a source floods a path request (PREQ) that
accumulates the airtime metric hop by hop, intermediate nodes re-broadcast
improvements, and the destination answers with a path reply (PREP) along
the best reverse path. This module implements that machinery on
:class:`repro.mac.events.EventScheduler`, with sequence numbers to
suppress stale floods — enough protocol to show that *distributed*
discovery converges to the same "multiple hops over high capacity links"
routes the paper's argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.mac.events import EventScheduler

#: Per-hop relay latency: processing + contention before re-broadcast.
DEFAULT_HOP_DELAY_S = 2e-3


@dataclass
class RouteEntry:
    """One node's knowledge of the path back toward a PREQ originator."""

    next_hop: int
    metric: float
    sequence: int


@dataclass
class DiscoveryResult:
    """Outcome of one route discovery."""

    source: int
    destination: int
    path: list
    metric_s: float
    preq_broadcasts: int
    discovery_time_s: float

    @property
    def hop_count(self):
        """Number of links on the discovered path."""
        return max(len(self.path) - 1, 0)


class HwmpRouter:
    """On-demand path discovery over a :class:`MeshNetwork`.

    Parameters
    ----------
    network : MeshNetwork
        Supplies connectivity and per-link airtime metrics.
    hop_delay_s : float
        Forwarding latency per rebroadcast.

    Examples
    --------
    >>> from repro.mesh.network import MeshNetwork
    >>> from repro.mesh.topology import line_positions
    >>> router = HwmpRouter(MeshNetwork(line_positions(3, 28.0)))
    >>> router.discover(0, 2).path
    [0, 1, 2]
    """

    def __init__(self, network, hop_delay_s=DEFAULT_HOP_DELAY_S):
        if hop_delay_s <= 0:
            raise ConfigurationError("hop delay must be positive")
        self.network = network
        self.hop_delay_s = hop_delay_s
        self._sequence = 0

    def _neighbours(self, node):
        return list(self.network.graph.neighbors(node))

    def _link_metric(self, a, b):
        return self.network.graph.edges[a, b]["airtime_s"]

    def discover(self, source, destination):
        """Flood a PREQ from ``source``; returns the discovered route.

        Raises
        ------
        SimulationError
            If the destination is unreachable.
        """
        if source == destination:
            raise ConfigurationError("source and destination coincide")
        self._sequence += 1
        sequence = self._sequence
        sched = EventScheduler()
        # routes[node] = best-known RouteEntry back toward the source.
        routes = {}
        stats = {"broadcasts": 0, "best_at_dest": None, "done_at": None}

        def handle_preq(node, metric, previous):
            known = routes.get(node)
            if known is not None and known.sequence == sequence \
                    and known.metric <= metric:
                return  # not an improvement: suppress the rebroadcast
            routes[node] = RouteEntry(next_hop=previous, metric=metric,
                                      sequence=sequence)
            if node == destination:
                stats["best_at_dest"] = metric
                stats["done_at"] = sched.now
                return  # destinations answer with a PREP; they don't flood
            stats["broadcasts"] += 1
            for neighbour in self._neighbours(node):
                if neighbour == previous:
                    continue
                sched.schedule_in(
                    self.hop_delay_s,
                    handle_preq, neighbour,
                    metric + self._link_metric(node, neighbour), node,
                )

        routes[source] = RouteEntry(next_hop=source, metric=0.0,
                                    sequence=sequence)
        stats["broadcasts"] += 1
        for neighbour in self._neighbours(source):
            sched.schedule_in(
                self.hop_delay_s, handle_preq, neighbour,
                self._link_metric(source, neighbour), source,
            )
        sched.run(max_events=100_000)

        if destination not in routes:
            raise SimulationError(
                f"destination {destination} unreachable from {source}"
            )
        # Walk the PREP back along recorded predecessors.
        path = [destination]
        while path[-1] != source:
            path.append(routes[path[-1]].next_hop)
            if len(path) > self.network.n_nodes + 1:
                raise SimulationError("routing loop detected")
        path.reverse()
        return DiscoveryResult(
            source=source,
            destination=destination,
            path=path,
            metric_s=routes[destination].metric,
            preq_broadcasts=stats["broadcasts"],
            discovery_time_s=stats["done_at"] or sched.now,
        )

    def discover_all_from(self, source):
        """Routes from ``source`` to every reachable node (one flood each)."""
        results = {}
        for node in self.network.graph.nodes:
            if node == source:
                continue
            try:
                results[node] = self.discover(source, node)
            except SimulationError:
                continue
        return results
