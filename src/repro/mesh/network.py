"""The mesh network object: positions + link budget -> routed throughput."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.errors import ConfigurationError
from repro.mesh.metrics import airtime_metric_s, hop_count_metric
from repro.mesh.topology import pairwise_distances
from repro.standards.registry import get_standard


class MeshNetwork:
    """A mesh of WLAN nodes over a distance-based link abstraction.

    Parameters
    ----------
    positions : (N, 2) array
        Node coordinates in metres.
    standard : str
        Which generation's rate table links use (default "802.11a").
    budget : LinkBudget, optional
        Radio parameters shared by all nodes.

    Examples
    --------
    >>> from repro.mesh.topology import line_positions
    >>> net = MeshNetwork(line_positions(3, 30.0))
    >>> path = net.best_path(0, 2)
    >>> net.path_throughput_mbps(path) > 0
    True
    """

    def __init__(self, positions, standard="802.11a", budget=None):
        self.positions = np.asarray(positions, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ConfigurationError("positions must be (N, 2)")
        self.standard = get_standard(standard) if isinstance(standard, str) \
            else standard
        self.budget = budget or LinkBudget()
        self.n_nodes = self.positions.shape[0]
        self._build_graph()

    def _build_graph(self):
        """All-pairs link evaluation, vectorised.

        The seed-era double loop called ``snr_at`` and ``rate_at_snr``
        once per pair — O(N^2) Python-level work that made 1000-node
        meshes (the surrogate's whole point) take minutes. Here the
        upper triangle is evaluated as one array pass: path loss over
        the distance matrix, then ``rate_at_snr`` replicated as a
        searchsorted against the standard's sorted SNR thresholds with
        a running max of the rates they unlock (identical tie-breaking:
        the highest rate whose requirement is met). Edges and their
        attributes are exactly those of the scalar loop.
        """
        distances = pairwise_distances(self.positions)
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.n_nodes))
        if self.n_nodes < 2:
            return
        iu, ju = np.triu_indices(self.n_nodes, k=1)
        pair_d = distances[iu, ju]
        snr = np.asarray(self.budget.snr_at(np.maximum(pair_d, 0.1)),
                         dtype=float)

        entries = sorted(self.standard.rates,
                         key=lambda r: r.required_snr_db)
        thresholds = np.array([r.required_snr_db for r in entries])
        best_rate = np.maximum.accumulate(
            np.array([r.rate_mbps for r in entries], dtype=float))
        idx = np.searchsorted(thresholds, snr, side="right") - 1
        usable = idx >= 0

        # Metric functions are pure in the rate; price each distinct
        # ladder rung once instead of once per edge.
        metric_cache = {
            float(r): (airtime_metric_s(r), hop_count_metric(r))
            for r in np.unique(best_rate)
        }
        self.graph.add_edges_from(
            (int(i), int(j), {
                "distance_m": float(d),
                "snr_db": float(s),
                "rate_mbps": rate,
                "airtime_s": metric_cache[rate][0],
                "hops": metric_cache[rate][1],
            })
            for i, j, d, s, rate in zip(
                iu[usable], ju[usable], pair_d[usable], snr[usable],
                (float(r) for r in best_rate[idx[usable]]))
        )

    def link_rate_mbps(self, i, j):
        """Rate of the direct link i-j (None if out of range)."""
        if not self.graph.has_edge(i, j):
            return None
        return self.graph.edges[i, j]["rate_mbps"]

    def best_path(self, source, destination, metric="airtime"):
        """Minimum-cost path under the chosen metric.

        ``metric`` is "airtime" (the 802.11s intelligent-routing metric) or
        "hops" (naive shortest hop count). Returns the node list, or None
        when disconnected.
        """
        weight = {"airtime": "airtime_s", "hops": "hops"}.get(metric)
        if weight is None:
            raise ConfigurationError(
                f"metric must be 'airtime' or 'hops', got {metric!r}"
            )
        try:
            return nx.shortest_path(self.graph, source, destination,
                                    weight=weight)
        except nx.NetworkXNoPath:
            return None

    def path_rates(self, path):
        """Per-hop link rates along a node path."""
        if path is None or len(path) < 2:
            raise ConfigurationError("path must contain at least two nodes")
        return [self.graph.edges[a, b]["rate_mbps"]
                for a, b in zip(path[:-1], path[1:])]

    def path_throughput_mbps(self, path):
        """End-to-end goodput over a shared half-duplex medium.

        Hops of one flow cannot transmit simultaneously (single radio,
        single channel), so moving one bit end to end costs the *sum* of
        per-hop airtimes: throughput = 1 / sum_i (1 / r_i).
        """
        rates = self.path_rates(path)
        return 1.0 / sum(1.0 / r for r in rates)

    def path_airtime_per_bit(self, path):
        """Channel seconds consumed per delivered bit (spectral-efficiency
        proxy: lower is better)."""
        rates = self.path_rates(path)
        return sum(1.0 / (r * 1e6) for r in rates)

    def end_to_end_throughput_mbps(self, source, destination,
                                   metric="airtime"):
        """Best-path goodput between two nodes (0 when disconnected)."""
        path = self.best_path(source, destination, metric)
        if path is None or len(path) < 2:
            return 0.0
        return self.path_throughput_mbps(path)

    def is_connected(self):
        """True if every node can reach every other node."""
        return nx.is_connected(self.graph) if self.n_nodes > 0 else True

    def average_throughput_matrix(self, metric="airtime"):
        """Mean end-to-end goodput over all ordered node pairs."""
        totals = []
        for s in range(self.n_nodes):
            for d in range(self.n_nodes):
                if s == d:
                    continue
                totals.append(self.end_to_end_throughput_mbps(s, d, metric))
        return float(np.mean(totals)) if totals else 0.0
