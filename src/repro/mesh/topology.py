"""Mesh node placement helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


def random_positions(n_nodes, area_side_m, rng=None):
    """Uniform random (x, y) positions in a square area."""
    if n_nodes < 1 or area_side_m <= 0:
        raise ConfigurationError("need >= 1 node and a positive area side")
    rng = as_generator(rng)
    return rng.uniform(0.0, area_side_m, size=(int(n_nodes), 2))


def grid_positions(n_per_side, spacing_m):
    """Regular square grid of n_per_side^2 nodes."""
    if n_per_side < 1 or spacing_m <= 0:
        raise ConfigurationError("need >= 1 per side and positive spacing")
    coords = np.arange(n_per_side) * spacing_m
    xx, yy = np.meshgrid(coords, coords)
    return np.column_stack([xx.ravel(), yy.ravel()])


def line_positions(n_nodes, spacing_m):
    """Nodes on a line — the canonical multi-hop-vs-single-hop geometry."""
    if n_nodes < 2 or spacing_m <= 0:
        raise ConfigurationError("need >= 2 nodes and positive spacing")
    x = np.arange(n_nodes) * spacing_m
    return np.column_stack([x, np.zeros(n_nodes)])


def pairwise_distances(positions):
    """Dense distance matrix between node positions."""
    positions = np.asarray(positions, dtype=float)
    deltas = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((deltas ** 2).sum(axis=2))
