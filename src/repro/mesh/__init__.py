"""Mesh networking (the paper's 802.11s discussion).

"Mesh networks have the potential to dramatically increase the area served
... even to boost overall spectral efficiencies ... by selecting multiple
hops over high capacity links rather than single hops over low capacity
links." This package models exactly that: geometric topologies whose link
rates come from the standards' SNR tables, the 802.11s airtime link
metric, routing, shared-medium end-to-end throughput, and coverage-area
analysis.
"""

from repro.mesh.coverage import coverage_area_m2, coverage_fraction
from repro.mesh.hwmp import HwmpRouter
from repro.mesh.metrics import airtime_metric_s, hop_count_metric
from repro.mesh.network import MeshNetwork
from repro.mesh.spectrum import assign_channels, deployment_capacity
from repro.mesh.routing import (
    best_path,
    path_throughput_mbps,
)
from repro.mesh.topology import grid_positions, random_positions

__all__ = [
    "coverage_area_m2",
    "coverage_fraction",
    "HwmpRouter",
    "assign_channels",
    "deployment_capacity",
    "airtime_metric_s",
    "hop_count_metric",
    "MeshNetwork",
    "best_path",
    "path_throughput_mbps",
    "grid_positions",
    "random_positions",
]
