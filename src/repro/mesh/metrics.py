"""Routing link metrics.

The airtime metric is what 802.11s standardised for its default routing
protocol (HWMP): the expected channel time to move a test frame across a
link,

    c_a = (O + B_t / r) * 1 / (1 - e_f)

with O the protocol overhead time, B_t the test frame size (8192 bits),
r the link rate and e_f the frame error rate. Choosing paths by summed
airtime is exactly "multiple hops over high capacity links rather than
single hops over low capacity links".
"""

from __future__ import annotations

from repro.errors import ConfigurationError

TEST_FRAME_BITS = 8192
DEFAULT_OVERHEAD_S = 1.25e-4  # preamble + MAC overhead + IFS, OFDM-class


def airtime_metric_s(rate_mbps, frame_error_rate=0.0,
                     overhead_s=DEFAULT_OVERHEAD_S,
                     test_frame_bits=TEST_FRAME_BITS):
    """The 802.11s airtime cost of one link, in seconds."""
    if rate_mbps is None or rate_mbps <= 0:
        raise ConfigurationError("link rate must be positive")
    if not 0 <= frame_error_rate < 1:
        raise ConfigurationError("frame error rate must be in [0, 1)")
    transmit_s = overhead_s + test_frame_bits / (rate_mbps * 1e6)
    return transmit_s / (1.0 - frame_error_rate)


def hop_count_metric(rate_mbps, frame_error_rate=0.0):
    """Naive metric: every usable link costs 1."""
    if rate_mbps is None or rate_mbps <= 0:
        raise ConfigurationError("link rate must be positive")
    return 1.0
