"""Coverage-area analysis: the paper's "dramatically increase the area
served by a wireless network" claim.

Coverage is evaluated by Monte-Carlo: a test point is covered when some
mesh point sustains at least the target rate to it (and the mesh point can
reach the wired portal through the mesh). Sampling runs through the
:mod:`repro.core.mc` engine — the per-sample Python loop of the seed
implementation is replaced by a distance-matrix + vectorised SNR
threshold, bit-identical to the scalar path at the same seed, and a
``precision`` target turns the fixed sample budget into an adaptive one
with a Wilson CI on the covered fraction.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro import obs
from repro.analysis.linkbudget import LinkBudget
from repro.core.mc import run_trials
from repro.errors import ConfigurationError
from repro.mesh.network import MeshNetwork
from repro.standards.registry import get_standard
from repro.utils.rng import as_generator


def _coverage_threshold_snr_db(std, min_rate_mbps):
    """Lowest SNR at which ``std`` sustains ``min_rate_mbps``.

    A sample point is covered iff its SNR clears this threshold — the
    vectorised equivalent of ``rate_at_snr(snr).rate_mbps >=
    min_rate_mbps`` (some usable rate meets the floor exactly when the
    cheapest qualifying rate does). ``None`` when no rate qualifies.
    """
    qualifying = [r.required_snr_db for r in std.rates
                  if r.rate_mbps >= min_rate_mbps]
    return min(qualifying) if qualifying else None


def coverage_result(mesh_positions, area_side_m, min_rate_mbps=6.0,
                    standard="802.11a", budget=None, portal=0,
                    n_samples=4000, rng=None, precision=None,
                    max_trials=None, confidence=0.95, batch_size=1000,
                    link=None, max_per=0.1):
    """Monte-Carlo coverage estimate as a :class:`~repro.core.mc.McResult`.

    The estimate is the covered fraction with a Wilson confidence
    interval. ``precision=None`` draws exactly ``n_samples`` points
    (bit-identical to the seed-era scalar loop at the same seed); a
    precision target samples adaptively up to ``max_trials``.

    ``link`` switches the access-link test from the rate-table SNR
    threshold to a PER oracle — an
    :class:`~repro.surrogate.AbstractLink` (or anything exposing
    ``per_at(snr_db)``, e.g. :class:`~repro.surrogate.WaveformLink`):
    a sample point is then covered when the nearest reachable mesh
    point's PER is at most ``max_per``. ``min_rate_mbps`` is ignored in
    that mode (the link already embodies one PHY rate). Mesh-to-portal
    reachability uses the rate table either way.
    """
    positions = np.asarray(mesh_positions, dtype=float)
    if positions.ndim != 2:
        raise ConfigurationError("mesh positions must be (N, 2)")
    if link is not None and not 0.0 < float(max_per) <= 1.0:
        raise ConfigurationError(
            f"max_per must be in (0, 1], got {max_per!r}"
        )
    budget = budget or LinkBudget()
    std = get_standard(standard) if isinstance(standard, str) else standard
    rng = as_generator(rng)
    net = MeshNetwork(positions, std, budget)
    if not 0 <= int(portal) < net.n_nodes:
        raise ConfigurationError(
            f"portal must index a mesh node (0..{net.n_nodes - 1}), "
            f"got {portal!r}"
        )
    # Reachability is pure graph connectivity: best_path(portal, node)
    # exists iff node shares the portal's connected component. One
    # component lookup replaces N shortest-path searches.
    reachable = set(nx.node_connected_component(net.graph, int(portal)))
    reach_pos = positions[sorted(reachable)]
    threshold_db = _coverage_threshold_snr_db(std, min_rate_mbps)

    def sample_batch(rng, m):
        points = rng.uniform(0.0, area_side_m, size=(m, 2))
        if not reachable or (link is None and threshold_db is None):
            return {"covered": 0}
        # (m, n_reachable) distance matrix; nearest mesh point decides.
        d = np.sqrt(((points[:, None, :] - reach_pos[None, :, :]) ** 2)
                    .sum(axis=2))
        nearest = np.maximum(d.min(axis=1), 0.1)
        snr = budget.snr_at(nearest)
        if link is not None:
            ok = np.asarray(link.per_at(snr)) <= float(max_per)
            return {"covered": int(np.count_nonzero(ok))}
        return {"covered": int(np.count_nonzero(snr >= threshold_db))}

    with obs.span("mesh.coverage", standard=std.name,
                  n_mesh=int(positions.shape[0]),
                  n_reachable=len(reachable),
                  surrogate=link is not None) as span:
        result = run_trials(sample_batch, n_trials=int(n_samples),
                            target="covered", rng=rng, precision=precision,
                            max_trials=max_trials, confidence=confidence,
                            batch_size=batch_size, vectorized=True)
        span.set(n_trials=result.n_trials, stop_reason=result.stop_reason)
    return result


def coverage_fraction(mesh_positions, area_side_m, min_rate_mbps=6.0,
                      standard="802.11a", budget=None, portal=0,
                      n_samples=4000, rng=None, **mc_kwargs):
    """Fraction of a square area covered by a mesh with a wired portal.

    A point counts as covered when its best mesh point (a) offers at least
    ``min_rate_mbps`` on the access link and (b) has a mesh path to the
    portal node. ``mc_kwargs`` (``precision``, ``max_trials``,
    ``confidence``, ``batch_size``) enable adaptive sampling, and
    ``link=``/``max_per=`` switch the access test to a surrogate PER
    oracle (see :func:`coverage_result`, which also returns the
    confidence interval).
    """
    result = coverage_result(mesh_positions, area_side_m, min_rate_mbps,
                             standard, budget, portal, n_samples, rng,
                             **mc_kwargs)
    return result.n_events / result.n_trials


def coverage_area_m2(mesh_positions, area_side_m, **kwargs):
    """Covered area in square metres (coverage fraction x area)."""
    frac = coverage_fraction(mesh_positions, area_side_m, **kwargs)
    return frac * area_side_m ** 2


def single_ap_radius_m(min_rate_mbps=6.0, standard="802.11a", budget=None):
    """Radius at which a lone AP still offers ``min_rate_mbps``."""
    budget = budget or LinkBudget()
    std = get_standard(standard) if isinstance(standard, str) else standard
    entry = next((r for r in sorted(std.rates, key=lambda r: r.rate_mbps)
                  if r.rate_mbps >= min_rate_mbps), None)
    if entry is None:
        raise ConfigurationError(
            f"{std.name} cannot carry {min_rate_mbps} Mbps"
        )
    return budget.range_for_snr(entry.required_snr_db)
