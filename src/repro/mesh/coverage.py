"""Coverage-area analysis: the paper's "dramatically increase the area
served by a wireless network" claim.

Coverage is evaluated by Monte-Carlo: a test point is covered when some
mesh point sustains at least the target rate to it (and the mesh point can
reach the wired portal through the mesh).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.errors import ConfigurationError
from repro.mesh.network import MeshNetwork
from repro.standards.registry import get_standard
from repro.utils.rng import as_generator


def coverage_fraction(mesh_positions, area_side_m, min_rate_mbps=6.0,
                      standard="802.11a", budget=None, portal=0,
                      n_samples=4000, rng=None):
    """Fraction of a square area covered by a mesh with a wired portal.

    A point counts as covered when its best mesh point (a) offers at least
    ``min_rate_mbps`` on the access link and (b) has a mesh path to the
    portal node.
    """
    positions = np.asarray(mesh_positions, dtype=float)
    if positions.ndim != 2:
        raise ConfigurationError("mesh positions must be (N, 2)")
    budget = budget or LinkBudget()
    std = get_standard(standard) if isinstance(standard, str) else standard
    rng = as_generator(rng)
    net = MeshNetwork(positions, std, budget)
    reachable = set()
    for node in range(net.n_nodes):
        if node == portal or net.best_path(portal, node) is not None:
            reachable.add(node)
    if not reachable:
        return 0.0
    reach_pos = positions[sorted(reachable)]
    points = rng.uniform(0.0, area_side_m, size=(int(n_samples), 2))
    covered = 0
    for p in points:
        d = np.sqrt(((reach_pos - p) ** 2).sum(axis=1))
        snr = budget.snr_at(max(float(d.min()), 0.1))
        entry = std.rate_at_snr(snr)
        if entry is not None and entry.rate_mbps >= min_rate_mbps:
            covered += 1
    return covered / n_samples


def coverage_area_m2(mesh_positions, area_side_m, **kwargs):
    """Covered area in square metres (coverage fraction x area)."""
    frac = coverage_fraction(mesh_positions, area_side_m, **kwargs)
    return frac * area_side_m ** 2


def single_ap_radius_m(min_rate_mbps=6.0, standard="802.11a", budget=None):
    """Radius at which a lone AP still offers ``min_rate_mbps``."""
    budget = budget or LinkBudget()
    std = get_standard(standard) if isinstance(standard, str) else standard
    entry = next((r for r in sorted(std.rates, key=lambda r: r.rate_mbps)
                  if r.rate_mbps >= min_rate_mbps), None)
    if entry is None:
        raise ConfigurationError(
            f"{std.name} cannot carry {min_rate_mbps} Mbps"
        )
    return budget.range_for_snr(entry.required_snr_db)
