"""Functional routing helpers over a :class:`MeshNetwork`."""

from __future__ import annotations

from repro.errors import ConfigurationError


def best_path(network, source, destination, metric="airtime"):
    """Minimum-cost path on a mesh network (see MeshNetwork.best_path)."""
    return network.best_path(source, destination, metric)


def path_throughput_mbps(network, path):
    """Shared-medium end-to-end goodput of a path."""
    return network.path_throughput_mbps(path)


def compare_direct_vs_relay(network, source, destination):
    """The paper's core mesh comparison for one node pair.

    Returns a dict with the direct-link rate (or None), the airtime-routed
    path, its per-hop rates, and both end-to-end throughputs.
    """
    direct_rate = network.link_rate_mbps(source, destination)
    path = network.best_path(source, destination, metric="airtime")
    if path is None:
        raise ConfigurationError(
            f"nodes {source} and {destination} are disconnected"
        )
    routed = network.path_throughput_mbps(path)
    return {
        "direct_rate_mbps": direct_rate,
        "direct_throughput_mbps": direct_rate or 0.0,
        "routed_path": path,
        "routed_hop_rates": network.path_rates(path),
        "routed_throughput_mbps": routed,
        "multihop_wins": routed > (direct_rate or 0.0),
    }
