"""Multi-cell frequency reuse and co-channel interference.

The paper's history hinges on spectrum: "the large commercial success of
wireless LAN products ... motivated regulatory bodies ... to open
additional spectrum at 5 GHz". The practical consequence is channel
count: 2.4 GHz offers only 3 non-overlapping 20 MHz channels, the
2005-era 5 GHz U-NII bands offered 8+. This module quantifies what that
buys a dense deployment:

* conflict-graph channel assignment (greedy colouring over networkx);
* SINR at client points with co-channel interference summed linearly;
* deployment capacity comparisons between band plans.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.errors import ConfigurationError
from repro.mesh.topology import pairwise_distances
from repro.standards.registry import get_standard
from repro.utils.conversion import dbm_to_watts, watts_to_dbm
from repro.utils.rng import as_generator

#: Non-overlapping 20 MHz channels per band plan (2005-era regulations).
BAND_PLANS = {
    "2.4GHz": 3,    # channels 1 / 6 / 11
    "5GHz": 8,      # U-NII-1 + U-NII-2 as opened for 802.11a
    "5GHz-extended": 12,  # after the 2004 U-NII-2e expansion
}


def channels_in_band(band):
    """Number of non-overlapping channels a band plan offers."""
    if band not in BAND_PLANS:
        raise ConfigurationError(
            f"unknown band {band!r}; choose from {sorted(BAND_PLANS)}"
        )
    return BAND_PLANS[band]


def conflict_graph(positions, interference_range_m):
    """Graph with an edge between every AP pair that can interfere."""
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError("positions must be (N, 2)")
    distances = pairwise_distances(positions)
    graph = nx.Graph()
    graph.add_nodes_from(range(positions.shape[0]))
    n = positions.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if distances[i, j] <= interference_range_m:
                graph.add_edge(i, j)
    return graph


def assign_channels(positions, n_channels, interference_range_m=120.0):
    """Greedy channel assignment over the conflict graph.

    Returns
    -------
    (assignment, conflicts) : (list of int, int)
        ``assignment[i]`` is AP i's channel (0-based); ``conflicts`` counts
        conflict-graph edges whose endpoints had to share a channel (0 when
        the graph is n_channels-colourable by the greedy order).
    """
    if n_channels < 1:
        raise ConfigurationError("need at least one channel")
    graph = conflict_graph(positions, interference_range_m)
    colours = nx.greedy_color(graph, strategy="largest_first")
    assignment = [colours[i] % n_channels for i in range(len(positions))]
    conflicts = sum(
        1 for a, b in graph.edges if assignment[a] == assignment[b]
    )
    return assignment, conflicts


def sinr_db_at(point, serving_index, positions, assignment, budget=None):
    """SINR at a client point served by one AP amid co-channel others."""
    budget = budget or LinkBudget()
    positions = np.asarray(positions, dtype=float)
    point = np.asarray(point, dtype=float)
    distances = np.sqrt(((positions - point) ** 2).sum(axis=1))
    distances = np.maximum(distances, 0.5)
    rx_dbm = np.array([
        budget.tx_power_dbm + budget.antenna_gain_db
        - _loss_db(budget, d) for d in distances
    ])
    signal_w = dbm_to_watts(rx_dbm[serving_index])
    noise_w = dbm_to_watts(budget.noise_dbm)
    interferers = [
        i for i in range(len(positions))
        if i != serving_index and assignment[i] == assignment[serving_index]
    ]
    interference_w = sum(dbm_to_watts(rx_dbm[i]) for i in interferers)
    return float(watts_to_dbm(signal_w) - watts_to_dbm(
        noise_w + interference_w
    ))


def _loss_db(budget, distance_m):
    from repro.channel.pathloss import breakpoint_path_loss_db

    return breakpoint_path_loss_db(
        distance_m, budget.frequency_hz, budget.breakpoint_m,
        budget.path_loss_exponent,
    )


def deployment_capacity(positions, band, standard="802.11a", budget=None,
                        interference_range_m=120.0, n_clients=400,
                        area_side_m=None, rng=None):
    """Mean client rate across a deployment under a band plan.

    Clients are scattered uniformly; each associates with its nearest AP
    and gets the standard's best rate at its SINR (0 if below the ladder).

    Returns
    -------
    dict with ``mean_rate_mbps``, ``outage_fraction`` (clients with no
    usable rate), ``conflicts`` and ``n_channels``.
    """
    budget = budget or LinkBudget()
    std = get_standard(standard) if isinstance(standard, str) else standard
    rng = as_generator(rng)
    positions = np.asarray(positions, dtype=float)
    n_channels = channels_in_band(band)
    assignment, conflicts = assign_channels(
        positions, n_channels, interference_range_m
    )
    if area_side_m is None:
        area_side_m = float(positions.max() + positions.min())
    clients = rng.uniform(0.0, area_side_m, size=(int(n_clients), 2))
    rates = np.zeros(int(n_clients))
    for i, point in enumerate(clients):
        distances = np.sqrt(((positions - point) ** 2).sum(axis=1))
        serving = int(np.argmin(distances))
        sinr = sinr_db_at(point, serving, positions, assignment, budget)
        entry = std.rate_at_snr(sinr)
        rates[i] = 0.0 if entry is None else entry.rate_mbps
    return {
        "mean_rate_mbps": float(rates.mean()),
        "outage_fraction": float((rates == 0).mean()),
        "conflicts": conflicts,
        "n_channels": n_channels,
    }
