"""Summaries and pivot tables over stored campaign records.

The reporter is deliberately dumb about physics: it treats records as
``params`` (cell coordinates) plus ``metrics`` (cell values) and renders
aligned text tables, e.g. PER vs SNR with one column per PHY::

    e3-dsss-cck: per
    snr_db \\ phy |  dsss-1  dsss-2 cck-5.5  cck-11
    -2.0         |    0.00    0.04    0.52    1.00
    ...

Values aggregate with a mean when several records share a cell (e.g.
after reporting over a factor the pivot ignores).

MC-backed metrics carry their confidence intervals in companion keys
(``per_ci_low``/``per_ci_high``) and the consumed trial count in
``n_trials``; :func:`format_pivot` detects the companions and renders
``est [lo, hi]`` cells so every reported number ships its error bars.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def _cell_value(record, value):
    """Pull ``value`` from a record: metrics first, then top level."""
    metrics = record.get("metrics") or {}
    if value in metrics:
        return metrics[value]
    if value in record:
        return record[value]
    return None


def _axis_labels(records, axis):
    """Distinct values of a param axis, in first-appearance (grid) order."""
    seen = []
    for record in records:
        if axis not in record.get("params", {}):
            raise ConfigurationError(
                f"{axis!r} is not a parameter of these records; "
                f"available: {sorted(records[0].get('params', {}))}"
            )
        label = record["params"][axis]
        if label not in seen:
            seen.append(label)
    return seen


def pivot(records, value, rows, cols=None):
    """Aggregate records into ``(row_labels, col_labels, grid)``.

    ``grid[i][j]`` is the mean of ``value`` over all records whose params
    match ``rows=row_labels[i]`` (and ``cols=col_labels[j]`` when a column
    axis is given), or ``None`` for empty cells.
    """
    records = [r for r in records if r.get("outcome", "ok") == "ok"]
    if not records:
        raise ConfigurationError("no successful records to report on")
    row_labels = _axis_labels(records, rows)
    col_labels = _axis_labels(records, cols) if cols else [value]
    sums = {}
    counts = {}
    for record in records:
        val = _cell_value(record, value)
        # bool is an int subclass, but averaging True as 1.0 silently
        # turns flags into bogus "metrics" — booleans don't aggregate.
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            continue
        r = record["params"][rows]
        c = record["params"][cols] if cols else value
        sums[(r, c)] = sums.get((r, c), 0.0) + float(val)
        counts[(r, c)] = counts.get((r, c), 0) + 1
    grid = [
        [sums[(r, c)] / counts[(r, c)] if (r, c) in counts else None
         for c in col_labels]
        for r in row_labels
    ]
    return row_labels, col_labels, grid


def _fmt(value, width):
    if value is None:
        return " " * (width - 2) + "--"
    return f"{value:>{width}.4g}"


def _has_metric(records, name):
    return any(name in (r.get("metrics") or {}) for r in records
               if r.get("outcome", "ok") == "ok")


def _ci_cell(est, lo, hi):
    if est is None:
        return "--"
    if lo is None or hi is None:
        return f"{est:.4g}"
    return f"{est:.4g} [{lo:.4g}, {hi:.4g}]"


def format_pivot(records, value, rows, cols=None, title=None, ci="auto"):
    """Render a pivot as aligned text lines.

    ``ci="auto"`` (the default) looks for ``{value}_ci_low`` /
    ``{value}_ci_high`` companion metrics and, when present, renders
    each cell as ``est [lo, hi]``; ``ci=False`` forces bare estimates.
    """
    row_labels, col_labels, grid = pivot(records, value, rows, cols)
    with_ci = (ci in ("auto", True)
               and _has_metric(records, f"{value}_ci_low")
               and _has_metric(records, f"{value}_ci_high"))
    stub = f"{rows} \\ {cols}" if cols else rows
    stub_width = max(len(stub), *(len(str(r)) for r in row_labels)) + 1
    lines = []
    if title:
        lines.append(title)
    if with_ci:
        _, _, lo_grid = pivot(records, f"{value}_ci_low", rows, cols)
        _, _, hi_grid = pivot(records, f"{value}_ci_high", rows, cols)
        cells = [[_ci_cell(v, lo, hi)
                  for v, lo, hi in zip(row, lo_row, hi_row)]
                 for row, lo_row, hi_row in zip(grid, lo_grid, hi_grid)]
        col_width = max(8, *(len(str(c)) + 1 for c in col_labels),
                        *(len(c) + 2 for row in cells for c in row))
        lines.append(f"{stub:<{stub_width}}|"
                     + "".join(f"{str(c):>{col_width}}"
                               for c in col_labels))
        for label, row in zip(row_labels, cells):
            lines.append(f"{str(label):<{stub_width}}|"
                         + "".join(f"{c:>{col_width}}" for c in row))
        return lines
    col_width = max(8, *(len(str(c)) + 1 for c in col_labels))
    lines.append(f"{stub:<{stub_width}}|"
                 + "".join(f"{str(c):>{col_width}}" for c in col_labels))
    for label, row in zip(row_labels, grid):
        lines.append(f"{str(label):<{stub_width}}|"
                     + "".join(_fmt(v, col_width) for v in row))
    return lines


def summary_lines(records, name=None):
    """Campaign overview: point counts, outcomes, timing, workers."""
    lines = []
    header = f"campaign {name}" if name else "campaign"
    if not records:
        return [f"{header}: no records"]
    ok = [r for r in records if r.get("outcome") == "ok"]
    errors = [r for r in records if r.get("outcome") == "error"]
    timeouts = [r for r in records if r.get("outcome") == "timeout"]
    total_time = sum(r.get("wall_time_s", 0.0) for r in records)
    workers = sorted({r.get("worker") for r in records if r.get("worker")})
    kinds = sorted({r.get("kind") for r in records})
    lines.append(f"{header}: {len(records)} points "
                 f"({len(ok)} ok, {len(errors)} error, "
                 f"{len(timeouts)} timeout), kind "
                 f"{'/'.join(str(k) for k in kinds)}")
    lines.append(f"  simulated wall time {total_time:.2f}s across "
                 f"{len(workers)} worker process(es)")
    trials = [(r.get("metrics") or {}).get("n_trials") for r in ok]
    trials = [t for t in trials if isinstance(t, (int, float))]
    if trials:
        reasons = {}
        for r in ok:
            reason = (r.get("metrics") or {}).get("stop_reason")
            if reason:
                reasons[reason] = reasons.get(reason, 0) + 1
        reason_s = ", ".join(f"{n} {k}" for k, n in sorted(reasons.items()))
        lines.append(f"  {int(sum(trials))} MC trials over {len(trials)} "
                     f"point(s)" + (f" (stop: {reason_s})" if reason_s
                                    else ""))
    failed = errors + timeouts
    if failed:
        worst = min(failed, key=lambda r: r.get("index", 0))
        what = worst.get("error_type") or worst.get("outcome")
        lines.append(f"  first failure: point {worst.get('index')} "
                     f"{what}: {worst.get('error')}")
    return lines


def failure_lines(records, max_traceback_lines=6):
    """Per-point failure table: outcome, attempts, class, traceback tail.

    Returns ``[]`` when every record is ``ok`` so callers can print the
    result unconditionally.
    """
    failed = [r for r in records if r.get("outcome", "ok") != "ok"]
    if not failed:
        return []
    lines = [f"{len(failed)} failed point(s):"]
    for record in sorted(failed, key=lambda r: r.get("index", 0)):
        attempts = record.get("attempts", 1)
        what = record.get("error_type") or record.get("outcome")
        lines.append(
            f"  point {record.get('index')} [{record.get('outcome')}] "
            f"after {attempts} attempt(s) — {what}: {record.get('error')}"
        )
        params = record.get("params") or {}
        if params:
            lines.append("    params: " + ", ".join(
                f"{k}={v!r}" for k, v in sorted(params.items())))
        tb = record.get("traceback")
        if tb:
            tail = tb.strip().splitlines()[-int(max_traceback_lines):]
            lines.extend("    | " + t for t in tail)
    return lines


def result_lines(result):
    """One-run report: cache hits, executed points, wall clock."""
    return [
        f"{result.spec.name}: {result.n_points} points | "
        f"{result.n_cached} cached ({100 * result.cache_hit_rate:.0f}%) | "
        f"{result.n_executed} executed | "
        f"{result.wall_time_s:.2f}s wall @ {result.workers} worker(s)",
    ]
