"""Summaries and pivot tables over stored campaign records.

The reporter is deliberately dumb about physics: it treats records as
``params`` (cell coordinates) plus ``metrics`` (cell values) and renders
aligned text tables, e.g. PER vs SNR with one column per PHY::

    e3-dsss-cck: per
    snr_db \\ phy |  dsss-1  dsss-2 cck-5.5  cck-11
    -2.0         |    0.00    0.04    0.52    1.00
    ...

Values aggregate with a mean when several records share a cell (e.g.
after reporting over a factor the pivot ignores).

MC-backed metrics carry their confidence intervals in companion keys
(``per_ci_low``/``per_ci_high``) and the consumed trial count in
``n_trials``; :func:`format_pivot` detects the companions and renders
``est [lo, hi]`` cells so every reported number ships its error bars.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def _cell_value(record, value):
    """Pull ``value`` from a record: metrics first, then top level."""
    metrics = record.get("metrics") or {}
    if value in metrics:
        return metrics[value]
    if value in record:
        return record[value]
    return None


def tabulate(records, values, rows, cols=None):
    """One streaming pass: aggregate several metrics over one grid.

    ``records`` is consumed exactly once, so it can be a store's
    :meth:`~repro.campaign.store.ResultsStore.iter_records` cursor — a
    10^5-record sqlite campaign pivots without the record list ever
    materializing. Returns ``(row_labels, col_labels, grids)`` where
    ``grids[value][i][j]`` is the mean of ``value`` over the cell (or
    ``None`` when no record contributed); labels appear in
    first-appearance (grid) order. With no column axis ``col_labels``
    is ``[None]`` — one column per value grid.
    """
    values = list(values)
    row_labels, col_labels = [], []
    row_seen, col_seen = set(), set()
    sums = {v: {} for v in values}
    counts = {v: {} for v in values}
    n_ok = 0
    for record in records:
        if record.get("outcome", "ok") != "ok":
            continue
        n_ok += 1
        params = record.get("params") or {}
        for axis in (rows, cols) if cols else (rows,):
            if axis not in params:
                raise ConfigurationError(
                    f"{axis!r} is not a parameter of these records; "
                    f"available: {sorted(params)}"
                )
        r = params[rows]
        if r not in row_seen:
            row_seen.add(r)
            row_labels.append(r)
        c = params[cols] if cols else None
        if cols and c not in col_seen:
            col_seen.add(c)
            col_labels.append(c)
        for value in values:
            val = _cell_value(record, value)
            # bool is an int subclass, but averaging True as 1.0 silently
            # turns flags into bogus "metrics" — booleans don't aggregate.
            if isinstance(val, bool) or not isinstance(val, (int, float)):
                continue
            vs, vc = sums[value], counts[value]
            vs[(r, c)] = vs.get((r, c), 0.0) + float(val)
            vc[(r, c)] = vc.get((r, c), 0) + 1
    if not n_ok:
        raise ConfigurationError("no successful records to report on")
    if not cols:
        col_labels = [None]
    grids = {}
    for value in values:
        vs, vc = sums[value], counts[value]
        grids[value] = [
            [vs[(r, c)] / vc[(r, c)] if (r, c) in vc else None
             for c in col_labels]
            for r in row_labels
        ]
    return row_labels, col_labels, grids


def pivot(records, value, rows, cols=None):
    """Aggregate records into ``(row_labels, col_labels, grid)``.

    ``grid[i][j]`` is the mean of ``value`` over all records whose params
    match ``rows=row_labels[i]`` (and ``cols=col_labels[j]`` when a column
    axis is given), or ``None`` for empty cells. Single pass — accepts
    any iterable of records, including a streaming store cursor.
    """
    row_labels, col_labels, grids = tabulate(records, [value], rows, cols)
    if not cols:
        col_labels = [value]
    return row_labels, col_labels, grids[value]


def _fmt(value, width):
    if value is None:
        return " " * (width - 2) + "--"
    return f"{value:>{width}.4g}"


def _ci_cell(est, lo, hi):
    if est is None:
        return "--"
    if lo is None or hi is None:
        return f"{est:.4g}"
    return f"{est:.4g} [{lo:.4g}, {hi:.4g}]"


def format_pivot(records, value, rows, cols=None, title=None, ci="auto"):
    """Render a pivot as aligned text lines.

    ``ci="auto"`` (the default) looks for ``{value}_ci_low`` /
    ``{value}_ci_high`` companion metrics and, when present, renders
    each cell as ``est [lo, hi]``; ``ci=False`` forces bare estimates.
    The records iterable is consumed exactly once (value and both CI
    companions aggregate in the same streaming pass).
    """
    row_labels, col_labels, grids = tabulate(
        records, [value, f"{value}_ci_low", f"{value}_ci_high"],
        rows, cols)
    if not cols:
        col_labels = [value]
    grid = grids[value]
    lo_grid = grids[f"{value}_ci_low"]
    hi_grid = grids[f"{value}_ci_high"]
    with_ci = (ci in ("auto", True)
               and any(v is not None for row in lo_grid for v in row)
               and any(v is not None for row in hi_grid for v in row))
    stub = f"{rows} \\ {cols}" if cols else rows
    stub_width = max(len(stub), *(len(str(r)) for r in row_labels)) + 1
    lines = []
    if title:
        lines.append(title)
    if with_ci:
        cells = [[_ci_cell(v, lo, hi)
                  for v, lo, hi in zip(row, lo_row, hi_row)]
                 for row, lo_row, hi_row in zip(grid, lo_grid, hi_grid)]
        col_width = max(8, *(len(str(c)) + 1 for c in col_labels),
                        *(len(c) + 2 for row in cells for c in row))
        lines.append(f"{stub:<{stub_width}}|"
                     + "".join(f"{str(c):>{col_width}}"
                               for c in col_labels))
        for label, row in zip(row_labels, cells):
            lines.append(f"{str(label):<{stub_width}}|"
                         + "".join(f"{c:>{col_width}}" for c in row))
        return lines
    col_width = max(8, *(len(str(c)) + 1 for c in col_labels))
    lines.append(f"{stub:<{stub_width}}|"
                 + "".join(f"{str(c):>{col_width}}" for c in col_labels))
    for label, row in zip(row_labels, grid):
        lines.append(f"{str(label):<{stub_width}}|"
                     + "".join(_fmt(v, col_width) for v in row))
    return lines


def summary_lines(records, name=None):
    """Campaign overview: point counts, outcomes, timing, workers.

    Single streaming pass: pass a store cursor and only the aggregates
    (counts, totals, the first failure) are held in memory.
    """
    header = f"campaign {name}" if name else "campaign"
    n_total = n_ok = n_error = n_timeout = 0
    total_time = 0.0
    workers, kinds = set(), set()
    trials_sum, trials_points = 0.0, 0
    reasons = {}
    first_failure = None
    for r in records:
        n_total += 1
        total_time += r.get("wall_time_s", 0.0)
        if r.get("worker"):
            workers.add(r.get("worker"))
        kinds.add(r.get("kind"))
        outcome = r.get("outcome")
        if outcome == "ok":
            n_ok += 1
            metrics = r.get("metrics") or {}
            trials = metrics.get("n_trials")
            if isinstance(trials, (int, float)):
                trials_sum += trials
                trials_points += 1
            reason = metrics.get("stop_reason")
            if reason:
                reasons[reason] = reasons.get(reason, 0) + 1
            # Cross-point (link-grid) records carry one reason per SNR.
            for sub in metrics.get("stop_reasons") or []:
                if sub:
                    reasons[sub] = reasons.get(sub, 0) + 1
        else:
            if outcome == "error":
                n_error += 1
            elif outcome == "timeout":
                n_timeout += 1
            if first_failure is None or \
                    r.get("index", 0) < first_failure.get("index", 0):
                first_failure = r
    if not n_total:
        return [f"{header}: no records"]
    lines = [f"{header}: {n_total} points "
             f"({n_ok} ok, {n_error} error, "
             f"{n_timeout} timeout), kind "
             f"{'/'.join(str(k) for k in sorted(kinds, key=str))}"]
    lines.append(f"  simulated wall time {total_time:.2f}s across "
                 f"{len(workers)} worker process(es)")
    if trials_points:
        reason_s = ", ".join(f"{n} {k}" for k, n in sorted(reasons.items()))
        lines.append(f"  {int(trials_sum)} MC trials over {trials_points} "
                     f"point(s)" + (f" (stop: {reason_s})" if reason_s
                                    else ""))
    if first_failure is not None:
        what = first_failure.get("error_type") \
            or first_failure.get("outcome")
        lines.append(f"  first failure: point {first_failure.get('index')} "
                     f"{what}: {first_failure.get('error')}")
    return lines


def failure_lines(records, max_traceback_lines=6):
    """Per-point failure table: outcome, attempts, class, traceback tail.

    Returns ``[]`` when every record is ``ok`` so callers can print the
    result unconditionally.
    """
    failed = [r for r in records if r.get("outcome", "ok") != "ok"]
    if not failed:
        return []
    lines = [f"{len(failed)} failed point(s):"]
    for record in sorted(failed, key=lambda r: r.get("index", 0)):
        attempts = record.get("attempts", 1)
        what = record.get("error_type") or record.get("outcome")
        lines.append(
            f"  point {record.get('index')} [{record.get('outcome')}] "
            f"after {attempts} attempt(s) — {what}: {record.get('error')}"
        )
        params = record.get("params") or {}
        if params:
            lines.append("    params: " + ", ".join(
                f"{k}={v!r}" for k, v in sorted(params.items())))
        tb = record.get("traceback")
        if tb:
            tail = tb.strip().splitlines()[-int(max_traceback_lines):]
            lines.extend("    | " + t for t in tail)
    return lines


def result_lines(result):
    """One-run report: cache hits, executed points, wall clock."""
    return [
        f"{result.spec.name}: {result.n_points} points | "
        f"{result.n_cached} cached ({100 * result.cache_hit_rate:.0f}%) | "
        f"{result.n_executed} executed | "
        f"{result.wall_time_s:.2f}s wall @ {result.workers} worker(s)",
    ]
