"""Campaign execution: expand, skip cached, fan out, persist.

The runner maps each :class:`~repro.campaign.spec.SweepPoint` to a
*point function* selected by the spec's ``kind``. Point functions are
registered in a module-level registry together with a ``code_version``
string that participates in the cache key — bump it when a function's
semantics change so stale cached results are recomputed.

A point function has the signature ``func(params, rng) -> dict`` where
``params`` is the point's resolved parameter dict and ``rng`` is a
:class:`numpy.random.Generator` derived *only* from the campaign base
seed and the point's grid index. Because every point owns its stream,
execution order and worker count cannot affect results: ``--workers 8``
is bit-identical to ``--workers 1``.

Execution is *fault-isolated*: any exception a point function raises is
captured into the point's record — class name, message, and traceback
text — and the sweep continues; one bad point can no longer abort a
pool run and abandon hours of in-flight results. Failing points get
``spec.retries`` extra attempts, each drawing from a deterministic
per-attempt stream (see :mod:`repro.campaign.seeding`), and an optional
``spec.timeout_s`` wall-clock budget marks an overrunning point
``timeout`` and moves on. :func:`run_campaign` therefore always returns
a complete :class:`CampaignResult`: one record per grid point, never a
``None`` hole.

Record schema (one per point, stored as a JSONL line)::

    {
      "key":          "9f2c... (16 hex chars, see campaign.cache)",
      "campaign":     spec.name,
      "kind":         spec.kind,
      "code_version": registered version of the point function,
      "index":        grid index (also the seed substream index),
      "params":       resolved point parameters,
      "base_seed":    campaign base seed,
      "metrics":      {...} returned by the point function; MC-backed
                      kinds include the estimate's confidence interval
                      ("<metric>_ci_low"/"<metric>_ci_high"), the
                      consumed "n_trials" and the engine "stop_reason",
      "outcome":      "ok" | "error" | "timeout",
      "error":        message when outcome != "ok" else None,
      "error_type":   exception class name when outcome != "ok" else None,
      "traceback":    traceback text when outcome == "error" else None,
      "attempts":     attempts consumed (1 when the first try settled it),
      "wall_time_s":  per-point wall time across all attempts; cache
                      hits carry 0.0 (this run did no work for them)
                      plus ``"cached": true``,
      "worker":       pid of the process that ran it,
    }

Telemetry: when :func:`run_campaign` is called with ``trace=True`` (or
an ambient :mod:`repro.obs` tracer is installed) the run emits spans —
``campaign.run`` around the sweep, one ``campaign.point`` per grid
point with outcome/attempt/cache attrs and the pool submit-to-finish
latency as its duration, and worker-side ``campaign.execute`` /
``campaign.attempt`` spans around the point function — plus cache,
outcome and retry counters. Each pool worker writes its own JSONL part
file under ``results/<campaign>/trace/`` (spawn-safe: nothing is
shared), and the parent merges them into ``trace.jsonl`` after pool
shutdown for ``repro trace report``.
"""

from __future__ import annotations

import os
import pickle
import threading
import traceback as traceback_module
from dataclasses import dataclass, field

from repro import obs
from repro.campaign.cache import point_key
from repro.campaign.seeding import attempt_generator
from repro.campaign.spec import EXECUTION_BACKENDS
from repro.errors import ConfigurationError, PointExecutionError
from repro.obs import live
from repro.obs import metrics as obs_metrics

# -- point-kind registry -----------------------------------------------------

_POINT_KINDS = {}


def register_point_kind(kind, func, code_version="1"):
    """Register ``func`` as the executor for points of ``kind``.

    ``code_version`` is part of every point's cache key: bump it whenever
    the function's output for identical inputs changes, so persisted
    results from the old code stop being served.
    """
    _POINT_KINDS[kind] = (func, str(code_version))


def point_kinds():
    """Sorted names of all registered point kinds."""
    return sorted(_POINT_KINDS)


def _lookup_kind(kind):
    try:
        return _POINT_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown point kind {kind!r}; registered: "
            f"{', '.join(point_kinds()) or '(none)'}"
        ) from None


# -- built-in point functions ------------------------------------------------
#
# Imports are deferred into the functions so that importing the campaign
# package stays cheap and pool workers only pay for what they run.

def _run_link_point(params, rng):
    """One PER/BER measurement: LinkSimulator(phy, channel) at one SNR.

    Optional ``precision``/``max_trials``/``confidence`` params switch
    the underlying MC engine into adaptive mode; either way the record
    carries the Wilson CI on the PER, the consumed trial count and the
    engine's stop reason, so every stored point ships its error bars.
    An ``analytic_floor`` param enables the union-bound fast path
    (``stop_reason="analytic"``, zero packets sent); ``kernels``
    selects the decoder backend.
    """
    from repro.core.link import LinkSimulator

    sim = LinkSimulator(
        params["phy"],
        params.get("channel", "awgn"),
        n_rx=params.get("n_rx"),
        detector=params.get("detector", "mmse"),
        rng=rng,
        kernels=params.get("kernels"),
    )
    precision = params.get("precision")
    max_trials = params.get("max_trials")
    floor = params.get("analytic_floor")
    confidence = float(params.get("confidence", 0.95))
    result = sim.run(
        float(params["snr_db"]),
        n_packets=int(params.get("n_packets", 100)),
        payload_bytes=int(params.get("payload_bytes", 100)),
        precision=float(precision) if precision is not None else None,
        max_trials=int(max_trials) if max_trials is not None else None,
        confidence=confidence,
        analytic_floor=float(floor) if floor is not None else None,
    )
    per_lo, per_hi = result.per_ci(confidence)
    ber_lo, ber_hi = result.ber_ci(confidence)
    return {
        "per": result.per,
        "per_ci_low": per_lo,
        "per_ci_high": per_hi,
        "ber": result.ber,
        "ber_ci_low": ber_lo,
        "ber_ci_high": ber_hi,
        "goodput_mbps": result.goodput_mbps,
        "rate_mbps": result.rate_mbps,
        "n_packets": result.n_packets,
        "n_packet_errors": result.n_packet_errors,
        "n_bit_errors": result.n_bit_errors,
        "n_trials": result.mc.n_trials,
        "stop_reason": result.mc.stop_reason,
        "confidence": confidence,
    }


def _run_link_grid_point(params, rng):
    """One PHY row of a cross-point grid: every SNR in one kernel pass.

    ``params["snrs"]`` is the SNR list; payloads/channels/noise are
    shared across the row per trial index (common random numbers), so
    the record's per-SNR lists are bit-identical to per-point runs of
    the same scheme. With a ``draw_seed`` param the base draws come
    from the campaign-wide stream — identical for every point, which
    lets queue workers serve them from one shared-memory pool
    (:mod:`repro.campaign.shm`) instead of regenerating; without one
    the point's own ``rng`` seeds the stream. Either way an attached
    pool is a pure optimisation: records match pool-less runs byte for
    byte.
    """
    from repro.campaign import shm
    from repro.core.link import run_link_grid

    snrs = [float(s) for s in params["snrs"]]
    draw_seed = params.get(shm.POOL_PARAM)
    floor = params.get("analytic_floor")
    confidence = float(params.get("confidence", 0.95))
    row = run_link_grid(
        params["phy"], snrs,
        n_packets=int(params.get("n_packets", 100)),
        payload_bytes=int(params.get("payload_bytes", 100)),
        channel=params.get("channel", "awgn"),
        analytic_floor=float(floor) if floor is not None else None,
        confidence=confidence,
        kernels=params.get("kernels"),
        rng=int(draw_seed) if draw_seed is not None else rng,
        draw_pool=shm.attached_pool(),
    )[0]
    per_ci = [r.per_ci(confidence) for r in row]
    return {
        "snrs": snrs,
        "per": [r.per for r in row],
        "per_ci_low": [lo for lo, _ in per_ci],
        "per_ci_high": [hi for _, hi in per_ci],
        "ber": [r.ber for r in row],
        "goodput_mbps": [r.goodput_mbps for r in row],
        "rate_mbps": row[0].rate_mbps,
        "n_packets": [r.n_packets for r in row],
        "n_packet_errors": [r.n_packet_errors for r in row],
        "n_bit_errors": [r.n_bit_errors for r in row],
        "stop_reasons": [r.mc.stop_reason for r in row],
        "n_trials": sum(r.mc.n_trials for r in row),
        "n_analytic": sum(1 for r in row if r.analytic),
        "confidence": confidence,
    }


def _run_mimo_range_point(params, rng):
    """Outage fade margin of one ``TXxRX`` Rayleigh diversity config.

    The draw loop is vectorised through
    :func:`~repro.phy.mimo.capacity.rayleigh_channels`, which consumes
    the stream in the same order as the seed-era scalar loop — cached
    records from either implementation are interchangeable, so the
    ``code_version`` stays at "1".
    """
    import numpy as np

    from repro.phy.mimo.capacity import rayleigh_channels

    n_tx, n_rx = (int(x) for x in str(params["antennas"]).split("x"))
    n_draws = int(params.get("n_draws", 4000))
    outage = float(params.get("outage", 0.01))
    h = rayleigh_channels(n_draws, n_rx, n_tx, rng)
    gains = (np.abs(h) ** 2).sum(axis=(1, 2)) / n_tx
    worst = float(np.quantile(gains, outage))
    return {
        "margin_db": float(-10.0 * np.log10(worst)),
        "mean_gain": float(gains.mean()),
        "n_draws": n_draws,
        "outage": outage,
    }


def _run_dcf_point(params, rng):
    """Saturated DCF contention at one station count."""
    from repro.mac.bianchi import bianchi_saturation_throughput
    from repro.mac.dcf import DcfSimulator

    n = int(params["n_stations"])
    standard = params.get("standard", "802.11a")
    rate = float(params.get("rate_mbps", 54.0))
    payload = int(params.get("payload_bytes", 1500))
    sim = DcfSimulator(n, standard, rate, payload,
                       rts_cts=bool(params.get("rts_cts", False)), rng=rng)
    result = sim.run(float(params.get("duration", 0.2)))
    return {
        "throughput_mbps": result.throughput_mbps,
        "collision_probability": result.collision_probability,
        "jain_fairness": result.jain_fairness,
        "bianchi_mbps": bianchi_saturation_throughput(n, standard, rate,
                                                      payload),
    }


register_point_kind("link", _run_link_point, code_version="2")
register_point_kind("link-grid", _run_link_grid_point, code_version="1")
register_point_kind("mimo-range", _run_mimo_range_point, code_version="1")
# v2: collision_probability switched to the per-attempt denominator
# (Bianchi's conditional p); cached v1 records carry the biased ratio.
register_point_kind("dcf", _run_dcf_point, code_version="2")
# PER-surface cells (repro.surrogate.builder) share the link point
# function — a cell *is* one PER/BER measurement — but carry their own
# kind so surface campaigns are addressable in the store and their
# cache keys can evolve independently of ad-hoc link sweeps.
register_point_kind("surface-link", _run_link_point, code_version="1")

# Snapshot of the registry as a fresh import creates it. A worker
# spawned (rather than forked) re-imports this module and gets exactly
# these entries; anything else must be shipped to it explicitly.
_BUILTIN_ENTRIES = dict(_POINT_KINDS)


def _register_in_worker(kind, func, code_version):
    """Pool initializer: re-register a custom kind in a child process.

    Under the ``spawn``/``forkserver`` start methods workers do not
    inherit the parent's registry mutations, so custom kinds registered
    after import would vanish; this runs once per worker to restore the
    campaign's kind before any point executes.
    """
    register_point_kind(kind, func, code_version)


def _worker_initializer(kind):
    """``(initializer, initargs)`` needed so pool workers know ``kind``.

    Built-in kinds are re-created by the module import in every child,
    so they need nothing. Custom kinds are shipped by value when their
    function pickles; an unpicklable function (e.g. a lambda) falls
    back to fork inheritance, which is what worked before — only the
    spawn start method cannot support it.
    """
    entry = _POINT_KINDS.get(kind)
    if entry is None or entry == _BUILTIN_ENTRIES.get(kind):
        return None, ()
    func, code_version = entry
    try:
        pickle.dumps(func)
    except Exception:
        return None, ()
    return _register_in_worker, (kind, func, code_version)


# -- execution ---------------------------------------------------------------

class _PointTimeout(Exception):
    """Internal: a point overran its wall-clock budget."""


def _call_point(func, params, rng, timeout_s):
    """Invoke ``func`` with an optional wall-clock budget.

    With a timeout the call runs on a daemon thread and is abandoned at
    the deadline (the thread cannot be killed, but the worker process
    moves on; stragglers die with the process). Without one the call is
    made inline — zero overhead on the common path.

    An abandoned thread keeps executing the point after the record says
    ``timeout`` — and an instrumented point function keeps emitting
    spans and counters. Those late events used to land in the process
    tracer and get merged into the trace as if the campaign were still
    doing work, skewing every per-point aggregate. At the deadline the
    straggler's thread ident is therefore marked abandoned (the tracer
    drops everything it emits from then on); ``revive_thread`` at
    thread birth clears any stale suppression when the OS reuses the
    ident for a later attempt's thread.
    """
    if not timeout_s:
        return func(params, rng)
    outcome = {}

    def target():
        obs.revive_thread(threading.get_ident())
        try:
            outcome["metrics"] = func(params, rng)
        except BaseException as exc:  # propagated to the caller below
            outcome["exc"] = exc

    worker = threading.Thread(target=target, daemon=True,
                              name="campaign-point")
    worker.start()
    worker.join(float(timeout_s))
    if worker.is_alive():
        obs.abandon_thread(worker.ident)
        raise _PointTimeout(
            f"point exceeded its {float(timeout_s):g}s wall-clock budget")
    if "exc" in outcome:
        raise outcome["exc"]
    return outcome["metrics"]


_MAX_TRACEBACK_CHARS = 8000

# Per-process tracers for pool workers, keyed by trace directory. A
# worker is reused across many points (and possibly across campaigns),
# so it opens its part file once and keeps appending.
_WORKER_TRACERS = {}


def _process_tracer(trace_dir):
    """This process's tracer writing to ``trace_dir`` (created once)."""
    tracer = _WORKER_TRACERS.get(trace_dir)
    if tracer is None:
        tracer = obs.Tracer(obs.TraceWriter(
            obs.part_path(trace_dir, "worker")))
        _WORKER_TRACERS[trace_dir] = tracer
    return tracer


def _execute_point(kind, campaign, base_seed, index, params, key,
                   retries=0, timeout_s=None, trace_dir=None):
    """Run one point in whatever process this lands in (pool or main).

    Never raises: every exception from the point function becomes a
    structured ``error`` record, an overrun becomes ``timeout``, and
    failures are retried up to ``retries`` times with attempt ``k``
    drawing from the deterministic ``(base_seed, index, k)`` stream.
    Timeouts are terminal — re-running a hang would just hang again and
    burn the budget times over.

    ``trace_dir`` is set on pool submissions of traced runs: the worker
    installs its own per-process tracer (appending to
    ``trace_dir/worker-<pid>.jsonl``) for the duration, which both
    works under ``spawn`` (no inherited state needed) and shadows any
    fork-inherited parent tracer that would otherwise misattribute
    events. Inline execution passes ``None`` and inherits the ambient
    tracer of the orchestrating process.
    """
    if trace_dir is not None:
        with obs.use_tracer(_process_tracer(trace_dir)):
            return _execute_point_impl(kind, campaign, base_seed, index,
                                       params, key, retries, timeout_s)
    return _execute_point_impl(kind, campaign, base_seed, index, params,
                               key, retries, timeout_s)


def _execute_point_impl(kind, campaign, base_seed, index, params, key,
                        retries, timeout_s):
    func, code_version = _lookup_kind(kind)
    attempts = 0
    metrics, outcome, error, error_type, tb_text = {}, "error", None, None, \
        None
    with obs.span("campaign.execute", kind=kind, campaign=campaign,
                  index=index) as exec_span, obs.timed() as clock:
        for attempt in range(int(retries) + 1):
            attempts = attempt + 1
            rng = attempt_generator(base_seed, index, attempt)
            with obs.span("campaign.attempt", index=index,
                          attempt=attempt) as attempt_span:
                try:
                    metrics = _call_point(func, params, rng, timeout_s)
                    outcome, error, error_type, tb_text = "ok", None, None, \
                        None
                except _PointTimeout as exc:
                    metrics, outcome, error = {}, "timeout", str(exc)
                    error_type, tb_text = "TimeoutError", None
                except Exception as exc:
                    metrics, outcome, error = {}, "error", str(exc)
                    error_type = type(exc).__name__
                    tb_text = traceback_module.format_exc()[
                        -_MAX_TRACEBACK_CHARS:]
                attempt_span.set(outcome=outcome)
            if outcome != "error":
                break
        exec_span.set(outcome=outcome, attempts=attempts)
    return {
        "key": key,
        "campaign": campaign,
        "kind": kind,
        "code_version": code_version,
        "index": index,
        "params": dict(params),
        "base_seed": int(base_seed),
        "metrics": metrics,
        "outcome": outcome,
        "error": error,
        "error_type": error_type,
        "traceback": tb_text,
        "attempts": attempts,
        "wall_time_s": clock.seconds,
        "worker": os.getpid(),
    }


@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    spec: object
    records: list
    n_cached: int
    n_executed: int
    wall_time_s: float
    workers: int = 1
    extras: dict = field(default_factory=dict)

    @property
    def n_points(self):
        """Total grid points (cached + executed)."""
        return len(self.records)

    @property
    def cache_hit_rate(self):
        """Fraction of points served from the store, in [0, 1]."""
        return self.n_cached / self.n_points if self.n_points else 0.0

    def metrics_by_index(self):
        """``{index: metrics}`` across all records (cached or fresh)."""
        return {r["index"]: r["metrics"] for r in self.records}

    @property
    def failed_records(self):
        """Records whose outcome is not ``ok``, in grid order."""
        return [r for r in self.records if r.get("outcome") != "ok"]

    @property
    def n_failed(self):
        """How many points ended this run in ``error`` or ``timeout``."""
        return len(self.failed_records)

    def check(self):
        """Raise :class:`~repro.errors.PointExecutionError` on failure.

        For callers that want the pre-PR "a bad sweep is an exception"
        contract back — but only after the whole grid ran and every
        failure was recorded. Returns ``self`` so it chains.
        """
        if self.failed_records:
            first = self.failed_records[0]
            raise PointExecutionError(
                f"{self.n_failed}/{self.n_points} points failed; first: "
                f"point {first.get('index')} [{first.get('outcome')}] "
                f"{first.get('error_type')}: {first.get('error')}",
                index=first.get("index"),
                params=first.get("params"),
                attempts=first.get("attempts"),
                outcome=first.get("outcome", "error"),
            )
        return self


def _pool_failure_record(spec, code_version, point, key, exc):
    """Structured record for a point whose *future* died, not its code.

    Covers failures outside the point function — a worker killed by the
    OS, an unpicklable argument, a broken pool. The sweep still gets a
    complete record for the point instead of an aborted run.
    """
    return {
        "key": key,
        "campaign": spec.name,
        "kind": spec.kind,
        "code_version": code_version,
        "index": point.index,
        "params": dict(point.params),
        "base_seed": int(spec.base_seed),
        "metrics": {},
        "outcome": "error",
        "error": f"worker failed outside the point function: {exc}",
        "error_type": type(exc).__name__,
        "traceback": traceback_module.format_exc()[-_MAX_TRACEBACK_CHARS:],
        "attempts": 1,
        "wall_time_s": 0.0,
        "worker": None,
    }


def run_campaign(spec, workers=1, store=None, force=False, echo=None,
                 retries=None, timeout_s=None, start_method=None,
                 trace=False, backend=None, shard_size=None, resume=False,
                 heartbeat_s=None):
    """Execute a campaign, reusing cached points from ``store``.

    Parameters
    ----------
    spec : CampaignSpec
    workers : int
        Pool size. ``1`` runs points inline (no subprocesses); any value
        produces bit-identical metrics because seeding is per-point.
    store : ResultsStore or None
        When given, previously stored points with matching cache keys are
        skipped and fresh points are appended as they complete. ``None``
        runs fully in memory (nothing read or written).
    force : bool
        Recompute every point even if cached.
    echo : callable or None
        Optional progress sink; called with one string per event.
    retries : int or None
        Override ``spec.retries`` for this run (``None`` keeps the spec).
    timeout_s : float or None
        Override ``spec.timeout_s`` for this run (``None`` keeps the
        spec; pass ``0`` to disable a spec timeout).
    start_method : str or None
        Multiprocessing start method for the pool (``fork``, ``spawn``,
        ``forkserver``). ``None`` uses ``$REPRO_CAMPAIGN_START_METHOD``
        when set, else the platform default.
    backend : str or None
        Execution backend: ``"pool"`` (ProcessPoolExecutor, one future
        per point) or ``"local-queue"`` (sharded work units with
        lease/ack and worker-death recovery, see
        :mod:`repro.campaign.queue`). ``None`` uses ``spec.backend``,
        falling back to ``pool``. Records are bit-identical across
        backends; the knob never enters the cache key.
    shard_size : int or None
        Points per work unit for ``local-queue`` (``None`` = ~4 units
        per worker). Ignored by ``pool``.
    resume : bool
        Mark this run as a resume of an interrupted campaign: emits a
        ``campaign.resume`` event carrying how much of the grid the
        store already held, and — when tracing — *appends* to the
        campaign's existing trace directory instead of resetting it,
        so the finished trace covers the killed run plus the resume.
        Otherwise observational — *every* store-backed run already
        skips completed points via cache keys.
    heartbeat_s : float or None
        Live-status cadence: how often workers heartbeat (flushing
        in-flight telemetry) and the parent refreshes
        ``results/<name>/status.json`` (see :mod:`repro.obs.live`).
        ``None`` uses ``$REPRO_HEARTBEAT_S``, default 1.0 s. Only
        store-backed runs write a status file.
    trace : bool
        Collect :mod:`repro.obs` telemetry for this run. With a store,
        every process writes a JSONL part file under
        ``results/<campaign>/trace/`` and the parent merges them into
        ``trace.jsonl`` after the pool shuts down
        (``result.extras["trace_path"]``); without one the trace stays
        in memory. Either way ``result.extras["trace"]`` carries the
        parent tracer's :meth:`~repro.obs.Tracer.summary`. With
        ``trace=False`` the runner still emits spans to any ambient
        tracer the caller installed — it just doesn't manage one.

    Returns
    -------
    CampaignResult
        One record per grid point — failures included, never ``None``
        holes — ordered by grid index, with ``record["cached"]`` marking
        points served from the store (their ``wall_time_s`` is 0.0:
        this run spent nothing on them). Use
        :meth:`CampaignResult.check` to turn remaining failures into an
        exception.
    """
    if not trace:
        return _run_campaign(spec, workers, store, force, echo, retries,
                             timeout_s, start_method, trace_dir=None,
                             backend=backend, shard_size=shard_size,
                             resume=resume, heartbeat_s=heartbeat_s)
    trace_dir = None
    if store is not None:
        trace_dir = store.trace_dir(spec.name)
        if resume:
            # A resumed run appends to the interrupted run's trace:
            # stale part files (the kill landed before the merge) are
            # folded in alongside this run's, and an already-merged
            # trace.jsonl is kept and extended at merge time below.
            os.makedirs(trace_dir, exist_ok=True)
        else:
            obs.reset_trace_dir(trace_dir)
        tracer = obs.Tracer(obs.TraceWriter(obs.part_path(trace_dir,
                                                          "main")))
    else:
        tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        result = _run_campaign(spec, workers, store, force, echo, retries,
                               timeout_s, start_method, trace_dir,
                               backend=backend, shard_size=shard_size,
                               resume=resume, heartbeat_s=heartbeat_s)
    result.extras["trace"] = tracer.summary()
    if trace_dir is not None:
        merged, _ = obs.merge_trace_dir(trace_dir, fold_existing=resume)
        result.extras["trace_path"] = merged
    return result


def _run_campaign(spec, workers, store, force, echo, retries, timeout_s,
                  start_method, trace_dir, backend=None, shard_size=None,
                  resume=False, heartbeat_s=None):
    """The sweep itself, emitting telemetry to the ambient tracer."""
    _, code_version = _lookup_kind(spec.kind)  # validate kind up front
    workers = max(1, int(workers))
    retries = int(spec.retries if retries is None else retries)
    timeout_s = spec.timeout_s if timeout_s is None else (timeout_s or None)
    start_method = start_method or os.environ.get(
        "REPRO_CAMPAIGN_START_METHOD") or None
    backend = backend or spec.backend or "pool"
    if backend not in EXECUTION_BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {backend!r}; available: "
            f"{', '.join(EXECUTION_BACKENDS)}"
        )
    say = echo or (lambda _msg: None)
    points = spec.expand()

    # Live status: store-backed runs keep results/<name>/status.json
    # fresh for `repro campaign watch`. The board owns a metrics
    # registry (installed process-wide below so the MC engine's batch
    # latency histograms land in it) and a ticker thread that re-writes
    # the file every heartbeat even when nothing completes.
    board = None
    registry = None
    if store is not None:
        registry = obs_metrics.MetricsRegistry()
        board = live.StatusBoard(
            live.status_path(store.campaign_dir(spec.name)),
            campaign=spec.name, total=len(points), workers=workers,
            backend=backend, heartbeat_s=heartbeat_s, registry=registry)
    try:
        if registry is not None:
            with obs_metrics.use_registry(registry):
                result = _run_campaign_impl(
                    spec, workers, store, force, say, retries, timeout_s,
                    start_method, trace_dir, backend, shard_size, resume,
                    code_version, points, board)
        else:
            result = _run_campaign_impl(
                spec, workers, store, force, say, retries, timeout_s,
                start_method, trace_dir, backend, shard_size, resume,
                code_version, points, board)
    except BaseException:
        if board is not None:
            board.finish("failed")
        raise
    if board is not None:
        board.finish("failed" if result.n_failed else "done")
    return result


def _run_campaign_impl(spec, workers, store, force, say, retries,
                       timeout_s, start_method, trace_dir, backend,
                       shard_size, resume, code_version, points, board):

    if board is not None:
        board.start_ticker()
        board.maybe_write(force=True)
    with obs.span("campaign.run", campaign=spec.name, kind=spec.kind,
                  n_points=len(points), backend=backend,
                  resume=bool(resume),
                  workers=workers) as run_span, obs.timed() as clock:
        known = {}
        if store is not None and not force:
            known = {r["key"]: r for r in store.iter_records(spec.name)
                     if r.get("outcome") == "ok"}

        records = [None] * len(points)
        todo = []
        for pt in points:
            key = point_key(spec.kind, code_version, spec.base_seed,
                            pt.index, pt.params)
            if key in known:
                cached = dict(known[key])
                cached["cached"] = True
                # This run did no work for a hit; carrying the original
                # run's timing forward would double-count it in every
                # downstream wall-time summary.
                cached["wall_time_s"] = 0.0
                records[pt.index] = cached
                obs.event("campaign.point", 0.0, index=pt.index,
                          outcome=cached.get("outcome", "ok"), cached=True,
                          attempts=0)
                obs.counter("campaign.cache.hit")
            else:
                todo.append((key, pt))
                obs.counter("campaign.cache.miss")

        if store is not None:
            store.write_spec(spec)

        n_cached = len(points) - len(todo)
        if board is not None:
            board.point_cached(n_cached)
        if resume:
            obs.event("campaign.resume", 0.0, campaign=spec.name,
                      n_complete=n_cached, n_todo=len(todo))
            say(f"{spec.name}: resuming — {n_cached}/{len(points)} points "
                f"already complete, {len(todo)} to run")
        elif n_cached:
            say(f"{spec.name}: {n_cached}/{len(points)} points cached")

        busy = {"s": 0.0}
        n_finished = {"n": 0}

        def finish(record, t_submit):
            record["cached"] = False
            records[record["index"]] = record
            busy["s"] += record["wall_time_s"] or 0.0
            n_finished["n"] += 1
            if store is not None:
                store.append(spec.name, record)
            if board is not None:
                board.point_done(outcome=record["outcome"],
                                 worker=record["worker"],
                                 wall_s=record["wall_time_s"])
                if backend != "local-queue":
                    # The queue loop reports lease-accurate in-flight
                    # counts itself; pool/inline approximate with the
                    # slots that can still be busy.
                    board.set_running(min(workers,
                                          len(todo) - n_finished["n"]))
            # The span's duration is submit-to-finish latency as the
            # orchestrator saw it; ``exec_s`` is the time the point
            # actually computed — the gap is queueing + transport.
            obs.event("campaign.point", clock.elapsed - t_submit,
                      index=record["index"], outcome=record["outcome"],
                      attempts=record.get("attempts", 1), cached=False,
                      exec_s=record["wall_time_s"],
                      worker=record["worker"])
            obs.counter(f"campaign.outcome.{record['outcome']}")
            extra = (record.get("attempts") or 1) - 1
            if extra > 0:
                obs.counter("campaign.retry.extra_attempts", extra)
            say(f"{spec.name}[{record['index']}] {record['outcome']} "
                f"in {record['wall_time_s']:.2f}s "
                f"(worker {record['worker']})")

        extras = {}
        if board is not None and todo and backend != "local-queue":
            board.set_running(min(workers, len(todo)))
        if todo and backend == "local-queue":
            from repro.campaign import queue as queue_backend

            extras["queue"] = queue_backend.run_local_queue(
                spec, code_version, todo, workers, retries, timeout_s,
                start_method, trace_dir, finish, clock,
                shard_size=shard_size, board=board)
        elif todo and workers > 1:
            from repro.campaign import queue as queue_backend

            queue_backend.run_pool(spec, code_version, todo, workers,
                                   retries, timeout_s, start_method,
                                   trace_dir, finish, clock)
        else:
            for key, pt in todo:
                t_submit = clock.elapsed
                finish(_execute_point(spec.kind, spec.name, spec.base_seed,
                                      pt.index, pt.params, key,
                                      retries, timeout_s), t_submit)

        elapsed = clock.elapsed
        run_span.set(n_cached=n_cached, n_executed=len(todo),
                     busy_s=busy["s"],
                     utilization=(busy["s"] / (workers * elapsed)
                                  if elapsed > 0 else 0.0))

    return CampaignResult(
        spec=spec,
        records=records,
        n_cached=n_cached,
        n_executed=len(todo),
        wall_time_s=clock.seconds,
        workers=int(workers),
        extras=extras,
    )


def resume_campaign(name, store, workers=1, echo=None, retries=None,
                    timeout_s=None, start_method=None, trace=False,
                    backend=None, shard_size=None, heartbeat_s=None):
    """Pick up an interrupted campaign from its persisted spec + records.

    Loads the spec the killed run saved alongside its records, then
    re-runs the campaign against the same store: completed points are
    served from their stored records, missing points re-execute from
    their deterministic per-point substreams — so the finished record
    set is bit-identical to a run that was never interrupted,
    regardless of where the kill landed or which backend/worker count
    finishes the job. Never forces recomputation.
    """
    spec = store.load_spec(name)
    return run_campaign(spec, workers=workers, store=store, force=False,
                        echo=echo, retries=retries, timeout_s=timeout_s,
                        start_method=start_method, trace=trace,
                        backend=backend, shard_size=shard_size,
                        resume=True, heartbeat_s=heartbeat_s)
