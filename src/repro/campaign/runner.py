"""Campaign execution: expand, skip cached, fan out, persist.

The runner maps each :class:`~repro.campaign.spec.SweepPoint` to a
*point function* selected by the spec's ``kind``. Point functions are
registered in a module-level registry together with a ``code_version``
string that participates in the cache key — bump it when a function's
semantics change so stale cached results are recomputed.

A point function has the signature ``func(params, rng) -> dict`` where
``params`` is the point's resolved parameter dict and ``rng`` is a
:class:`numpy.random.Generator` derived *only* from the campaign base
seed and the point's grid index. Because every point owns its stream,
execution order and worker count cannot affect results: ``--workers 8``
is bit-identical to ``--workers 1``.

Record schema (one per point, stored as a JSONL line)::

    {
      "key":          "9f2c... (16 hex chars, see campaign.cache)",
      "campaign":     spec.name,
      "kind":         spec.kind,
      "code_version": registered version of the point function,
      "index":        grid index (also the seed substream index),
      "params":       resolved point parameters,
      "base_seed":    campaign base seed,
      "metrics":      {...} returned by the point function,
      "outcome":      "ok" | "error",
      "error":        message when outcome == "error" else None,
      "wall_time_s":  per-point wall time,
      "worker":       pid of the process that ran it,
    }
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.campaign.cache import point_key
from repro.campaign.seeding import point_generator
from repro.errors import ConfigurationError, ReproError

# -- point-kind registry -----------------------------------------------------

_POINT_KINDS = {}


def register_point_kind(kind, func, code_version="1"):
    """Register ``func`` as the executor for points of ``kind``.

    ``code_version`` is part of every point's cache key: bump it whenever
    the function's output for identical inputs changes, so persisted
    results from the old code stop being served.
    """
    _POINT_KINDS[kind] = (func, str(code_version))


def point_kinds():
    """Sorted names of all registered point kinds."""
    return sorted(_POINT_KINDS)


def _lookup_kind(kind):
    try:
        return _POINT_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown point kind {kind!r}; registered: "
            f"{', '.join(point_kinds()) or '(none)'}"
        ) from None


# -- built-in point functions ------------------------------------------------
#
# Imports are deferred into the functions so that importing the campaign
# package stays cheap and pool workers only pay for what they run.

def _run_link_point(params, rng):
    """One PER/BER measurement: LinkSimulator(phy, channel) at one SNR."""
    from repro.core.link import LinkSimulator

    sim = LinkSimulator(
        params["phy"],
        params.get("channel", "awgn"),
        n_rx=params.get("n_rx"),
        detector=params.get("detector", "mmse"),
        rng=rng,
    )
    result = sim.run(
        float(params["snr_db"]),
        n_packets=int(params.get("n_packets", 100)),
        payload_bytes=int(params.get("payload_bytes", 100)),
    )
    return {
        "per": result.per,
        "ber": result.ber,
        "goodput_mbps": result.goodput_mbps,
        "rate_mbps": result.rate_mbps,
        "n_packets": result.n_packets,
        "n_packet_errors": result.n_packet_errors,
        "n_bit_errors": result.n_bit_errors,
    }


def _run_mimo_range_point(params, rng):
    """Outage fade margin of one ``TXxRX`` Rayleigh diversity config."""
    import numpy as np

    from repro.phy.mimo.capacity import rayleigh_channel

    n_tx, n_rx = (int(x) for x in str(params["antennas"]).split("x"))
    n_draws = int(params.get("n_draws", 4000))
    outage = float(params.get("outage", 0.01))
    gains = np.empty(n_draws)
    for i in range(n_draws):
        h = rayleigh_channel(n_rx, n_tx, rng)
        gains[i] = np.sum(np.abs(h) ** 2) / n_tx
    worst = float(np.quantile(gains, outage))
    return {
        "margin_db": float(-10.0 * np.log10(worst)),
        "mean_gain": float(gains.mean()),
        "n_draws": n_draws,
        "outage": outage,
    }


def _run_dcf_point(params, rng):
    """Saturated DCF contention at one station count."""
    from repro.mac.bianchi import bianchi_saturation_throughput
    from repro.mac.dcf import DcfSimulator

    n = int(params["n_stations"])
    standard = params.get("standard", "802.11a")
    rate = float(params.get("rate_mbps", 54.0))
    payload = int(params.get("payload_bytes", 1500))
    sim = DcfSimulator(n, standard, rate, payload,
                       rts_cts=bool(params.get("rts_cts", False)), rng=rng)
    result = sim.run(float(params.get("duration", 0.2)))
    return {
        "throughput_mbps": result.throughput_mbps,
        "collision_probability": result.collision_probability,
        "jain_fairness": result.jain_fairness,
        "bianchi_mbps": bianchi_saturation_throughput(n, standard, rate,
                                                      payload),
    }


register_point_kind("link", _run_link_point, code_version="1")
register_point_kind("mimo-range", _run_mimo_range_point, code_version="1")
register_point_kind("dcf", _run_dcf_point, code_version="1")


# -- execution ---------------------------------------------------------------

def _execute_point(kind, campaign, base_seed, index, params, key):
    """Run one point in whatever process this lands in (pool or main)."""
    func, code_version = _lookup_kind(kind)
    rng = point_generator(base_seed, index)
    start = time.perf_counter()
    try:
        metrics = func(params, rng)
        outcome, error = "ok", None
    except ReproError as exc:
        metrics, outcome, error = {}, "error", str(exc)
    return {
        "key": key,
        "campaign": campaign,
        "kind": kind,
        "code_version": code_version,
        "index": index,
        "params": dict(params),
        "base_seed": int(base_seed),
        "metrics": metrics,
        "outcome": outcome,
        "error": error,
        "wall_time_s": time.perf_counter() - start,
        "worker": os.getpid(),
    }


@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    spec: object
    records: list
    n_cached: int
    n_executed: int
    wall_time_s: float
    workers: int = 1
    extras: dict = field(default_factory=dict)

    @property
    def n_points(self):
        """Total grid points (cached + executed)."""
        return len(self.records)

    @property
    def cache_hit_rate(self):
        """Fraction of points served from the store, in [0, 1]."""
        return self.n_cached / self.n_points if self.n_points else 0.0

    def metrics_by_index(self):
        """``{index: metrics}`` across all records (cached or fresh)."""
        return {r["index"]: r["metrics"] for r in self.records}


def run_campaign(spec, workers=1, store=None, force=False, echo=None):
    """Execute a campaign, reusing cached points from ``store``.

    Parameters
    ----------
    spec : CampaignSpec
    workers : int
        Pool size. ``1`` runs points inline (no subprocesses); any value
        produces bit-identical metrics because seeding is per-point.
    store : ResultsStore or None
        When given, previously stored points with matching cache keys are
        skipped and fresh points are appended as they complete. ``None``
        runs fully in memory (nothing read or written).
    force : bool
        Recompute every point even if cached.
    echo : callable or None
        Optional progress sink; called with one string per event.

    Returns
    -------
    CampaignResult
        Records ordered by grid index, with ``record["cached"]`` marking
        points served from the store.
    """
    _, code_version = _lookup_kind(spec.kind)  # validate kind up front
    workers = max(1, int(workers))
    say = echo or (lambda _msg: None)
    points = spec.expand()
    start = time.perf_counter()

    known = {}
    if store is not None and not force:
        known = {r["key"]: r for r in store.load(spec.name)
                 if r.get("outcome") == "ok"}

    records = [None] * len(points)
    todo = []
    for pt in points:
        key = point_key(spec.kind, code_version, spec.base_seed, pt.index,
                        pt.params)
        if key in known:
            cached = dict(known[key])
            cached["cached"] = True
            records[pt.index] = cached
        else:
            todo.append((key, pt))

    if store is not None:
        store.write_spec(spec)

    n_cached = len(points) - len(todo)
    if n_cached:
        say(f"{spec.name}: {n_cached}/{len(points)} points cached")

    def finish(record):
        record["cached"] = False
        records[record["index"]] = record
        if store is not None:
            store.append(spec.name, record)
        say(f"{spec.name}[{record['index']}] {record['outcome']} "
            f"in {record['wall_time_s']:.2f}s (worker {record['worker']})")

    if todo and workers > 1:
        with ProcessPoolExecutor(max_workers=int(workers)) as pool:
            futures = [
                pool.submit(_execute_point, spec.kind, spec.name,
                            spec.base_seed, pt.index, pt.params, key)
                for key, pt in todo
            ]
            for future in as_completed(futures):
                finish(future.result())
    else:
        for key, pt in todo:
            finish(_execute_point(spec.kind, spec.name, spec.base_seed,
                                  pt.index, pt.params, key))

    return CampaignResult(
        spec=spec,
        records=records,
        n_cached=n_cached,
        n_executed=len(todo),
        wall_time_s=time.perf_counter() - start,
        workers=int(workers),
    )
