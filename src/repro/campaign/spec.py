"""Declarative sweep specifications.

A :class:`CampaignSpec` names a parameter study: a *kind* (which
registered point function runs each point, see
:mod:`repro.campaign.runner`), a grid of *factors* (each a name mapped to
the values it sweeps), *fixed* parameters shared by every point, and a
*base seed* from which every point derives its own independent random
stream. ``expand()`` turns the spec into a deterministic, ordered list of
:class:`SweepPoint` objects — the cross product of the factors, with the
last factor varying fastest — whose indices double as substream indices.

Specs round-trip through plain dicts / JSON so campaigns can live in
files and be re-run byte-for-byte later::

    {
      "name": "ofdm-awgn",
      "kind": "link",
      "factors": {"phy": ["ofdm-6", "ofdm-54"], "snr_db": [10, 20, 30]},
      "fixed": {"channel": "awgn", "n_packets": 100, "payload_bytes": 100},
      "base_seed": 7,
      "meta": {"report": {"value": "per", "rows": "snr_db", "cols": "phy"}},
      "retries": 1,
      "timeout_s": 30.0
    }

``retries`` and ``timeout_s`` are the spec's failure-handling knobs:
how many extra deterministic attempts a failing point gets, and how
long one point may run before being recorded as ``timeout``. Both are
optional and both can be overridden per run from the CLI.

``backend`` and ``store`` pick *how* the sweep executes and *where*
records land (see :mod:`repro.campaign.queue` and
:mod:`repro.campaign.store`). Neither enters the cache key or the
per-point seeds, so the same spec run under any backend/store
combination produces bit-identical records — which is what makes a
killed run resumable under a different configuration than it started
with.
"""

from __future__ import annotations

import itertools
import json
import math
import re
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_SCALAR_TYPES = (str, int, float, bool, type(None))

#: Execution backends: ``pool`` is the PR-1 ProcessPoolExecutor;
#: ``local-queue`` shards the grid into leased work units (see
#: :mod:`repro.campaign.queue`). Single source of truth — the store,
#: queue, runner, and CLI all import these rather than re-listing them.
EXECUTION_BACKENDS = ("pool", "local-queue")

#: Results-store backends (see :mod:`repro.campaign.store`).
STORE_BACKENDS = ("jsonl", "sqlite")


def validate_campaign_name(name):
    """Return ``name`` if it is a safe campaign identifier, else raise.

    Campaign names become directory names under the results store, so
    anything that is not a single filesystem-safe path component
    (letters, digits, ``.``, ``_``, ``-``; no separators, no leading
    dot) is rejected — this is also the store's defence against path
    traversal through CLI-supplied names like ``../../etc``.
    """
    if not isinstance(name, str) or not name or not _NAME_RE.match(name):
        raise ConfigurationError(
            f"campaign name {name!r} must be non-empty and "
            "filesystem-safe (letters, digits, '.', '_', '-')"
        )
    return name


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the expanded grid.

    ``index`` is the point's position in the deterministic expansion
    order; it is also the substream index used to derive the point's
    random seed and part of its cache identity.
    """

    index: int
    params: dict


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative description of one parameter sweep."""

    name: str
    kind: str
    factors: dict
    fixed: dict = field(default_factory=dict)
    base_seed: int = 0
    meta: dict = field(default_factory=dict)
    #: Extra attempts after the first for each failing point (0 = no
    #: retries). Attempt ``k`` draws from an independent deterministic
    #: stream; see :mod:`repro.campaign.seeding`.
    retries: int = 0
    #: Per-point wall-clock budget in seconds; ``None`` means unlimited.
    #: A point still running at the deadline is recorded as ``timeout``
    #: and the sweep moves on (timeouts are not retried).
    timeout_s: float = None
    #: Default execution backend for this sweep (``None`` = runner
    #: default, currently ``pool``). Overridable with ``--backend``.
    backend: str = None
    #: Default results-store backend (``None`` = resolve from
    #: environment / existing records / ``jsonl``). Overridable with
    #: ``--store``.
    store: str = None

    def __post_init__(self):
        validate_campaign_name(self.name)
        if not self.kind:
            raise ConfigurationError("campaign kind must be non-empty")
        if not self.factors:
            raise ConfigurationError("campaign needs at least one factor")
        for factor, values in self.factors.items():
            if isinstance(values, (str, bytes)) or not hasattr(values,
                                                              "__len__"):
                raise ConfigurationError(
                    f"factor {factor!r} must map to a sequence of values"
                )
            if len(values) == 0:
                raise ConfigurationError(f"factor {factor!r} has no values")
            for v in values:
                self._check_scalar(factor, v)
        overlap = set(self.factors) & set(self.fixed)
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} appear in both factors and "
                "fixed"
            )
        for key, v in self.fixed.items():
            # Fixed params additionally allow flat lists of scalars —
            # cross-point kinds (link-grid) take e.g. an SNR list as one
            # parameter. Factors stay scalar: a list factor value would
            # make grid axes ambiguous.
            if isinstance(v, (list, tuple)):
                if len(v) == 0:
                    raise ConfigurationError(
                        f"fixed parameter {key!r} is an empty list")
                for item in v:
                    self._check_scalar(key, item)
            else:
                self._check_scalar(key, v)
        if isinstance(self.retries, bool) or not isinstance(self.retries,
                                                            int) \
                or self.retries < 0:
            raise ConfigurationError(
                f"retries must be a non-negative integer, got "
                f"{self.retries!r}"
            )
        if self.timeout_s is not None:
            if isinstance(self.timeout_s, bool) \
                    or not isinstance(self.timeout_s, (int, float)) \
                    or not math.isfinite(self.timeout_s) \
                    or self.timeout_s <= 0:
                raise ConfigurationError(
                    f"timeout_s must be a positive finite number or None, "
                    f"got {self.timeout_s!r}"
                )
        if self.backend is not None and self.backend not in \
                EXECUTION_BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {self.backend!r}; available: "
                f"{', '.join(EXECUTION_BACKENDS)}"
            )
        if self.store is not None and self.store not in STORE_BACKENDS:
            raise ConfigurationError(
                f"unknown store backend {self.store!r}; available: "
                f"{', '.join(STORE_BACKENDS)}"
            )

    @staticmethod
    def _check_scalar(name, value):
        if not isinstance(value, _SCALAR_TYPES):
            raise ConfigurationError(
                f"parameter {name!r} value {value!r} is not a JSON scalar "
                "(str/int/float/bool/None)"
            )
        if isinstance(value, float) and not math.isfinite(value):
            raise ConfigurationError(
                f"parameter {name!r} value {value!r} is not finite; "
                "NaN/Infinity cannot round-trip through JSON specs or "
                "cache keys"
            )

    # -- expansion -----------------------------------------------------------

    @property
    def factor_names(self):
        """Factor names in declaration order (the grid's axis order)."""
        return list(self.factors)

    @property
    def n_points(self):
        """Size of the expanded grid (product of factor lengths)."""
        n = 1
        for values in self.factors.values():
            n *= len(values)
        return n

    def expand(self):
        """The full grid as an ordered list of :class:`SweepPoint`.

        The cross product iterates factors in declaration order with the
        last factor varying fastest, so a spec always expands to the same
        point ordering — which is what ties each point to a stable
        substream index.
        """
        names = self.factor_names
        points = []
        for index, combo in enumerate(
                itertools.product(*(self.factors[n] for n in names))):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            points.append(SweepPoint(index=index, params=params))
        return points

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self):
        """Plain-dict form, JSON-serialisable and `from_dict`-invertible."""
        return {
            "name": self.name,
            "kind": self.kind,
            "factors": {k: list(v) for k, v in self.factors.items()},
            "fixed": dict(self.fixed),
            "base_seed": self.base_seed,
            "meta": dict(self.meta),
            "retries": self.retries,
            "timeout_s": self.timeout_s,
            "backend": self.backend,
            "store": self.store,
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise ConfigurationError("campaign spec must be a JSON object")
        unknown = set(data) - {"name", "kind", "factors", "fixed",
                               "base_seed", "meta", "retries", "timeout_s",
                               "backend", "store"}
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec fields: {sorted(unknown)}"
            )
        try:
            return cls(
                name=data["name"],
                kind=data["kind"],
                factors=dict(data["factors"]),
                fixed=dict(data.get("fixed", {})),
                base_seed=int(data.get("base_seed", 0)),
                meta=dict(data.get("meta", {})),
                retries=data.get("retries", 0),
                timeout_s=data.get("timeout_s"),
                backend=data.get("backend"),
                store=data.get("store"),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"campaign spec missing required field {exc.args[0]!r}"
            ) from None

    @classmethod
    def from_json(cls, path):
        with open(path, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"campaign spec {path}: invalid JSON ({exc})"
                ) from None
        return cls.from_dict(data)


# -- built-in campaigns ------------------------------------------------------
#
# Canonical specs for the paper experiments that are parameter sweeps. The
# CLI accepts these names anywhere it accepts a spec file, and the quick
# experiments in repro.core.experiments run scaled-down variants of them.

def _builtin_specs():
    return {
        "e3-dsss-cck": CampaignSpec(
            name="e3-dsss-cck",
            kind="link",
            factors={
                "phy": ["dsss-1", "dsss-2", "cck-5.5", "cck-11"],
                "snr_db": [-2.0, 2.0, 6.0, 10.0, 14.0],
            },
            fixed={"channel": "awgn", "n_packets": 25, "payload_bytes": 50},
            base_seed=42,
            meta={
                "description": "E3: 802.11/802.11b PER waterfalls "
                               "(2 -> 11 Mbps ladder)",
                "report": {"value": "per", "rows": "snr_db", "cols": "phy"},
            },
        ),
        "e4-ofdm": CampaignSpec(
            name="e4-ofdm",
            kind="link",
            factors={
                "phy": [f"ofdm-{r}" for r in (6, 9, 12, 18, 24, 36, 48, 54)],
                "snr_db": [4.0, 10.0, 16.0, 22.0, 28.0],
            },
            fixed={"channel": "awgn", "n_packets": 12, "payload_bytes": 60},
            base_seed=17,
            meta={
                "description": "E4: 802.11a OFDM PER waterfalls, 6-54 Mbps",
                "report": {"value": "per", "rows": "snr_db", "cols": "phy"},
            },
        ),
        "e6-mimo-range": CampaignSpec(
            name="e6-mimo-range",
            kind="mimo-range",
            factors={"antennas": ["1x1", "1x2", "2x2", "4x4"]},
            fixed={"n_draws": 4000, "outage": 0.01},
            base_seed=11,
            meta={
                "description": "E6: MIMO diversity 1%-outage fade margins "
                               "in Rayleigh fading",
                "report": {"value": "margin_db", "rows": "antennas"},
            },
        ),
        "e15-dcf": CampaignSpec(
            name="e15-dcf",
            kind="dcf",
            factors={"n_stations": [1, 5, 10, 20, 30]},
            fixed={"standard": "802.11a", "rate_mbps": 54.0,
                   "payload_bytes": 1500, "duration": 0.2},
            base_seed=0,
            meta={
                "description": "E15: DCF saturation throughput vs "
                               "station count",
                "report": {"value": "throughput_mbps", "rows": "n_stations"},
            },
        ),
    }


def builtin_campaigns():
    """Name -> :class:`CampaignSpec` for every built-in campaign."""
    return _builtin_specs()


def builtin_campaign(name):
    """Fetch one built-in campaign spec by name."""
    specs = _builtin_specs()
    if name not in specs:
        raise ConfigurationError(
            f"unknown built-in campaign {name!r}; available: "
            f"{', '.join(sorted(specs))}"
        )
    return specs[name]


def load_spec(name_or_path):
    """Resolve a CLI spec argument: built-in name or path to a JSON file."""
    if name_or_path in _builtin_specs():
        return _builtin_specs()[name_or_path]
    if str(name_or_path).endswith(".json"):
        return CampaignSpec.from_json(name_or_path)
    raise ConfigurationError(
        f"{name_or_path!r} is neither a built-in campaign "
        f"({', '.join(sorted(_builtin_specs()))}) nor a .json spec file"
    )
