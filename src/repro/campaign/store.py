"""Persistent results store: ``results/<campaign>/`` on disk.

Each campaign directory holds

``spec.json``
    The spec of the last run (for ``show``/``report`` defaults).
``records.jsonl``
    One JSON object per completed point, appended as points finish.
    Append-only: re-running a point writes a new line, and loading
    dedupes by cache key with last-write-wins, so a crashed or ``--force``
    run never corrupts earlier results.
``trace/``
    Telemetry of the last ``--trace`` run: per-process JSONL part
    files, merged into ``trace/trace.jsonl`` after the pool shuts down
    (see :mod:`repro.obs`). ``repro trace report`` renders it.

Records are plain dicts (see :mod:`repro.campaign.runner` for the
schema); the store never interprets metrics, it only rounds-trips them.
"""

from __future__ import annotations

import json
import math
import os

from repro.campaign.spec import CampaignSpec, validate_campaign_name
from repro.errors import ConfigurationError

RECORDS_FILE = "records.jsonl"
SPEC_FILE = "spec.json"
TRACE_DIR = "trace"

# Bookkeeping fields the runner adds in memory but that must not be
# persisted (they describe one run, not the point's result).
_EPHEMERAL_FIELDS = ("cached",)


def _json_safe(value):
    """Copy ``value`` with non-finite floats replaced by ``None``.

    Metrics come from arbitrary point functions, so a stray ``nan``
    quantile or ``inf`` margin must not corrupt the JSONL store with
    tokens a strict parser rejects.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class ResultsStore:
    """Filesystem-backed store of campaign results."""

    def __init__(self, root="results"):
        self.root = os.fspath(root)

    def campaign_dir(self, name):
        """Directory holding one campaign's spec and records.

        ``name`` is validated against the spec naming rule before being
        joined under ``root``, so CLI-supplied names like ``../../etc``
        cannot escape the store.
        """
        validate_campaign_name(name)
        return os.path.join(self.root, name)

    def _records_path(self, name):
        return os.path.join(self.campaign_dir(name), RECORDS_FILE)

    def trace_dir(self, name):
        """Directory for a campaign's trace part files (may not exist)."""
        return os.path.join(self.campaign_dir(name), TRACE_DIR)

    def trace_path(self, name):
        """The merged trace a traced run leaves behind, or ``None``.

        ``repro trace report`` reads this; ``None`` means the campaign
        was never run with ``--trace`` against this store.
        """
        from repro.obs import MERGED_TRACE_FILE

        path = os.path.join(self.trace_dir(name), MERGED_TRACE_FILE)
        return path if os.path.exists(path) else None

    # -- writing -------------------------------------------------------------

    def write_spec(self, spec):
        """Persist the spec alongside its records."""
        os.makedirs(self.campaign_dir(spec.name), exist_ok=True)
        path = os.path.join(self.campaign_dir(spec.name), SPEC_FILE)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def append(self, name, record):
        """Append one completed point record (atomic enough: one line)."""
        os.makedirs(self.campaign_dir(name), exist_ok=True)
        clean = _json_safe({k: v for k, v in record.items()
                            if k not in _EPHEMERAL_FIELDS})
        with open(self._records_path(name), "a", encoding="utf-8") as fh:
            fh.write(json.dumps(clean, sort_keys=True, allow_nan=False)
                     + "\n")

    # -- reading -------------------------------------------------------------

    def load(self, name):
        """All records for a campaign, deduped by key (last write wins)."""
        path = self._records_path(name)
        if not os.path.exists(path):
            return []
        by_key = {}
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from a killed run
                if not isinstance(record, dict) or not record.get("key"):
                    continue  # keyless lines cannot be deduped or cached
                by_key[record["key"]] = record
        return sorted(by_key.values(),
                      key=lambda r: (r.get("index", 0), r.get("key", "")))

    def load_spec(self, name):
        """The spec saved with a campaign's results."""
        path = os.path.join(self.campaign_dir(name), SPEC_FILE)
        if not os.path.exists(path):
            raise ConfigurationError(
                f"campaign {name!r} has no spec in {self.root!r} "
                "(never run here?)"
            )
        return CampaignSpec.from_json(path)

    def campaigns(self):
        """Sorted ``(name, n_records)`` for every campaign in the store."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for entry in sorted(os.listdir(self.root)):
            try:
                validate_campaign_name(entry)
            except ConfigurationError:
                continue  # stray directory that no campaign could own
            cdir = os.path.join(self.root, entry)
            if not os.path.isdir(cdir):
                continue
            has_spec = os.path.exists(os.path.join(cdir, SPEC_FILE))
            has_records = os.path.exists(os.path.join(cdir, RECORDS_FILE))
            if has_spec or has_records:
                found.append((entry, len(self.load(entry))))
        return found
