"""Persistent results store: ``results/<campaign>/`` on disk.

Two interchangeable backends share the store interface:

``jsonl`` (:class:`ResultsStore`, the default)
    One JSON object per completed point, appended as points finish.
    Append-only: re-running a point writes a new line, and loading
    dedupes by cache key with last-write-wins, so a crashed or
    ``--force`` run never corrupts earlier results. Each append is a
    single ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
    appenders (pool parents, external processes on a shared
    filesystem) can never interleave torn lines — a kill at any byte
    loses at most the final, partially-written line, which the reader
    skips.
``sqlite`` (:class:`~repro.campaign.store_sqlite.SqliteResultsStore`)
    A WAL-journaled SQLite database keyed by cache key, for campaigns
    big enough that re-reading and deduping a JSONL file per query
    hurts. Dedupe happens at write time (key upsert) and ``report``/
    ``show`` stream aggregates from an index instead of loading every
    record. Selected with ``--store sqlite`` or ``REPRO_STORE=sqlite``.

Each campaign directory holds

``spec.json``
    The spec of the last run (for ``show``/``report`` defaults).
    Always a filesystem file, whichever backend holds the records.
``records.jsonl`` / ``records.sqlite``
    The backend's record storage.
``trace/``
    Telemetry of the last ``--trace`` run: per-process JSONL part
    files, merged into ``trace/trace.jsonl`` after the pool shuts down
    (see :mod:`repro.obs`). ``repro trace report`` renders it.

Records are plain dicts (see :mod:`repro.campaign.runner` for the
schema); the store never interprets metrics, it only rounds-trips them.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np

from repro.campaign.spec import (STORE_BACKENDS, CampaignSpec,
                                 validate_campaign_name)
from repro.errors import ConfigurationError

RECORDS_FILE = "records.jsonl"
SPEC_FILE = "spec.json"
TRACE_DIR = "trace"

# Bookkeeping fields the runner adds in memory but that must not be
# persisted (they describe one run, not the point's result).
_EPHEMERAL_FIELDS = ("cached",)


def _json_safe(value):
    """Copy ``value`` with numpy leaves coerced and non-finites nulled.

    Metrics come from arbitrary point functions, so a stray ``nan``
    quantile or ``inf`` margin must not corrupt the store with tokens a
    strict parser rejects. Numpy scalars are normalized *first*: a
    ``np.float32("nan")`` is not a ``float`` subclass, so testing
    ``isinstance(value, float)`` alone would wave it through to
    ``json.dumps(allow_nan=False)``, which raises and kills the record.
    """
    if isinstance(value, np.generic):
        value = value.item()
    elif isinstance(value, np.ndarray):
        value = value.tolist()
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def encode_record(record):
    """One record as a complete, newline-terminated JSONL line (bytes).

    Ephemeral per-run fields are stripped and values sanitized; the
    result is what both backends persist, so their records compare
    byte-for-byte.
    """
    clean = _json_safe({k: v for k, v in record.items()
                        if k not in _EPHEMERAL_FIELDS})
    return (json.dumps(clean, sort_keys=True, allow_nan=False)
            + "\n").encode("utf-8")


class ResultsStore:
    """Filesystem-backed store of campaign results (JSONL backend)."""

    #: Backend name this class implements (``make_store`` key).
    backend = "jsonl"

    def __init__(self, root="results"):
        self.root = os.fspath(root)

    def campaign_dir(self, name):
        """Directory holding one campaign's spec and records.

        ``name`` is validated against the spec naming rule before being
        joined under ``root``, so CLI-supplied names like ``../../etc``
        cannot escape the store.
        """
        validate_campaign_name(name)
        return os.path.join(self.root, name)

    def _records_path(self, name):
        return os.path.join(self.campaign_dir(name), RECORDS_FILE)

    def trace_dir(self, name):
        """Directory for a campaign's trace part files (may not exist)."""
        return os.path.join(self.campaign_dir(name), TRACE_DIR)

    def trace_path(self, name):
        """The merged trace a traced run leaves behind, or ``None``.

        ``repro trace report`` reads this; ``None`` means the campaign
        was never run with ``--trace`` against this store.
        """
        from repro.obs import MERGED_TRACE_FILE

        path = os.path.join(self.trace_dir(name), MERGED_TRACE_FILE)
        return path if os.path.exists(path) else None

    def status_path(self, name):
        """Where a live run writes its ``status.json`` snapshot.

        Always returns the path (``repro campaign watch`` polls it into
        existence); callers check ``os.path.exists`` themselves.
        """
        from repro.obs import live

        return live.status_path(self.campaign_dir(name))

    # -- writing -------------------------------------------------------------

    def write_spec(self, spec):
        """Persist the spec alongside its records."""
        os.makedirs(self.campaign_dir(spec.name), exist_ok=True)
        path = os.path.join(self.campaign_dir(spec.name), SPEC_FILE)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def append(self, name, record):
        """Append one completed point record, atomically.

        The line is encoded in full first and emitted with a single
        ``os.write`` on an ``O_APPEND`` descriptor. POSIX serializes
        ``O_APPEND`` writes, so concurrent appenders from any number of
        processes cannot interleave torn lines — which a buffered text
        handle *can* once a line outgrows its buffer, silently breaking
        resume (the reader tolerates the tear but then re-runs or loses
        the point).
        """
        os.makedirs(self.campaign_dir(name), exist_ok=True)
        data = encode_record(record)
        fd = os.open(self._records_path(name),
                     os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o666)
        try:
            # Heal a torn tail before writing behind it: a file killed
            # mid-append ends without a newline, and appending straight
            # after the fragment would glue this record onto it —
            # corrupting a *good* record instead of just losing the torn
            # one. Every writer emits newline-terminated lines, so a
            # missing final newline can only mean a tear (or a stray
            # concurrent fragment, where the extra blank line is
            # harmless — the reader skips it).
            size = os.fstat(fd).st_size
            if size and os.pread(fd, 1, size - 1) != b"\n":
                data = b"\n" + data
            os.write(fd, data)
        finally:
            os.close(fd)

    def append_many(self, name, records):
        """Append a batch of records (one atomic write each)."""
        for record in records:
            self.append(name, record)

    # -- reading -------------------------------------------------------------

    def load(self, name):
        """All records for a campaign, deduped by key (last write wins)."""
        path = self._records_path(name)
        if not os.path.exists(path):
            return []
        by_key = {}
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from a killed run
                if not isinstance(record, dict) or not record.get("key"):
                    continue  # keyless lines cannot be deduped or cached
                by_key[record["key"]] = record
        return sorted(by_key.values(),
                      key=lambda r: (r.get("index", 0), r.get("key", "")))

    def iter_records(self, name):
        """Iterate records in ``(index, key)`` order.

        The JSONL backend must still read the whole file to dedupe
        (last write wins needs the future), so this is a convenience
        over :meth:`load`; the sqlite backend overrides it with a true
        streaming cursor.
        """
        yield from self.load(name)

    def count(self, name):
        """Number of (deduped) records for a campaign."""
        return len(self.load(name))

    def load_spec(self, name):
        """The spec saved with a campaign's results."""
        path = os.path.join(self.campaign_dir(name), SPEC_FILE)
        if not os.path.exists(path):
            raise ConfigurationError(
                f"campaign {name!r} has no spec in {self.root!r} "
                "(never run here?)"
            )
        return CampaignSpec.from_json(path)

    def campaigns(self):
        """Sorted ``(name, n_records)`` for every campaign in the store."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for entry in sorted(os.listdir(self.root)):
            try:
                validate_campaign_name(entry)
            except ConfigurationError:
                continue  # stray directory that no campaign could own
            cdir = os.path.join(self.root, entry)
            if not os.path.isdir(cdir):
                continue
            has_spec = os.path.exists(os.path.join(cdir, SPEC_FILE))
            has_records = os.path.exists(os.path.join(cdir, RECORDS_FILE))
            if has_spec or has_records:
                found.append((entry, self.count(entry)))
        return found

    def close(self):
        """Release any held resources (no-op for the JSONL backend)."""


# -- backend selection -------------------------------------------------------

def make_store(root="results", backend=None):
    """Instantiate a results store for ``backend``.

    ``backend`` resolves as: explicit argument, else the
    ``REPRO_STORE`` environment variable, else ``jsonl``. Unknown names
    raise :class:`~repro.errors.ConfigurationError`.
    """
    backend = backend or os.environ.get("REPRO_STORE") or "jsonl"
    if backend == "jsonl":
        return ResultsStore(root)
    if backend == "sqlite":
        from repro.campaign.store_sqlite import SqliteResultsStore

        return SqliteResultsStore(root)
    raise ConfigurationError(
        f"unknown store backend {backend!r}; available: "
        f"{', '.join(STORE_BACKENDS)}"
    )


def detect_store_backend(root, name):
    """Which backend holds records for ``name`` under ``root``, if any.

    Returns ``"sqlite"``, ``"jsonl"``, or ``None`` when the campaign
    has no records in either backend. ``repro campaign resume`` uses
    this so a campaign resumes against the store that actually holds
    its partial results, whatever the current default is.
    """
    from repro.campaign.store_sqlite import DB_FILE

    validate_campaign_name(name)
    cdir = os.path.join(os.fspath(root), name)
    if os.path.exists(os.path.join(cdir, DB_FILE)):
        return "sqlite"
    if os.path.exists(os.path.join(cdir, RECORDS_FILE)):
        return "jsonl"
    return None


def resolve_store_backend(root=None, name=None, explicit=None,
                          spec_default=None):
    """The store backend to use, by precedence.

    Explicit CLI flag > ``REPRO_STORE`` environment > the spec's
    ``store`` knob > detection of existing records (when ``root`` and
    ``name`` are given) > ``jsonl``.
    """
    if explicit:
        return explicit
    env = os.environ.get("REPRO_STORE")
    if env:
        return env
    if spec_default:
        return spec_default
    if root is not None and name is not None:
        detected = detect_store_backend(root, name)
        if detected:
            return detected
    return "jsonl"


def scan_campaigns(root):
    """Every campaign under ``root`` across both backends.

    Returns sorted ``(name, n_records, backend)`` tuples; campaigns
    with a spec but no records yet report the default backend and a
    zero count.
    """
    root = os.fspath(root)
    if not os.path.isdir(root):
        return []
    found = []
    for entry in sorted(os.listdir(root)):
        try:
            validate_campaign_name(entry)
        except ConfigurationError:
            continue
        cdir = os.path.join(root, entry)
        if not os.path.isdir(cdir):
            continue
        backend = detect_store_backend(root, entry)
        if backend is None:
            if os.path.exists(os.path.join(cdir, SPEC_FILE)):
                found.append((entry, 0, "jsonl"))
            continue
        store = make_store(root, backend)
        try:
            found.append((entry, store.count(entry), backend))
        finally:
            store.close()
    return found
