"""Content-addressed identity for sweep points.

A point's cache key is a SHA-256 digest of everything that can change
its result: the point kind, the kind's code version (bumped when the
point function's semantics change), the campaign base seed, the point's
grid index (which selects its random substream), and the full resolved
parameter dict. Two campaigns that agree on all of these would compute
bit-identical records, so sharing the cached record is sound.

Invalidation rule (documented for users in README/TUTORIAL): a cached
point is reused only while its parameters, the base seed, its position
in the grid, and the point function's declared ``code_version`` are all
unchanged. Renaming the campaign does *not* invalidate (the key ignores
the name); growing the grid *does* renumber later points and recomputes
them.
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(data):
    """Deterministic JSON text: sorted keys, no whitespace drift.

    ``allow_nan=False`` makes non-finite floats a loud ``ValueError``
    instead of silently emitting ``NaN``/``Infinity`` — tokens no JSON
    parser is required to accept, which would poison both cache keys
    and the JSONL store. Spec validation rejects non-finite parameters
    before they can reach a key.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False)


def point_key(kind, code_version, base_seed, index, params):
    """16-hex-char content hash identifying one sweep point's result."""
    material = canonical_json({
        "kind": kind,
        "code_version": code_version,
        "base_seed": int(base_seed),
        "index": int(index),
        "params": params,
    })
    return hashlib.sha256(material.encode("ascii")).hexdigest()[:16]
