"""Shared-memory base draws for campaign workers.

A link-grid campaign's points all consume the same per-trial base draws
(payload bytes, flat-fading coefficient, noise normals — see
:func:`repro.core.link.grid_trial_draws`): common random numbers across
the grid. Without sharing, every worker regenerates those arrays for
every point it runs. A :class:`SharedDrawPool` materialises them once
in the parent into a :class:`multiprocessing.shared_memory.SharedMemory`
block; queue workers attach at spawn (the block *name* travels in the
worker args — a few bytes instead of megabytes re-pickled per work
unit) and slice views out of it for the trials each point needs.

The pool is an optimisation, never a semantic: draws are addressed by
``(entropy, trial index)`` substreams, so a grid that finds no pool —
or one whose entropy/shape doesn't cover it — regenerates locally and
produces bit-identical records. ``repro campaign run --workers N`` with
and without the pool, and with ``--backend pool`` (which never builds
one), all store the same bytes.

Enabling it: give every point of a ``link-grid`` campaign the same
integer ``draw_seed`` param (:data:`POOL_PARAM`). The local-queue
backend then plans a pool covering the campaign's maximum trial count
and sample length (:func:`plan_pool`), creates it before spawning
workers, and unlinks it after the run. Pools above
:data:`MAX_POOL_BYTES` are skipped — regeneration beats swapping.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator

#: Point param that opts a link-grid campaign into shared draws. All
#: points must carry the same value — it seeds the campaign-wide
#: common-random-number stream (and enters the cache key like any
#: other param, so changing it recomputes the grid).
POOL_PARAM = "draw_seed"

#: Hard cap on pool size; beyond this regeneration is cheaper than the
#: memory pressure.
MAX_POOL_BYTES = 256 * 1024 * 1024

_SUPPORTED_CHANNELS = ("awgn", "rayleigh")

#: The worker's attached pool (set once at spawn, read by point
#: functions via :func:`attached_pool`).
_ATTACHED = None


def pool_entropy(draw_seed):
    """The trial-substream entropy a grid derives from ``draw_seed``.

    Matches :func:`repro.core.link.run_link_grid` passing
    ``rng=draw_seed``: one ``integers`` draw off the seeded generator.
    """
    return int(as_generator(int(draw_seed)).integers(0, 2 ** 63))


class SharedDrawPool:
    """Per-trial base draws in one cross-process shared-memory block.

    Layout (C-order, one block): ``(n_trials, payload_bytes)`` uint8
    payloads, ``(n_trials,)`` complex128 fading coefficients, then
    ``(n_trials, n_max)`` complex128 unscaled noise. Filled from the
    same substreams :func:`~repro.core.link.grid_trial_draws` uses, so
    a pool slice and a local regeneration are byte-identical.
    """

    def __init__(self, block, meta, owner):
        self._block = block
        self._meta = dict(meta)
        self._owner = owner
        n_trials = meta["n_trials"]
        payload_bytes = meta["payload_bytes"]
        n_max = meta["n_max"]
        buf = block.buf
        off = 0
        self._payloads = np.ndarray((n_trials, payload_bytes),
                                    dtype=np.uint8, buffer=buf, offset=off)
        off += n_trials * payload_bytes
        self._hs = np.ndarray((n_trials,), dtype=np.complex128,
                              buffer=buf, offset=off)
        off += n_trials * 16
        self._noise = np.ndarray((n_trials, n_max), dtype=np.complex128,
                                 buffer=buf, offset=off)

    @staticmethod
    def nbytes(n_trials, payload_bytes, n_max):
        """Block size for the given pool dimensions."""
        return n_trials * payload_bytes + n_trials * 16 + n_trials * n_max * 16

    @classmethod
    def create(cls, draw_seed, n_trials, payload_bytes, n_max,
               channel="awgn"):
        """Materialise a pool in the calling (parent) process."""
        from multiprocessing import shared_memory

        from repro.core.link import grid_trial_draws

        n_trials = int(n_trials)
        payload_bytes = int(payload_bytes)
        n_max = int(n_max)
        if min(n_trials, payload_bytes, n_max) < 1:
            raise ConfigurationError(
                "pool dimensions must be positive, got "
                f"n_trials={n_trials}, payload_bytes={payload_bytes}, "
                f"n_max={n_max}")
        if channel not in _SUPPORTED_CHANNELS:
            raise ConfigurationError(
                f"draw pools support {_SUPPORTED_CHANNELS}, got "
                f"{channel!r}")
        size = cls.nbytes(n_trials, payload_bytes, n_max)
        if size > MAX_POOL_BYTES:
            raise ConfigurationError(
                f"draw pool of {size} bytes exceeds the "
                f"{MAX_POOL_BYTES}-byte cap")
        entropy = pool_entropy(draw_seed)
        block = shared_memory.SharedMemory(create=True, size=size)
        meta = {"name": block.name, "entropy": entropy,
                "n_trials": n_trials, "payload_bytes": payload_bytes,
                "n_max": n_max, "channel": channel}
        pool = cls(block, meta, owner=True)
        for t in range(n_trials):
            payload, h, noise = grid_trial_draws(
                entropy, t, payload_bytes, n_max, channel)
            pool._payloads[t] = np.frombuffer(payload, dtype=np.uint8)
            pool._hs[t] = h
            pool._noise[t] = noise
        obs.counter("campaign.shm.pool_bytes", size)
        return pool

    @classmethod
    def attach(cls, meta):
        """Map an existing pool by the metadata the parent shipped."""
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=meta["name"])
        return cls(block, meta, owner=False)

    @property
    def meta(self):
        """Picklable handle (name + shape + entropy) for worker attach."""
        return dict(self._meta)

    def arrays(self):
        """``(payloads, hs, noise)`` views into the shared block."""
        return self._payloads, self._hs, self._noise

    def covers(self, entropy, n_trials, payload_bytes, n_max, channel):
        """True when this pool can serve a grid with these draws.

        The trial count and sample length may be *smaller* than the
        pool's (per-trial substreams and interleaved noise make pool
        prefixes exact); entropy, payload size and channel must match.
        """
        return (self._meta["entropy"] == int(entropy)
                and self._meta["payload_bytes"] == int(payload_bytes)
                and self._meta["channel"] == channel
                and self._meta["n_trials"] >= int(n_trials)
                and self._meta["n_max"] >= int(n_max))

    def close(self):
        """Drop this process's mapping (keeps the block alive)."""
        self._payloads = self._hs = self._noise = None
        self._block.close()

    def destroy(self):
        """Close and unlink — creator-side teardown."""
        self.close()
        if self._owner:
            try:
                self._block.unlink()
            except FileNotFoundError:
                pass


def plan_pool(spec, todo):
    """Pool creation kwargs for a campaign's uncached points, or None.

    A pool is worth building only when every point opted in with the
    same ``draw_seed`` and the grid is homogeneous where the layout
    needs it (payload size, channel). Returns ``None`` — never raises —
    for campaigns the pool cannot serve; they run exactly as before.
    """
    if spec.kind != "link-grid" or not todo:
        return None
    params = [pt.params for _, pt in todo]
    seeds = {p.get(POOL_PARAM) for p in params}
    if len(seeds) != 1:
        return None
    seed = seeds.pop()
    if seed is None:
        return None
    payloads = {int(p.get("payload_bytes", 100)) for p in params}
    channels = {p.get("channel", "awgn") for p in params}
    if len(payloads) != 1 or len(channels) != 1:
        return None
    payload_bytes = payloads.pop()
    channel = channels.pop()
    if channel not in _SUPPORTED_CHANNELS:
        return None
    try:
        from repro.core.link import LinkSimulator

        n_max = 0
        for p in params:
            sim = LinkSimulator(p["phy"], channel)
            if sim._kind != "ofdm":
                return None
            n_max = max(n_max, sim._phy.n_samples(payload_bytes))
    except Exception:
        return None
    n_trials = max(int(p.get("n_packets", 100)) for p in params)
    if SharedDrawPool.nbytes(n_trials, payload_bytes, n_max) > \
            MAX_POOL_BYTES:
        return None
    return {"draw_seed": int(seed), "n_trials": n_trials,
            "payload_bytes": payload_bytes, "n_max": n_max,
            "channel": channel}


def attach_pool(meta):
    """Worker-side: map the parent's pool and make it ambient."""
    global _ATTACHED
    detach_pool()
    _ATTACHED = SharedDrawPool.attach(meta)
    return _ATTACHED


def attached_pool():
    """The pool this process attached at spawn, or None."""
    return _ATTACHED


def detach_pool():
    """Drop the ambient pool mapping (worker exit)."""
    global _ATTACHED
    if _ATTACHED is not None:
        _ATTACHED.close()
        _ATTACHED = None
