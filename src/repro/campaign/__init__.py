"""Parallel sweep campaigns: declare a grid, run it anywhere, keep results.

This package is the repo's execution layer for parameter studies. A
campaign is a declarative :class:`~repro.campaign.spec.CampaignSpec`
(factors x fixed params x base seed); the
:func:`~repro.campaign.runner.run_campaign` orchestrator expands it,
derives an independent random substream per point
(``numpy.random.SeedSequence`` spawning — results are bit-identical at
any worker count), executes points on a ``ProcessPoolExecutor``, skips
points already present in the :class:`~repro.campaign.store.ResultsStore`
(content-hash cache), and appends each completed point to
``results/<campaign>/records.jsonl`` as it lands. Execution is
fault-isolated: failing points become structured ``error``/``timeout``
records (with retry and timeout budgets from the spec) instead of
aborting the sweep, and re-runs recompute exactly the failed points.

Quick use::

    from repro.campaign import builtin_campaign, run_campaign, ResultsStore
    result = run_campaign(builtin_campaign("e3-dsss-cck"),
                          workers=4, store=ResultsStore("results"))

or from the shell::

    python -m repro campaign run e3-dsss-cck --workers 4 --report

Passing ``trace=True`` (CLI: ``--trace``) records :mod:`repro.obs`
telemetry — per-point spans, MC trial throughput, cache/retry counters
— to ``results/<campaign>/trace/trace.jsonl``, rendered by ``repro
trace report <campaign>``.
"""

from repro.campaign.cache import point_key
from repro.campaign.report import (failure_lines, format_pivot, pivot,
                                   summary_lines)
from repro.campaign.runner import (CampaignResult, point_kinds,
                                   register_point_kind, resume_campaign,
                                   run_campaign)
from repro.campaign.seeding import (attempt_generator, attempt_seed,
                                    point_generator, point_seed)
from repro.campaign.spec import (EXECUTION_BACKENDS, STORE_BACKENDS,
                                 CampaignSpec, SweepPoint, builtin_campaign,
                                 builtin_campaigns, load_spec)
from repro.campaign.store import (ResultsStore, detect_store_backend,
                                  make_store, resolve_store_backend,
                                  scan_campaigns)
from repro.campaign.store_sqlite import SqliteResultsStore

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "EXECUTION_BACKENDS",
    "STORE_BACKENDS",
    "ResultsStore",
    "SqliteResultsStore",
    "SweepPoint",
    "attempt_generator",
    "attempt_seed",
    "builtin_campaign",
    "builtin_campaigns",
    "detect_store_backend",
    "failure_lines",
    "format_pivot",
    "load_spec",
    "make_store",
    "pivot",
    "point_generator",
    "point_key",
    "point_kinds",
    "point_seed",
    "register_point_kind",
    "resolve_store_backend",
    "resume_campaign",
    "run_campaign",
    "scan_campaigns",
    "summary_lines",
]
