"""Deterministic per-point seeding for parallel campaigns.

Each sweep point gets its own :class:`numpy.random.SeedSequence` derived
from the campaign's base seed and the point's grid index via
``SeedSequence`` spawning (:func:`repro.utils.rng.substream`). The
derivation is *stateless* — child ``i`` is a pure function of
``(base_seed, i)`` — so:

* every point's stream is statistically independent of every other's;
* a point computes identical results whether it runs in the main
  process, in any of N pool workers, first or last: an ``N``-worker
  campaign is bit-identical to the serial one;
* re-expanding the same spec reproduces the same streams, which is what
  makes cached results interchangeable with fresh ones.

The flip side: a point's seed depends on its *index*, so editing the
grid (adding/removing/reordering factor values) renumbers points and
deliberately invalidates their cache entries.

Retries extend the scheme one level: attempt ``k`` of point ``i`` draws
from ``SeedSequence(base_seed, spawn_key=(i, k))`` for ``k >= 1``, while
attempt 0 keeps the plain per-point stream ``spawn_key=(i,)``. First-try
results are therefore bit-identical whether retries are enabled or not,
and every retry is itself a pure function of ``(base_seed, index,
attempt)`` — a sweep that needed a second attempt on point 7 reproduces
that second attempt exactly on every machine.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator, spawn_seeds, substream


def point_seed(base_seed, index):
    """The :class:`~numpy.random.SeedSequence` for grid point ``index``."""
    return substream(base_seed, index)


def point_generator(base_seed, index):
    """A fresh :class:`~numpy.random.Generator` for grid point ``index``."""
    return as_generator(point_seed(base_seed, index))


def attempt_seed(base_seed, index, attempt=0):
    """The :class:`~numpy.random.SeedSequence` for retry ``attempt``.

    Attempt 0 is exactly :func:`point_seed` — enabling retries never
    changes what a first-try success computes. Attempt ``k >= 1`` uses
    the spawn key ``(index, k)``: deterministic, independent of the
    attempt-0 stream, and independent across attempts.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if attempt == 0:
        return point_seed(base_seed, index)
    return np.random.SeedSequence(base_seed,
                                  spawn_key=(int(index), int(attempt)))


def attempt_generator(base_seed, index, attempt=0):
    """A fresh :class:`~numpy.random.Generator` for retry ``attempt``."""
    return as_generator(attempt_seed(base_seed, index, attempt))


def campaign_seeds(base_seed, n_points):
    """All ``n_points`` seed sequences at once (equals per-point spawning)."""
    return spawn_seeds(base_seed, n_points)
