"""Deterministic per-point seeding for parallel campaigns.

Each sweep point gets its own :class:`numpy.random.SeedSequence` derived
from the campaign's base seed and the point's grid index via
``SeedSequence`` spawning (:func:`repro.utils.rng.substream`). The
derivation is *stateless* — child ``i`` is a pure function of
``(base_seed, i)`` — so:

* every point's stream is statistically independent of every other's;
* a point computes identical results whether it runs in the main
  process, in any of N pool workers, first or last: an ``N``-worker
  campaign is bit-identical to the serial one;
* re-expanding the same spec reproduces the same streams, which is what
  makes cached results interchangeable with fresh ones.

The flip side: a point's seed depends on its *index*, so editing the
grid (adding/removing/reordering factor values) renumbers points and
deliberately invalidates their cache entries.
"""

from __future__ import annotations

from repro.utils.rng import as_generator, spawn_seeds, substream


def point_seed(base_seed, index):
    """The :class:`~numpy.random.SeedSequence` for grid point ``index``."""
    return substream(base_seed, index)


def point_generator(base_seed, index):
    """A fresh :class:`~numpy.random.Generator` for grid point ``index``."""
    return as_generator(point_seed(base_seed, index))


def campaign_seeds(base_seed, n_points):
    """All ``n_points`` seed sequences at once (equals per-point spawning)."""
    return spawn_seeds(base_seed, n_points)
