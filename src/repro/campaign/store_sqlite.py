"""Indexed results store: SQLite with WAL journaling.

Same interface as the JSONL :class:`~repro.campaign.store.ResultsStore`
— ``append``/``load``/``iter_records``/``count``/``campaigns`` and the
inherited spec/trace plumbing — but records live in
``results/<campaign>/records.sqlite`` keyed by cache key:

* dedupe happens at write time (``INSERT OR REPLACE`` on the key), so
  readers never re-read and dedupe a whole file;
* ``iter_records`` is a true streaming cursor in ``(index, key)``
  order, so ``report``/``show`` on 10^5+ records never materialize the
  full record list;
* ``count``/``outcome_counts`` are index lookups.

Crash safety: every ``append`` is its own committed transaction in WAL
mode, so a SIGKILL at any byte loses at most in-flight appends — the
next open replays the WAL and sees every committed record. Even
deleting the ``-wal``/``-shm`` sidecars after a kill (losing the
committed-but-uncheckpointed tail) only costs recomputation: resume
re-runs the missing points from their deterministic substreams and the
final record set is bit-identical.

Records are stored as their canonical JSONL line (the same bytes the
JSONL backend appends), so the two backends are byte-for-byte
interchangeable and a record survives a backend migration unchanged.
"""

from __future__ import annotations

import json
import os
import sqlite3

from repro.campaign.store import (SPEC_FILE, ResultsStore, encode_record)
from repro.errors import ConfigurationError

DB_FILE = "records.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key     TEXT PRIMARY KEY,
    idx     INTEGER NOT NULL,
    outcome TEXT,
    record  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS records_idx ON records (idx);
CREATE INDEX IF NOT EXISTS records_outcome ON records (outcome);
"""


class SqliteResultsStore(ResultsStore):
    """SQLite-backed campaign results store (``--store sqlite``)."""

    backend = "sqlite"

    def __init__(self, root="results"):
        super().__init__(root)
        self._connections = {}

    def _db_path(self, name):
        return os.path.join(self.campaign_dir(name), DB_FILE)

    def _connect(self, name):
        conn = self._connections.get(name)
        if conn is not None:
            return conn
        os.makedirs(self.campaign_dir(name), exist_ok=True)
        conn = sqlite3.connect(self._db_path(name), timeout=30.0)
        # WAL keeps readers unblocked during appends and makes each
        # committed transaction the crash-safety unit; NORMAL sync is
        # safe with WAL (a crash can lose the last commit, never
        # corrupt the database — resume recomputes the difference).
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        self._connections[name] = conn
        return conn

    # -- writing -------------------------------------------------------------

    def append(self, name, record):
        """Upsert one record by key, committed immediately.

        The per-append commit is deliberate: it makes every completed
        point durable the moment it lands, which is the property resume
        relies on after a SIGKILL.
        """
        key = record.get("key")
        if not key:
            raise ConfigurationError(
                "sqlite store requires records with a non-empty 'key'"
            )
        line = encode_record(record).decode("utf-8").rstrip("\n")
        conn = self._connect(name)
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO records (key, idx, outcome, record) "
                "VALUES (?, ?, ?, ?)",
                (key, int(record.get("index", 0)),
                 record.get("outcome"), line),
            )

    def append_many(self, name, records):
        """Upsert a batch of records in one transaction (bulk loads)."""
        rows = []
        for record in records:
            key = record.get("key")
            if not key:
                raise ConfigurationError(
                    "sqlite store requires records with a non-empty 'key'"
                )
            line = encode_record(record).decode("utf-8").rstrip("\n")
            rows.append((key, int(record.get("index", 0)),
                         record.get("outcome"), line))
        conn = self._connect(name)
        with conn:
            conn.executemany(
                "INSERT OR REPLACE INTO records (key, idx, outcome, record) "
                "VALUES (?, ?, ?, ?)", rows)

    # -- reading -------------------------------------------------------------

    def iter_records(self, name):
        """Stream records in ``(index, key)`` order without loading all."""
        if not os.path.exists(self._db_path(name)):
            return
        cursor = self._connect(name).execute(
            "SELECT record FROM records ORDER BY idx, key")
        for (line,) in cursor:
            yield json.loads(line)

    def load(self, name):
        """All records for a campaign (already deduped at write time)."""
        return list(self.iter_records(name))

    def count(self, name):
        """Number of records, from the index — no record loads."""
        if not os.path.exists(self._db_path(name)):
            return 0
        (n,) = self._connect(name).execute(
            "SELECT COUNT(*) FROM records").fetchone()
        return n

    def outcome_counts(self, name):
        """``{outcome: count}`` streamed from the outcome index."""
        if not os.path.exists(self._db_path(name)):
            return {}
        cursor = self._connect(name).execute(
            "SELECT outcome, COUNT(*) FROM records GROUP BY outcome")
        return {outcome: n for outcome, n in cursor}

    def campaigns(self):
        """Sorted ``(name, n_records)`` for campaigns with sqlite records."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for entry in sorted(os.listdir(self.root)):
            cdir = os.path.join(self.root, entry)
            if not os.path.isdir(cdir):
                continue
            has_db = os.path.exists(os.path.join(cdir, DB_FILE))
            has_spec = os.path.exists(os.path.join(cdir, SPEC_FILE))
            if has_db or has_spec:
                found.append((entry, self.count(entry)))
        return found

    def close(self):
        """Close every cached connection (flushes the WAL checkpoint)."""
        for conn in self._connections.values():
            conn.close()
        self._connections.clear()
