"""Sharded work-queue execution for campaigns.

The million-point campaign shape: the grid's uncached points are
sharded into :class:`WorkUnit` batches, the parent *assigns* units to
workers (recording the lease before the unit ever leaves the parent —
a worker that dies without sending a byte still forfeits exactly what
it held), workers stream back one record per completed point and ack
the unit when it is drained. The parent tracks every unit's lease and
every point's record, so

* a worker that dies mid-unit (OOM-kill, segfault) forfeits its lease:
  the unit's *unfinished* jobs are requeued as a fresh unit and a
  replacement worker is spawned (bounded respawn budget);
* records that arrive twice — a requeued unit re-running a point whose
  record was already in flight when its first worker died — are
  deduplicated by cache key, so the store sees each point once;
* a SIGKILL of the whole run loses nothing that was appended: every
  record is persisted by the parent the moment it arrives, and
  ``repro campaign resume`` re-runs only the missing points. Per-point
  :mod:`~repro.campaign.seeding` substreams make the completed grid
  bit-identical to an uninterrupted run.

Two execution backends share the runner's ``finish`` contract
(``finish(record, t_submit)``; see
:func:`repro.campaign.runner._run_campaign`):

``pool``
    The PR-1 :class:`~concurrent.futures.ProcessPoolExecutor` path
    (:func:`run_pool`) — one future per point, no sharding. Still the
    default; right for small grids and cheap points.
``local-queue``
    :func:`run_local_queue` — the sharded lease/ack loop above, on
    ``multiprocessing`` queues. Same records, bit for bit; amortizes
    per-task dispatch over a unit and survives worker loss.

Telemetry: ``campaign.queue.units/lease/ack/requeue/duplicate/respawn``
counters and a stats dict surfaced as
``CampaignResult.extras["queue"]``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as stdlib_queue
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class WorkUnit:
    """One leasable batch of points.

    ``jobs`` is a tuple of ``(key, index, params)`` triples in grid
    order. A requeued unit keeps its ``unit_id`` (the lease moves, the
    identity does not) but carries only the jobs its dead worker never
    reported.
    """

    unit_id: int
    jobs: tuple


def default_shard_size(n_jobs, workers):
    """Jobs per unit when the caller doesn't choose: ~4 units/worker.

    Small enough that a dead worker forfeits little and stragglers
    rebalance, large enough that queue chatter stays negligible.
    """
    return max(1, -(-int(n_jobs) // max(1, int(workers) * 4)))


def shard_points(jobs, shard_size):
    """Split ``(key, index, params)`` jobs into :class:`WorkUnit` s.

    Grid order is preserved within and across units, so unit boundaries
    never affect which substream a point draws from.
    """
    shard_size = int(shard_size)
    if shard_size < 1:
        raise ConfigurationError(
            f"shard size must be >= 1, got {shard_size}")
    jobs = list(jobs)
    return [WorkUnit(unit_id=uid, jobs=tuple(jobs[lo:lo + shard_size]))
            for uid, lo in enumerate(range(0, len(jobs), shard_size))]


class WorkQueue:
    """Parent-side lease/ack bookkeeping over a set of work units."""

    def __init__(self, units):
        self.units = {u.unit_id: u for u in units}
        #: unit_id -> {key: job} not yet reported back.
        self.remaining_jobs = {
            u.unit_id: {job[0]: job for job in u.jobs} for u in units}
        self.pending = set(self.units)
        self.leases = {}
        self.n_leases = 0
        self.n_acks = 0
        self.n_requeued = 0

    @property
    def depth(self):
        """Units enqueued but not yet leased."""
        return len(self.pending)

    def lease(self, unit_id, pid):
        """The parent assigned ``unit_id`` to worker ``pid``."""
        self.pending.discard(unit_id)
        self.leases[unit_id] = pid
        self.n_leases += 1

    def held_by(self, pid):
        """How many units worker ``pid`` currently holds."""
        return sum(1 for p in self.leases.values() if p == pid)

    def record(self, unit_id, key):
        """A job of ``unit_id`` reported its record."""
        self.remaining_jobs.get(unit_id, {}).pop(key, None)

    def ack(self, unit_id, pid):
        """Worker ``pid`` reported every job of ``unit_id``; release it.

        An ack from a pid that no longer holds the unit — a dead
        worker's last flushed message arriving after its units were
        already requeued — is ignored, so it cannot release a lease the
        requeued unit's new owner still holds.
        """
        if self.leases.get(unit_id) != pid:
            return
        del self.leases[unit_id]
        self.n_acks += 1

    def requeue_for(self, pid):
        """Reclaim every unit leased by a dead ``pid``.

        Returns fresh :class:`WorkUnit` s (same ids, unfinished jobs
        only) ready to be re-enqueued; units whose jobs all reported
        before the death are silently retired — only their ack was
        lost.
        """
        reclaimed = []
        for unit_id in [u for u, p in self.leases.items() if p == pid]:
            del self.leases[unit_id]
            leftovers = self.remaining_jobs.get(unit_id, {})
            if not leftovers:
                self.n_acks += 1
                continue
            unit = WorkUnit(unit_id=unit_id,
                            jobs=tuple(leftovers.values()))
            self.units[unit_id] = unit
            self.pending.add(unit_id)
            self.n_requeued += 1
            reclaimed.append(unit)
        return reclaimed

    def done(self):
        """True when every unit has been leased and acked (or retired)."""
        return not self.pending and not self.leases


def _heartbeat_loop(stop, result_q, pid, heartbeat_s, trace_dir,
                    registry):
    """Worker-side heartbeat: prove liveness, flush in-flight telemetry.

    Every ``heartbeat_s`` the thread (1) flushes the worker's tracer so
    counter deltas and closed child spans of a *still-running* point
    reach the part file — before this, everything buffered until the
    top-level span closed, so a worker grinding through one long point
    was indistinguishable on disk from a hung one — and (2) sends the
    worker's cumulative metrics snapshot to the parent, which folds it
    into ``status.json``.
    """
    from repro.campaign import runner

    while not stop.wait(heartbeat_s):
        if trace_dir is not None:
            tracer = runner._WORKER_TRACERS.get(trace_dir)
            if tracer is not None:
                tracer.flush()
        try:
            result_q.put(("heartbeat", -1, pid,
                          {"t": time.time(),
                           "metrics": registry.snapshot()}))
        except (OSError, ValueError):
            return  # parent went away; nothing left to tell it


def _queue_worker(task_q, result_q, kind, campaign, base_seed, retries,
                  timeout_s, trace_dir, initializer, initargs,
                  heartbeat_s=None, pool_meta=None):
    """Worker loop: run assigned units, stream records, ack, exit on
    the ``None`` sentinel.

    Runs in a child process reading its *own* task queue. Which units
    this worker holds is recorded parent-side at assignment time — no
    "I took the unit" message exists to get lost in a dying worker's
    queue buffer — so record/ack messages only carry the unit id and
    pid for the parent's cross-checks.

    With ``heartbeat_s`` set (live status active), a daemon thread
    heartbeats the parent on that cadence; see :func:`_heartbeat_loop`.

    ``pool_meta`` names the parent's shared-memory draw pool
    (:mod:`repro.campaign.shm`): the worker attaches once here — the
    draws themselves never travel through the task queue — and point
    functions slice from the mapping. Attach failure is harmless:
    points regenerate the same draws locally, bit for bit.
    """
    if initializer is not None:
        initializer(*initargs)
    from repro.campaign import runner
    from repro.campaign import shm

    if pool_meta is not None:
        try:
            shm.attach_pool(pool_meta)
        except Exception:
            pass

    pid = os.getpid()
    stop_beat = None
    if heartbeat_s:
        registry = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        result_q.put(("heartbeat", -1, pid,
                      {"t": time.time(), "metrics": registry.snapshot()}))
        stop_beat = threading.Event()
        threading.Thread(
            target=_heartbeat_loop, daemon=True, name="campaign-heartbeat",
            args=(stop_beat, result_q, pid, float(heartbeat_s), trace_dir,
                  registry)).start()
    try:
        while True:
            unit = task_q.get()
            if unit is None:
                break
            for key, index, params in unit.jobs:
                record = runner._execute_point(
                    kind, campaign, base_seed, index, params, key,
                    retries, timeout_s, trace_dir)
                result_q.put(("record", unit.unit_id, pid, record))
            result_q.put(("ack", unit.unit_id, pid, None))
    finally:
        shm.detach_pool()
        if stop_beat is not None:
            stop_beat.set()
            # Last will: a campaign faster than one heartbeat interval
            # would otherwise never ship this worker's metrics.
            try:
                result_q.put(("heartbeat", -1, pid,
                              {"t": time.time(),
                               "metrics":
                               obs_metrics.current_registry().snapshot()}))
            except (OSError, ValueError):
                pass


def run_local_queue(spec, code_version, todo, workers, retries, timeout_s,
                    start_method, trace_dir, finish, clock,
                    shard_size=None, board=None):
    """Execute ``todo`` on the sharded local queue; returns stats.

    ``todo`` is the runner's ``(key, SweepPoint)`` list; ``finish`` is
    its record sink (which persists to the store immediately — the
    crash-safety contract). Every point gets exactly one ``finish``
    call: normally its worker's record, or a synthesized failure record
    if every executor died with the point still outstanding.

    ``board`` is the runner's live :class:`~repro.obs.live.StatusBoard`
    (or ``None``): workers heartbeat on its cadence, and the control
    loop feeds it lease-accurate in-flight counts, worker liveness, and
    forfeited-lease (stall) events.
    """
    from repro.campaign import runner

    workers = max(1, int(workers))
    jobs = [(key, pt.index, dict(pt.params)) for key, pt in todo]
    size = int(shard_size) if shard_size else default_shard_size(
        len(jobs), workers)
    units = shard_points(jobs, size)
    wq = WorkQueue(units)
    points_by_key = {key: pt for key, pt in todo}
    remaining = set(points_by_key)

    context = multiprocessing.get_context(start_method)
    # SimpleQueue, deliberately: its put() writes straight to the pipe
    # under a lock — no feeder thread. A worker that os._exits between
    # jobs has therefore already delivered every record it reported;
    # with a buffered Queue those messages can die unflushed in the
    # feeder, turning a survivable death into a lost point once the
    # respawn budget runs out.
    result_q = context.SimpleQueue()
    backlog = deque(units)
    obs.counter("campaign.queue.units", len(units))

    # The parent never reads result_q directly: a worker killed mid-put
    # (OOM, os._exit) can leave a torn frame in the pipe, and a torn
    # frame blocks Queue.get() *past its timeout* — poll() sees bytes,
    # the body never arrives. A daemon pump thread absorbs that hazard;
    # the control loop below reads this in-process inbox, so a tear
    # costs one record (whose job the lease bookkeeping re-runs), never
    # the whole campaign.
    inbox = stdlib_queue.Queue()

    def _pump():
        while True:
            try:
                inbox.put(result_q.get())
            except (EOFError, OSError):
                return

    pump = threading.Thread(target=_pump, daemon=True,
                            name="campaign-queue-pump")
    pump.start()

    initializer, initargs = runner._worker_initializer(spec.kind)
    heartbeat_s = board.heartbeat_s if board is not None else None

    # Shared-memory draw pool: when every point of a link-grid campaign
    # opted in (same draw_seed), the base draws are materialised once
    # here and workers attach by name at spawn. Failure to build one is
    # never fatal — points regenerate identical draws locally.
    from repro.campaign import shm

    draw_pool = None
    pool_plan = shm.plan_pool(spec, todo)
    if pool_plan is not None:
        try:
            draw_pool = shm.SharedDrawPool.create(**pool_plan)
            obs.counter("campaign.shm.pool")
        except Exception:
            draw_pool = None
    pool_meta = draw_pool.meta if draw_pool is not None else None

    #: pid -> (process, its private task queue). Each worker gets its
    #: own queue so the parent knows exactly which units it handed to
    #: which pid; a shared queue would make leases guesswork again.
    procs = {}
    # Keep each worker one unit ahead of the one it is running, so the
    # ack -> next-assignment round-trip doesn't idle it.
    assign_depth = 2

    def spawn():
        task_q = context.Queue()
        proc = context.Process(
            target=_queue_worker,
            args=(task_q, result_q, spec.kind, spec.name,
                  spec.base_seed, retries, timeout_s, trace_dir,
                  initializer, initargs, heartbeat_s, pool_meta),
            daemon=True)
        proc.start()
        procs[proc.pid] = (proc, task_q)
        if board is not None:
            board.worker_spawned(proc.pid)
        return proc.pid

    def update_board():
        """Lease-accurate in-flight counts for the status snapshot."""
        if board is None:
            return
        in_flight = sum(len(wq.remaining_jobs.get(uid, {}))
                        for uid in wq.leases)
        board.set_running(in_flight)
        board.set_queue_stats(
            leased_units=len(wq.leases), backlog=len(backlog),
            n_units=len(wq.units), n_requeued=wq.n_requeued,
            n_acks=wq.n_acks)

    def fill(pid):
        """Assign backlog units to ``pid`` up to the pipeline depth.

        The lease is recorded *before* the unit is enqueued: if the
        worker dies at any point after this — even before reading the
        unit — ``requeue_for`` knows to reclaim it.
        """
        _, task_q = procs[pid]
        while backlog and wq.held_by(pid) < assign_depth:
            unit = backlog.popleft()
            wq.lease(unit.unit_id, pid)
            obs.counter("campaign.queue.lease")
            task_q.put(unit)

    for _ in range(workers):
        fill(spawn())
    update_board()  # leases exist before any message arrives
    # A replacement worker per original slot; past that, a crash loop
    # would burn CPU forever re-running whatever point kills workers.
    respawn_budget = workers
    n_duplicates = 0
    n_respawns = 0
    t_enqueue = clock.elapsed

    def handle(msg):
        nonlocal n_duplicates
        msg_type, unit_id, pid, payload = msg
        if msg_type == "heartbeat":
            if board is not None:
                board.worker_heartbeat(pid, payload)
                update_board()
                board.maybe_write()
            return
        if msg_type == "record":
            key = payload["key"]
            wq.record(unit_id, key)
            if board is not None:
                board.worker_heartbeat(pid)  # records prove liveness too
            if key in remaining:
                remaining.discard(key)
                finish(payload, t_enqueue)
            else:
                # A requeued unit re-ran a point whose first record was
                # already in flight; the store must see each key once.
                n_duplicates += 1
                obs.counter("campaign.queue.duplicate")
        elif msg_type == "ack":
            wq.ack(unit_id, pid)
            obs.counter("campaign.queue.ack")
            if pid in procs:
                fill(pid)
        update_board()

    def reap_dead():
        nonlocal n_respawns
        for pid in [p for p, (proc, _) in procs.items()
                    if not proc.is_alive()]:
            proc, task_q = procs.pop(pid)
            proc.join()
            task_q.close()
            task_q.cancel_join_thread()
            forfeited = 0
            for unit in wq.requeue_for(pid):
                backlog.append(unit)
                forfeited += len(unit.jobs)
                obs.counter("campaign.queue.requeue")
            if board is not None:
                board.worker_dead(pid, forfeited=forfeited)
            if respawn_budget - n_respawns > 0 and not wq.done():
                n_respawns += 1
                obs.counter("campaign.queue.respawn")
                spawn()
        # Reclaimed units must reach survivors even when nobody acks
        # anymore (e.g. the respawn budget is spent but idle workers
        # remain) — fill here, not only on ack.
        for pid in list(procs):
            fill(pid)
        update_board()

    try:
        while remaining:
            try:
                handle(inbox.get(timeout=0.2))
            except stdlib_queue.Empty:
                reap_dead()
                if not procs:
                    break  # every executor (and replacement) is gone
        # Records can still be buffered in the pipe when the loop exits
        # through the no-executors branch; drain before declaring loss.
        while remaining:
            try:
                handle(inbox.get(timeout=0.05))
            except stdlib_queue.Empty:
                break
        n_lost = len(remaining)
        for key in sorted(remaining,
                          key=lambda k: points_by_key[k].index):
            pt = points_by_key[key]
            exc = RuntimeError(
                "work unit lost: every queue worker (and replacement) "
                "died before completing this point")
            finish(runner._pool_failure_record(spec, code_version, pt,
                                               key, exc), t_enqueue)
        remaining.clear()
    finally:
        # Nothing may be assigned past this point: a late ack drained
        # below would otherwise re-fill behind the exit sentinel.
        backlog.clear()
        for _, task_q in procs.values():
            task_q.put(None)
        for proc, _ in procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        # Workers have exited; drain their final acks (and any stray
        # duplicates) so the stats below reflect the whole run.
        while True:
            try:
                handle(inbox.get(timeout=0.05))
            except stdlib_queue.Empty:
                break
        for _, task_q in procs.values():
            task_q.close()
            task_q.cancel_join_thread()
        result_q.close()
        # The pump stays parked on the (now closed) result_q until its
        # read fails; daemon=True keeps it from pinning the process.
        if draw_pool is not None:
            draw_pool.destroy()

    return {
        "backend": "local-queue",
        "n_units": len(units),
        "shard_size": size,
        "draw_pool": pool_meta is not None,
        "n_leases": wq.n_leases,
        "n_acks": wq.n_acks,
        "n_requeued": wq.n_requeued,
        "n_duplicates": n_duplicates,
        "n_respawns": n_respawns,
        "n_lost": n_lost,
    }


def run_pool(spec, code_version, todo, workers, retries, timeout_s,
             start_method, trace_dir, finish, clock):
    """Execute ``todo`` on a :class:`ProcessPoolExecutor` (``pool``).

    One future per point; a future that dies outside the point function
    (killed worker, unpicklable argument, broken pool) still yields a
    structured failure record, so the sweep never returns holes.
    """
    from repro.campaign import runner

    context = (multiprocessing.get_context(start_method)
               if start_method else None)
    initializer, initargs = runner._worker_initializer(spec.kind)
    with ProcessPoolExecutor(max_workers=int(workers),
                             mp_context=context,
                             initializer=initializer,
                             initargs=initargs) as pool:
        futures = {}
        for key, pt in todo:
            future = pool.submit(runner._execute_point, spec.kind,
                                 spec.name, spec.base_seed,
                                 pt.index, pt.params, key,
                                 retries, timeout_s, trace_dir)
            futures[future] = (key, pt, clock.elapsed)
        for future in as_completed(futures):
            key, pt, t_submit = futures[future]
            try:
                record = future.result()
            except Exception as exc:
                record = runner._pool_failure_record(spec, code_version,
                                                     pt, key, exc)
            finish(record, t_submit)
    return {"backend": "pool"}
