"""Per-bandwidth OFDM tone plans shared by the MIMO-OFDM chains.

One :class:`TonePlan` per channel width holds the FFT geometry, the used
and pilot subcarrier sets, and the block-interleaver shape. The 20/40 MHz
plans are the 802.11n ones; 80/160 MHz follow the 802.11ac tone maps
(256-/512-point FFT, 8/16 pilots, 234/468 data tones). The PHY chains
read their geometry from here, so a generation adds channel widths by
declaring them in its :class:`~repro.standards.mcs.McsFamily` — no PHY
edits.

Simplification vs the full standard (see DESIGN.md): the 160 MHz
interleaver treats the channel as one 468-tone block (26 x 18*Nbpsc)
instead of two segment-parsed 80 MHz blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TonePlan:
    """OFDM geometry of one channel width."""

    bandwidth_mhz: int
    fft_size: int
    cp: int
    sample_rate: float
    #: Pilot subcarrier indices (DC-relative).
    pilots: tuple
    #: All used subcarrier indices (pilots + data), ascending.
    used: tuple
    #: Block-interleaver shape: columns and the rows-per-Nbpsc factor.
    interleaver_cols: int
    interleaver_row_factor: int

    @property
    def n_used(self):
        """Number of used subcarriers (data + pilots)."""
        return len(self.used)

    @property
    def data(self):
        """Data subcarrier indices (used minus pilots), ascending."""
        pilots = set(self.pilots)
        return tuple(k for k in self.used if k not in pilots)

    @property
    def n_data(self):
        """Number of data subcarriers."""
        return self.n_used - len(self.pilots)


def _sym_range(lo, hi):
    """Symmetric index set +/-(lo..hi), ascending."""
    return tuple(range(-hi, -lo + 1)) + tuple(range(lo, hi + 1))


TONE_PLANS = {
    20: TonePlan(
        bandwidth_mhz=20,
        fft_size=64,
        cp=16,
        sample_rate=20e6,
        pilots=(-21, -7, 7, 21),
        used=tuple(k for k in range(-28, 29) if k != 0),
        interleaver_cols=13,
        interleaver_row_factor=4,
    ),
    40: TonePlan(
        bandwidth_mhz=40,
        fft_size=128,
        cp=32,
        sample_rate=40e6,
        pilots=(-53, -25, -11, 11, 25, 53),
        used=tuple(k for k in range(-58, 59) if k not in (-1, 0, 1)),
        interleaver_cols=18,
        interleaver_row_factor=6,
    ),
    80: TonePlan(
        bandwidth_mhz=80,
        fft_size=256,
        cp=64,
        sample_rate=80e6,
        pilots=_sym_range(11, 11) + _sym_range(39, 39)
        + _sym_range(75, 75) + _sym_range(103, 103),
        used=tuple(k for k in range(-122, 123) if k not in (-1, 0, 1)),
        interleaver_cols=26,
        interleaver_row_factor=9,
    ),
    160: TonePlan(
        bandwidth_mhz=160,
        fft_size=512,
        cp=128,
        sample_rate=160e6,
        pilots=_sym_range(25, 25) + _sym_range(53, 53)
        + _sym_range(89, 89) + _sym_range(117, 117)
        + _sym_range(139, 139) + _sym_range(167, 167)
        + _sym_range(203, 203) + _sym_range(231, 231),
        used=_sym_range(6, 126) + _sym_range(130, 250),
        interleaver_cols=26,
        interleaver_row_factor=18,
    ),
}


def tone_plan(bandwidth_mhz):
    """The :class:`TonePlan` for a channel width in MHz."""
    if bandwidth_mhz not in TONE_PLANS:
        raise ConfigurationError(
            f"no tone plan for {bandwidth_mhz} MHz; "
            f"choose from {sorted(TONE_PLANS)}"
        )
    return TONE_PLANS[bandwidth_mhz]
