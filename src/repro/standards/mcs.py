"""Generation-parameterized 802.11 modulation-and-coding-scheme tables.

One :class:`McsFamily` per MIMO-OFDM generation describes everything the
rate math needs — the modulation/code-rate ladder, data-subcarrier count
per channel width, symbol time per guard interval, and the stream-count
envelope. Data rates follow the standard formula

    R = Nss * Nbpsc * Rcode * Nsd / Tsym

for every family; the families differ only in their parameters:

``HT`` (802.11n)
    Equal-modulation MCS 0-31: index mod 8 selects modulation + code
    rate, index // 8 + 1 is the number of spatial streams. Nsd = 52
    data subcarriers at 20 MHz, 108 at 40 MHz; Tsym = 4 us long GI /
    3.6 us short GI. MCS 31 at 40 MHz short GI is the famous 600 Mbps
    headline rate.

``VHT`` (802.11ac)
    MCS 0-9 independent of the stream count (1-8 streams signalled
    separately), adding 256-QAM and 80/160 MHz channels (Nsd = 234 /
    468). MCS 9 x8 streams at 160 MHz short GI is the 6.93 Gbps
    headline rate.

``HE`` (802.11ax)
    MCS 0-11, adding 1024-QAM on a 4x longer OFDMA symbol (12.8 us
    plus a 0.8/1.6/3.2 us guard; the ``short`` guard name maps to the
    highest-rate 0.8 us choice). Nsd = 234 data tones already at
    20 MHz. MCS 11 x8 streams at 160 MHz is the 9.6 Gbps headline.

The modulation-order/code-rate ladder is shared: each family simply uses
a longer prefix of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: The shared modulation/coding ladder. Scheme index k of every family
#: means the same (modulation, code rate) pair; families differ only in
#: how far down the ladder they reach.
MCS_SCHEMES = (
    # (modulation name, bits per subcarrier, code rate string, numeric rate)
    ("BPSK", 1, "1/2", 0.5),
    ("QPSK", 2, "1/2", 0.5),
    ("QPSK", 2, "3/4", 0.75),
    ("16-QAM", 4, "1/2", 0.5),
    ("16-QAM", 4, "3/4", 0.75),
    ("64-QAM", 6, "2/3", 2.0 / 3.0),
    ("64-QAM", 6, "3/4", 0.75),
    ("64-QAM", 6, "5/6", 5.0 / 6.0),
    ("256-QAM", 8, "3/4", 0.75),
    ("256-QAM", 8, "5/6", 5.0 / 6.0),
    ("1024-QAM", 10, "3/4", 0.75),
    ("1024-QAM", 10, "5/6", 5.0 / 6.0),
)

#: Single-stream required-SNR figure per scheme index (dB), derived from
#: minimum receiver sensitivities over a -94 dBm noise floor — the same
#: link abstraction the registry has always used for MCS 0-7; the
#: 256-/1024-QAM points extend the ladder at the conventional ~2 dB per
#: coding step / ~6 dB per two modulation orders spacing.
SCHEME_REQUIRED_SNR_DB = (
    12.0, 15.0, 17.0, 20.0, 24.0, 28.0, 29.0, 31.0, 34.0, 36.0, 40.0, 42.0,
)


@dataclass(frozen=True)
class McsFamily:
    """Rate-table parameters of one MIMO-OFDM generation."""

    name: str
    standard: str
    n_schemes: int
    max_streams: int
    #: bandwidth (MHz) -> data subcarriers per stream.
    data_subcarriers: dict
    #: guard-interval name -> OFDM symbol time (us).
    symbol_time_us: dict
    #: True when the MCS index encodes the stream count (802.11n style).
    stream_indexed: bool = False
    required_snr_db: tuple = field(default=SCHEME_REQUIRED_SNR_DB)

    @property
    def schemes(self):
        """This family's prefix of the shared modulation ladder."""
        return MCS_SCHEMES[: self.n_schemes]

    @property
    def widths_mhz(self):
        """Channel widths of the family, ascending."""
        return tuple(sorted(self.data_subcarriers))

    @property
    def peak_width_mhz(self):
        """The family's widest channelisation."""
        return max(self.data_subcarriers)

    def n_sd(self, bandwidth_mhz):
        """Data subcarriers per stream at ``bandwidth_mhz``."""
        if bandwidth_mhz not in self.data_subcarriers:
            raise ConfigurationError(
                f"{self.name} bandwidth must be one of "
                f"{sorted(self.data_subcarriers)} MHz, got {bandwidth_mhz}"
            )
        return self.data_subcarriers[bandwidth_mhz]

    def symbol_time(self, guard_interval):
        """OFDM symbol time (us) for a guard-interval name."""
        if guard_interval not in self.symbol_time_us:
            raise ConfigurationError(
                f"{self.name} guard_interval must be one of "
                f"{sorted(self.symbol_time_us)}, got {guard_interval!r}"
            )
        return self.symbol_time_us[guard_interval]

    @property
    def fastest_guard(self):
        """The guard-interval name giving the highest data rate."""
        return min(self.symbol_time_us, key=self.symbol_time_us.get)

    def mcs(self, index, spatial_streams=None):
        """The :class:`McsEntry` for an MCS index (and stream count).

        For the stream-indexed HT family ``spatial_streams`` is implied
        by the index and must be omitted or consistent; for VHT/HE it
        defaults to 1.
        """
        index = int(index)
        if self.stream_indexed:
            n_total = self.n_schemes * self.max_streams
            if not 0 <= index < n_total:
                raise ConfigurationError(
                    f"{self.name} MCS index must be 0-{n_total - 1}, "
                    f"got {index}"
                )
            implied = index // self.n_schemes + 1
            if spatial_streams is not None and int(spatial_streams) != implied:
                raise ConfigurationError(
                    f"{self.name} MCS {index} implies {implied} stream(s), "
                    f"got spatial_streams={spatial_streams}"
                )
            streams = implied
            scheme = index % self.n_schemes
        else:
            if not 0 <= index < self.n_schemes:
                raise ConfigurationError(
                    f"{self.name} MCS index must be 0-{self.n_schemes - 1}, "
                    f"got {index}"
                )
            streams = 1 if spatial_streams is None else int(spatial_streams)
            if not 1 <= streams <= self.max_streams:
                raise ConfigurationError(
                    f"{self.name} supports 1-{self.max_streams} spatial "
                    f"streams, got {streams}"
                )
            scheme = index
        name, bpsc, rate_str, rate_val = MCS_SCHEMES[scheme]
        return McsEntry(
            index=index,
            spatial_streams=streams,
            modulation=name,
            bits_per_subcarrier=bpsc,
            code_rate=rate_str,
            code_rate_value=rate_val,
            family=self.name,
        )

    def table(self):
        """Every entry of the family, as a freshly built dict.

        HT keys are the packed MCS index 0-31; VHT/HE keys are
        ``(index, spatial_streams)`` tuples.
        """
        if self.stream_indexed:
            return {i: self.mcs(i)
                    for i in range(self.n_schemes * self.max_streams)}
        return {(i, s): self.mcs(i, s)
                for s in range(1, self.max_streams + 1)
                for i in range(self.n_schemes)}

    def required_snr(self, index, spatial_streams=None):
        """System-level required SNR (dB) for an entry.

        Spatial multiplexing with a linear receiver needs extra SNR per
        added stream (inter-stream interference); 3 dB/stream is the
        customary system-level assumption.
        """
        entry = self.mcs(index, spatial_streams)
        scheme = (entry.index % self.n_schemes if self.stream_indexed
                  else entry.index)
        return (self.required_snr_db[scheme]
                + 3.0 * (entry.spatial_streams - 1))


@dataclass(frozen=True)
class McsEntry:
    """One row of a generation's MCS table."""

    index: int
    spatial_streams: int
    modulation: str
    bits_per_subcarrier: int
    code_rate: str
    code_rate_value: float
    family: str = "HT"

    def _family(self):
        return get_family(self.family)

    def n_cbps(self, bandwidth_mhz=20):
        """Coded bits per OFDM symbol across all streams."""
        return (
            self.spatial_streams
            * self.bits_per_subcarrier
            * self._family().n_sd(bandwidth_mhz)
        )

    def n_dbps(self, bandwidth_mhz=20):
        """Data bits per OFDM symbol across all streams."""
        return int(round(self.n_cbps(bandwidth_mhz) * self.code_rate_value))

    def data_rate_mbps(self, bandwidth_mhz=20, guard_interval="long"):
        """PHY data rate in Mbps."""
        fam = self._family()
        fam.n_sd(bandwidth_mhz)  # validates the width
        return self.n_dbps(bandwidth_mhz) / fam.symbol_time(guard_interval)

    def spectral_efficiency(self, bandwidth_mhz=20, guard_interval="long"):
        """Spectral efficiency in bps/Hz."""
        return self.data_rate_mbps(bandwidth_mhz, guard_interval) / bandwidth_mhz


#: Compatibility alias: the HT rows used to be a dedicated class.
HtMcs = McsEntry


MCS_FAMILIES = {
    "HT": McsFamily(
        name="HT",
        standard="802.11n",
        n_schemes=8,
        max_streams=4,
        data_subcarriers={20: 52, 40: 108},
        symbol_time_us={"long": 4.0, "short": 3.6},
        stream_indexed=True,
    ),
    "VHT": McsFamily(
        name="VHT",
        standard="802.11ac",
        n_schemes=10,
        max_streams=8,
        data_subcarriers={20: 52, 40: 108, 80: 234, 160: 468},
        symbol_time_us={"long": 4.0, "short": 3.6},
    ),
    # HE's 12.8 us OFDMA symbol takes a 0.8/1.6/3.2 us guard; the names
    # keep the family-wide convention that "short" is the fastest choice.
    "HE": McsFamily(
        name="HE",
        standard="802.11ax",
        n_schemes=12,
        max_streams=8,
        data_subcarriers={20: 234, 40: 468, 80: 980, 160: 1960},
        symbol_time_us={"long": 16.0, "medium": 14.4, "short": 13.6},
    ),
}


def get_family(name):
    """Look up an MCS family by name ('HT', 'VHT', 'HE')."""
    if name not in MCS_FAMILIES:
        raise ConfigurationError(
            f"unknown MCS family {name!r}; choose from {sorted(MCS_FAMILIES)}"
        )
    return MCS_FAMILIES[name]


def mcs_entry(family, index, spatial_streams=None):
    """The :class:`McsEntry` for ``(family, index, spatial_streams)``."""
    return get_family(family).mcs(index, spatial_streams)


def data_rate_mbps(family, index, spatial_streams=None, bandwidth_mhz=20,
                   guard_interval="long"):
    """Data rate of any generation's MCS in Mbps."""
    entry = mcs_entry(family, index, spatial_streams)
    return entry.data_rate_mbps(bandwidth_mhz, guard_interval)


# ---------------------------------------------------------------------------
# Concrete tables
# ---------------------------------------------------------------------------

#: HT MCS 0-31, keyed by the packed index.
HT_MCS_TABLE = MCS_FAMILIES["HT"].table()

#: VHT MCS 0-9 x 1-8 streams, keyed by ``(index, spatial_streams)``.
VHT_MCS_TABLE = MCS_FAMILIES["VHT"].table()

#: HE MCS 0-11 x 1-8 streams, keyed by ``(index, spatial_streams)``.
HE_MCS_TABLE = MCS_FAMILIES["HE"].table()

#: HT compatibility constants (the pre-refactor module-level tables).
DATA_SUBCARRIERS = MCS_FAMILIES["HT"].data_subcarriers
SYMBOL_TIME_US = MCS_FAMILIES["HT"].symbol_time_us


def ht_data_rate_mbps(mcs_index, bandwidth_mhz=20, guard_interval="long"):
    """Data rate for an HT MCS index (0-31)."""
    if mcs_index not in HT_MCS_TABLE:
        raise ConfigurationError(f"MCS index must be 0-31, got {mcs_index}")
    return HT_MCS_TABLE[mcs_index].data_rate_mbps(bandwidth_mhz, guard_interval)


def vht_mcs(index, spatial_streams=1):
    """The VHT MCS entry for ``(index 0-9, 1-8 streams)``."""
    return MCS_FAMILIES["VHT"].mcs(index, spatial_streams)


def he_mcs(index, spatial_streams=1):
    """The HE MCS entry for ``(index 0-11, 1-8 streams)``."""
    return MCS_FAMILIES["HE"].mcs(index, spatial_streams)
