"""The 802.11n HT modulation-and-coding-scheme (MCS) table.

Equal-modulation MCS 0-31: index mod 8 selects modulation + code rate,
index // 8 + 1 is the number of spatial streams. Data rate:

    R = Nss * Nbpsc * Rcode * Nsd / Tsym

with Nsd = 52 data subcarriers at 20 MHz, 108 at 40 MHz; Tsym = 4 us for
the 800 ns long guard interval, 3.6 us for the optional 400 ns short GI.
MCS 31 at 40 MHz / short GI is the famous 600 Mbps headline rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

DATA_SUBCARRIERS = {20: 52, 40: 108}
SYMBOL_TIME_US = {"long": 4.0, "short": 3.6}

_BASE_SCHEMES = (
    # (modulation name, bits per subcarrier, code rate string, numeric rate)
    ("BPSK", 1, "1/2", 0.5),
    ("QPSK", 2, "1/2", 0.5),
    ("QPSK", 2, "3/4", 0.75),
    ("16-QAM", 4, "1/2", 0.5),
    ("16-QAM", 4, "3/4", 0.75),
    ("64-QAM", 6, "2/3", 2.0 / 3.0),
    ("64-QAM", 6, "3/4", 0.75),
    ("64-QAM", 6, "5/6", 5.0 / 6.0),
)


@dataclass(frozen=True)
class HtMcs:
    """One row of the HT MCS table."""

    index: int
    spatial_streams: int
    modulation: str
    bits_per_subcarrier: int
    code_rate: str
    code_rate_value: float

    def n_cbps(self, bandwidth_mhz=20):
        """Coded bits per OFDM symbol across all streams."""
        return (
            self.spatial_streams
            * self.bits_per_subcarrier
            * DATA_SUBCARRIERS[bandwidth_mhz]
        )

    def n_dbps(self, bandwidth_mhz=20):
        """Data bits per OFDM symbol across all streams."""
        return int(round(self.n_cbps(bandwidth_mhz) * self.code_rate_value))

    def data_rate_mbps(self, bandwidth_mhz=20, guard_interval="long"):
        """PHY data rate in Mbps."""
        if bandwidth_mhz not in DATA_SUBCARRIERS:
            raise ConfigurationError(
                f"bandwidth must be 20 or 40 MHz, got {bandwidth_mhz}"
            )
        if guard_interval not in SYMBOL_TIME_US:
            raise ConfigurationError(
                f"guard_interval must be 'long' or 'short', got {guard_interval!r}"
            )
        return self.n_dbps(bandwidth_mhz) / SYMBOL_TIME_US[guard_interval]

    def spectral_efficiency(self, bandwidth_mhz=20, guard_interval="long"):
        """Spectral efficiency in bps/Hz."""
        return self.data_rate_mbps(bandwidth_mhz, guard_interval) / bandwidth_mhz


def _build_table():
    table = {}
    for index in range(32):
        name, bpsc, rate_str, rate_val = _BASE_SCHEMES[index % 8]
        table[index] = HtMcs(
            index=index,
            spatial_streams=index // 8 + 1,
            modulation=name,
            bits_per_subcarrier=bpsc,
            code_rate=rate_str,
            code_rate_value=rate_val,
        )
    return table


HT_MCS_TABLE = _build_table()


def ht_data_rate_mbps(mcs_index, bandwidth_mhz=20, guard_interval="long"):
    """Data rate for an MCS index (0-31)."""
    if mcs_index not in HT_MCS_TABLE:
        raise ConfigurationError(f"MCS index must be 0-31, got {mcs_index}")
    return HT_MCS_TABLE[mcs_index].data_rate_mbps(bandwidth_mhz, guard_interval)
