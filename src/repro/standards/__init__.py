"""Parameter registry for every 802.11 generation the paper discusses.

This package is pure data + small helpers: PHY rate tables, MAC timing
constants and spectral-efficiency bookkeeping for 802.11 (DSSS/FHSS),
802.11b (CCK), 802.11a/g (OFDM), 802.11n (MIMO-OFDM, as the paper
anticipated it and as eventually standardised), and the two generations
the paper's trend predicted: 802.11ac (VHT) and 802.11ax (HE/OFDMA).
Rate tables derive from the generation-parameterized MCS families in
:mod:`repro.standards.mcs`; OFDM geometry lives in
:mod:`repro.standards.plans`.
"""

from repro.standards.mcs import (
    HE_MCS_TABLE,
    HT_MCS_TABLE,
    MCS_FAMILIES,
    VHT_MCS_TABLE,
    HtMcs,
    McsEntry,
    McsFamily,
    get_family,
    ht_data_rate_mbps,
    mcs_entry,
)
from repro.standards.plans import TONE_PLANS, TonePlan, tone_plan
from repro.standards.registry import (
    GENERATIONS,
    Standard,
    evolution_table,
    generation_order,
    get_standard,
    rate_at_snr,
)

__all__ = [
    "HE_MCS_TABLE",
    "HT_MCS_TABLE",
    "MCS_FAMILIES",
    "VHT_MCS_TABLE",
    "HtMcs",
    "McsEntry",
    "McsFamily",
    "get_family",
    "ht_data_rate_mbps",
    "mcs_entry",
    "TONE_PLANS",
    "TonePlan",
    "tone_plan",
    "generation_order",
    "GENERATIONS",
    "Standard",
    "evolution_table",
    "get_standard",
    "rate_at_snr",
]
