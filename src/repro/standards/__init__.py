"""Parameter registry for every 802.11 generation the paper discusses.

This package is pure data + small helpers: PHY rate tables, MAC timing
constants and spectral-efficiency bookkeeping for 802.11 (DSSS/FHSS),
802.11b (CCK), 802.11a/g (OFDM) and 802.11n (MIMO-OFDM, as the paper
anticipated it and as eventually standardised).
"""

from repro.standards.mcs import HT_MCS_TABLE, HtMcs, ht_data_rate_mbps
from repro.standards.registry import (
    GENERATIONS,
    Standard,
    evolution_table,
    get_standard,
    rate_at_snr,
)

__all__ = [
    "HT_MCS_TABLE",
    "HtMcs",
    "ht_data_rate_mbps",
    "GENERATIONS",
    "Standard",
    "evolution_table",
    "get_standard",
    "rate_at_snr",
]
