"""Registry of 802.11 generations: rates, timing, required SNR, history.

The required-SNR figures are derived from each standard's minimum receiver
sensitivity and a -94 dBm effective noise floor (kTB over 20 MHz plus a
7 dB noise figure) — the conventional link-abstraction used by system-level
simulators. They drive rate adaptation in the mesh and MAC layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.standards.mcs import get_family

NOISE_FLOOR_DBM_20MHZ = -94.0


@dataclass(frozen=True)
class RateEntry:
    """One operating mode of a PHY generation."""

    rate_mbps: float
    required_snr_db: float
    modulation: str
    code_rate: str = "none"


@dataclass(frozen=True)
class Standard:
    """One 802.11 generation's system-level parameters."""

    name: str
    year: int
    phy_type: str
    band_ghz: float
    bandwidth_mhz: float
    rates: tuple = field(default_factory=tuple)
    slot_time_s: float = 20e-6
    sifs_s: float = 10e-6
    cw_min: int = 31
    preamble_s: float = 192e-6
    mandatory_spreading: bool = False
    #: Channel widths the generation defines (empty = single-width).
    channel_widths_mhz: tuple = field(default_factory=tuple)

    @property
    def peak_bandwidth_mhz(self):
        """The widest channelisation the generation defines."""
        if self.channel_widths_mhz:
            return max(self.channel_widths_mhz)
        return self.bandwidth_mhz

    @property
    def max_rate_mbps(self):
        """Highest PHY rate of the generation."""
        return max(r.rate_mbps for r in self.rates)

    @property
    def spectral_efficiency(self):
        """Peak spectral efficiency in bps/Hz.

        The peak rate is achieved at the generation's *widest* channel,
        so the efficiency divides by the peak width, not the base one.
        """
        return self.max_rate_mbps / self.peak_bandwidth_mhz

    def rate_at_snr(self, snr_db):
        """Highest rate decodable at ``snr_db`` (None if below all).

        Ties on rate (e.g. the same Mbps reached by more streams of a
        lower-order scheme) break toward the lower required SNR.
        """
        usable = [r for r in self.rates if r.required_snr_db <= snr_db]
        if not usable:
            return None
        return max(usable, key=lambda r: (r.rate_mbps, -r.required_snr_db))


def _family_rates(family_name, bandwidth_mhz, guard_interval="long"):
    """A whole MCS family as RateEntry tuples at one channelisation.

    Rates and required SNR both come from the generation-parameterized
    tables in :mod:`repro.standards.mcs`: the single-stream SNR ladder
    plus the customary 3 dB per extra stream for linear detection.
    """
    family = get_family(family_name)
    entries = []
    for key, mcs in family.table().items():
        spatial = None if family.stream_indexed else mcs.spatial_streams
        entries.append(
            RateEntry(
                rate_mbps=mcs.data_rate_mbps(bandwidth_mhz, guard_interval),
                required_snr_db=family.required_snr(mcs.index, spatial),
                modulation=f"{mcs.modulation} x{mcs.spatial_streams}",
                code_rate=mcs.code_rate,
            )
        )
    return tuple(entries)


def _ht_rates(bandwidth_mhz, guard_interval="long"):
    """HT MCS 0-31 as RateEntry tuples at the given channelisation."""
    return _family_rates("HT", bandwidth_mhz, guard_interval)


GENERATIONS = {
    "802.11": Standard(
        name="802.11",
        year=1997,
        phy_type="DSSS/FHSS",
        band_ghz=2.4,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(1.0, 0.0, "DBPSK+Barker"),
            RateEntry(2.0, 3.0, "DQPSK+Barker"),
        ),
        slot_time_s=20e-6,
        sifs_s=10e-6,
        cw_min=31,
        preamble_s=192e-6,
        mandatory_spreading=True,
    ),
    "802.11b": Standard(
        name="802.11b",
        year=1999,
        phy_type="CCK",
        band_ghz=2.4,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(1.0, 0.0, "DBPSK+Barker"),
            RateEntry(2.0, 3.0, "DQPSK+Barker"),
            RateEntry(5.5, 7.0, "CCK"),
            RateEntry(11.0, 10.0, "CCK"),
        ),
        slot_time_s=20e-6,
        sifs_s=10e-6,
        cw_min=31,
        preamble_s=192e-6,
    ),
    "802.11a": Standard(
        name="802.11a",
        year=1999,
        phy_type="OFDM",
        band_ghz=5.0,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(6.0, 12.0, "BPSK", "1/2"),
            RateEntry(9.0, 13.0, "BPSK", "3/4"),
            RateEntry(12.0, 15.0, "QPSK", "1/2"),
            RateEntry(18.0, 17.0, "QPSK", "3/4"),
            RateEntry(24.0, 20.0, "16-QAM", "1/2"),
            RateEntry(36.0, 24.0, "16-QAM", "3/4"),
            RateEntry(48.0, 28.0, "64-QAM", "2/3"),
            RateEntry(54.0, 29.0, "64-QAM", "3/4"),
        ),
        slot_time_s=9e-6,
        sifs_s=16e-6,
        cw_min=15,
        preamble_s=20e-6,
    ),
    "802.11g": Standard(
        name="802.11g",
        year=2003,
        phy_type="OFDM",
        band_ghz=2.4,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(6.0, 12.0, "BPSK", "1/2"),
            RateEntry(9.0, 13.0, "BPSK", "3/4"),
            RateEntry(12.0, 15.0, "QPSK", "1/2"),
            RateEntry(18.0, 17.0, "QPSK", "3/4"),
            RateEntry(24.0, 20.0, "16-QAM", "1/2"),
            RateEntry(36.0, 24.0, "16-QAM", "3/4"),
            RateEntry(48.0, 28.0, "64-QAM", "2/3"),
            RateEntry(54.0, 29.0, "64-QAM", "3/4"),
        ),
        slot_time_s=9e-6,
        sifs_s=10e-6,
        cw_min=15,
        preamble_s=20e-6,
    ),
    "802.11n": Standard(
        name="802.11n",
        year=2009,  # the paper (2005) anticipates it; ratified 2009
        phy_type="MIMO-OFDM",
        band_ghz=5.0,
        bandwidth_mhz=40.0,
        rates=_ht_rates(40, "short"),
        slot_time_s=9e-6,
        sifs_s=16e-6,
        cw_min=15,
        preamble_s=36e-6,
        channel_widths_mhz=(20.0, 40.0),
    ),
    "802.11ac": Standard(
        name="802.11ac",
        year=2013,
        phy_type="VHT MIMO-OFDM",
        band_ghz=5.0,
        bandwidth_mhz=160.0,
        rates=_family_rates("VHT", 160, "short"),
        slot_time_s=9e-6,
        sifs_s=16e-6,
        cw_min=15,
        preamble_s=40e-6,  # VHT preamble incl. one VHT-LTF
        channel_widths_mhz=(20.0, 40.0, 80.0, 160.0),
    ),
    "802.11ax": Standard(
        name="802.11ax",
        year=2019,
        phy_type="HE OFDMA",
        band_ghz=5.0,
        bandwidth_mhz=160.0,
        rates=_family_rates("HE", 160, "short"),
        slot_time_s=9e-6,
        sifs_s=16e-6,
        cw_min=15,
        preamble_s=48e-6,  # HE preamble incl. one 2x-clock HE-LTF
        channel_widths_mhz=(20.0, 40.0, 80.0, 160.0),
    ),
}

#: 802.11n at legacy 20 MHz channelisation, for like-for-like comparisons.
DOT11N_20MHZ = Standard(
    name="802.11n (20 MHz)",
    year=2009,
    phy_type="MIMO-OFDM",
    band_ghz=5.0,
    bandwidth_mhz=20.0,
    rates=_ht_rates(20, "long"),
    slot_time_s=9e-6,
    sifs_s=16e-6,
    cw_min=15,
    preamble_s=36e-6,
)


def get_standard(name):
    """Look up a generation by name ('802.11', '802.11b', ...)."""
    if name not in GENERATIONS:
        raise ConfigurationError(
            f"unknown standard {name!r}; choose from {sorted(GENERATIONS)}"
        )
    return GENERATIONS[name]


def rate_at_snr(name, snr_db):
    """Highest rate of standard ``name`` usable at ``snr_db`` (Mbps or None)."""
    entry = get_standard(name).rate_at_snr(snr_db)
    return None if entry is None else entry.rate_mbps


def evolution_table():
    """The paper's historical-trend table: one row per generation.

    Returns a list of dicts with name, year, max rate, bandwidth, spectral
    efficiency, and the ratio to the previous generation (the paper's
    "fivefold increase with each new standard").
    """
    order = generation_order()
    rows = []
    previous_eff = None
    for pos, name in enumerate(order):
        std = GENERATIONS[name]
        eff = std.spectral_efficiency
        ratio = None if previous_eff is None else eff / previous_eff
        rows.append(
            {
                "standard": name,
                "year": std.year,
                "phy": std.phy_type,
                "max_rate_mbps": std.max_rate_mbps,
                "bandwidth_mhz": std.peak_bandwidth_mhz,
                "spectral_efficiency_bps_hz": eff,
                "ratio_to_previous": ratio,
            }
        )
        # Generations sharing one PHY (802.11a and 802.11g) count as a
        # single step of the ratio chain: the paper's 5x chain is
        # 802.11 -> 802.11b -> 802.11a/g -> 802.11n -> ...
        next_shares_phy = (
            pos + 1 < len(order)
            and GENERATIONS[order[pos + 1]].phy_type == std.phy_type
        )
        if not next_shares_phy:
            previous_eff = eff
    return rows


def generation_order():
    """Generation names in historical order, derived from the registry.

    A stable sort on ratification year (registry insertion order breaks
    ties, putting 802.11b's 2.4 GHz continuation before 802.11a's new
    5 GHz PHY in 1999) — no hand-maintained list to update when a
    generation is added.
    """
    return sorted(GENERATIONS, key=lambda name: GENERATIONS[name].year)
