"""Registry of 802.11 generations: rates, timing, required SNR, history.

The required-SNR figures are derived from each standard's minimum receiver
sensitivity and a -94 dBm effective noise floor (kTB over 20 MHz plus a
7 dB noise figure) — the conventional link-abstraction used by system-level
simulators. They drive rate adaptation in the mesh and MAC layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.standards.mcs import HT_MCS_TABLE

NOISE_FLOOR_DBM_20MHZ = -94.0


@dataclass(frozen=True)
class RateEntry:
    """One operating mode of a PHY generation."""

    rate_mbps: float
    required_snr_db: float
    modulation: str
    code_rate: str = "none"


@dataclass(frozen=True)
class Standard:
    """One 802.11 generation's system-level parameters."""

    name: str
    year: int
    phy_type: str
    band_ghz: float
    bandwidth_mhz: float
    rates: tuple = field(default_factory=tuple)
    slot_time_s: float = 20e-6
    sifs_s: float = 10e-6
    cw_min: int = 31
    preamble_s: float = 192e-6
    mandatory_spreading: bool = False

    @property
    def max_rate_mbps(self):
        """Highest PHY rate of the generation."""
        return max(r.rate_mbps for r in self.rates)

    @property
    def spectral_efficiency(self):
        """Peak spectral efficiency in bps/Hz."""
        return self.max_rate_mbps / self.bandwidth_mhz

    def rate_at_snr(self, snr_db):
        """Highest rate decodable at ``snr_db`` (None if below all)."""
        usable = [r for r in self.rates if r.required_snr_db <= snr_db]
        if not usable:
            return None
        return max(usable, key=lambda r: r.rate_mbps)


def _ht_rates(bandwidth_mhz, guard_interval="long"):
    """HT MCS 0-31 as RateEntry tuples at the given channelisation."""
    base_snr = {0: 12.0, 1: 15.0, 2: 17.0, 3: 20.0, 4: 24.0, 5: 28.0,
                6: 29.0, 7: 31.0}
    entries = []
    for index, mcs in HT_MCS_TABLE.items():
        # Spatial multiplexing with a linear receiver needs extra SNR per
        # added stream (inter-stream interference); 3 dB/stream is the
        # customary system-level assumption.
        snr = base_snr[index % 8] + 3.0 * (mcs.spatial_streams - 1)
        entries.append(
            RateEntry(
                rate_mbps=mcs.data_rate_mbps(bandwidth_mhz, guard_interval),
                required_snr_db=snr,
                modulation=f"{mcs.modulation} x{mcs.spatial_streams}",
                code_rate=mcs.code_rate,
            )
        )
    return tuple(entries)


GENERATIONS = {
    "802.11": Standard(
        name="802.11",
        year=1997,
        phy_type="DSSS/FHSS",
        band_ghz=2.4,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(1.0, 0.0, "DBPSK+Barker"),
            RateEntry(2.0, 3.0, "DQPSK+Barker"),
        ),
        slot_time_s=20e-6,
        sifs_s=10e-6,
        cw_min=31,
        preamble_s=192e-6,
        mandatory_spreading=True,
    ),
    "802.11b": Standard(
        name="802.11b",
        year=1999,
        phy_type="CCK",
        band_ghz=2.4,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(1.0, 0.0, "DBPSK+Barker"),
            RateEntry(2.0, 3.0, "DQPSK+Barker"),
            RateEntry(5.5, 7.0, "CCK"),
            RateEntry(11.0, 10.0, "CCK"),
        ),
        slot_time_s=20e-6,
        sifs_s=10e-6,
        cw_min=31,
        preamble_s=192e-6,
    ),
    "802.11a": Standard(
        name="802.11a",
        year=1999,
        phy_type="OFDM",
        band_ghz=5.0,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(6.0, 12.0, "BPSK", "1/2"),
            RateEntry(9.0, 13.0, "BPSK", "3/4"),
            RateEntry(12.0, 15.0, "QPSK", "1/2"),
            RateEntry(18.0, 17.0, "QPSK", "3/4"),
            RateEntry(24.0, 20.0, "16-QAM", "1/2"),
            RateEntry(36.0, 24.0, "16-QAM", "3/4"),
            RateEntry(48.0, 28.0, "64-QAM", "2/3"),
            RateEntry(54.0, 29.0, "64-QAM", "3/4"),
        ),
        slot_time_s=9e-6,
        sifs_s=16e-6,
        cw_min=15,
        preamble_s=20e-6,
    ),
    "802.11g": Standard(
        name="802.11g",
        year=2003,
        phy_type="OFDM",
        band_ghz=2.4,
        bandwidth_mhz=20.0,
        rates=(
            RateEntry(6.0, 12.0, "BPSK", "1/2"),
            RateEntry(9.0, 13.0, "BPSK", "3/4"),
            RateEntry(12.0, 15.0, "QPSK", "1/2"),
            RateEntry(18.0, 17.0, "QPSK", "3/4"),
            RateEntry(24.0, 20.0, "16-QAM", "1/2"),
            RateEntry(36.0, 24.0, "16-QAM", "3/4"),
            RateEntry(48.0, 28.0, "64-QAM", "2/3"),
            RateEntry(54.0, 29.0, "64-QAM", "3/4"),
        ),
        slot_time_s=9e-6,
        sifs_s=10e-6,
        cw_min=15,
        preamble_s=20e-6,
    ),
    "802.11n": Standard(
        name="802.11n",
        year=2009,  # the paper (2005) anticipates it; ratified 2009
        phy_type="MIMO-OFDM",
        band_ghz=5.0,
        bandwidth_mhz=40.0,
        rates=_ht_rates(40, "short"),
        slot_time_s=9e-6,
        sifs_s=16e-6,
        cw_min=15,
        preamble_s=36e-6,
    ),
}

#: 802.11n at legacy 20 MHz channelisation, for like-for-like comparisons.
DOT11N_20MHZ = Standard(
    name="802.11n (20 MHz)",
    year=2009,
    phy_type="MIMO-OFDM",
    band_ghz=5.0,
    bandwidth_mhz=20.0,
    rates=_ht_rates(20, "long"),
    slot_time_s=9e-6,
    sifs_s=16e-6,
    cw_min=15,
    preamble_s=36e-6,
)


def get_standard(name):
    """Look up a generation by name ('802.11', '802.11b', ...)."""
    if name not in GENERATIONS:
        raise ConfigurationError(
            f"unknown standard {name!r}; choose from {sorted(GENERATIONS)}"
        )
    return GENERATIONS[name]


def rate_at_snr(name, snr_db):
    """Highest rate of standard ``name`` usable at ``snr_db`` (Mbps or None)."""
    entry = get_standard(name).rate_at_snr(snr_db)
    return None if entry is None else entry.rate_mbps


def evolution_table():
    """The paper's historical-trend table: one row per generation.

    Returns a list of dicts with name, year, max rate, bandwidth, spectral
    efficiency, and the ratio to the previous generation (the paper's
    "fivefold increase with each new standard").
    """
    order = ["802.11", "802.11b", "802.11a", "802.11g", "802.11n"]
    rows = []
    previous_eff = None
    for name in order:
        std = GENERATIONS[name]
        eff = std.spectral_efficiency
        ratio = None if previous_eff is None else eff / previous_eff
        rows.append(
            {
                "standard": name,
                "year": std.year,
                "phy": std.phy_type,
                "max_rate_mbps": std.max_rate_mbps,
                "bandwidth_mhz": std.bandwidth_mhz,
                "spectral_efficiency_bps_hz": eff,
                "ratio_to_previous": ratio,
            }
        )
        # 802.11a and 802.11g share a PHY; the paper's 5x chain is
        # 802.11 -> 802.11b -> 802.11a/g -> 802.11n.
        if name != "802.11a":
            previous_eff = eff
    return rows
