"""Regulatory rules as executable checks.

The paper's historical thread is regulatory: the FCC's unlicensed-band
rules *shaped* the early PHYs (10 dB processing gain -> Barker DSSS),
their relaxation enabled CCK, and the 5 GHz rules that skipped spreading
enabled OFDM. This module turns those rules into measurements that run on
the library's own waveforms:

* power spectral density (Welch) and occupied bandwidth (99% power);
* the 802.11a transmit spectral mask;
* the part-15 processing-gain requirement;
* a generation-by-generation compliance report mirroring the paper's
  regulatory narrative.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import welch

from repro.constants import FCC_PROCESSING_GAIN_DB
from repro.errors import ConfigurationError

#: 802.11a transmit mask breakpoints: (offset MHz, max dBr). Linear
#: interpolation between points, flat beyond the last.
DOT11A_SPECTRAL_MASK = ((9.0, 0.0), (11.0, -20.0), (20.0, -28.0),
                        (30.0, -40.0))


def power_spectral_density(waveform, sample_rate_hz, nfft=256):
    """Welch PSD of a complex baseband waveform.

    Returns
    -------
    (freqs_hz, psd_db) : centred frequency axis and PSD normalised so the
    peak is 0 dBr.
    """
    waveform = np.asarray(waveform, dtype=np.complex128).ravel()
    if waveform.size < nfft:
        raise ConfigurationError(f"waveform shorter than nfft={nfft}")
    freqs, psd = welch(waveform, fs=sample_rate_hz, nperseg=nfft,
                       return_onesided=False, detrend=False)
    order = np.argsort(freqs)
    freqs = freqs[order]
    psd = np.maximum(psd[order], 1e-30)
    psd_db = 10.0 * np.log10(psd)
    return freqs, psd_db - psd_db.max()


def occupied_bandwidth_hz(waveform, sample_rate_hz, fraction=0.99,
                          nfft=256):
    """Bandwidth containing ``fraction`` of the total power."""
    if not 0 < fraction < 1:
        raise ConfigurationError("fraction must be in (0, 1)")
    waveform = np.asarray(waveform, dtype=np.complex128).ravel()
    freqs, psd = welch(waveform, fs=sample_rate_hz,
                       nperseg=min(nfft, waveform.size),
                       return_onesided=False, detrend=False)
    order = np.argsort(freqs)
    freqs = freqs[order]
    psd = psd[order]
    total = psd.sum()
    cumulative = np.cumsum(psd)
    lo = np.searchsorted(cumulative, (1 - fraction) / 2 * total)
    hi = np.searchsorted(cumulative, (1 + fraction) / 2 * total)
    hi = min(hi, freqs.size - 1)
    return float(freqs[hi] - freqs[lo])


def mask_limit_dbr(offset_hz, mask=DOT11A_SPECTRAL_MASK):
    """Spectral-mask limit (dBr) at a frequency offset from the carrier."""
    offset_mhz = abs(float(offset_hz)) / 1e6
    points = list(mask)
    if offset_mhz <= points[0][0]:
        return points[0][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= offset_mhz <= x1:
            return y0 + (y1 - y0) * (offset_mhz - x0) / (x1 - x0)
    return points[-1][1]


def check_spectral_mask(waveform, sample_rate_hz, mask=DOT11A_SPECTRAL_MASK,
                        nfft=256):
    """Measure a waveform against a transmit mask.

    Returns
    -------
    dict with ``compliant`` (bool), ``worst_margin_db`` (min of
    limit - psd; negative = violation) and the PSD arrays.

    Note: checking a 20 Msps baseband capture only exercises the mask to
    +/-10 MHz; adjacent-channel skirts beyond that need an oversampled
    capture.
    """
    freqs, psd_db = power_spectral_density(waveform, sample_rate_hz, nfft)
    limits = np.array([mask_limit_dbr(f, mask) for f in freqs])
    margins = limits - psd_db
    worst = float(margins.min())
    return {
        "compliant": bool(worst >= 0.0),
        "worst_margin_db": worst,
        "freqs_hz": freqs,
        "psd_db": psd_db,
        "limits_dbr": limits,
    }


def processing_gain_db_for(chips_per_symbol):
    """Part-15-style processing gain of a direct-sequence system."""
    if chips_per_symbol < 1:
        raise ConfigurationError("need >= 1 chip per symbol")
    return float(10.0 * np.log10(chips_per_symbol))


def meets_spreading_mandate(chips_per_symbol,
                            required_db=FCC_PROCESSING_GAIN_DB):
    """True if the spreading factor satisfies the original FCC mandate."""
    return processing_gain_db_for(chips_per_symbol) >= required_db


def regulatory_report():
    """The paper's regulatory narrative, generation by generation.

    Returns rows of (generation, mechanism, processing gain or None,
    mandate status) matching the historical record: 802.11 complies via
    spreading, 802.11b ships a waiver-era DSSS-like signature below 10 dB,
    and the OFDM generations are exempt (rule sidestepped at 5 GHz,
    then relaxed at 2.4 GHz).
    """
    rows = [
        {
            "standard": "802.11 (DSSS)",
            "mechanism": "11-chip Barker spreading",
            "processing_gain_db": processing_gain_db_for(11),
            "status": "complies with the 10 dB mandate",
        },
        {
            "standard": "802.11 (FHSS)",
            "mechanism": "79-channel frequency hopping",
            "processing_gain_db": processing_gain_db_for(79),
            "status": "complies (hopping counted as spreading)",
        },
        {
            "standard": "802.11b (CCK)",
            "mechanism": "8-chip complementary codes",
            "processing_gain_db": processing_gain_db_for(8),
            "status": "below 10 dB: allowed after the mandate was relaxed "
                      "to a DSSS-like signature",
        },
        {
            "standard": "802.11a/g (OFDM)",
            "mechanism": "no spreading (spectrally efficient modulation)",
            "processing_gain_db": None,
            "status": "rule sidestepped at 5 GHz / relaxed at 2.4 GHz",
        },
        {
            "standard": "802.11n (MIMO-OFDM)",
            "mechanism": "spatial multiplexing",
            "processing_gain_db": None,
            "status": "no regulatory barrier: technology limited",
        },
    ]
    return rows
