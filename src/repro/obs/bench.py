"""Benchmark regression gate: compare two ``--bench-json`` dumps.

``pytest benchmarks/ --bench-json PATH`` (see ``benchmarks/conftest``)
dumps every benchmark's metrics as ``{"schema": 1, "metrics":
[{"benchmark", "name", "value", "units"}, ...]}``. Committed baselines
(``BENCH_6.json``, ``BENCH_9.json``) pin those numbers at PR time;
``repro bench diff BASELINE CURRENT`` re-compares them metric by metric
and exits nonzero on a regression — the CI perf gate.

What gates and what merely informs
----------------------------------
Raw durations (units ``s``/``us``) move with the machine: a CI runner
is not the laptop the baseline was dumped on, so seconds-valued metrics
are *informational* — reported, never failing — unless ``--gate-all``.
Dimensionless ratios (units ``x``, ``fraction``) and counts
(``packets``, ``1/s``) are machine-independent by construction — a
6.3x batching speedup or a 0.2 PER is the same number everywhere — so
those gate by default, each against a relative tolerance.

Tolerance resolution per metric: a ``--tol NAME=REL`` override (NAME is
``benchmark::name`` or a suffix of it), else the per-units default
(ratios get :data:`DEFAULT_RATIO_TOL` because speedups jitter with
load; exact counts get 0), else :data:`DEFAULT_TOL`.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigurationError

#: Relative tolerance for gated metrics without a specific override.
DEFAULT_TOL = 0.05

#: Looser default for speedup ratios (units ``x``): they compare two
#: timed runs, so load jitter enters twice.
DEFAULT_RATIO_TOL = 0.35

#: Units whose values depend on the machine's speed (durations and raw
#: throughputs) — informational unless ``gate_all``.
TIME_UNITS = frozenset({"s", "us", "ms", "1/s"})

#: Per-units default tolerances for gated metrics. Exact-count units
#: ("packets", "points") gate at zero: the kernel-parity and
#: cross-point benches emit deterministic counts, and any drift there
#: is a semantics change, not noise.
UNIT_TOLS = {"x": DEFAULT_RATIO_TOL, "fraction": DEFAULT_TOL,
             "packets": 0.0, "points": 0.0}


def load_bench(path):
    """Parse one ``--bench-json`` dump into ``{metric_id: (value, units)}``.

    The metric id is ``"<benchmark>::<name>"`` — unique within a dump
    because the conftest records each (benchmark, name) pair once.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise ConfigurationError(f"no benchmark dump at {path!r}")
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    metrics = {}
    for m in document.get("metrics") or []:
        metric_id = f"{m['benchmark']}::{m['name']}"
        metrics[metric_id] = (float(m["value"]), m.get("units", ""))
    if not metrics:
        raise ConfigurationError(f"{path!r} contains no metrics")
    return metrics


def parse_tol_overrides(pairs):
    """``["phy_speedup=0.5", ...]`` → ``{"phy_speedup": 0.5}``."""
    overrides = {}
    for pair in pairs or []:
        name, sep, raw = str(pair).partition("=")
        try:
            tol = float(raw)
            if not sep or tol < 0:
                raise ValueError
        except ValueError:
            raise ConfigurationError(
                f"--tol wants NAME=REL with REL >= 0, got {pair!r}"
            ) from None
        overrides[name] = tol
    return overrides


def _tolerance_for(metric_id, units, overrides):
    for name, tol in overrides.items():
        if metric_id == name or metric_id.endswith(name):
            return tol
    return UNIT_TOLS.get(units, DEFAULT_TOL)


def diff_benches(baseline, current, tol_overrides=None, gate_all=False):
    """Compare two :func:`load_bench` dicts; returns a report dict.

    Each compared metric yields ``{"metric", "units", "base", "cur",
    "rel_change", "tol", "gated", "status"}`` with status ``ok`` /
    ``regressed`` / ``info``. Metrics present on only one side are
    listed under ``only_baseline`` / ``only_current`` (informational:
    benchmarks come and go across PRs).
    """
    tol_overrides = tol_overrides or {}
    rows = []
    n_regressed = 0
    for metric_id in sorted(set(baseline) & set(current)):
        base, units = baseline[metric_id]
        cur, cur_units = current[metric_id]
        if cur_units != units:
            raise ConfigurationError(
                f"{metric_id}: units changed {units!r} -> {cur_units!r}; "
                "regenerate the baseline"
            )
        rel = (cur - base) / abs(base) if base else (0.0 if cur == base
                                                    else float("inf"))
        tol = _tolerance_for(metric_id, units, tol_overrides)
        gated = gate_all or units not in TIME_UNITS
        # Direction matters: a higher speedup or a faster duration is
        # never a regression, however far outside tolerance.
        better = rel >= 0 if units in ("x", "1/s") else rel <= 0
        regressed = gated and not better and abs(rel) > tol
        if regressed:
            n_regressed += 1
        rows.append({
            "metric": metric_id, "units": units, "base": base,
            "cur": cur, "rel_change": rel, "tol": tol, "gated": gated,
            "status": ("regressed" if regressed else
                       "ok" if gated else "info"),
        })
    return {
        "rows": rows,
        "n_compared": len(rows),
        "n_gated": sum(1 for r in rows if r["gated"]),
        "n_regressed": n_regressed,
        "only_baseline": sorted(set(baseline) - set(current)),
        "only_current": sorted(set(current) - set(baseline)),
        "ok": n_regressed == 0,
    }


def _short(metric_id, width=58):
    return metric_id if len(metric_id) <= width else \
        "..." + metric_id[-(width - 3):]


def diff_lines(report, verbose=False):
    """Render a :func:`diff_benches` report for the terminal."""
    lines = []
    for row in report["rows"]:
        if row["status"] == "regressed":
            marker = "REGRESSED"
        elif row["status"] == "info":
            if not verbose:
                continue
            marker = "info"
        else:
            if not verbose:
                continue
            marker = "ok"
        lines.append(
            f"  {marker:<9} {_short(row['metric']):<58} "
            f"{row['base']:>12.4g} -> {row['cur']:>12.4g} {row['units']:<8} "
            f"({row['rel_change']:+.1%}, tol {row['tol']:.0%})")
    for metric_id in report["only_baseline"]:
        lines.append(f"  gone      {_short(metric_id)} "
                     "(in baseline only)")
    if verbose:
        for metric_id in report["only_current"]:
            lines.append(f"  new       {_short(metric_id)} "
                         "(not in baseline)")
    summary = (f"{report['n_compared']} metric(s) compared, "
               f"{report['n_gated']} gated, "
               f"{report['n_regressed']} regression(s)")
    lines.append(("FAIL: " if not report["ok"] else "OK: ") + summary)
    return lines
