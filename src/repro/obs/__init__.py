"""Structured tracing, metrics, and run telemetry (``repro.obs``).

The observability layer every other subsystem leans on: the campaign
runner, the adaptive MC engine, the link/relay/coverage simulators and
the CLI all emit spans and counters through the module-level functions
here. With no tracer installed (the default) every call is a single
branch on a process global — simulation hot paths pay effectively
nothing (see the overhead guard in ``tests/test_obs.py``).

Quick use::

    from repro import obs

    with obs.use_tracer(obs.Tracer()) as tracer:
        with obs.span("my.phase", n=3) as sp:
            obs.counter("my.events", 3)
            sp.set(outcome="ok")
    print(obs.summary_table(tracer.summary()))

Persisted traces are per-process JSONL files merged by the parent (see
:mod:`repro.obs.writer`), rendered by ``repro trace report`` (see
:mod:`repro.obs.report`).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs import metrics
from repro.obs import live
from repro.obs.live import STATUS_FILE, StatusBoard
from repro.obs.metrics import Histogram, MetricsRegistry, merge_snapshots
from repro.obs.report import (aggregate, summary_table, trace_report_lines)
from repro.obs.tracer import (NULL_SPAN, NullSpan, Span, StopWatch, Tracer)
from repro.obs.writer import (MERGED_TRACE_FILE, TraceWriter,
                              merge_trace_dir, part_path, read_trace,
                              reset_trace_dir)

__all__ = [
    "Histogram",
    "MERGED_TRACE_FILE",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "STATUS_FILE",
    "Span",
    "StatusBoard",
    "StopWatch",
    "TraceWriter",
    "Tracer",
    "abandon_thread",
    "aggregate",
    "counter",
    "current_tracer",
    "enabled",
    "event",
    "live",
    "merge_snapshots",
    "merge_trace_dir",
    "metrics",
    "part_path",
    "read_trace",
    "reset_trace_dir",
    "revive_thread",
    "set_tracer",
    "span",
    "summary_table",
    "timed",
    "trace_report_lines",
    "use_tracer",
]

#: The process-wide active tracer; ``None`` means tracing is off.
_TRACER = None


def current_tracer():
    """The active :class:`Tracer`, or ``None`` when tracing is off."""
    return _TRACER


def enabled():
    """True when a tracer is installed (lets callers skip attr prep)."""
    return _TRACER is not None


def set_tracer(tracer):
    """Install ``tracer`` process-wide (``None`` disables tracing)."""
    global _TRACER
    _TRACER = tracer
    return tracer


@contextmanager
def use_tracer(tracer):
    """Install ``tracer`` for the block, then restore and flush.

    The idiom for scoped tracing — a traced CLI run, a campaign worker
    adopting its per-process tracer — because it guarantees the
    previous tracer (usually ``None``) comes back even on error, and
    that buffered events hit the writer before control returns.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous
        if tracer is not None:
            tracer.flush()


def span(name, **attrs):
    """Open a span on the active tracer (shared no-op when disabled)."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def counter(name, n=1):
    """Bump a counter on the active tracer (no-op when disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.counter(name, n)


def event(name, duration_s=0.0, **attrs):
    """Record a pre-measured span on the active tracer (see Tracer.event)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, duration_s, **attrs)


def timed():
    """A :class:`StopWatch` — the repo's one wall-time measuring tool."""
    return StopWatch()


def abandon_thread(ident):
    """Suppress all future telemetry from thread ``ident``.

    The campaign runner calls this when it abandons a timed-out point's
    daemon thread: the thread cannot be killed and keeps executing —
    and emitting — but its point is already recorded as ``timeout``, so
    anything it says from now on would corrupt the trace.
    """
    tracer = _TRACER
    if tracer is not None:
        tracer.abandon_thread(ident)


def revive_thread(ident):
    """Clear any suppression left on a (reused) thread ident.

    New worker threads call this first thing: thread idents are
    recycled by the OS, so a fresh thread may inherit the suppression
    of an abandoned predecessor with the same ident.
    """
    tracer = _TRACER
    if tracer is not None:
        tracer.revive_thread(ident)
