"""The tracer: nestable spans, counters, and a near-zero no-op path.

A :class:`Tracer` records two event types:

**Spans** — named, attributed intervals with a parent/child structure.
``tracer.span("mc.run_trials", target="per")`` opens a span; spans
opened while another is active nest under it (the active-span stack is
thread-local, so a point function running on a timeout thread nests
correctly). Closing a span stamps its duration and hands it to the
writer; when the *top-level* span of a thread closes, everything
buffered since — child spans and counter deltas — is flushed to disk in
one append, so a worker that dies mid-campaign loses at most the point
it was running.

**Counters** — monotonically accumulating named totals
(``tracer.counter("mc.trials", 500)``). Counters are cheap in-memory
increments; they reach the trace file as *delta* events at each flush
and are summed back at read time.

The module-level API in :mod:`repro.obs` dispatches through a process
global that defaults to ``None``: with tracing disabled,
``obs.span(...)`` returns a shared immutable no-op and ``obs.counter``
is a single attribute test — the instrumented hot paths pay one branch,
not an allocation (guarded by the overhead test in
``tests/test_obs.py``).
"""

from __future__ import annotations

import os
import threading
import time


class NullSpan:
    """Shared no-op span returned when tracing is disabled.

    Stateless and re-entrant: the same instance can be "entered" from
    any number of ``with`` blocks on any number of threads at once.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        """Discard attributes (matches :meth:`Span.set`)."""


#: The singleton every disabled-path ``obs.span()`` call returns.
NULL_SPAN = NullSpan()


class Span:
    """One traced interval; use as a context manager.

    ``duration_s`` is valid after the ``with`` block exits, so a span
    doubles as a timer even for callers that only want the number.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_wall",
                 "duration_s", "_tracer", "_t0", "_suppressed")

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = None
        self.parent_id = None
        self.t_wall = None
        self.duration_s = None
        self._suppressed = False

    def set(self, **attrs):
        """Attach or overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        self._tracer._open_span(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close_span(self)
        return False


class StopWatch:
    """Tiny context-manager timer: ``with StopWatch() as t: ...``.

    ``t.seconds`` is the elapsed time after the block (or so-far while
    still inside, via :attr:`elapsed`). This is the one sanctioned way
    to measure wall time in this repo — it replaces hand-rolled
    ``start = time.perf_counter()`` pairs and works identically whether
    tracing is enabled or not.
    """

    __slots__ = ("_t0", "seconds")

    def __enter__(self):
        self.seconds = None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.seconds = time.perf_counter() - self._t0
        return False

    @property
    def elapsed(self):
        """Seconds since entry (usable while the block is still open)."""
        return time.perf_counter() - self._t0


class Tracer:
    """Collects spans and counters; optionally persists them as JSONL.

    Parameters
    ----------
    writer : TraceWriter or None
        Event sink. ``None`` keeps everything in memory — spans still
        aggregate into :meth:`summary`, which is what ``repro link
        --trace`` prints without touching disk.
    """

    def __init__(self, writer=None):
        self.writer = writer
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = 0
        self._buffer = []
        self._retained = []
        self._counters = {}
        self._pending = {}
        self._span_stats = {}
        # Thread idents whose telemetry is dropped: timeout threads the
        # campaign runner abandoned keep executing (and emitting) after
        # their point is already recorded as ``timeout`` — without
        # suppression those late events would merge into the trace as
        # phantom campaign work.
        self._abandoned = set()

    # -- abandoned threads ---------------------------------------------------
    #
    # The hot-path checks below short-circuit on the empty set (falsy),
    # so a tracer that never abandons anything pays one truth test.

    def abandon_thread(self, ident):
        """Drop all telemetry the thread ``ident`` emits from now on."""
        with self._lock:
            self._abandoned.add(ident)

    def revive_thread(self, ident):
        """Clear suppression for ``ident`` (call at thread birth).

        The OS reuses thread idents, so a fresh worker thread must
        shed any suppression a previously-abandoned thread left on the
        same ident before it emits anything.
        """
        if not self._abandoned:
            return
        with self._lock:
            self._abandoned.discard(ident)

    def _is_abandoned(self):
        return self._abandoned and \
            threading.get_ident() in self._abandoned

    # -- recording -----------------------------------------------------------

    def span(self, name, **attrs):
        """A new (not yet entered) :class:`Span` under the current one."""
        return Span(self, name, attrs)

    def counter(self, name, n=1):
        """Add ``n`` to the named counter (thread-safe)."""
        if self._is_abandoned():
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
            self._pending[name] = self._pending.get(name, 0) + n

    def event(self, name, duration_s=0.0, **attrs):
        """Record an already-measured span in one call.

        For intervals the caller timed itself — e.g. the campaign
        runner's submit-to-finish latency of a pool future, which no
        single ``with`` block can bracket because many points are in
        flight at once. The event nests under the calling thread's
        current span.
        """
        if self._is_abandoned():
            return
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            self._seq += 1
            record = {
                "type": "span",
                "name": name,
                "pid": self.pid,
                "seq": self._seq,
                "span_id": self._seq,
                "parent_id": parent,
                "t_wall": time.time(),
                "dur_s": float(duration_s),
                "attrs": dict(attrs),
            }
            self._note_span(name, float(duration_s))
            self._buffer.append(record)
            if not stack:
                self._flush_locked()

    # -- span lifecycle (called by Span) -------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open_span(self, span):
        if self._is_abandoned():
            span._suppressed = True
            return
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        span.t_wall = time.time()
        with self._lock:
            self._seq += 1
            span.span_id = self._seq
        stack.append(span)

    def _close_span(self, span):
        if span._suppressed:
            return
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; drop it and its orphans
            del stack[stack.index(span):]
        if self._is_abandoned():
            # Opened before the abandonment, closing after: the stack is
            # unwound above but the record is dropped and — critically —
            # the empty-stack flush is NOT triggered, so an abandoned
            # thread's top-level span closing late cannot push phantom
            # events (or buffered counter deltas) into the trace file.
            return
        with self._lock:
            self._note_span(span.name, span.duration_s)
            self._buffer.append({
                "type": "span",
                "name": span.name,
                "pid": self.pid,
                "seq": span.span_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "t_wall": span.t_wall,
                "dur_s": span.duration_s,
                "attrs": dict(span.attrs),
            })
            if not stack:
                self._flush_locked()

    def _note_span(self, name, duration_s):
        stats = self._span_stats.get(name)
        if stats is None:
            stats = self._span_stats[name] = [0, 0.0, 0.0]
        stats[0] += 1
        stats[1] += duration_s
        stats[2] = max(stats[2], duration_s)

    # -- output --------------------------------------------------------------

    def _flush_locked(self):
        if self._pending:
            now = time.time()
            for name in sorted(self._pending):
                self._seq += 1
                self._buffer.append({
                    "type": "counter",
                    "name": name,
                    "pid": self.pid,
                    "seq": self._seq,
                    "t_wall": now,
                    "value": self._pending[name],
                })
            self._pending = {}
        if self.writer is not None:
            if self._buffer:
                self.writer.write(self._buffer)
        else:
            # No sink: retain in memory so drain() can hand events back
            # (how the tests — and any embedding caller — read a trace
            # without touching disk).
            self._retained.extend(self._buffer)
        self._buffer = []

    def drain(self):
        """Return and clear every retained event (flushing first).

        Only a writer-less tracer retains events; with a
        :class:`~repro.obs.writer.TraceWriter` attached they go to disk
        and this returns ``[]`` — read the file back instead.
        """
        with self._lock:
            self._flush_locked()
            events, self._retained = self._retained, []
        return events

    def flush(self):
        """Force pending spans and counter deltas out to the writer."""
        with self._lock:
            self._flush_locked()

    def summary(self):
        """Aggregated telemetry for programmatic use.

        Returns ``{"spans": {name: {"count", "total_s", "max_s"}},
        "counters": {name: total}}`` built from this process's tracer
        memory — no trace file needed, so it works for in-memory
        tracers too (``repro link --trace`` renders exactly this).
        """
        with self._lock:
            return {
                "spans": {
                    name: {"count": c, "total_s": t, "max_s": m}
                    for name, (c, t, m) in sorted(self._span_stats.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }
