"""Trace persistence: per-process JSONL files and the parent-side merge.

Each traced process appends to its own file under
``results/<campaign>/trace/`` (``main-<pid>.jsonl`` for the
orchestrating process, ``worker-<pid>.jsonl`` for pool workers), so no
two processes ever write the same file — which is what makes tracing
safe under the ``spawn`` start method, where workers share nothing with
the parent. After the pool shuts down the parent calls
:func:`merge_trace_dir` to fold every part file into a single
``trace.jsonl`` ordered by wall-clock time, which is what ``repro
trace report`` reads.

Events are plain JSON objects (see :mod:`repro.obs.tracer` for the
schema). Values are sanitised the same way the results store sanitises
metrics: non-finite floats become ``null`` and numpy scalars are
coerced, so a stray ``nan`` attribute can never corrupt the file.
"""

from __future__ import annotations

import glob
import json
import math
import os

from repro.errors import ConfigurationError

#: Name of the merged, report-ready trace inside a trace directory.
MERGED_TRACE_FILE = "trace.jsonl"


def _json_safe(value):
    """Copy ``value`` with non-JSON leaves coerced or nulled."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool, type(None))):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    # numpy scalars (and anything else numeric) coerce; the rest stringify.
    try:
        return _json_safe(float(value))
    except (TypeError, ValueError):
        return str(value)


class TraceWriter:
    """Append-only JSONL sink for one process's trace events."""

    def __init__(self, path):
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    def write(self, events):
        """Append ``events`` (dicts) as one line each."""
        lines = [json.dumps(_json_safe(e), sort_keys=True,
                            allow_nan=False) for e in events]
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")


def read_trace(path):
    """Parse a trace JSONL file into a list of event dicts.

    Torn tail lines (a process killed mid-append) and non-object lines
    are skipped, mirroring the results store's tolerance.
    """
    if not os.path.exists(path):
        raise ConfigurationError(
            f"no trace file at {path!r} (run with --trace first?)"
        )
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and event.get("type"):
                events.append(event)
    return events


def part_path(trace_dir, role="main", pid=None):
    """The per-process part file for ``role`` in ``trace_dir``."""
    pid = os.getpid() if pid is None else int(pid)
    return os.path.join(os.fspath(trace_dir), f"{role}-{pid}.jsonl")


def reset_trace_dir(trace_dir):
    """Create ``trace_dir`` and delete any earlier run's trace files.

    Each traced run owns the directory outright: stale part files from
    a previous (possibly crashed) run would otherwise be merged into
    the new trace as ghost events.
    """
    trace_dir = os.fspath(trace_dir)
    os.makedirs(trace_dir, exist_ok=True)
    for path in glob.glob(os.path.join(trace_dir, "*.jsonl")):
        os.remove(path)
    return trace_dir


def merge_trace_dir(trace_dir, remove_parts=True, fold_existing=False):
    """Fold every part file in ``trace_dir`` into ``trace.jsonl``.

    Events are ordered by wall-clock start time (ties broken by pid and
    per-process sequence number) so the merged file reads as one
    timeline. Returns ``(merged_path, events)``. Part files are removed
    after a successful merge unless ``remove_parts=False``.

    With ``fold_existing=True`` an already-merged ``trace.jsonl`` is
    read back and folded in alongside the new part files — the resume
    path: a resumed campaign appends its spans to the interrupted run's
    trace instead of replacing it.
    """
    trace_dir = os.fspath(trace_dir)
    merged = os.path.join(trace_dir, MERGED_TRACE_FILE)
    parts = sorted(p for p in glob.glob(os.path.join(trace_dir, "*.jsonl"))
                   if os.path.basename(p) != MERGED_TRACE_FILE)
    if not parts and os.path.exists(merged):
        # Nothing new to fold in (e.g. a re-merge after the parts were
        # already consumed): keep the existing merged trace intact.
        return merged, read_trace(merged)
    events = []
    if fold_existing and os.path.exists(merged):
        events.extend(read_trace(merged))
    for part in parts:
        events.extend(read_trace(part))
    events.sort(key=lambda e: (e.get("t_wall") or 0.0,
                               e.get("pid") or 0, e.get("seq") or 0))
    # Truncate-then-append: a pre-existing merged file (re-merge of the
    # same directory) must be replaced, not extended.
    open(merged, "w", encoding="utf-8").close()
    if events:
        TraceWriter(merged).write(events)
    if remove_parts:
        for part in parts:
            os.remove(part)
    return merged, events
