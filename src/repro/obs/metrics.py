"""Process-wide metric registry: counters, gauges, log-bucket histograms.

Where the tracer (:mod:`repro.obs.tracer`) records *what happened when*
— a timeline of spans — this module records *how the run is doing right
now*: monotonic counters (trials executed), gauges (current trials/sec)
and fixed-log-bucket histograms (per-point wall time, MC batch
latency). The live status snapshotter (:mod:`repro.obs.live`) ships
:meth:`MetricsRegistry.snapshot` dicts from campaign workers to the
parent on every heartbeat and folds them into ``status.json``, so a
long-running campaign exposes its latency distribution *while* it runs
instead of only in the post-hoc trace report.

The enablement contract is the tracer's, exactly: a process global that
defaults to ``None``, module-level accessors that test it once and
return. With no registry installed every ``metrics.observe(...)`` /
``metrics.count(...)`` on a simulation hot path costs a single branch —
the same budget the ``<5%`` disabled-overhead guard in
``tests/test_obs.py`` enforces for spans and counters.

Histograms use *fixed* log-spaced buckets (``per_decade`` buckets per
factor of 10 between ``lo`` and ``hi``) rather than adaptive ones so
that snapshots taken at different times — or in different processes —
are always mergeable by summing bucket counts. Quantiles read off the
bucket edges are upper bounds accurate to one bucket width (~78% per
bucket at the default 4/decade), which is plenty for a progress view.

Quick use::

    from repro.obs import metrics

    with metrics.use_registry(metrics.MetricsRegistry()) as reg:
        metrics.observe("point.wall_s", 0.31)
        metrics.count("trials", 500)
        metrics.gauge("trials_per_s", 1613.0)
    snap = reg.snapshot()          # JSON-safe, mergeable
    merged = metrics.merge_snapshots([snap, other_snap])
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager

#: Default histogram range: 100 us .. 10^4 s, 4 buckets per decade.
DEFAULT_LO = 1e-4
DEFAULT_HI = 1e4
DEFAULT_PER_DECADE = 4


class Histogram:
    """Fixed log-bucket histogram of positive samples.

    Bucket ``k`` holds samples with ``lo * 10**(k/per_decade) <= x <
    lo * 10**((k+1)/per_decade)``; samples below ``lo`` land in bucket
    0, samples at or above ``hi`` in the last bucket. Because the edges
    are a function of ``(lo, hi, per_decade)`` alone, any two
    histograms with the same geometry merge by summing counts —
    the property the multi-process status snapshots rely on.
    """

    __slots__ = ("lo", "hi", "per_decade", "n_buckets", "counts",
                 "n", "total", "min", "max")

    def __init__(self, lo=DEFAULT_LO, hi=DEFAULT_HI,
                 per_decade=DEFAULT_PER_DECADE):
        self.lo = float(lo)
        self.hi = float(hi)
        self.per_decade = int(per_decade)
        self.n_buckets = max(1, int(math.ceil(
            (math.log10(self.hi) - math.log10(self.lo))
            * self.per_decade)))
        self.counts = [0] * self.n_buckets
        self.n = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        """Record one sample (non-finite and non-positive clamp low)."""
        value = float(value)
        if not math.isfinite(value):
            return
        if value <= self.lo:
            index = 0
        else:
            index = int(math.log10(value / self.lo) * self.per_decade)
            if index >= self.n_buckets:
                index = self.n_buckets - 1
        self.counts[index] += 1
        self.n += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def edge(self, index):
        """Upper edge of bucket ``index`` (a quantile upper bound)."""
        return self.lo * 10.0 ** ((index + 1) / self.per_decade)

    def quantile(self, q):
        """Upper-bound estimate of the ``q``-quantile from the buckets."""
        if not self.n:
            return None
        rank = q * self.n
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return min(self.edge(index),
                           self.max if self.max is not None else
                           self.edge(index))
        return self.max

    @property
    def mean(self):
        """Exact mean of observed values (None before any observe)."""
        return self.total / self.n if self.n else None

    def snapshot(self):
        """JSON-safe cumulative state (sparse buckets)."""
        return {
            "lo": self.lo, "hi": self.hi, "per_decade": self.per_decade,
            "n": self.n, "total": self.total,
            "min": self.min, "max": self.max,
            "buckets": {str(i): c for i, c in enumerate(self.counts)
                        if c},
        }

    @classmethod
    def from_snapshot(cls, snap):
        hist = cls(snap.get("lo", DEFAULT_LO), snap.get("hi", DEFAULT_HI),
                   snap.get("per_decade", DEFAULT_PER_DECADE))
        hist.n = int(snap.get("n") or 0)
        hist.total = float(snap.get("total") or 0.0)
        hist.min = snap.get("min")
        hist.max = snap.get("max")
        for index, count in (snap.get("buckets") or {}).items():
            index = int(index)
            if 0 <= index < hist.n_buckets:
                hist.counts[index] += int(count)
        return hist

    def merge(self, other):
        """Fold another histogram (or snapshot) of the same geometry in."""
        if isinstance(other, dict):
            other = Histogram.from_snapshot(other)
        if (other.lo, other.hi, other.per_decade) != \
                (self.lo, self.hi, self.per_decade):
            raise ValueError("cannot merge histograms with different "
                             "bucket geometry")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.n += other.n
        self.total += other.total
        for bound in (other.min,):
            if bound is not None:
                self.min = bound if self.min is None else min(self.min,
                                                              bound)
        for bound in (other.max,):
            if bound is not None:
                self.max = bound if self.max is None else max(self.max,
                                                              bound)
        return self


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges, and histograms.

    All mutation goes through :meth:`count` / :meth:`gauge` /
    :meth:`observe`; :meth:`snapshot` returns a JSON-safe cumulative
    dict that :func:`merge_snapshots` can fold across processes.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def count(self, name, n=1):
        """Add ``n`` to the monotonic counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name, value):
        """Set gauge ``name`` to its current ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name, value, lo=DEFAULT_LO, hi=DEFAULT_HI,
                per_decade=DEFAULT_PER_DECADE):
        """Record ``value`` into histogram ``name`` (created on first use)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(lo, hi,
                                                          per_decade)
            hist.observe(value)

    def histogram(self, name):
        """The named :class:`Histogram`, or ``None``."""
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self):
        """Cumulative JSON-safe state of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.snapshot()
                               for name, h in self._histograms.items()},
            }


def merge_snapshots(snapshots):
    """Fold per-process cumulative snapshots into one combined view.

    Counters and histogram buckets sum; gauges sum too — the gauges
    this repo ships (``mc.trials_per_s``) are per-process rates, and
    the fleet-wide rate is their sum. Returns a snapshot-shaped dict.
    """
    counters, gauges, histograms = {}, {}, {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snap.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, hsnap in (snap.get("histograms") or {}).items():
            if name in histograms:
                histograms[name].merge(hsnap)
            else:
                histograms[name] = Histogram.from_snapshot(hsnap)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {name: h.snapshot()
                       for name, h in histograms.items()},
    }


def histogram_summary(hsnap):
    """``{"n", "mean", "p50", "p90", "max"}`` for one snapshot dict."""
    hist = Histogram.from_snapshot(hsnap)
    return {
        "n": hist.n,
        "mean": hist.mean,
        "p50": hist.quantile(0.5),
        "p90": hist.quantile(0.9),
        "max": hist.max,
    }


# -- process-global dispatch (the tracer contract) ---------------------------

#: The process-wide active registry; ``None`` means metrics are off.
_REGISTRY = None


def current_registry():
    """The active :class:`MetricsRegistry`, or ``None`` when disabled."""
    return _REGISTRY


def enabled():
    """True when a registry is installed."""
    return _REGISTRY is not None


def set_registry(registry):
    """Install ``registry`` process-wide (``None`` disables metrics)."""
    global _REGISTRY
    _REGISTRY = registry
    return registry


@contextmanager
def use_registry(registry):
    """Install ``registry`` for the block, then restore the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    try:
        yield registry
    finally:
        _REGISTRY = previous


def count(name, n=1):
    """Bump a counter on the active registry (one branch when disabled)."""
    registry = _REGISTRY
    if registry is not None:
        registry.count(name, n)


def gauge(name, value):
    """Set a gauge on the active registry (one branch when disabled)."""
    registry = _REGISTRY
    if registry is not None:
        registry.gauge(name, value)


def observe(name, value):
    """Histogram one sample on the active registry (one branch when off)."""
    registry = _REGISTRY
    if registry is not None:
        registry.observe(name, value)
