"""Live campaign telemetry: the ``status.json`` snapshotter.

While a campaign runs, the orchestrating process keeps an atomic,
always-parseable ``results/<name>/status.json`` up to date: done /
running / failed / cached point counts, per-worker heartbeats with
last-seen ages, an EWMA throughput estimate with an ETA, stall
detection, and merged :mod:`repro.obs.metrics` snapshots (per-point
wall-time and MC batch-latency histograms). ``repro campaign watch``
tails this file; the future ``campaign serve`` HTTP API will serve the
same document.

The :class:`StatusBoard` is owned by the campaign runner. Backends feed
it:

* every completed point (``point_done``) updates the counts and the
  throughput EWMA;
* ``local-queue`` workers send a heartbeat message on a fixed cadence
  (carrying their cumulative metrics snapshot, and flushing their
  tracer's in-flight counter deltas to disk at the same time), which
  lands in ``worker_heartbeat`` — so a worker grinding through one long
  point is visibly alive, not indistinguishable from a hung one;
* a worker death with leased work outstanding (``worker_dead``) is
  flagged as a *stall*: the lease outlived its owner's heartbeats and
  was forfeited back to the queue.

A background ticker thread re-writes the file every heartbeat interval
even when nothing completes, so ages, ETA and stall flags stay fresh.
Writes are atomic (temp file + ``os.replace``): a reader can never
observe a torn document, and a run killed at any instant leaves the
last complete snapshot behind — itself useful post-mortem evidence.

Stall detection: an *alive* worker whose last heartbeat is older than
``stall_after_s`` (default ``STALL_AFTER_BEATS`` heartbeat intervals)
is flagged ``stalled`` — its leases have outlived the heartbeat window.
The flag clears if the worker resumes beating; a reaped dead worker's
forfeited leases increment ``stalls_detected`` permanently.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import threading
import time

from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs.writer import _json_safe

#: Name of the live status document inside a campaign directory.
STATUS_FILE = "status.json"

#: Default worker heartbeat cadence (seconds); override with
#: ``REPRO_HEARTBEAT_S`` or ``run_campaign(heartbeat_s=...)``.
DEFAULT_HEARTBEAT_S = 1.0

#: A lease whose worker has been silent this many heartbeat intervals
#: is considered stalled.
STALL_AFTER_BEATS = 5.0

#: Throughput EWMA time constant (seconds).
EWMA_TAU_S = 10.0


def default_heartbeat_s():
    """The heartbeat cadence: ``$REPRO_HEARTBEAT_S`` or the default."""
    raw = os.environ.get("REPRO_HEARTBEAT_S")
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_HEARTBEAT_S


def status_path(campaign_dir):
    """The status document for a campaign directory."""
    return os.path.join(os.fspath(campaign_dir), STATUS_FILE)


#: Distinguishes concurrent writers (ticker thread vs control loop) so
#: they never collide on one temp file name.
_WRITE_SEQ = itertools.count()


def write_json_atomic(path, document):
    """Write ``document`` as JSON via a same-directory temp + rename.

    ``os.replace`` is atomic on POSIX, so a concurrent reader sees
    either the previous complete document or the new one — never a
    truncated file, whatever instant the writer is killed at. The temp
    name is unique per process *and* per call: two threads snapshotting
    at once each rename their own complete file.
    """
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    tmp = os.path.join(parent, f".{os.path.basename(path)}"
                               f".tmp-{os.getpid()}-{next(_WRITE_SEQ)}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(_json_safe(document), fh, sort_keys=True,
                  allow_nan=False)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def read_status(path):
    """Parse a status document; raises ConfigurationError when absent."""
    path = os.fspath(path)
    if not os.path.exists(path):
        raise ConfigurationError(
            f"no live status at {path!r} — was the campaign run with a "
            "results store?"
        )
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


class StatusBoard:
    """Aggregates live run state and snapshots it to ``status.json``.

    Thread-safe: the runner's finish path, the queue control loop and
    the ticker thread all feed one board. ``path=None`` keeps the board
    purely in memory (``snapshot()`` still works), which is how
    store-less runs and unit tests use it.
    """

    def __init__(self, path, campaign, total, workers=1, backend="pool",
                 heartbeat_s=None, stall_after_s=None, registry=None):
        self.path = os.fspath(path) if path is not None else None
        self.campaign = campaign
        self.heartbeat_s = float(heartbeat_s or default_heartbeat_s())
        self.stall_after_s = float(
            stall_after_s
            if stall_after_s is not None
            else STALL_AFTER_BEATS * self.heartbeat_s)
        #: The parent process's own registry (merged into snapshots).
        self.registry = registry
        self._lock = threading.Lock()
        self._t_start = time.time()
        self._m_start = time.monotonic()
        self._state = "running"
        self._total = int(total)
        self._backend = backend
        self._workers_target = int(workers)
        self._done = 0
        self._ok = 0
        self._failed = 0
        self._cached = 0
        self._running = 0
        self._workers = {}
        self._queue = None
        self._stalls = 0
        self._ewma_pps = None
        self._m_last_done = None
        self._m_last_write = 0.0
        self._ticker = None
        self._stop = threading.Event()

    # -- feeding -------------------------------------------------------------

    def point_cached(self, n=1):
        """``n`` grid points were served from the store."""
        with self._lock:
            self._cached += int(n)

    def point_done(self, outcome="ok", worker=None, wall_s=None):
        """One fresh point finished; updates counts, EWMA, worker table."""
        now = time.monotonic()
        with self._lock:
            self._done += 1
            if outcome == "ok":
                self._ok += 1
            else:
                self._failed += 1
            if self._m_last_done is not None:
                dt = max(now - self._m_last_done, 1e-9)
                inst = 1.0 / dt
                alpha = 1.0 - math.exp(-dt / EWMA_TAU_S)
                self._ewma_pps = (inst if self._ewma_pps is None else
                                  alpha * inst
                                  + (1.0 - alpha) * self._ewma_pps)
            self._m_last_done = now
            if worker is not None:
                slot = self._worker_slot(worker)
                slot["n_records"] += 1
                slot["last_seen"] = time.time()
                slot["last_progress"] = slot["last_seen"]
        if self.registry is not None and wall_s is not None:
            self.registry.observe("campaign.point.wall_s", wall_s)
        self.maybe_write()

    def set_running(self, n):
        """How many points are currently leased out / in flight."""
        with self._lock:
            self._running = max(0, int(n))

    def set_queue_stats(self, **stats):
        """Attach backend bookkeeping (leased units, backlog depth...)."""
        with self._lock:
            self._queue = dict(self._queue or {}, **stats)

    def _worker_slot(self, pid):
        slot = self._workers.get(pid)
        if slot is None:
            now = time.time()
            slot = self._workers[pid] = {
                "first_seen": now, "last_seen": now,
                "last_progress": None, "n_records": 0,
                "state": "alive", "stalled": False,
                "forfeited_points": 0, "metrics": None,
            }
        return slot

    def worker_spawned(self, pid):
        """A worker process joined the run."""
        with self._lock:
            self._worker_slot(pid)

    def worker_heartbeat(self, pid, payload=None):
        """A heartbeat (or any sign of life) arrived from ``pid``.

        ``payload`` is the worker's cumulative
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, kept per
        worker and merged across the fleet at write time.
        """
        with self._lock:
            slot = self._worker_slot(pid)
            slot["last_seen"] = time.time()
            slot["stalled"] = False
            if payload and payload.get("metrics"):
                slot["metrics"] = payload["metrics"]

    def worker_dead(self, pid, forfeited=0):
        """``pid`` was reaped; ``forfeited`` points go back to the queue.

        A death with leased work outstanding is the terminal form of a
        stall — the lease outlived its owner's heartbeats — so it both
        flags the worker and increments the run's ``stalls_detected``.
        """
        with self._lock:
            slot = self._worker_slot(pid)
            slot["state"] = "dead"
            slot["forfeited_points"] += int(forfeited)
            if forfeited:
                slot["stalled"] = True
                self._stalls += 1
        self.maybe_write(force=True)

    # -- lifecycle -----------------------------------------------------------

    def start_ticker(self):
        """Start the background refresher (no-op without a path)."""
        if self.path is None or self._ticker is not None:
            return

        def tick():
            while not self._stop.wait(self.heartbeat_s):
                self.maybe_write(force=True)

        self._ticker = threading.Thread(target=tick, daemon=True,
                                        name="campaign-status")
        self._ticker.start()

    def finish(self, state):
        """Stop the ticker and write the terminal document."""
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=2.0)
            self._ticker = None
        with self._lock:
            self._state = state
            self._running = 0
        self.maybe_write(force=True)

    # -- snapshotting --------------------------------------------------------

    def _check_stalls_locked(self, now_wall):
        for slot in self._workers.values():
            if slot["state"] != "alive":
                continue
            slot["stalled"] = (now_wall - slot["last_seen"]
                               > self.stall_after_s)

    def snapshot(self):
        """The full status document as a plain dict."""
        now_wall = time.time()
        now_mono = time.monotonic()
        with self._lock:
            if self._state == "running":
                self._check_stalls_locked(now_wall)
            elapsed = now_mono - self._m_start
            remaining = max(
                0, self._total - self._cached - self._done)
            rate = self._ewma_pps
            if rate is None and self._done and elapsed > 0:
                rate = self._done / elapsed
            eta_s = (remaining / rate if rate and remaining else
                     (0.0 if not remaining else None))
            workers = {}
            worker_snaps = []
            for pid, slot in self._workers.items():
                view = {k: v for k, v in slot.items() if k != "metrics"}
                view["age_s"] = max(0.0, now_wall - slot["last_seen"])
                workers[str(pid)] = view
                if slot.get("metrics"):
                    worker_snaps.append(slot["metrics"])
            if self.registry is not None:
                worker_snaps.append(self.registry.snapshot())
            merged = obs_metrics.merge_snapshots(worker_snaps)
            document = {
                "schema": 1,
                "campaign": self.campaign,
                "state": self._state,
                "backend": self._backend,
                "workers_target": self._workers_target,
                "t_start": self._t_start,
                "t_update": now_wall,
                "elapsed_s": elapsed,
                "heartbeat_s": self.heartbeat_s,
                "stall_after_s": self.stall_after_s,
                "points": {
                    "total": self._total,
                    "cached": self._cached,
                    "done": self._done,
                    "ok": self._ok,
                    "failed": self._failed,
                    "running": min(self._running, remaining),
                    "remaining": remaining,
                },
                "throughput_pps": rate,
                "eta_s": eta_s,
                "stalls_detected": self._stalls,
                "workers": workers,
                "queue": self._queue,
                "metrics": merged,
                "histogram_summary": {
                    name: obs_metrics.histogram_summary(h)
                    for name, h in merged["histograms"].items()
                },
            }
        return document

    def maybe_write(self, force=False):
        """Snapshot to disk, rate-limited to ~4 writes per heartbeat."""
        if self.path is None:
            return None
        now = time.monotonic()
        min_interval = max(0.05, self.heartbeat_s / 4.0)
        with self._lock:
            if not force and now - self._m_last_write < min_interval:
                return None
            self._m_last_write = now
        return write_json_atomic(self.path, self.snapshot())


# -- rendering ---------------------------------------------------------------

def _fmt_duration(seconds):
    if seconds is None:
        return "--"
    seconds = float(seconds)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _fmt_rate(rate):
    return f"{rate:.2f} pt/s" if rate else "-- pt/s"


def refresh_ages(status, now=None):
    """Recompute worker ``age_s`` against ``now`` (read-side freshness).

    The writer stamps ages at write time; a reader polling an aging
    file (or a stalled run) wants ages relative to *its* clock. Also
    stamps ``t_read``. Mutates and returns ``status``.
    """
    now = time.time() if now is None else now
    status["t_read"] = now
    status["age_of_update_s"] = max(0.0, now - (status.get("t_update")
                                                or now))
    running = status.get("state") == "running"
    for slot in (status.get("workers") or {}).values():
        seen = slot.get("last_seen")
        if seen is not None:
            slot["age_s"] = max(0.0, now - seen)
            # Only a *running* campaign's silence means anything: a
            # terminal document's ages grow forever by construction.
            if running and slot.get("state") == "alive" and \
                    status.get("stall_after_s") is not None:
                slot["stalled"] = (slot["stalled"] or
                                   slot["age_s"]
                                   > status["stall_after_s"])
    return status


def status_lines(status, now=None):
    """Render one status document as the ``campaign watch`` view."""
    status = refresh_ages(dict(status), now=now)
    points = status.get("points") or {}
    total = points.get("total") or 0
    complete = (points.get("done") or 0) + (points.get("cached") or 0)
    frac = complete / total if total else 0.0
    bar_w = 28
    filled = int(round(frac * bar_w))
    bar = "#" * filled + "-" * (bar_w - filled)
    lines = [
        f"campaign {status.get('campaign', '?')} "
        f"[{status.get('state', '?')}] "
        f"backend={status.get('backend', '?')} "
        f"elapsed {_fmt_duration(status.get('elapsed_s'))} "
        f"(status age {status['age_of_update_s']:.1f}s)",
        f"  [{bar}] {complete}/{total} "
        f"({points.get('cached') or 0} cached, "
        f"{points.get('failed') or 0} failed) "
        f"| {points.get('running') or 0} running, "
        f"{points.get('remaining') or 0} remaining",
        f"  throughput {_fmt_rate(status.get('throughput_pps'))}  "
        f"ETA {_fmt_duration(status.get('eta_s'))}  "
        f"stalls {status.get('stalls_detected') or 0}",
    ]
    workers = status.get("workers") or {}
    if workers:
        lines.append("  workers:")
        for pid in sorted(workers, key=lambda p: int(p)):
            slot = workers[pid]
            flags = slot.get("state", "?")
            if slot.get("stalled"):
                flags += ",STALLED"
            forfeited = slot.get("forfeited_points") or 0
            extra = f"  forfeited {forfeited}" if forfeited else ""
            lines.append(
                f"    pid {pid:<8} {flags:<14} "
                f"last seen {slot.get('age_s', 0.0):>6.1f}s ago  "
                f"{slot.get('n_records', 0):>5} record(s){extra}")
    summaries = status.get("histogram_summary") or {}
    for name in sorted(summaries):
        s = summaries[name]
        if not s.get("n"):
            continue
        lines.append(
            f"  {name}: n={s['n']} mean={_fmt_duration(s.get('mean'))} "
            f"p50<={_fmt_duration(s.get('p50'))} "
            f"p90<={_fmt_duration(s.get('p90'))} "
            f"max={_fmt_duration(s.get('max'))}")
    counters = (status.get("metrics") or {}).get("counters") or {}
    interesting = {k: v for k, v in counters.items()
                   if k.startswith("mc.")}
    if interesting:
        rendered = "  ".join(f"{k}={v:g}" for k, v in
                             sorted(interesting.items()))
        lines.append(f"  counters: {rendered}")
    return lines
