"""Render a merged trace into the ``repro trace report`` breakdown.

The reporter is schema-driven, not layer-driven: it only understands
the generic event shapes (span / counter) plus the well-known span
names the campaign runner and MC engine emit (``campaign.point``,
``campaign.execute``, ``mc.run_trials``). Everything else still shows
up in the span totals and top-N tables, so instrumenting a new
subsystem needs no reporter changes.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError


def aggregate(events):
    """Fold raw events into ``{"spans": ..., "counters": ...}`` totals.

    The same shape as :meth:`repro.obs.Tracer.summary`, but computed
    from a (merged, possibly multi-process) event stream.
    """
    spans = {}
    counters = {}
    for event in events:
        if event.get("type") == "span":
            stats = spans.setdefault(event.get("name", "?"),
                                     {"count": 0, "total_s": 0.0,
                                      "max_s": 0.0})
            dur = float(event.get("dur_s") or 0.0)
            stats["count"] += 1
            stats["total_s"] += dur
            stats["max_s"] = max(stats["max_s"], dur)
        elif event.get("type") == "counter":
            name = event.get("name", "?")
            counters[name] = counters.get(name, 0) + (event.get("value")
                                                     or 0)
    return {"spans": spans, "counters": counters}


def _span_index(events):
    """``{(pid, span_id): event}`` for parent-chain walks."""
    return {(e.get("pid"), e.get("span_id")): e for e in events
            if e.get("type") == "span"}


def _point_of(event, index):
    """Grid index owning this span, walking up to a campaign span.

    Worker-side spans (``mc.run_trials`` batches, link spans) carry no
    point index themselves; their enclosing ``campaign.execute`` span
    does. Returns ``None`` for spans outside any point.
    """
    seen = 0
    while event is not None and seen < 100:
        attrs = event.get("attrs") or {}
        if event.get("name") in ("campaign.execute", "campaign.point") \
                and "index" in attrs:
            return attrs["index"]
        parent = event.get("parent_id")
        event = index.get((event.get("pid"), parent)) \
            if parent is not None else None
        seen += 1
    return None


def _mc_by_point(events):
    """Per-point MC totals: ``{index: {"trials": n, "span_s": s}}``."""
    index = _span_index(events)
    per_point = {}
    for event in events:
        if event.get("type") != "span" or event.get("name") != "mc.run_trials":
            continue
        point = _point_of(event, index)
        if point is None:
            continue
        attrs = event.get("attrs") or {}
        slot = per_point.setdefault(point, {"trials": 0, "span_s": 0.0})
        slot["trials"] += int(attrs.get("n_trials") or 0)
        slot["span_s"] += float(event.get("dur_s") or 0.0)
    return per_point


def summary_table(summary, max_rows=None):
    """Aligned per-span-name totals table from an aggregate/summary dict.

    Accepts either :func:`aggregate` output or ``Tracer.summary()``
    output (they share a shape). Rows are sorted by total time,
    busiest first.
    """
    spans = summary.get("spans") or {}
    lines = []
    if spans:
        width = max(len(n) for n in spans) + 2
        lines.append(f"{'span':<{width}}{'count':>7}{'total_s':>10}"
                     f"{'mean_ms':>10}{'max_ms':>10}")
        rows = sorted(spans.items(), key=lambda kv: -kv[1]["total_s"])
        if max_rows is not None:
            rows = rows[:int(max_rows)]
        for name, s in rows:
            mean_ms = 1000.0 * s["total_s"] / s["count"] if s["count"] else 0
            lines.append(f"{name:<{width}}{s['count']:>7}"
                         f"{s['total_s']:>10.3f}{mean_ms:>10.2f}"
                         f"{1000.0 * s['max_s']:>10.2f}")
    counters = summary.get("counters") or {}
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters) + 2
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<{width}}{value:>10g}")
    return lines


def _compact_attrs(attrs, limit=60):
    text = json.dumps(attrs, sort_keys=True, default=str)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def trace_report_lines(events, top=10, campaign=None):
    """The full ``repro trace report`` rendering for one merged trace.

    Sections: campaign overview (points / outcomes / cache / retries /
    worker utilisation), per-point timing breakdown with MC trial
    throughput, top-N slowest spans, and span/counter totals.
    """
    if not events:
        raise ConfigurationError("trace is empty; was the run traced?")
    agg = aggregate(events)
    lines = []

    points = sorted((e for e in events if e.get("type") == "span"
                     and e.get("name") == "campaign.point"),
                    key=lambda e: (e.get("attrs") or {}).get("index", 0))
    run_spans = [e for e in events if e.get("type") == "span"
                 and e.get("name") == "campaign.run"]
    mc_points = _mc_by_point(events)
    counters = agg["counters"]

    header = f"trace report: {campaign}" if campaign else "trace report"
    pids = sorted({e.get("pid") for e in events if e.get("pid")})
    lines.append(f"{header} ({len(events)} events from "
                 f"{len(pids)} process(es))")

    if run_spans:
        run = run_spans[-1]
        attrs = run.get("attrs") or {}
        lines.append(
            f"  campaign {attrs.get('campaign', '?')}: "
            f"{attrs.get('n_points', '?')} points in "
            f"{float(run.get('dur_s') or 0.0):.2f}s @ "
            f"{attrs.get('workers', '?')} worker(s), "
            f"utilization {100 * float(attrs.get('utilization') or 0):.0f}%")
    hits = counters.get("campaign.cache.hit", 0)
    misses = counters.get("campaign.cache.miss", 0)
    if hits or misses:
        lines.append(f"  cache: {hits} hit(s), {misses} miss(es)")
    retries = counters.get("campaign.retry.extra_attempts", 0)
    failures = sum(v for k, v in counters.items()
                   if k.startswith("campaign.outcome.") and
                   not k.endswith(".ok"))
    if retries or failures:
        lines.append(f"  retries: {retries} extra attempt(s), "
                     f"{failures} point(s) not ok")

    if points:
        lines.append("")
        lines.append("per-point timing:")
        lines.append(f"{'point':>6} {'outcome':<8} {'att':>3} {'cached':>6}"
                     f" {'wall_s':>8} {'mc_trials':>9} {'trials/s':>9}")
        for event in points:
            attrs = event.get("attrs") or {}
            idx = attrs.get("index")
            mc = mc_points.get(idx, {})
            trials = mc.get("trials", 0)
            span_s = mc.get("span_s", 0.0)
            rate = f"{trials / span_s:>9.0f}" if trials and span_s \
                else f"{'--':>9}"
            wall = float(attrs.get("exec_s")
                         if attrs.get("exec_s") is not None
                         else event.get("dur_s") or 0.0)
            lines.append(
                f"{idx!s:>6} {attrs.get('outcome', '?'):<8}"
                f" {attrs.get('attempts', 1)!s:>3}"
                f" {('yes' if attrs.get('cached') else 'no'):>6}"
                f" {wall:>8.3f} {trials or '--':>9} {rate}")

    slowest = sorted((e for e in events if e.get("type") == "span"),
                     key=lambda e: -(e.get("dur_s") or 0.0))[:int(top)]
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} slowest spans:")
        for event in slowest:
            lines.append(f"  {1000.0 * (event.get('dur_s') or 0.0):>10.2f}ms"
                         f"  {event.get('name'):<20} pid {event.get('pid')}"
                         f"  {_compact_attrs(event.get('attrs') or {})}")

    lines.append("")
    lines.extend(summary_table(agg))
    return lines
