"""ADC quantisation and clipping: where PAPR meets converter power.

The low-power chain the paper describes runs through the data converters:
ADC power scales as ``2^bits x sample_rate`` (see
:func:`repro.power.components.adc_power_w`), so every extra bit of
resolution — and every extra dB of PAPR headroom the waveform demands —
costs energy. This module models a uniform mid-rise quantiser with a
clipping ceiling and measures the resulting signal-to-quantisation-noise
ratio on real waveforms, closing the PAPR -> resolution -> power loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def quantize(waveform, bits, clip_level=None):
    """Quantise a complex waveform with a ``bits``-bit uniform ADC per rail.

    Parameters
    ----------
    waveform : complex array
    bits : int
        Resolution per I/Q rail (1-16).
    clip_level : float, optional
        Full-scale amplitude per rail; samples beyond it clip. Defaults to
        3x the waveform's RMS (a typical AGC target).

    Returns
    -------
    numpy.ndarray
        The quantised waveform.
    """
    if not 1 <= int(bits) <= 16:
        raise ConfigurationError(f"bits must be 1..16, got {bits}")
    waveform = np.asarray(waveform, dtype=np.complex128)
    rms = np.sqrt(np.mean(np.abs(waveform) ** 2))
    if rms == 0:
        raise ConfigurationError("waveform has zero power")
    full_scale = float(clip_level) if clip_level is not None else 3.0 * rms
    if full_scale <= 0:
        raise ConfigurationError("clip level must be positive")
    n_levels = 2 ** int(bits)
    step = 2.0 * full_scale / n_levels

    def _rail(x):
        clipped = np.clip(x, -full_scale, full_scale - step / 2)
        return (np.floor(clipped / step) + 0.5) * step

    return _rail(waveform.real) + 1j * _rail(waveform.imag)


def quantization_snr_db(waveform, bits, clip_level=None):
    """Signal-to-(quantisation+clipping)-noise ratio in dB."""
    waveform = np.asarray(waveform, dtype=np.complex128)
    quantised = quantize(waveform, bits, clip_level)
    error = quantised - waveform
    signal_power = np.mean(np.abs(waveform) ** 2)
    noise_power = np.mean(np.abs(error) ** 2)
    if noise_power <= 0:
        return float("inf")
    return float(10.0 * np.log10(signal_power / noise_power))


def required_bits(waveform, target_snr_db, clip_level=None, max_bits=14):
    """Smallest ADC resolution achieving ``target_snr_db`` on a waveform.

    Returns
    -------
    int or None
        Bits needed, or None when even ``max_bits`` falls short (e.g. the
        clip level is set inside the waveform's peaks).
    """
    for bits in range(1, int(max_bits) + 1):
        if quantization_snr_db(waveform, bits, clip_level) >= target_snr_db:
            return bits
    return None


def quantized_link_penalty_db(waveform, bits, clip_level=None):
    """Effective SNR ceiling the ADC imposes on an otherwise clean link.

    An ADC with SQNR q caps the link SNR at q no matter how strong the
    signal; this helper returns that ceiling so link budgets can include
    the converter.
    """
    return quantization_snr_db(waveform, bits, clip_level)
