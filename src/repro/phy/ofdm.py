"""The 802.11a/g OFDM PHY — 6 to 54 Mbps in a 20 MHz channel.

OFDM is the technology the paper credits with reaching 2.7 bps/Hz once the
regulators dropped the spreading mandate. This module implements the full
clause-17 baseband chain:

TX: scramble -> convolutional encode (+tail) -> puncture -> interleave ->
map -> insert pilots -> 64-point IFFT -> cyclic prefix, preceded by the
legacy short/long training fields and the SIGNAL symbol.

RX: LS channel estimation from the long training field, per-subcarrier
equalisation, pilot-driven common-phase-error correction, soft demapping,
deinterleaving, Viterbi decoding, descrambling.

The implementation is self-contained at one sample per 50 ns (20 Msps) and
feeds per-subcarrier noise variances to the soft demapper so fading
channels are handled correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    OFDM_CP_LENGTH,
    OFDM_DATA_SUBCARRIERS,
    OFDM_FFT_SIZE,
    OFDM_PILOT_INDICES,
    OFDM_SYMBOL_SAMPLES,
)
from repro.errors import ConfigurationError, DemodulationError
from repro import obs
from repro.phy import convolutional as cc
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import Modulator
from repro.phy.scrambler import scramble, scrambler_sequence
from repro.utils.bits import bits_from_bytes, bytes_from_bits

# ---------------------------------------------------------------------------
# Rate set
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OfdmRate:
    """One 802.11a rate-dependent parameter set (clause 17 table 78)."""

    rate_mbps: int
    bits_per_subcarrier: int
    code_rate: str
    signal_rate_bits: int  # the 4-bit RATE field value

    @property
    def n_cbps(self):
        """Coded bits per OFDM symbol."""
        return OFDM_DATA_SUBCARRIERS * self.bits_per_subcarrier

    @property
    def n_dbps(self):
        """Data bits per OFDM symbol."""
        return int(self.n_cbps * cc.CODE_RATES[self.code_rate])


OFDM_RATES = {
    6: OfdmRate(6, 1, "1/2", 0b1101),
    9: OfdmRate(9, 1, "3/4", 0b1111),
    12: OfdmRate(12, 2, "1/2", 0b0101),
    18: OfdmRate(18, 2, "3/4", 0b0111),
    24: OfdmRate(24, 4, "1/2", 0b1001),
    36: OfdmRate(36, 4, "3/4", 0b1011),
    48: OfdmRate(48, 6, "2/3", 0b0001),
    54: OfdmRate(54, 6, "3/4", 0b0011),
}

_RATE_FROM_SIGNAL = {r.signal_rate_bits: r for r in OFDM_RATES.values()}

# ---------------------------------------------------------------------------
# Subcarrier geometry
# ---------------------------------------------------------------------------

_ALL_USED = [k for k in range(-26, 27) if k != 0]
DATA_INDICES = np.array([k for k in _ALL_USED if k not in OFDM_PILOT_INDICES])
PILOT_INDICES = np.array(OFDM_PILOT_INDICES)

#: Pilot polarity per OFDM symbol: the 127-periodic scrambler PRBS, 0 -> +1.
_POLARITY = 1.0 - 2.0 * scrambler_sequence(127, seed=0x7F).astype(float)

#: Pilot values (before polarity): +1 on -21, -7, +7 and -1 on +21.
_PILOT_BASE = np.array([1.0, 1.0, 1.0, -1.0])


def pilot_polarity(symbol_index):
    """Polarity p_n applied to all four pilots of symbol ``n``."""
    return _POLARITY[symbol_index % 127]


def _bin_of(logical_index):
    """FFT bin for a logical subcarrier index (-26..26)."""
    return logical_index % OFDM_FFT_SIZE


_DATA_BINS = np.array([_bin_of(k) for k in DATA_INDICES])
_PILOT_BINS = np.array([_bin_of(k) for k in PILOT_INDICES])
_USED_BINS = np.array([_bin_of(k) for k in _ALL_USED])

# ---------------------------------------------------------------------------
# Training fields (clause 17.3.3)
# ---------------------------------------------------------------------------

_STF_VALUES = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j,
    -4: 1 + 1j, 4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j,
    20: 1 + 1j, 24: 1 + 1j,
}

_LTF_POS = [1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1,
            1, -1, 1, -1, 1, 1, 1, 1]  # subcarriers 1..26
_LTF_NEG = [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
            -1, 1, -1, 1, 1, 1, 1]  # subcarriers -26..-1

LTF_SEQUENCE = {}
for _i, _k in enumerate(range(-26, 0)):
    LTF_SEQUENCE[_k] = float(_LTF_NEG[_i])
for _i, _k in enumerate(range(1, 27)):
    LTF_SEQUENCE[_k] = float(_LTF_POS[_i])


def _freq_to_time(freq_bins):
    """IFFT scaled so used-subcarrier power maps to unit sample power."""
    return np.fft.ifft(freq_bins) * (OFDM_FFT_SIZE / np.sqrt(len(_USED_BINS)))


def short_training_field():
    """The 8 us legacy STF: ten repetitions of a 16-sample pattern."""
    bins = np.zeros(OFDM_FFT_SIZE, dtype=np.complex128)
    for k, v in _STF_VALUES.items():
        bins[_bin_of(k)] = np.sqrt(13.0 / 6.0) * v
    symbol = _freq_to_time(bins)
    # The 64-sample IFFT output is itself 4 repetitions of the 16-sample
    # short symbol; 2.5 repetitions give the standard's 160-sample STF.
    return np.tile(symbol, 3)[:160]


def long_training_field():
    """The 8 us legacy LTF: 32-sample CP then two 64-sample symbols."""
    bins = np.zeros(OFDM_FFT_SIZE, dtype=np.complex128)
    for k, v in LTF_SEQUENCE.items():
        bins[_bin_of(k)] = v
    symbol = _freq_to_time(bins)
    return np.concatenate([symbol[-32:], symbol, symbol])  # 160 samples


PREAMBLE_SAMPLES = 320  # STF + LTF
_LTF_FREQ = np.array([LTF_SEQUENCE[k] for k in _ALL_USED])


# ---------------------------------------------------------------------------
# The transceiver
# ---------------------------------------------------------------------------

class OfdmPhy:
    """Complete 802.11a/g OFDM transceiver.

    Parameters
    ----------
    rate_mbps : int
        One of 6, 9, 12, 18, 24, 36, 48, 54.
    scrambler_seed : int
        7-bit nonzero initial scrambler state.

    Examples
    --------
    >>> phy = OfdmPhy(54)
    >>> wave = phy.transmit(b"hello world")
    >>> phy.receive(wave, noise_var=1e-9)
    b'hello world'
    """

    def __init__(self, rate_mbps=6, scrambler_seed=0x5D):
        if rate_mbps not in OFDM_RATES:
            raise ConfigurationError(
                f"OFDM rate must be one of {sorted(OFDM_RATES)}, got {rate_mbps}"
            )
        self.rate = OFDM_RATES[rate_mbps]
        self.rate_mbps = rate_mbps
        self.scrambler_seed = scrambler_seed
        self.modulator = Modulator(self.rate.bits_per_subcarrier)
        self._signal_modulator = Modulator(1)
        self._signal_symbol_cache = {}

    # -- helpers -----------------------------------------------------------

    def n_symbols(self, psdu_bytes):
        """Number of DATA OFDM symbols for a PSDU of ``psdu_bytes`` bytes."""
        n_bits = 16 + 8 * psdu_bytes + 6  # SERVICE + PSDU + tail
        return int(np.ceil(n_bits / self.rate.n_dbps))

    def n_samples(self, psdu_bytes):
        """Waveform length of the PPDU: preamble + SIGNAL + data symbols."""
        n_sym = self.n_symbols(psdu_bytes) + 1  # + SIGNAL
        return PREAMBLE_SAMPLES + n_sym * OFDM_SYMBOL_SAMPLES

    def frame_duration_s(self, psdu_bytes):
        """Air time of the PPDU: preamble + SIGNAL + data symbols."""
        return self.n_samples(psdu_bytes) / 20e6

    def _assemble_symbol(self, data_carriers, symbol_index):
        carriers = np.asarray(data_carriers)[None, :]
        indices = np.array([symbol_index])
        return self._assemble_symbols(carriers, indices)[0]

    @staticmethod
    def _assemble_symbols(data_carriers, symbol_indices):
        """IFFT a whole block of DATA symbols at once.

        Parameters
        ----------
        data_carriers : (n_sym, 48) complex array
            One row of data-subcarrier values per OFDM symbol.
        symbol_indices : (n_sym,) int array
            Pilot-polarity index of each symbol (SIGNAL is 0).

        Returns
        -------
        (n_sym, 80) complex array of CP-prefixed time-domain symbols.
        """
        n_sym = data_carriers.shape[0]
        bins = np.zeros((n_sym, OFDM_FFT_SIZE), dtype=np.complex128)
        bins[:, _DATA_BINS] = data_carriers
        polarity = _POLARITY[np.asarray(symbol_indices) % 127]
        bins[:, _PILOT_BINS] = _PILOT_BASE[None, :] * polarity[:, None]
        symbols = np.fft.ifft(bins, axis=-1) * (
            OFDM_FFT_SIZE / np.sqrt(len(_USED_BINS))
        )
        return np.concatenate(
            [symbols[:, -OFDM_CP_LENGTH:], symbols], axis=1
        )

    # -- SIGNAL field --------------------------------------------------------

    def _signal_bits(self, psdu_bytes):
        rate_bits = [(self.rate.signal_rate_bits >> (3 - i)) & 1 for i in range(4)]
        length_bits = [(psdu_bytes >> i) & 1 for i in range(12)]
        header = rate_bits + [0] + length_bits
        parity = [int(sum(header) % 2)]
        return np.array(header + parity + [0] * 6, dtype=np.int8)

    @staticmethod
    def _parse_signal(bits):
        bits = np.asarray(bits).astype(int)
        header = bits[:17]
        if int(header.sum() + bits[17]) % 2 != 0:
            raise DemodulationError("SIGNAL parity check failed")
        rate_bits = (bits[0] << 3) | (bits[1] << 2) | (bits[2] << 1) | bits[3]
        if rate_bits not in _RATE_FROM_SIGNAL:
            raise DemodulationError(f"invalid SIGNAL rate bits {rate_bits:04b}")
        length = int(sum(bits[5 + i] << i for i in range(12)))
        return _RATE_FROM_SIGNAL[rate_bits], length

    def _encode_signal_symbol(self, psdu_bytes):
        cached = self._signal_symbol_cache.get(psdu_bytes)
        if cached is None:
            coded = cc.encode(self._signal_bits(psdu_bytes), terminate=False)
            inter = interleave(coded, 48, 1)
            cached = self._assemble_symbol(self._signal_modulator.modulate(inter), 0)
            self._signal_symbol_cache[psdu_bytes] = cached
        return cached

    # -- TX -----------------------------------------------------------------

    def transmit(self, psdu):
        """Build the full PPDU waveform for a PSDU (bytes-like).

        Returns complex baseband samples at 20 Msps with unit average power
        in the data portion.
        """
        return self._transmit_rows([bytes(psdu)])[0]

    def transmit_batch(self, psdus):
        """Build the PPDU waveforms for a batch of equal-length PSDUs.

        All PSDUs must have the same byte length (as in a fixed-payload
        Monte-Carlo batch); the result is a ``(batch, n_samples)`` complex
        array whose row ``i`` is exactly ``transmit(psdus[i])``.
        """
        psdus = [bytes(p) for p in psdus]
        if not psdus:
            raise ConfigurationError("transmit_batch needs at least one PSDU")
        if len({len(p) for p in psdus}) != 1:
            raise ConfigurationError(
                "transmit_batch requires equal-length PSDUs"
            )
        return self._transmit_rows(psdus)

    def _transmit_rows(self, psdus):
        """Encode + modulate + IFFT a batch of same-length PSDUs at once."""
        batch = len(psdus)
        psdu_bytes = len(psdus[0])
        n_sym = self.n_symbols(psdu_bytes)
        n_data_bits = n_sym * self.rate.n_dbps
        n_payload_bits = 8 * psdu_bytes
        # SERVICE (16 zero bits) | payload | six tail zeros | pad zeros.
        data = np.zeros((batch, n_data_bits), dtype=np.int8)
        for row, psdu in enumerate(psdus):
            data[row, 16 : 16 + n_payload_bits] = bits_from_bytes(psdu)
        scrambled = scramble(data, seed=self.scrambler_seed)
        tail_start = 16 + n_payload_bits
        scrambled[:, tail_start : tail_start + 6] = 0  # tail bits stay zero
        coded = cc.puncture(
            cc.encode(scrambled, terminate=False), rate=self.rate.code_rate
        )
        interleaved = interleave(coded, self.rate.n_cbps,
                                 self.rate.bits_per_subcarrier)
        carriers = self.modulator.modulate(interleaved).reshape(
            batch * n_sym, OFDM_DATA_SUBCARRIERS
        )
        indices = np.tile(np.arange(1, n_sym + 1), batch)
        data_symbols = self._assemble_symbols(carriers, indices).reshape(
            batch, n_sym * OFDM_SYMBOL_SAMPLES
        )
        head = np.concatenate([
            short_training_field(),
            long_training_field(),
            self._encode_signal_symbol(psdu_bytes),
        ])
        obs.counter("phy.ofdm.tx_symbols", batch * (n_sym + 1))
        out = np.empty(
            (batch, head.size + data_symbols.shape[1]), dtype=np.complex128
        )
        out[:, : head.size] = head
        out[:, head.size :] = data_symbols
        return out

    # -- RX -----------------------------------------------------------------

    def _fft_symbol(self, samples):
        body = samples[OFDM_CP_LENGTH:OFDM_SYMBOL_SAMPLES]
        return np.fft.fft(body) * (np.sqrt(len(_USED_BINS)) / OFDM_FFT_SIZE)

    @staticmethod
    def _fft_symbols(blocks):
        """Strip the CP and FFT a stack of 80-sample symbols along the last axis."""
        body = blocks[..., OFDM_CP_LENGTH:OFDM_SYMBOL_SAMPLES]
        return np.fft.fft(body, axis=-1) * (
            np.sqrt(len(_USED_BINS)) / OFDM_FFT_SIZE
        )

    def estimate_channel(self, ltf_samples):
        """LS channel estimate on the 52 used subcarriers from the LTF."""
        sym1 = ltf_samples[32 : 32 + 64]
        sym2 = ltf_samples[96 : 96 + 64]
        scale = np.sqrt(len(_USED_BINS)) / OFDM_FFT_SIZE
        f1 = np.fft.fft(sym1) * scale
        f2 = np.fft.fft(sym2) * scale
        avg = 0.5 * (f1 + f2)
        h = np.zeros(OFDM_FFT_SIZE, dtype=np.complex128)
        h[_USED_BINS] = avg[_USED_BINS] / _LTF_FREQ
        return h

    def receive(self, samples, noise_var, return_details=False):
        """Demodulate a PPDU waveform back into the PSDU bytes.

        Parameters
        ----------
        samples : array of complex
            Received baseband at 20 Msps, aligned to the PPDU start.
        noise_var : float
            Complex noise variance per sample (used to weight soft bits).
        return_details : bool
            If True, also return a dict of intermediate results.

        Raises
        ------
        DemodulationError
            If the SIGNAL field is unparseable (analogous to a missed
            preamble in hardware).
        """
        samples = np.asarray(samples, dtype=np.complex128).ravel()
        if samples.size < PREAMBLE_SAMPLES + OFDM_SYMBOL_SAMPLES:
            raise DemodulationError("waveform shorter than preamble + SIGNAL")
        psdus, details, errors = self._receive_rows(
            samples[None, :], np.array([noise_var], dtype=float)
        )
        if errors[0] is not None:
            raise errors[0]
        if return_details:
            return psdus[0], details[0]
        return psdus[0]

    def receive_batch(self, samples, noise_vars):
        """Demodulate a batch of PPDU waveforms in one vectorized pass.

        Parameters
        ----------
        samples : (batch, n_samples) complex array
            One received waveform per row, aligned to the PPDU start.
        noise_vars : array of float
            Per-row complex noise variance per sample.

        Returns
        -------
        list
            Per row, the decoded PSDU ``bytes``, or ``None`` where
            demodulation failed (the per-packet analogue of the
            :class:`DemodulationError` the scalar path raises).
        """
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.ndim != 2:
            raise ConfigurationError(
                f"receive_batch expects a 2-D batch, got shape {samples.shape}"
            )
        if samples.shape[1] < PREAMBLE_SAMPLES + OFDM_SYMBOL_SAMPLES:
            raise DemodulationError("waveform shorter than preamble + SIGNAL")
        noise_vars = np.broadcast_to(
            np.asarray(noise_vars, dtype=float), (samples.shape[0],)
        )
        psdus, _, _ = self._receive_rows(samples, noise_vars)
        return psdus

    def _receive_rows(self, rows, noise_vars):
        """Shared vectorized receiver over a (batch, n_samples) block.

        Returns parallel lists ``(psdus, details, errors)``; a failed row
        has ``psdus[i] is None`` and the would-be exception in
        ``errors[i]``.
        """
        batch = rows.shape[0]
        psdus = [None] * batch
        details = [None] * batch
        errors = [None] * batch

        # LS channel estimate from the two LTF repetitions, all rows at once.
        scale = np.sqrt(len(_USED_BINS)) / OFDM_FFT_SIZE
        f1 = np.fft.fft(rows[:, 192:256], axis=-1) * scale
        f2 = np.fft.fft(rows[:, 256:320], axis=-1) * scale
        avg = 0.5 * (f1 + f2)
        h = np.zeros((batch, OFDM_FFT_SIZE), dtype=np.complex128)
        h[:, _USED_BINS] = avg[:, _USED_BINS] / _LTF_FREQ

        good = ~np.any(np.abs(h[:, _USED_BINS]) < 1e-12, axis=1)
        for i in np.flatnonzero(~good):
            errors[i] = DemodulationError(
                "channel estimate has a null on a used bin"
            )
        active = np.flatnonzero(good)
        if active.size == 0:
            return psdus, details, errors

        # Per-subcarrier noise variance after the scaled FFT.
        carrier_nv = noise_vars * len(_USED_BINS) / OFDM_FFT_SIZE
        nv_data = carrier_nv[:, None] / np.abs(h[:, _DATA_BINS]) ** 2

        # SIGNAL field: one FFT + soft demap + Viterbi sweep for all rows.
        cursor = PREAMBLE_SAMPLES
        sig_freq = self._fft_symbols(
            rows[active, cursor : cursor + OFDM_SYMBOL_SAMPLES]
        )
        cursor += OFDM_SYMBOL_SAMPLES
        eq = sig_freq[:, _DATA_BINS] / h[active][:, _DATA_BINS]
        llr = self._signal_modulator.demodulate_soft(
            eq.ravel(), nv_data[active].ravel()
        )
        sig_soft = deinterleave(llr.reshape(active.size, 48), 48, 1)
        sig_bits = cc.viterbi_decode(sig_soft, 18, rate="1/2", terminated=True)

        groups = {}  # psdu_len -> list of (position in `active`, row index)
        tail = np.zeros(6, dtype=np.int8)
        for pos, i in enumerate(active):
            try:
                rate, psdu_len = self._parse_signal(
                    np.concatenate([sig_bits[pos], tail])
                )
                if rate.rate_mbps != self.rate_mbps:
                    raise DemodulationError(
                        f"SIGNAL advertises {rate.rate_mbps} Mbps but this "
                        f"receiver is configured for {self.rate_mbps} Mbps"
                    )
                needed = cursor + self.n_symbols(psdu_len) * OFDM_SYMBOL_SAMPLES
                if rows.shape[1] < needed:
                    raise DemodulationError(
                        f"waveform truncated: need {needed} samples, "
                        f"got {rows.shape[1]}"
                    )
            except DemodulationError as exc:
                errors[i] = exc
                continue
            groups.setdefault(psdu_len, []).append((pos, int(i)))

        for psdu_len, members in groups.items():
            row_ids = np.array([i for _, i in members])
            n_sym = self.n_symbols(psdu_len)
            g = row_ids.size
            blocks = rows[
                row_ids, cursor : cursor + n_sym * OFDM_SYMBOL_SAMPLES
            ].reshape(g, n_sym, OFDM_SYMBOL_SAMPLES)
            freq = self._fft_symbols(blocks)
            hg = h[row_ids]
            # Common phase error from the four pilots, per row and symbol.
            polarity = _POLARITY[(np.arange(n_sym) + 1) % 127]
            expected = (
                _PILOT_BASE[None, None, :] * polarity[None, :, None]
            ) * hg[:, None, :][:, :, _PILOT_BINS]
            cpe = np.angle(
                np.sum(freq[:, :, _PILOT_BINS] * np.conj(expected), axis=2)
            )
            freq = freq * np.exp(-1j * cpe)[:, :, None]
            eq = freq[:, :, _DATA_BINS] / hg[:, None, :][:, :, _DATA_BINS]
            nv = np.broadcast_to(nv_data[row_ids][:, None, :], eq.shape)
            llr = self.modulator.demodulate_soft(
                eq.ravel(), np.ascontiguousarray(nv).ravel()
            )
            soft = deinterleave(
                llr.reshape(g, n_sym * self.rate.n_cbps),
                self.rate.n_cbps, self.rate.bits_per_subcarrier,
            )
            # The tail sits between PSDU and pad, so the trellis does not
            # end in state zero: decode the whole field unterminated (still
            # ML over the payload region).
            decoded = cc.viterbi_decode(
                soft, n_sym * self.rate.n_dbps,
                rate=self.rate.code_rate, terminated=False,
            )
            descrambled = scramble(decoded, seed=self.scrambler_seed)
            payload_bits = descrambled[:, 16 : 16 + 8 * psdu_len]
            obs.counter("phy.ofdm.rx_symbols", g * (n_sym + 1))
            for (pos, i), bits in zip(members, payload_bits):
                psdus[i] = bytes_from_bits(bits)
                details[i] = {
                    "channel_estimate": h[i][_USED_BINS],
                    "n_symbols": n_sym,
                    "advertised_rate_mbps": self.rate_mbps,
                    "psdu_length": psdu_len,
                }
        return psdus, details, errors

    def spectral_efficiency(self, bandwidth_hz=20e6):
        """Peak spectral efficiency in bps/Hz (2.7 for 54 Mbps in 20 MHz)."""
        return self.rate_mbps * 1e6 / bandwidth_hz
