"""Optional compiled decoder kernels with always-available numpy fallbacks.

The two Monte-Carlo hot loops — the Viterbi add-compare-select sweep
(:mod:`repro.phy.convolutional`) and the LDPC normalised-min-sum check
update (:mod:`repro.phy.ldpc`) — each exist in two bit-identical
implementations:

``numpy``
    The vectorised ufunc formulations the decoders have always used.
    No extra dependencies; always available.
``numba``
    ``@njit``-compiled scalar loops over the same arithmetic in the
    same order (``fastmath`` stays *off*), so path metrics and check
    messages are IEEE-identical to the numpy path. Requires the
    optional ``numba`` dependency (``pip install repro[fast]``).

Backend selection, in precedence order:

1. an explicit ``backend=`` argument on the kernel call;
2. a process-wide override installed via :func:`set_backend` (the CLI's
   ``--kernels`` knob);
3. the ``REPRO_KERNELS`` environment variable (``numba`` / ``numpy`` /
   ``auto``);
4. ``auto`` — numba when importable, numpy otherwise.

Requesting ``numba`` when it is not installed raises
:class:`~repro.errors.ConfigurationError` (a clean CLI error, exit 2),
never an ``ImportError`` traceback. Parity between the two backends is
enforced bit-exactly by ``tests/test_kernels.py`` against the
``tests/test_phy_goldens.py`` golden vectors.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np

from repro.errors import ConfigurationError

#: Backends a caller may name (``auto`` resolves to one of the others).
KNOWN_BACKENDS = ("auto", "numpy", "numba")

_OVERRIDE = None  # process-wide backend override (set_backend)
_NUMBA_OK = None  # tri-state import-probe cache: None = not yet probed
_COMPILED = {}  # name -> jitted function, filled on first numba use


def numba_available():
    """True when the optional numba dependency is importable."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401
            _NUMBA_OK = True
        except Exception:
            _NUMBA_OK = False
    return _NUMBA_OK


def available_backends():
    """The resolvable backend names on this interpreter."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def set_backend(name):
    """Install (or with ``None`` clear) the process-wide backend override.

    Returns the previous override so callers can restore it.
    """
    global _OVERRIDE
    if name is not None:
        name = str(name)
        if name not in KNOWN_BACKENDS:
            raise ConfigurationError(
                f"unknown kernels backend {name!r}; use one of "
                f"{', '.join(KNOWN_BACKENDS)}"
            )
        if name == "numba":
            require_backend("numba")
    previous, _OVERRIDE = _OVERRIDE, name
    return previous


@contextlib.contextmanager
def use_backend(name):
    """Context manager: run a block under one kernels backend."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def require_backend(name):
    """Validate that ``name`` is usable here; raise cleanly otherwise."""
    if name not in KNOWN_BACKENDS:
        raise ConfigurationError(
            f"unknown kernels backend {name!r}; use one of "
            f"{', '.join(KNOWN_BACKENDS)}"
        )
    if name == "numba" and not numba_available():
        raise ConfigurationError(
            "kernels backend 'numba' requested but numba is not "
            "installed; install it with `pip install repro[fast]` or "
            "select the numpy fallback (REPRO_KERNELS=numpy)"
        )
    return name


def resolve_backend(backend=None):
    """Resolve ``backend``/override/env/auto to ``"numpy"`` or ``"numba"``.

    ``auto`` (the default) picks numba when it is installed — the
    fallback is silent by design, so an environment without the
    optional dependency runs the identical numpy arithmetic.
    """
    name = backend if backend is not None else (
        _OVERRIDE if _OVERRIDE is not None
        else os.environ.get("REPRO_KERNELS") or "auto")
    require_backend(str(name))
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    return str(name)


# ---------------------------------------------------------------------------
# numba kernels (compiled lazily, only when the backend resolves to numba)
# ---------------------------------------------------------------------------

def _numba_kernels():
    """Compile (once per process) and return the jitted kernel table.

    ``fastmath`` is deliberately left off and every loop reproduces the
    numpy formulation's operation order — ``(metric + a_branch) +
    b_branch`` for the ACS sweep — so both backends produce the same
    IEEE-754 doubles, not merely close ones.
    """
    if _COMPILED:
        return _COMPILED
    import numba

    @numba.njit(cache=False)
    def acs_forward(llr_a, llr_b, sign_a, sign_b, decisions, metrics):
        """Viterbi forward sweep: fill ``decisions``, update ``metrics``.

        ``llr_a``/``llr_b`` are ``(batch, n_steps)`` depunctured soft
        bits, ``sign_a``/``sign_b`` are the ``(64, 2)`` expected-output
        sign tables indexed ``[next_state, predecessor]``, ``decisions``
        is ``(n_steps, batch, 64)`` bool and ``metrics`` is the
        ``(batch, 64)`` path-metric array (updated in place).
        """
        n_steps = llr_a.shape[1]
        batch = llr_a.shape[0]
        new = np.empty(64)
        for t in range(n_steps):
            for b in range(batch):
                la = llr_a[b, t]
                lb = llr_b[b, t]
                for ns in range(64):
                    pred0 = (ns & 31) << 1
                    c0 = (metrics[b, pred0] + sign_a[ns, 0] * la) \
                        + sign_b[ns, 0] * lb
                    c1 = (metrics[b, pred0 | 1] + sign_a[ns, 1] * la) \
                        + sign_b[ns, 1] * lb
                    take1 = c1 > c0
                    decisions[t, b, ns] = take1
                    new[ns] = c1 if take1 else c0
                for ns in range(64):
                    metrics[b, ns] = new[ns]

    @numba.njit(cache=False)
    def traceback(decisions, start_states, decoded):
        """Trace survivors backwards; fills ``decoded`` (batch, n_steps)."""
        n_steps = decisions.shape[0]
        batch = decisions.shape[1]
        for b in range(batch):
            state = start_states[b]
            for t in range(n_steps - 1, -1, -1):
                decoded[b, t] = state >> 5
                pred0 = (state & 31) << 1
                state = pred0 | 1 if decisions[t, b, state] else pred0

    @numba.njit(cache=False)
    def min_sum_check(m_vc, starts, counts, normalisation, clip, out):
        """Normalised min-sum check update over check-sorted edges.

        Exactly the numpy formulation: per check, the outgoing
        magnitude on each edge is the minimum over the *other* edges
        (min1, or min2 on the unique-minimum edge), the sign is the
        product of the other edges' signs, and the result is
        ``(normalisation * sign) * magnitude`` clipped to ``clip``.
        """
        n_checks = starts.shape[0]
        for c in range(n_checks):
            lo = starts[c]
            hi = lo + counts[c]
            min1 = np.inf
            min2 = np.inf
            n_min = 0
            sign_prod = 1.0
            for e in range(lo, hi):
                v = m_vc[e]
                if v < 0.0:
                    sign_prod = -sign_prod
                    v = -v
                if v < min1:
                    min2 = min1
                    min1 = v
                    n_min = 1
                elif v == min1:
                    n_min += 1
                else:
                    if v < min2:
                        min2 = v
            if n_min > 1:
                min2 = min1
            for e in range(lo, hi):
                v = m_vc[e]
                sign = -1.0 if v < 0.0 else 1.0
                mag = -v if v < 0.0 else v
                others = min2 if (mag == min1 and n_min == 1) else min1
                value = (normalisation * (sign_prod * sign)) * others
                if value > clip:
                    value = clip
                elif value < -clip:
                    value = -clip
                out[e] = value

    _COMPILED.update(acs_forward=acs_forward, traceback=traceback,
                     min_sum_check=min_sum_check)
    return _COMPILED


# ---------------------------------------------------------------------------
# Dispatching kernel entry points
# ---------------------------------------------------------------------------

def viterbi_forward(llr_a, llr_b, sign_a, sign_b, backend=None):
    """Run the ACS sweep; returns ``(decisions, final_metrics)``.

    ``decisions`` is ``(n_steps, batch, 64)`` bool — True where the
    odd predecessor won — and ``final_metrics`` is ``(batch, 64)``.
    """
    batch, n_steps = llr_a.shape
    metrics = np.full((batch, 64), -np.inf)
    metrics[:, 0] = 0.0
    decisions = np.empty((n_steps, batch, 64), dtype=bool)
    if resolve_backend(backend) == "numba":
        _numba_kernels()["acs_forward"](
            np.ascontiguousarray(llr_a), np.ascontiguousarray(llr_b),
            sign_a, sign_b, decisions, metrics)
        return decisions, metrics
    # numpy: both predecessor candidates of every state carried in one
    # (batch, 2, 32, 2) block — [half of the state space, i, predecessor]
    # — so each trellis step is a handful of whole-array ufunc calls
    # with no gather: state h*32+i has predecessors (2i, 2i+1) regardless
    # of h, so the predecessor metrics are just metrics.reshape(batch,
    # 32, 2) broadcast over both halves. Additions stay in the exact
    # (metric + a-branch) + b-branch order of the scalar formulation, so
    # path metrics are bit-identical to it (and to the numba loop).
    sa = sign_a.reshape(2, 32, 2)
    sb = sign_b.reshape(2, 32, 2)
    bm = np.empty((batch, 2, 32, 2))
    cand = np.empty((batch, 2, 32, 2))
    for t in range(n_steps):
        la = llr_a[:, t, None, None, None]
        lb = llr_b[:, t, None, None, None]
        np.multiply(sa, la, out=bm)
        np.add(metrics.reshape(batch, 1, 32, 2), bm, out=cand)
        np.multiply(sb, lb, out=bm)
        np.add(cand, bm, out=cand)
        take1 = cand[:, :, :, 1] > cand[:, :, :, 0]
        decisions[t] = take1.reshape(batch, 64)
        metrics = np.where(
            take1, cand[:, :, :, 1], cand[:, :, :, 0]
        ).reshape(batch, 64)
    return decisions, metrics


def viterbi_traceback(decisions, start_states, backend=None):
    """Walk the survivor memory backwards; returns (batch, n_steps) bits."""
    n_steps, batch, _ = decisions.shape
    decoded = np.empty((batch, n_steps), dtype=np.int8)
    if resolve_backend(backend) == "numba":
        _numba_kernels()["traceback"](
            decisions, np.ascontiguousarray(start_states, dtype=np.int64),
            decoded)
        return decoded
    state = np.asarray(start_states, dtype=np.int64).copy()
    rows = np.arange(batch)
    pred0_of = (np.arange(64) & 31) << 1
    input_of = np.arange(64) >> 5
    for t in range(n_steps - 1, -1, -1):
        decoded[:, t] = input_of[state]
        taken = decisions[t, rows, state]
        state = np.where(taken, pred0_of[state] | 1, pred0_of[state])
    return decoded


def min_sum_check_update(m_vc, starts, counts, normalisation, clip,
                         backend=None):
    """Normalised min-sum check-node update (check-sorted edge order)."""
    if resolve_backend(backend) == "numba":
        out = np.empty_like(m_vc)
        _numba_kernels()["min_sum_check"](
            np.ascontiguousarray(m_vc, dtype=np.float64),
            np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(counts, dtype=np.int64),
            float(normalisation), float(clip), out)
        return out
    mags = np.abs(m_vc)
    signs = np.where(m_vc < 0, -1.0, 1.0)
    sign_prod = np.multiply.reduceat(signs, starts)
    # min and second-min magnitude per check
    min1 = np.minimum.reduceat(mags, starts)
    min1_full = np.repeat(min1, counts)
    is_min = mags == min1_full
    # Mask out one occurrence of the minimum to find the runner-up.
    masked = np.where(is_min, np.inf, mags)
    min2 = np.minimum.reduceat(masked, starts)
    # A check where the minimum occurs twice has min-of-others equal
    # to min1 for every edge.
    min_count = np.add.reduceat(is_min.astype(float), starts)
    min2 = np.where(min_count > 1, min1, min2)
    min2_full = np.repeat(min2, counts)
    others_min = np.where(is_min & np.repeat(min_count == 1, counts),
                          min2_full, min1_full)
    sign_full = np.repeat(sign_prod, counts) * signs
    return np.clip(normalisation * sign_full * others_min, -clip, clip)
