"""Packet detection and synchronisation for the OFDM PHYs.

Real receivers do not get sample-aligned, frequency-locked waveforms; they
detect packets, find symbol timing and correct carrier frequency offset
(CFO) from the training fields:

* **detection** — the 16-sample periodicity of the legacy STF gives the
  classic delay-and-correlate (Schmidl & Cox style) metric; a threshold
  crossing declares a packet. This is also the trigger the paper's
  "switch on the additional chains only as required" mitigation relies on.
* **coarse CFO** — the angle of the same lag-16 autocorrelation estimates
  offsets up to +/-625 kHz at 20 Msps.
* **fine timing** — cross-correlation against the known 64-sample LTF
  symbol locates the symbol boundary exactly.
* **fine CFO** — the angle of the lag-64 correlation across the two LTF
  repetitions refines the estimate (range +/-156 kHz, much lower noise).

All functions work on the waveforms produced by
:class:`repro.phy.ofdm.OfdmPhy`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DemodulationError
from repro.phy.ofdm import long_training_field

STF_PERIOD = 16
LTF_PERIOD = 64
SAMPLE_RATE = 20e6


def detection_metric(samples, period=STF_PERIOD, window=32):
    """Normalised delay-and-correlate metric M[n] in [0, 1].

    ``M[n] = |sum_k r[n+k] r*[n+k+period]|^2 / (sum_k |r[n+k+period]|^2)^2``
    over a sliding window; near 1 inside a periodic preamble, near 0 on
    noise.
    """
    samples = np.asarray(samples, dtype=np.complex128).ravel()
    if samples.size < period + window + 1:
        raise DemodulationError("waveform too short for the detector window")
    lagged = samples[period:]
    base = samples[: lagged.size]
    prod = base * np.conj(lagged)
    power = np.abs(lagged) ** 2
    kernel = np.ones(window)
    corr = np.convolve(prod, kernel, mode="valid")
    energy = np.convolve(power, kernel, mode="valid")
    return np.abs(corr) ** 2 / np.maximum(energy, 1e-30) ** 2


def detect_packet(samples, threshold=0.5, period=STF_PERIOD, window=32,
                  min_run=16):
    """First sample index where a packet is detected, or None.

    Requires the metric to stay above ``threshold`` for ``min_run``
    consecutive samples (debouncing against noise spikes).
    """
    metric = detection_metric(samples, period=period, window=window)
    above = metric > threshold
    run = 0
    for i, flag in enumerate(above):
        run = run + 1 if flag else 0
        if run >= min_run:
            return i - min_run + 1
    return None


def coarse_cfo_estimate(stf_samples, period=STF_PERIOD,
                        sample_rate=SAMPLE_RATE):
    """CFO estimate (Hz) from the STF's lag-``period`` autocorrelation."""
    stf_samples = np.asarray(stf_samples, dtype=np.complex128).ravel()
    if stf_samples.size < 2 * period:
        raise DemodulationError("need at least two STF periods")
    corr = np.sum(stf_samples[:-period] * np.conj(stf_samples[period:]))
    return float(-np.angle(corr) / (2.0 * np.pi * period) * sample_rate)


def fine_cfo_estimate(ltf_samples, sample_rate=SAMPLE_RATE):
    """CFO estimate (Hz) from the two 64-sample LTF repetitions.

    ``ltf_samples`` is the 160-sample LTF (32 CP + 2 x 64).
    """
    ltf_samples = np.asarray(ltf_samples, dtype=np.complex128).ravel()
    if ltf_samples.size < 32 + 2 * LTF_PERIOD:
        raise DemodulationError("need the full 160-sample LTF")
    first = ltf_samples[32 : 32 + LTF_PERIOD]
    second = ltf_samples[96 : 96 + LTF_PERIOD]
    corr = np.sum(first * np.conj(second))
    return float(-np.angle(corr) / (2.0 * np.pi * LTF_PERIOD) * sample_rate)


def apply_cfo(samples, cfo_hz, sample_rate=SAMPLE_RATE):
    """Impose a carrier frequency offset on a waveform (channel impairment)."""
    samples = np.asarray(samples, dtype=np.complex128).ravel()
    n = np.arange(samples.size)
    return samples * np.exp(2j * np.pi * cfo_hz * n / sample_rate)


def correct_cfo(samples, cfo_estimate_hz, sample_rate=SAMPLE_RATE):
    """Remove an estimated CFO."""
    return apply_cfo(samples, -cfo_estimate_hz, sample_rate)


def fine_timing(samples, search_start=0, search_span=240):
    """Locate the start of the first LTF symbol by cross-correlation.

    Returns the index (within ``samples``) of the first of the two
    64-sample LTF symbols. Search is restricted to
    ``[search_start, search_start + search_span)``.
    """
    samples = np.asarray(samples, dtype=np.complex128).ravel()
    reference = long_training_field()[32:96]  # one clean LTF symbol
    span_end = min(search_start + search_span + LTF_PERIOD, samples.size)
    segment = samples[search_start:span_end]
    if segment.size < LTF_PERIOD:
        raise DemodulationError("search window shorter than one LTF symbol")
    corr = np.abs(np.correlate(segment, reference, mode="valid"))
    # The LTF contains two identical symbols 64 samples apart; take the
    # earlier of the two strongest peaks.
    best = int(np.argmax(corr))
    earlier = best - LTF_PERIOD
    if earlier >= 0 and corr[earlier] > 0.8 * corr[best]:
        best = earlier
    return search_start + best


def synchronise(samples, threshold=0.5, sample_rate=SAMPLE_RATE):
    """Full acquisition: detect, time-align and CFO-correct a PPDU.

    Returns
    -------
    (aligned, info) : (numpy.ndarray, dict)
        ``aligned`` starts exactly at the PPDU's first STF sample with CFO
        removed; ``info`` holds the detection index, timing index and the
        coarse/fine CFO estimates.

    Raises
    ------
    DemodulationError
        If no packet is detected.
    """
    samples = np.asarray(samples, dtype=np.complex128).ravel()
    hit = detect_packet(samples, threshold=threshold)
    if hit is None:
        raise DemodulationError("no packet detected")
    coarse_seg = samples[hit : hit + 144]
    coarse = coarse_cfo_estimate(coarse_seg, sample_rate=sample_rate)
    corrected = correct_cfo(samples, coarse, sample_rate)
    ltf_start = fine_timing(corrected, search_start=hit, search_span=240)
    packet_start = ltf_start - 160 - 32  # back over STF and LTF CP
    if packet_start < 0:
        packet_start = 0
    ltf = corrected[ltf_start - 32 : ltf_start + 128]
    fine = fine_cfo_estimate(ltf, sample_rate=sample_rate)
    aligned = correct_cfo(corrected[packet_start:], fine, sample_rate)
    return aligned, {
        "detect_index": int(hit),
        "packet_start": int(packet_start),
        "ltf_start": int(ltf_start),
        "coarse_cfo_hz": coarse,
        "fine_cfo_hz": fine,
        "total_cfo_hz": coarse + fine,
    }
