"""Physical-layer building blocks for every 802.11 generation.

Submodules
----------
modulation
    Gray-mapped BPSK/QPSK/16-QAM/64-QAM with hard and soft (LLR) demapping.
scrambler
    The 802.11 x^7 + x^4 + 1 self-synchronising scrambler.
convolutional
    The K=7 (133, 171) convolutional code with Viterbi decoding and the
    802.11a puncturing patterns.
interleaver
    The 802.11a two-permutation block interleaver.
ldpc
    Gallager/QC LDPC construction, systematic encoding and BP decoding
    (the 802.11n optional advanced code the paper highlights).
dsss
    802.11 Barker-spread DBPSK/DQPSK (1 and 2 Mbps).
fhss
    802.11 frequency hopping with 2/4-GFSK.
cck
    802.11b complementary code keying (5.5 and 11 Mbps).
ofdm
    802.11a/g OFDM transceiver (6 to 54 Mbps).
mimo
    802.11n MIMO: STBC, spatial multiplexing, detection, beamforming.
"""
