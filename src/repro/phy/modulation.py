"""Gray-coded linear modulation used by every 802.11 OFDM rate.

The constellations follow the 802.11a mapping tables (clause 17.3.5.7):
unit *average* energy, Gray coding per I/Q rail, with the first half of a
symbol's bits selecting I and the second half selecting Q.

Both hard-decision demapping and max-log-MAP soft LLRs are provided; the
Viterbi and LDPC decoders consume the soft outputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DemodulationError

def _kmod(bits_per_symbol):
    """Amplitude normalisation giving the constellation unit mean power.

    For square 2^b-QAM the mean symbol energy on the odd-integer grid is
    2*(4^(b/2) - 1)/3 (the familiar 2, 10, 42, 170, 682 sequence), so the
    scale is its inverse square root; BPSK is already unit energy.
    """
    if bits_per_symbol == 1:
        return 1.0
    return 1.0 / np.sqrt(2.0 * (4 ** (bits_per_symbol // 2) - 1) / 3.0)


def _pam_levels(bits_on_rail):
    """Gray-coded PAM levels of one rail: the odd integers, ascending."""
    if bits_on_rail == 0:
        return np.array([0.0])  # BPSK has no Q rail
    m = 1 << bits_on_rail
    return np.arange(-(m - 1), m, 2, dtype=float)


def _gray_to_level(bits_on_rail):
    """Bits value -> level index, binary-reflected Gray per 802.11."""
    m = 1 << bits_on_rail
    indices = np.arange(m)
    table = np.empty(m, dtype=np.int64)
    table[indices ^ (indices >> 1)] = indices
    return table


#: Per-rail amplitude normalisation so the constellation has unit mean power.
_KMOD = {b: _kmod(b) for b in (1, 2, 4, 6, 8, 10)}

#: Gray-coded PAM levels per rail, indexed by bits-per-rail.
_PAM_LEVELS = {b: _pam_levels(b) for b in range(6)}

#: Gray code order for each rail size: bits value -> level index.
_GRAY_TO_LEVEL = {b: _gray_to_level(b) for b in range(1, 6)}


class Modulator:
    """Gray-mapped square QAM/PSK modulator-demodulator.

    Parameters
    ----------
    bits_per_symbol : int
        1 (BPSK), 2 (QPSK), or an even order up to 10: 4 (16-QAM),
        6 (64-QAM), 8 (256-QAM), 10 (1024-QAM).

    Examples
    --------
    >>> mod = Modulator(2)
    >>> symbols = mod.modulate(np.array([0, 0, 1, 1], dtype=np.int8))
    >>> mod.demodulate_hard(symbols).tolist()
    [0, 0, 1, 1]
    """

    SUPPORTED = (1, 2, 4, 6, 8, 10)

    def __init__(self, bits_per_symbol):
        if not isinstance(bits_per_symbol, (int, np.integer)):
            raise ConfigurationError(
                f"bits_per_symbol must be an integer, got {bits_per_symbol!r}"
            )
        if bits_per_symbol not in self.SUPPORTED:
            detail = (
                "square QAM needs an even number of bits"
                if bits_per_symbol > 1 and bits_per_symbol % 2
                else "order not supported"
            )
            raise ConfigurationError(
                f"bits_per_symbol must be one of {self.SUPPORTED}, "
                f"got {bits_per_symbol} ({detail})"
            )
        self.bits_per_symbol = bits_per_symbol
        self.kmod = _KMOD[bits_per_symbol]
        if bits_per_symbol == 1:
            self._bits_i, self._bits_q = 1, 0
        else:
            self._bits_i = self._bits_q = bits_per_symbol // 2
        self._constellation = self._build_constellation()
        self._labels = self._build_labels()
        #: Weights turning a (..., bits_per_symbol) bit block into the
        #: constellation table index (LSB-first, exact integer arithmetic).
        self._bit_weights = 1 << np.arange(self.bits_per_symbol)
        #: Per-bit boolean masks over the constellation: mask[b] selects
        #: the points whose label has bit b equal to 0.
        self._bit0_masks = (self._labels == 0).T.copy()
        #: High-order constellations (256-/1024-QAM) demap per I/Q rail —
        #: exact for Gray-coded square QAM under the max-log metric, and
        #: it keeps the distance matrix at n_levels instead of n_points
        #: columns (32 vs 1024 for 1024-QAM) in batched Monte-Carlo runs.
        self._use_rails = bits_per_symbol >= 8
        if self._use_rails:
            gray = np.arange(1 << self._bits_i)
            gray ^= gray >> 1
            #: level index -> Gray label of that PAM level, per rail.
            self._level_to_gray = gray
            #: Gray label bit b == 0 mask over the PAM levels, per bit.
            self._rail_bit0 = np.array(
                [(gray >> b) & 1 == 0 for b in range(self._bits_i)]
            )
            self._rail_levels = self.kmod * _PAM_LEVELS[self._bits_i]

    # -- construction --------------------------------------------------

    def _rail_level(self, bits_value, bits_on_rail):
        """PAM level for the Gray-labelled ``bits_value`` on one rail."""
        if bits_on_rail == 0:
            return 0.0
        index = _GRAY_TO_LEVEL[bits_on_rail][bits_value]
        return _PAM_LEVELS[bits_on_rail][index]

    def _build_constellation(self):
        m = 1 << self.bits_per_symbol
        points = np.empty(m, dtype=np.complex128)
        for value in range(m):
            i_bits = value & ((1 << self._bits_i) - 1)
            q_bits = value >> self._bits_i
            points[value] = self.kmod * complex(
                self._rail_level(i_bits, self._bits_i),
                self._rail_level(q_bits, self._bits_q),
            )
        return points

    def _build_labels(self):
        m = 1 << self.bits_per_symbol
        labels = np.zeros((m, self.bits_per_symbol), dtype=np.int8)
        for value in range(m):
            for bit in range(self.bits_per_symbol):
                labels[value, bit] = (value >> bit) & 1
        return labels

    @property
    def constellation(self):
        """All 2**bits_per_symbol constellation points (copy)."""
        return self._constellation.copy()

    # -- modulation ------------------------------------------------------

    def modulate(self, bits):
        """Map a bit array (length divisible by bits_per_symbol) to symbols."""
        bits = np.asarray(bits).astype(np.int64)
        if bits.size % self.bits_per_symbol != 0:
            raise ConfigurationError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        values = groups @ self._bit_weights
        return self._constellation[values]

    # -- demodulation ----------------------------------------------------

    # -- per-rail fast path (256-/1024-QAM) -----------------------------

    def _rail_nearest(self, values):
        """Nearest PAM level index on one rail for real ``values``."""
        m = 1 << self._bits_i
        scaled = (values / self.kmod + (m - 1)) / 2.0
        return np.clip(np.rint(scaled), 0, m - 1).astype(np.int64)

    def _nearest_point(self, symbols):
        """Constellation table index of the nearest point per symbol."""
        if self._use_rails:
            i_idx = self._rail_nearest(symbols.real)
            q_idx = self._rail_nearest(symbols.imag)
            return (self._level_to_gray[i_idx]
                    | self._level_to_gray[q_idx] << self._bits_i)
        distances = np.abs(symbols[:, None] - self._constellation[None, :])
        return np.argmin(distances, axis=1)

    def demodulate_hard(self, symbols):
        """Minimum-distance hard decisions, returned as a bit array."""
        symbols = np.asarray(symbols, dtype=np.complex128).ravel()
        return self._labels[self._nearest_point(symbols)].ravel()

    def demodulate_soft(self, symbols, noise_var):
        """Max-log-MAP bit LLRs.

        Positive LLR means bit = 0 is more likely, matching the convention
        ``LLR = log P(b=0|y) - log P(b=1|y)`` consumed by the decoders.

        Parameters
        ----------
        symbols : array of complex
            Received (equalised) symbols.
        noise_var : float or array
            Per-symbol complex noise variance after equalisation. May be a
            scalar or an array broadcastable to ``symbols``.
        """
        symbols = np.asarray(symbols, dtype=np.complex128).ravel()
        noise_var = np.broadcast_to(
            np.maximum(np.asarray(noise_var, dtype=float), 1e-12), symbols.shape
        )
        if self._use_rails:
            return self._demodulate_soft_rails(symbols, noise_var)
        # metric[n, m] = -|y_n - c_m|^2 / sigma_n^2
        sq = np.abs(symbols[:, None] - self._constellation[None, :]) ** 2
        metric = -sq / noise_var[:, None]
        llrs = np.empty((symbols.size, self.bits_per_symbol))
        for bit in range(self.bits_per_symbol):
            mask0 = self._bit0_masks[bit]
            llrs[:, bit] = metric[:, mask0].max(axis=1) - metric[:, ~mask0].max(axis=1)
        return llrs.ravel()

    def _demodulate_soft_rails(self, symbols, noise_var):
        """Max-log LLRs computed independently per I/Q rail.

        The 2D metric -|y - c|^2 / sigma^2 separates into rail terms, and
        the max over the opposite rail cancels in every LLR difference, so
        this equals the full-constellation max-log result exactly.
        """
        llrs = np.empty((symbols.size, self.bits_per_symbol))
        for rail, values in ((0, symbols.real), (1, symbols.imag)):
            # metric[n, l] = -(v_n - level_l)^2 / sigma_n^2
            metric = -((values[:, None] - self._rail_levels[None, :]) ** 2)
            metric /= noise_var[:, None]
            offset = rail * self._bits_i
            for bit in range(self._bits_i):
                mask0 = self._rail_bit0[bit]
                llrs[:, offset + bit] = (
                    metric[:, mask0].max(axis=1) - metric[:, ~mask0].max(axis=1)
                )
        return llrs.ravel()

    def symbol_error_positions(self, sent_symbols, received_symbols):
        """Boolean array marking which hard-decided symbols are wrong."""
        sent_symbols = np.asarray(sent_symbols).ravel()
        received_symbols = np.asarray(received_symbols).ravel()
        if sent_symbols.shape != received_symbols.shape:
            raise DemodulationError("symbol arrays must have equal length")
        d_sent = self._nearest_point(
            np.asarray(sent_symbols, dtype=np.complex128)
        )
        d_recv = self._nearest_point(
            np.asarray(received_symbols, dtype=np.complex128)
        )
        return d_sent != d_recv


def modulation_name(bits_per_symbol):
    """Human-readable name for a bits-per-symbol value.

    Derived, not listed: 1 is BPSK, 2 is QPSK, and every larger even
    order b up to 10 is square 2^b-QAM (16/64/256/1024-QAM).
    """
    if bits_per_symbol not in Modulator.SUPPORTED:
        raise ConfigurationError(
            f"no 802.11 modulation uses {bits_per_symbol} bits/symbol"
        )
    if bits_per_symbol == 1:
        return "BPSK"
    if bits_per_symbol == 2:
        return "QPSK"
    return f"{1 << bits_per_symbol}-QAM"
