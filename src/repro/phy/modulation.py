"""Gray-coded linear modulation used by every 802.11 OFDM rate.

The constellations follow the 802.11a mapping tables (clause 17.3.5.7):
unit *average* energy, Gray coding per I/Q rail, with the first half of a
symbol's bits selecting I and the second half selecting Q.

Both hard-decision demapping and max-log-MAP soft LLRs are provided; the
Viterbi and LDPC decoders consume the soft outputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DemodulationError

#: Per-rail amplitude normalisation so the constellation has unit mean power.
_KMOD = {1: 1.0, 2: 1.0 / np.sqrt(2.0), 4: 1.0 / np.sqrt(10.0), 6: 1.0 / np.sqrt(42.0)}

#: Gray-coded PAM levels per rail, indexed by bits-per-rail.
_PAM_LEVELS = {
    0: np.array([0.0]),  # BPSK has no Q rail
    1: np.array([-1.0, 1.0]),
    2: np.array([-3.0, -1.0, 1.0, 3.0]),
    3: np.array([-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0]),
}

#: Gray code order for each rail size: bits value -> level index.
_GRAY_TO_LEVEL = {
    1: np.array([0, 1]),
    2: np.array([0, 1, 3, 2]),
    3: np.array([0, 1, 3, 2, 7, 6, 4, 5]),
}


class Modulator:
    """Gray-mapped square QAM/PSK modulator-demodulator.

    Parameters
    ----------
    bits_per_symbol : int
        1 (BPSK), 2 (QPSK), 4 (16-QAM) or 6 (64-QAM).

    Examples
    --------
    >>> mod = Modulator(2)
    >>> symbols = mod.modulate(np.array([0, 0, 1, 1], dtype=np.int8))
    >>> mod.demodulate_hard(symbols).tolist()
    [0, 0, 1, 1]
    """

    SUPPORTED = (1, 2, 4, 6)

    def __init__(self, bits_per_symbol):
        if bits_per_symbol not in self.SUPPORTED:
            raise ConfigurationError(
                f"bits_per_symbol must be one of {self.SUPPORTED}, "
                f"got {bits_per_symbol}"
            )
        self.bits_per_symbol = bits_per_symbol
        self.kmod = _KMOD[bits_per_symbol]
        if bits_per_symbol == 1:
            self._bits_i, self._bits_q = 1, 0
        else:
            self._bits_i = self._bits_q = bits_per_symbol // 2
        self._constellation = self._build_constellation()
        self._labels = self._build_labels()
        #: Weights turning a (..., bits_per_symbol) bit block into the
        #: constellation table index (LSB-first, exact integer arithmetic).
        self._bit_weights = 1 << np.arange(self.bits_per_symbol)
        #: Per-bit boolean masks over the constellation: mask[b] selects
        #: the points whose label has bit b equal to 0.
        self._bit0_masks = (self._labels == 0).T.copy()

    # -- construction --------------------------------------------------

    def _rail_level(self, bits_value, bits_on_rail):
        """PAM level for the Gray-labelled ``bits_value`` on one rail."""
        if bits_on_rail == 0:
            return 0.0
        index = _GRAY_TO_LEVEL[bits_on_rail][bits_value]
        return _PAM_LEVELS[bits_on_rail][index]

    def _build_constellation(self):
        m = 1 << self.bits_per_symbol
        points = np.empty(m, dtype=np.complex128)
        for value in range(m):
            i_bits = value & ((1 << self._bits_i) - 1)
            q_bits = value >> self._bits_i
            points[value] = self.kmod * complex(
                self._rail_level(i_bits, self._bits_i),
                self._rail_level(q_bits, self._bits_q),
            )
        return points

    def _build_labels(self):
        m = 1 << self.bits_per_symbol
        labels = np.zeros((m, self.bits_per_symbol), dtype=np.int8)
        for value in range(m):
            for bit in range(self.bits_per_symbol):
                labels[value, bit] = (value >> bit) & 1
        return labels

    @property
    def constellation(self):
        """All 2**bits_per_symbol constellation points (copy)."""
        return self._constellation.copy()

    # -- modulation ------------------------------------------------------

    def modulate(self, bits):
        """Map a bit array (length divisible by bits_per_symbol) to symbols."""
        bits = np.asarray(bits).astype(np.int64)
        if bits.size % self.bits_per_symbol != 0:
            raise ConfigurationError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        values = groups @ self._bit_weights
        return self._constellation[values]

    # -- demodulation ----------------------------------------------------

    def demodulate_hard(self, symbols):
        """Minimum-distance hard decisions, returned as a bit array."""
        symbols = np.asarray(symbols, dtype=np.complex128).ravel()
        distances = np.abs(symbols[:, None] - self._constellation[None, :])
        nearest = np.argmin(distances, axis=1)
        return self._labels[nearest].ravel()

    def demodulate_soft(self, symbols, noise_var):
        """Max-log-MAP bit LLRs.

        Positive LLR means bit = 0 is more likely, matching the convention
        ``LLR = log P(b=0|y) - log P(b=1|y)`` consumed by the decoders.

        Parameters
        ----------
        symbols : array of complex
            Received (equalised) symbols.
        noise_var : float or array
            Per-symbol complex noise variance after equalisation. May be a
            scalar or an array broadcastable to ``symbols``.
        """
        symbols = np.asarray(symbols, dtype=np.complex128).ravel()
        noise_var = np.broadcast_to(
            np.maximum(np.asarray(noise_var, dtype=float), 1e-12), symbols.shape
        )
        # metric[n, m] = -|y_n - c_m|^2 / sigma_n^2
        sq = np.abs(symbols[:, None] - self._constellation[None, :]) ** 2
        metric = -sq / noise_var[:, None]
        llrs = np.empty((symbols.size, self.bits_per_symbol))
        for bit in range(self.bits_per_symbol):
            mask0 = self._bit0_masks[bit]
            llrs[:, bit] = metric[:, mask0].max(axis=1) - metric[:, ~mask0].max(axis=1)
        return llrs.ravel()

    def symbol_error_positions(self, sent_symbols, received_symbols):
        """Boolean array marking which hard-decided symbols are wrong."""
        sent_symbols = np.asarray(sent_symbols).ravel()
        received_symbols = np.asarray(received_symbols).ravel()
        if sent_symbols.shape != received_symbols.shape:
            raise DemodulationError("symbol arrays must have equal length")
        d_sent = np.argmin(
            np.abs(sent_symbols[:, None] - self._constellation[None, :]), axis=1
        )
        d_recv = np.argmin(
            np.abs(received_symbols[:, None] - self._constellation[None, :]), axis=1
        )
        return d_sent != d_recv


def modulation_name(bits_per_symbol):
    """Human-readable name for a bits-per-symbol value."""
    names = {1: "BPSK", 2: "QPSK", 4: "16-QAM", 6: "64-QAM"}
    try:
        return names[bits_per_symbol]
    except KeyError:
        raise ConfigurationError(
            f"no 802.11 modulation uses {bits_per_symbol} bits/symbol"
        ) from None
