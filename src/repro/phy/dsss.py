"""The original 802.11 direct-sequence spread-spectrum PHY (1 and 2 Mbps).

Each symbol is spread by the 11-chip Barker sequence, giving the 10.4 dB
processing gain that satisfied the FCC's 10 dB spreading mandate — the
regulatory constraint the paper identifies as capping the first standard at
0.1 bps/Hz. Data modulation is differential BPSK (1 Mbps) or differential
QPSK (2 Mbps) at 1 Msymbol/s over an 11 Mchip/s channel.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BARKER_SEQUENCE, DSSS_CHIP_RATE_HZ
from repro.errors import ConfigurationError, DemodulationError
from repro.utils.conversion import linear_to_db

BARKER = np.array(BARKER_SEQUENCE, dtype=float)
CHIPS_PER_SYMBOL = len(BARKER_SEQUENCE)

#: DQPSK phase increments for each dibit (d0, d1), Gray coded.
_DQPSK_PHASES = {(0, 0): 0.0, (0, 1): np.pi / 2, (1, 1): np.pi, (1, 0): -np.pi / 2}
_DQPSK_BITS = {v: k for k, v in _DQPSK_PHASES.items()}


def processing_gain_db():
    """Theoretical DSSS processing gain: 10*log10(chips per symbol)."""
    return float(linear_to_db(CHIPS_PER_SYMBOL))


class DsssPhy:
    """Barker-spread 802.11 DSSS modem.

    Parameters
    ----------
    rate_mbps : int
        1 (DBPSK) or 2 (DQPSK).

    Notes
    -----
    The modem works at one sample per chip. Differential encoding makes the
    receiver insensitive to an unknown carrier phase; an extra reference
    symbol is prepended to seed the differential chain.
    """

    SUPPORTED_RATES = (1, 2)

    def __init__(self, rate_mbps=1):
        if rate_mbps not in self.SUPPORTED_RATES:
            raise ConfigurationError(
                f"DSSS rate must be 1 or 2 Mbps, got {rate_mbps}"
            )
        self.rate_mbps = rate_mbps
        self.bits_per_symbol = rate_mbps  # 1 for DBPSK, 2 for DQPSK
        self.chip_rate_hz = DSSS_CHIP_RATE_HZ
        self.symbol_rate_hz = DSSS_CHIP_RATE_HZ / CHIPS_PER_SYMBOL

    # -- TX ---------------------------------------------------------------

    def _phase_increments(self, bits):
        bits = np.asarray(bits).astype(int).ravel()
        if bits.size % self.bits_per_symbol != 0:
            raise ConfigurationError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        if self.rate_mbps == 1:
            return np.where(bits == 0, 0.0, np.pi)
        pairs = bits.reshape(-1, 2)
        return np.array([_DQPSK_PHASES[(int(a), int(b))] for a, b in pairs])

    def modulate(self, bits):
        """Map bits to a complex chip stream (one sample per chip).

        The first transmitted symbol is a phase reference; ``n_symbols + 1``
        symbols of 11 chips each are produced.
        """
        increments = self._phase_increments(bits)
        phases = np.concatenate([[0.0], np.cumsum(increments)])
        symbols = np.exp(1j * phases)
        # Unit power per chip: the symbol energy (11 chip energies) is
        # recovered coherently by the despreader — the processing gain.
        return np.kron(symbols, BARKER)

    # -- RX ---------------------------------------------------------------

    def despread(self, chips):
        """Correlate against the Barker code, one output per symbol."""
        chips = np.asarray(chips, dtype=np.complex128).ravel()
        if chips.size % CHIPS_PER_SYMBOL != 0:
            raise DemodulationError(
                f"chip stream length {chips.size} is not a multiple of "
                f"{CHIPS_PER_SYMBOL}"
            )
        blocks = chips.reshape(-1, CHIPS_PER_SYMBOL)
        return blocks @ BARKER / np.sqrt(CHIPS_PER_SYMBOL)

    def demodulate(self, chips):
        """Differentially detect the chip stream back into bits."""
        symbols = self.despread(chips)
        if symbols.size < 2:
            raise DemodulationError("need at least a reference plus one symbol")
        deltas = symbols[1:] * np.conj(symbols[:-1])
        if self.rate_mbps == 1:
            return (deltas.real < 0).astype(np.int8)
        bits = np.empty(2 * deltas.size, dtype=np.int8)
        quadrant = np.round(np.angle(deltas) / (np.pi / 2)).astype(int) % 4
        phase_of_quadrant = {0: 0.0, 1: np.pi / 2, 2: np.pi, 3: -np.pi / 2}
        for i, q in enumerate(quadrant):
            d0, d1 = _DQPSK_BITS[phase_of_quadrant[int(q)]]
            bits[2 * i] = d0
            bits[2 * i + 1] = d1
        return bits

    def n_chips(self, n_bits):
        """Chip-stream length produced for ``n_bits`` input bits."""
        n_symbols = n_bits // self.bits_per_symbol + 1  # + reference
        return n_symbols * CHIPS_PER_SYMBOL

    def spectral_efficiency(self, bandwidth_hz=20e6):
        """Peak spectral efficiency in bps/Hz (0.1 for 2 Mbps in 20 MHz)."""
        return self.rate_mbps * 1e6 / bandwidth_hz


def measure_processing_gain(n_symbols=2000, chip_snr_db=0.0, rng=None):
    """Empirically measure despreading SNR gain.

    Sends unmodulated Barker symbols through AWGN at ``chip_snr_db`` and
    compares chip-level and symbol-level SNR estimates.

    Returns
    -------
    float
        Measured processing gain in dB (expected ~10.4 dB).
    """
    from repro.utils.rng import as_generator

    rng = as_generator(rng)
    phy = DsssPhy(1)
    signal = np.kron(np.ones(n_symbols), BARKER)  # unit chip power
    noise_var = 10.0 ** (-chip_snr_db / 10.0)
    noise = np.sqrt(noise_var / 2) * (
        rng.normal(size=signal.size) + 1j * rng.normal(size=signal.size)
    )
    received = signal + noise
    despread = phy.despread(received)
    # After despreading the useful component is the mean; noise is the spread.
    signal_power = np.abs(np.mean(despread)) ** 2
    noise_power = np.var(despread)
    out_snr_db = linear_to_db(signal_power / noise_power)
    return float(out_snr_db - chip_snr_db)
