"""Low-density parity-check codes — the 802.11n optional advanced code.

The paper singles out LDPC as a likely 802.11n range-extending enhancement
(~1.5-2 dB over the mandatory convolutional code). This module provides:

* GF(2) linear algebra (row reduction, rank, generator from parity check);
* two constructions: regular Gallager ensembles and quasi-cyclic codes with
  4-cycle avoidance, at the 802.11n block lengths (648/1296/1944) and rates
  (1/2, 2/3, 3/4, 5/6). The QC structure mirrors the standard's, with
  pseudo-random circulant shifts rather than the published tables (see
  DESIGN.md substitution log);
* a systematic encoder derived by Gaussian elimination;
* belief-propagation decoding: normalised min-sum (hardware-typical) and
  sum-product (reference), both vectorised over the Tanner-graph edges.

LLR convention: positive favours bit 0, matching
:meth:`repro.phy.modulation.Modulator.demodulate_soft`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import CodingError, ConfigurationError
from repro.phy import kernels
from repro.utils.rng import as_generator

#: Block lengths standardised by 802.11n.
STANDARD_BLOCK_LENGTHS = (648, 1296, 1944)

#: Code rates standardised by 802.11n.
STANDARD_RATES = ("1/2", "2/3", "3/4", "5/6")

_RATE_VALUES = {"1/2": 0.5, "2/3": 2.0 / 3.0, "3/4": 0.75, "5/6": 5.0 / 6.0}

_MSG_CLIP = 25.0  # LLR magnitude clip keeping tanh/arctanh well conditioned


# ---------------------------------------------------------------------------
# GF(2) linear algebra
# ---------------------------------------------------------------------------

def gf2_row_reduce(matrix):
    """Row-reduce a binary matrix in place logic (returns copy + pivot cols).

    Returns
    -------
    (reduced, pivot_cols) : (numpy.ndarray, list of int)
        ``reduced`` is in reduced row-echelon form over GF(2).
    """
    m = np.asarray(matrix, dtype=np.uint8).copy()
    rows, cols = m.shape
    pivot_cols = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_rows = np.nonzero(m[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        pivot = r + pivot_rows[0]
        if pivot != r:
            m[[r, pivot]] = m[[pivot, r]]
        # Clear every other 1 in this column.
        others = np.nonzero(m[:, c])[0]
        others = others[others != r]
        m[others] ^= m[r]
        pivot_cols.append(c)
        r += 1
    return m, pivot_cols


def gf2_rank(matrix):
    """Rank of a binary matrix over GF(2)."""
    _, pivots = gf2_row_reduce(matrix)
    return len(pivots)


def generator_from_parity_check(parity_check):
    """Systematic generator matrix for a parity-check matrix.

    Columns of ``H`` are permuted so the pivot columns form an identity
    block; the returned permutation maps generator columns back to the
    original code positions.

    Returns
    -------
    (G, column_permutation) : (numpy.ndarray, numpy.ndarray)
        ``G`` has shape (k, n) with ``G = [I_k | P]`` in permuted
        coordinates; ``column_permutation[j]`` is the original position of
        permuted column ``j``.

    Raises
    ------
    CodingError
        If ``H`` has linearly dependent rows reducing the code dimension
        below ``n - rows`` is fine, but a zero-rank matrix is rejected.
    """
    h = np.asarray(parity_check, dtype=np.uint8)
    n = h.shape[1]
    reduced, pivots = gf2_row_reduce(h)
    rank = len(pivots)
    if rank == 0:
        raise CodingError("parity-check matrix has rank 0")
    k = n - rank
    non_pivots = [c for c in range(n) if c not in set(pivots)]
    # Permute: [pivot cols | non-pivot cols]  ->  H' = [I_r | A]
    perm = np.array(pivots + non_pivots)
    a = reduced[:rank][:, non_pivots]  # r x k
    # Codeword in permuted coords: [p | s] with p = A s  =>  G' = [A^T | I_k]
    g = np.zeros((k, n), dtype=np.uint8)
    g[:, :rank] = a.T
    g[:, rank:] = np.eye(k, dtype=np.uint8)
    # Reorder G' columns so it is [I_k | P] with systematic bits first.
    sys_order = np.concatenate([np.arange(rank, n), np.arange(rank)])
    g = g[:, sys_order]
    perm = perm[sys_order]
    return g, perm


# ---------------------------------------------------------------------------
# Constructions
# ---------------------------------------------------------------------------

def gallager_regular(n, column_weight=3, row_weight=6, rng=None):
    """Regular Gallager-ensemble parity-check matrix.

    ``n * column_weight`` must be divisible by ``row_weight``. The first
    sub-block is deterministic; the rest are column permutations of it,
    exactly as in Gallager's 1962 construction.
    """
    if (n * column_weight) % row_weight != 0:
        raise ConfigurationError(
            f"n*wc ({n}*{column_weight}) must be divisible by wr ({row_weight})"
        )
    rng = as_generator(rng)
    rows_per_block = n * column_weight // row_weight // column_weight
    block = np.zeros((rows_per_block, n), dtype=np.uint8)
    for i in range(rows_per_block):
        block[i, i * row_weight : (i + 1) * row_weight] = 1
    blocks = [block]
    for _ in range(column_weight - 1):
        blocks.append(block[:, rng.permutation(n)])
    return np.concatenate(blocks, axis=0)


def quasi_cyclic(n, rate="1/2", lifting=27, rng=None, max_tries=200):
    """Quasi-cyclic LDPC parity check at 802.11n-style geometry.

    The base graph has ``n/lifting`` columns and ``(1-R) * n/lifting`` rows;
    each base edge becomes a ``lifting x lifting`` cyclically shifted
    identity. Shift values are chosen pseudo-randomly but re-drawn whenever
    they would close a length-4 cycle, which is the dominant quality factor
    at these lengths.
    """
    if rate not in _RATE_VALUES:
        raise ConfigurationError(f"unknown rate {rate!r}")
    if n % lifting != 0:
        raise ConfigurationError(f"n={n} not divisible by lifting={lifting}")
    rng = as_generator(rng)
    n_base_cols = n // lifting
    n_base_rows = int(round(n_base_cols * (1.0 - _RATE_VALUES[rate])))
    if n_base_rows < 2:
        raise ConfigurationError("geometry too small for the requested rate")

    # Base matrix: every column gets weight 3 (weight 2 on the last columns
    # forming a dual-diagonal-ish parity part keeps encoding well behaved,
    # but systematic encoding via elimination does not require it).
    base = -np.ones((n_base_rows, n_base_cols), dtype=np.int64)  # -1 = no edge
    for col in range(n_base_cols):
        weight = 3 if n_base_rows >= 3 else n_base_rows
        rows = rng.choice(n_base_rows, size=weight, replace=False)
        for row in rows:
            for _ in range(max_tries):
                shift = int(rng.integers(0, lifting))
                base[row, col] = shift
                if not _closes_4cycle(base, row, col, lifting):
                    break
                base[row, col] = -1
            else:
                base[row, col] = int(rng.integers(0, lifting))
    return expand_base_matrix(base, lifting)


def _closes_4cycle(base, row, col, lifting):
    """Check whether edge (row, col) participates in a 4-cycle.

    For QC codes, a 4-cycle among base edges (r1,c1),(r1,c2),(r2,c1),(r2,c2)
    exists iff ``s(r1,c1) - s(r1,c2) + s(r2,c2) - s(r2,c1) == 0 (mod Z)``.
    """
    other_cols = np.nonzero(base[row] >= 0)[0]
    other_cols = other_cols[other_cols != col]
    other_rows = np.nonzero(base[:, col] >= 0)[0]
    other_rows = other_rows[other_rows != row]
    for r2 in other_rows:
        for c2 in other_cols:
            if base[r2, c2] < 0:
                continue
            delta = (
                base[row, col] - base[row, c2] + base[r2, c2] - base[r2, col]
            ) % lifting
            if delta == 0:
                return True
    return False


def expand_base_matrix(base, lifting):
    """Expand a shift matrix (-1 = zero block) into a full binary H."""
    base = np.asarray(base)
    rows, cols = base.shape
    h = np.zeros((rows * lifting, cols * lifting), dtype=np.uint8)
    eye = np.eye(lifting, dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            shift = base[r, c]
            if shift >= 0:
                h[
                    r * lifting : (r + 1) * lifting,
                    c * lifting : (c + 1) * lifting,
                ] = np.roll(eye, -int(shift), axis=1)
    return h


# ---------------------------------------------------------------------------
# The code object
# ---------------------------------------------------------------------------

class LdpcCode:
    """An LDPC code: encoder + belief-propagation decoder.

    Parameters
    ----------
    parity_check : 2-D binary array
        The parity-check matrix H.

    Attributes
    ----------
    n : int
        Block length.
    k : int
        Information length (``n - rank(H)``).
    """

    def __init__(self, parity_check):
        self.h = np.asarray(parity_check, dtype=np.uint8)
        if self.h.ndim != 2:
            raise ConfigurationError("parity-check matrix must be 2-D")
        self.n = self.h.shape[1]
        self.g, self._perm = generator_from_parity_check(self.h)
        self.k = self.g.shape[0]
        self._build_graph()

    @classmethod
    def from_standard(cls, n=648, rate="1/2", construction="qc", rng=0):
        """Construct a code at 802.11n geometry.

        ``rng`` defaults to a fixed seed so the same (deterministic) code is
        shared by encoder and decoder without further coordination.
        """
        if n not in STANDARD_BLOCK_LENGTHS:
            raise ConfigurationError(
                f"n must be one of {STANDARD_BLOCK_LENGTHS}, got {n}"
            )
        # Graph construction (Gaussian elimination + edge lists) is costly
        # and fully determined by the arguments when the seed is an int, so
        # identical codes are shared across transceiver instances.
        if cls is LdpcCode and isinstance(rng, (int, np.integer)):
            return _cached_standard_code(int(n), rate, construction, int(rng))
        return cls._build_standard(n, rate, construction, rng)

    @classmethod
    def _build_standard(cls, n, rate, construction, rng):
        if construction == "qc":
            h = quasi_cyclic(n, rate=rate, lifting=n // 24, rng=rng)
        elif construction == "gallager":
            wr = {"1/2": 6, "2/3": 9, "3/4": 12, "5/6": 18}[rate]
            h = gallager_regular(n, column_weight=3, row_weight=wr, rng=rng)
        else:
            raise ConfigurationError(f"unknown construction {construction!r}")
        return cls(h)

    @property
    def rate(self):
        """Actual code rate k/n (may exceed the design rate if H is rank
        deficient)."""
        return self.k / self.n

    def _build_graph(self):
        # reduceat segments must be non-empty: drop all-zero check rows (they
        # impose no constraint) and reject all-zero columns (an unprotected,
        # undecodable bit would silently break the variable update).
        live_rows = self.h.any(axis=1)
        self._h_graph = self.h[live_rows]
        if not self.h.any(axis=0).all():
            raise ConfigurationError(
                "parity-check matrix has an all-zero column (unprotected bit)"
            )
        check_idx, var_idx = np.nonzero(self._h_graph)
        # Edge list sorted by check (for check updates) ...
        order_c = np.lexsort((var_idx, check_idx))
        self._edge_check = check_idx[order_c]
        self._edge_var = var_idx[order_c]
        self._n_edges = self._edge_check.size
        counts_c = np.bincount(self._edge_check, minlength=self._h_graph.shape[0])
        self._check_starts = np.concatenate([[0], np.cumsum(counts_c)[:-1]])
        self._check_counts = counts_c
        # ... and the permutation into variable-sorted order (for var updates).
        order_v = np.lexsort((self._edge_check, self._edge_var))
        self._to_var_order = order_v
        self._from_var_order = np.argsort(order_v)
        counts_v = np.bincount(self._edge_var, minlength=self.n)
        self._var_starts = np.concatenate([[0], np.cumsum(counts_v)[:-1]])
        self._var_counts = counts_v

    # -- encoding --------------------------------------------------------

    def encode(self, info_bits):
        """Encode ``k`` information bits into an ``n``-bit codeword.

        The codeword is systematic in permuted coordinates; positions are
        mapped back so ``H @ codeword = 0`` in the original coordinates.
        """
        info_bits = np.asarray(info_bits).astype(np.uint8)
        if info_bits.ndim == 1:
            info_bits = info_bits.ravel()
        if info_bits.shape[-1] != self.k:
            raise CodingError(
                f"expected {self.k} info bits, got {info_bits.shape[-1]}"
            )
        # Exact GF(2) arithmetic, so a 2-D batch of blocks encodes in one
        # matmul with bit-identical rows.
        permuted = (info_bits @ self.g) % 2
        codeword = np.zeros(info_bits.shape[:-1] + (self.n,), dtype=np.int8)
        codeword[..., self._perm] = permuted
        return codeword

    def extract_info(self, codeword):
        """Recover the information bits from a (corrected) codeword."""
        codeword = np.asarray(codeword).astype(np.int8).ravel()
        if codeword.size != self.n:
            raise CodingError(f"expected {self.n} code bits, got {codeword.size}")
        return codeword[self._perm[: self.k]]

    def syndrome(self, codeword):
        """H @ c mod 2; all-zero iff ``codeword`` is valid."""
        return (self.h @ np.asarray(codeword).astype(np.uint8)) % 2

    def is_codeword(self, codeword):
        """True iff the syndrome is zero."""
        return not np.any(self.syndrome(codeword))

    # -- decoding --------------------------------------------------------

    def decode(
        self,
        llrs,
        max_iterations=50,
        algorithm="min-sum",
        normalisation=0.8,
        kernels_backend=None,
    ):
        """Belief-propagation decoding.

        Parameters
        ----------
        llrs : array of float
            Channel LLRs, one per code bit, positive favouring 0.
        max_iterations : int
            BP iteration cap; decoding stops early on a zero syndrome.
        algorithm : str
            "min-sum" (normalised) or "sum-product".
        normalisation : float
            Scaling factor for normalised min-sum (ignored by sum-product).
        kernels_backend : str or None
            Kernel backend for the min-sum check update (``"numpy"`` /
            ``"numba"``, bit-identical); ``None`` follows
            :func:`repro.phy.kernels.resolve_backend`. Sum-product
            always runs the numpy path.

        Returns
        -------
        (bits, converged, iterations) : (numpy.ndarray, bool, int)
        """
        llrs = np.asarray(llrs, dtype=float).ravel()
        if llrs.size != self.n:
            raise CodingError(f"expected {self.n} LLRs, got {llrs.size}")
        if algorithm not in ("min-sum", "sum-product"):
            raise ConfigurationError(f"unknown BP algorithm {algorithm!r}")

        llrs = np.clip(llrs, -_MSG_CLIP, _MSG_CLIP)
        m_vc = llrs[self._edge_var].copy()  # edge order: check-sorted
        m_cv = np.zeros(self._n_edges)
        hard = (llrs < 0).astype(np.int8)
        if self.is_codeword(hard):
            return hard, True, 0

        for iteration in range(1, max_iterations + 1):
            m_cv = self._check_update(m_vc, algorithm, normalisation,
                                      kernels_backend)
            totals = llrs + np.add.reduceat(
                m_cv[self._to_var_order], self._var_starts
            )
            m_vc = np.clip(totals[self._edge_var] - m_cv, -_MSG_CLIP, _MSG_CLIP)
            hard = (totals < 0).astype(np.int8)
            if self.is_codeword(hard):
                return hard, True, iteration
        return hard, False, max_iterations

    def _check_update(self, m_vc, algorithm, normalisation, backend=None):
        starts = self._check_starts
        if algorithm == "min-sum":
            # Hot BP kernel: dispatched to the selected (numpy or
            # numba, bit-identical) backend in repro.phy.kernels.
            return kernels.min_sum_check_update(
                m_vc, starts, self._check_counts, normalisation,
                _MSG_CLIP, backend=backend)
        # sum-product via tanh rule, excluding self by division in the
        # magnitude-log domain to stay numerically safe.
        t = np.tanh(np.clip(m_vc, -_MSG_CLIP, _MSG_CLIP) / 2.0)
        signs = np.where(t < 0, -1.0, 1.0)
        logmag = np.log(np.maximum(np.abs(t), 1e-300))
        sign_prod = np.multiply.reduceat(signs, starts)
        logmag_sum = np.add.reduceat(logmag, starts)
        others_log = np.repeat(logmag_sum, self._check_counts) - logmag
        others_sign = np.repeat(sign_prod, self._check_counts) * signs
        prod_others = others_sign * np.exp(np.minimum(others_log, 0.0))
        prod_others = np.clip(prod_others, -0.9999999999, 0.9999999999)
        return np.clip(2.0 * np.arctanh(prod_others), -_MSG_CLIP, _MSG_CLIP)


@lru_cache(maxsize=None)
def _cached_standard_code(n, rate, construction, rng):
    """One shared :class:`LdpcCode` per deterministic standard geometry."""
    return LdpcCode._build_standard(n, rate, construction, rng)
