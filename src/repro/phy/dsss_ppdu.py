"""Full 802.11b PPDU framing: PLCP preamble + header + payload.

The DSSS/CCK modems in :mod:`repro.phy.dsss` / :mod:`repro.phy.cck` move
raw bits; real frames wrap them in the PLCP protocol:

* **long preamble** — 128 scrambled ones (SYNC) + the 16-bit SFD
  ``0xF3A0``, all at 1 Mbps DBPSK/Barker (192 us with the header);
* **PLCP header** — SIGNAL (rate in 100 kbps units), SERVICE, LENGTH
  (microseconds of payload) and a CCITT CRC-16, also at 1 Mbps;
* **PSDU** — at the header-announced rate: 1/2 Mbps Barker or
  5.5/11 Mbps CCK.

This mid-frame rate switch is why every 802.11b frame pays ~192 us of
1 Mbps overhead — the inefficiency the MAC benchmarks (E15d) quantify.
The receiver locates the SFD, parses and CRC-checks the header, then
demodulates the payload with the announced modem.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.cck import CckPhy
from repro.phy.dsss import CHIPS_PER_SYMBOL, DsssPhy
from repro.phy.scrambler import scramble
from repro.utils.bits import bits_from_bytes, bytes_from_bits

SYNC_BITS = 128
SFD_PATTERN = 0xF3A0
HEADER_BITS = 48

_RATE_CODES = {1: 0x0A, 2: 0x14, 5.5: 0x37, 11: 0x6E}
_CODE_RATES = {v: k for k, v in _RATE_CODES.items()}


def crc16_ccitt(bits):
    """CCITT CRC-16 over a bit array (as the PLCP header uses)."""
    bits = np.asarray(bits).astype(int).ravel()
    crc = 0xFFFF
    for bit in bits:
        msb = (crc >> 15) & 1
        crc = ((crc << 1) & 0xFFFF) | int(bit)
        if msb:
            crc ^= 0x1021
    # Standard closing: ones complement.
    return crc ^ 0xFFFF


def _int_bits_msb(value, width):
    shifts = width - 1 - np.arange(width)
    return ((int(value) >> shifts) & 1).astype(np.int8)


def _bits_int_msb(bits):
    bits = np.asarray(bits).astype(np.int64)
    return int((bits << np.arange(bits.size - 1, -1, -1)).sum())


class HrDsssPpdu:
    """802.11b long-preamble PPDU transceiver.

    Parameters
    ----------
    rate_mbps : float
        Payload rate: 1, 2, 5.5 or 11.

    Examples
    --------
    >>> ppdu = HrDsssPpdu(11)
    >>> wave = ppdu.transmit(b"data")
    >>> ppdu.receive(wave)
    b'data'
    """

    def __init__(self, rate_mbps=11):
        if rate_mbps not in _RATE_CODES:
            raise ConfigurationError(
                f"802.11b rate must be one of {sorted(_RATE_CODES)}"
            )
        self.rate_mbps = rate_mbps
        self._header_modem = DsssPhy(1)
        if rate_mbps in (1, 2):
            self._payload_modem = DsssPhy(int(rate_mbps))
        else:
            self._payload_modem = CckPhy(rate_mbps)

    # -- framing -----------------------------------------------------------

    def _preamble_and_header_bits(self, psdu_bytes):
        sync = np.ones(SYNC_BITS, dtype=np.int8)
        sfd = _int_bits_msb(SFD_PATTERN, 16)
        signal = _int_bits_msb(_RATE_CODES[self.rate_mbps], 8)
        service = np.zeros(8, dtype=np.int8)
        length_us = int(np.ceil(8 * psdu_bytes / self.rate_mbps))
        if length_us >= 1 << 16:
            raise ConfigurationError("PSDU too long for the LENGTH field")
        # Length-extension (clause 18.2.3.5): at 11 Mbps a microsecond can
        # hold more than one byte, so ceil() can overshoot by one byte;
        # service bit 7 disambiguates.
        overshoot = int(length_us * self.rate_mbps // 8) - psdu_bytes
        if overshoot not in (0, 1):
            raise ConfigurationError("LENGTH field cannot encode this size")
        service[7] = overshoot
        length = _int_bits_msb(length_us, 16)
        head = np.concatenate([signal, service, length])
        crc = _int_bits_msb(crc16_ccitt(head), 16)
        return np.concatenate([sync, sfd, head, crc])

    def preamble_header_duration_s(self):
        """The long preamble + header cost: 192 us at 1 Mbps."""
        return (SYNC_BITS + 16 + HEADER_BITS) / 1e6

    def frame_duration_s(self, psdu_bytes):
        """Total air time of the PPDU."""
        return (self.preamble_header_duration_s()
                + 8 * psdu_bytes / (self.rate_mbps * 1e6))

    # -- TX ------------------------------------------------------------------

    def transmit(self, psdu):
        """Build the full PPDU chip waveform (11 Mchip/s)."""
        psdu = bytes(psdu)
        plcp_bits = scramble(self._preamble_and_header_bits(len(psdu)))
        payload_bits = scramble(bits_from_bytes(psdu))
        head_wave = self._header_modem.modulate(plcp_bits)
        payload_wave = self._payload_modem.modulate(payload_bits)
        return np.concatenate([head_wave, payload_wave])

    # -- RX ------------------------------------------------------------------

    def receive(self, chips):
        """Parse and demodulate a PPDU; returns the PSDU bytes.

        Raises
        ------
        DemodulationError
            If the SFD cannot be found or the header CRC fails.
        """
        chips = np.asarray(chips, dtype=np.complex128).ravel()
        n_plcp_bits = SYNC_BITS + 16 + HEADER_BITS
        n_plcp_chips = (n_plcp_bits + 1) * CHIPS_PER_SYMBOL  # + reference
        if chips.size < n_plcp_chips:
            raise DemodulationError("waveform shorter than the PLCP")
        plcp_bits = scramble(
            self._header_modem.demodulate(chips[:n_plcp_chips])
        )
        sfd = plcp_bits[SYNC_BITS : SYNC_BITS + 16]
        if _bits_int_msb(sfd) != SFD_PATTERN:
            raise DemodulationError("SFD not found (preamble sync failed)")
        header = plcp_bits[SYNC_BITS + 16 :]
        head, crc_bits = header[:32], header[32:]
        if crc16_ccitt(head) != _bits_int_msb(crc_bits):
            raise DemodulationError("PLCP header CRC failed")
        rate_code = _bits_int_msb(head[:8])
        if rate_code not in _CODE_RATES:
            raise DemodulationError(f"unknown SIGNAL rate code {rate_code:#x}")
        rate = _CODE_RATES[rate_code]
        if rate != self.rate_mbps:
            raise DemodulationError(
                f"header announces {rate} Mbps, receiver set for "
                f"{self.rate_mbps} Mbps"
            )
        length_us = _bits_int_msb(head[16:32])
        length_extension = int(head[15])  # service bit 7
        n_bytes = int(length_us * self.rate_mbps // 8) - length_extension
        n_bits = 8 * n_bytes
        n_payload_chips = self._n_payload_chips(n_bits)
        payload_chips = chips[n_plcp_chips : n_plcp_chips + n_payload_chips]
        if payload_chips.size < n_payload_chips:
            raise DemodulationError("payload truncated")
        payload_bits = scramble(
            self._payload_modem.demodulate(payload_chips)[:n_bits]
        )
        return bytes_from_bits(payload_bits)

    def _n_payload_chips(self, n_bits):
        modem = self._payload_modem
        if isinstance(modem, DsssPhy):
            return modem.n_chips(n_bits)
        return modem.n_chips(n_bits)
