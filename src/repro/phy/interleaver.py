"""The 802.11a block interleaver (clause 17.3.5.6).

Operates on one OFDM symbol's worth of coded bits (``n_cbps``). Two
permutations: the first spreads adjacent coded bits onto non-adjacent
subcarriers; the second rotates bits within a subcarrier's constellation
label so adjacent bits alternate between more and less reliable positions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodingError


def interleave_permutation(n_cbps, n_bpsc):
    """Return the permutation ``k -> j`` (write index for each input bit)."""
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    return j


def interleave(bits, n_cbps, n_bpsc):
    """Interleave one or more OFDM symbols' coded bits."""
    bits = np.asarray(bits)
    if bits.size % n_cbps != 0:
        raise CodingError(
            f"{bits.size} bits is not a whole number of {n_cbps}-bit symbols"
        )
    perm = interleave_permutation(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbps):
        block = bits[start : start + n_cbps]
        dest = out[start : start + n_cbps]
        dest[perm] = block
    return out


def ht_interleave_permutation(n_bpsc, bandwidth_mhz=20):
    """The 802.11n per-stream interleaver permutation.

    Same two permutations as 802.11a but on a 13-column (20 MHz) or
    18-column (40 MHz) array, matching the 52/108 data-subcarrier counts.
    """
    n_col = 13 if bandwidth_mhz == 20 else 18
    n_row = (4 if bandwidth_mhz == 20 else 6) * n_bpsc
    n_cbpss = n_col * n_row
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbpss)
    i = n_row * (k % n_col) + k // n_col
    j = s * (i // s) + (i + n_cbpss - (n_col * i) // n_cbpss) % s
    return j


def ht_interleave(bits, n_bpsc, bandwidth_mhz=20):
    """Interleave one or more HT symbols' worth of one stream's coded bits."""
    bits = np.asarray(bits)
    perm = ht_interleave_permutation(n_bpsc, bandwidth_mhz)
    n_cbpss = perm.size
    if bits.size % n_cbpss != 0:
        raise CodingError(
            f"{bits.size} bits is not a whole number of {n_cbpss}-bit symbols"
        )
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbpss):
        out[start : start + n_cbpss][perm] = bits[start : start + n_cbpss]
    return out


def ht_deinterleave(bits, n_bpsc, bandwidth_mhz=20):
    """Inverse of :func:`ht_interleave` (works on soft values too)."""
    bits = np.asarray(bits)
    perm = ht_interleave_permutation(n_bpsc, bandwidth_mhz)
    n_cbpss = perm.size
    if bits.size % n_cbpss != 0:
        raise CodingError(
            f"{bits.size} bits is not a whole number of {n_cbpss}-bit symbols"
        )
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbpss):
        out[start : start + n_cbpss] = bits[start : start + n_cbpss][perm]
    return out


def deinterleave(bits, n_cbps, n_bpsc):
    """Inverse of :func:`interleave` (works on soft values too)."""
    bits = np.asarray(bits)
    if bits.size % n_cbps != 0:
        raise CodingError(
            f"{bits.size} bits is not a whole number of {n_cbps}-bit symbols"
        )
    perm = interleave_permutation(n_cbps, n_bpsc)
    out = np.empty_like(bits)
    for start in range(0, bits.size, n_cbps):
        block = bits[start : start + n_cbps]
        out[start : start + n_cbps] = block[perm]
    return out
