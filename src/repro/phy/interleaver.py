"""The 802.11a block interleaver (clause 17.3.5.6).

Operates on one OFDM symbol's worth of coded bits (``n_cbps``). Two
permutations: the first spreads adjacent coded bits onto non-adjacent
subcarriers; the second rotates bits within a subcarrier's constellation
label so adjacent bits alternate between more and less reliable positions.

Permutations (and their inverses) are pure functions of ``(n_cbps,
n_bpsc)``; they are computed once per geometry and cached, and multi-symbol
inputs are permuted as a single 2-D gather over all symbols at once rather
than symbol by symbol.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import CodingError


def interleave_permutation(n_cbps, n_bpsc):
    """Return the permutation ``k -> j`` (write index for each input bit)."""
    return _cached_permutation(int(n_cbps), int(n_bpsc))[0].copy()


@lru_cache(maxsize=None)
def _cached_permutation(n_cbps, n_bpsc):
    """``(perm, inverse)`` index arrays for one 802.11a geometry."""
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    inverse = np.argsort(j)
    j.setflags(write=False)
    inverse.setflags(write=False)
    return j, inverse


def _blocks(bits, n_block):
    """View ``bits`` as a 2-D (n_symbols, n_block) stack of symbol blocks."""
    bits = np.asarray(bits)
    if bits.size % n_block != 0:
        raise CodingError(
            f"{bits.size} bits is not a whole number of {n_block}-bit symbols"
        )
    return bits, bits.reshape(-1, n_block)


def interleave(bits, n_cbps, n_bpsc):
    """Interleave one or more OFDM symbols' coded bits.

    Accepts a flat array of whole symbols or any N-D batch whose total
    size is a multiple of ``n_cbps``; the output keeps the input shape.
    """
    bits, blocks = _blocks(bits, n_cbps)
    _, inverse = _cached_permutation(int(n_cbps), int(n_bpsc))
    # out[perm] = block  <=>  out = block[argsort(perm)]
    return blocks[:, inverse].reshape(bits.shape)


def deinterleave(bits, n_cbps, n_bpsc):
    """Inverse of :func:`interleave` (works on soft values too)."""
    bits, blocks = _blocks(bits, n_cbps)
    perm, _ = _cached_permutation(int(n_cbps), int(n_bpsc))
    return blocks[:, perm].reshape(bits.shape)


def ht_interleave_permutation(n_bpsc, bandwidth_mhz=20):
    """The 802.11n/ac per-stream interleaver permutation.

    Same two permutations as 802.11a but on a wider array whose shape
    comes from the channel's tone plan: 13 columns (20 MHz), 18 (40 MHz)
    or 26 (80/160 MHz), matching the 52/108/234/468 data-subcarrier
    counts.
    """
    return _cached_ht_permutation(int(n_bpsc), int(bandwidth_mhz))[0].copy()


@lru_cache(maxsize=None)
def _cached_ht_permutation(n_bpsc, bandwidth_mhz):
    """``(perm, inverse)`` index arrays for one 802.11n/ac geometry."""
    from repro.standards.plans import tone_plan

    plan = tone_plan(bandwidth_mhz)
    n_col = plan.interleaver_cols
    n_row = plan.interleaver_row_factor * n_bpsc
    n_cbpss = n_col * n_row
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbpss)
    i = n_row * (k % n_col) + k // n_col
    j = s * (i // s) + (i + n_cbpss - (n_col * i) // n_cbpss) % s
    inverse = np.argsort(j)
    j.setflags(write=False)
    inverse.setflags(write=False)
    return j, inverse


def ht_interleave(bits, n_bpsc, bandwidth_mhz=20):
    """Interleave one or more HT symbols' worth of one stream's coded bits."""
    perm, inverse = _cached_ht_permutation(int(n_bpsc), int(bandwidth_mhz))
    bits, blocks = _blocks(bits, perm.size)
    return blocks[:, inverse].reshape(bits.shape)


def ht_deinterleave(bits, n_bpsc, bandwidth_mhz=20):
    """Inverse of :func:`ht_interleave` (works on soft values too)."""
    perm, _ = _cached_ht_permutation(int(n_bpsc), int(bandwidth_mhz))
    bits, blocks = _blocks(bits, perm.size)
    return blocks[:, perm].reshape(bits.shape)
