"""Alamouti space-time block coding (2 transmit antennas).

The rate-1 orthogonal STBC: two symbols (s1, s2) are sent over two symbol
periods as

    t1: antenna1 -> s1,     antenna2 -> s2
    t2: antenna1 -> -s2*,   antenna2 -> s1*

Linear combining at the receiver achieves full 2xNr diversity with no rate
loss — the transmit-diversity mechanism behind the paper's claim that MIMO
extends range several-fold in fading.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DemodulationError


def alamouti_encode(symbols):
    """Encode a symbol vector into the (2, T) Alamouti transmit matrix.

    Per-antenna power is halved so total transmit power matches a SISO
    transmission of the same symbols.

    Parameters
    ----------
    symbols : array of complex, even length

    Returns
    -------
    numpy.ndarray of shape (2, len(symbols))
        Row a is the stream for antenna a.
    """
    symbols = np.asarray(symbols, dtype=np.complex128).ravel()
    if symbols.size % 2 != 0:
        raise ConfigurationError("Alamouti needs an even number of symbols")
    s1 = symbols[0::2]
    s2 = symbols[1::2]
    tx = np.empty((2, symbols.size), dtype=np.complex128)
    tx[0, 0::2] = s1
    tx[0, 1::2] = -np.conj(s2)
    tx[1, 0::2] = s2
    tx[1, 1::2] = np.conj(s1)
    return tx / np.sqrt(2.0)


def alamouti_decode(received, channel):
    """Combine a (Nr, T) receive matrix into symbol estimates.

    Parameters
    ----------
    received : array (Nr, T) or (T,)
        Received samples over an even number T of symbol periods. The
        channel must be constant over each period pair.
    channel : array (Nr, 2) or (2,)
        Complex gains from the two transmit antennas to each receive
        antenna.

    Returns
    -------
    (estimates, effective_gain) : (numpy.ndarray, float)
        ``estimates`` are the T combined symbol estimates, normalised so a
        unit-energy constellation decision can be applied directly;
        ``effective_gain`` is ||H||_F^2 / 2, the post-combining SNR gain
        relative to a unit SISO channel.
    """
    received = np.atleast_2d(np.asarray(received, dtype=np.complex128))
    channel = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    if channel.shape[1] != 2:
        raise ConfigurationError(f"channel must be (Nr, 2), got {channel.shape}")
    if received.shape[0] != channel.shape[0]:
        raise DemodulationError(
            f"{received.shape[0]} receive streams but channel has "
            f"{channel.shape[0]} rows"
        )
    if received.shape[1] % 2 != 0:
        raise DemodulationError("need an even number of symbol periods")
    h1 = channel[:, 0][:, None]  # (Nr, 1)
    h2 = channel[:, 1][:, None]
    r1 = received[:, 0::2]  # (Nr, T/2)
    r2 = received[:, 1::2]
    norm = np.sum(np.abs(channel) ** 2)
    if norm < 1e-24:
        raise DemodulationError("channel is numerically zero")
    s1_hat = (np.conj(h1) * r1 + h2 * np.conj(r2)).sum(axis=0)
    s2_hat = (np.conj(h2) * r1 - h1 * np.conj(r2)).sum(axis=0)
    estimates = np.empty(received.shape[1], dtype=np.complex128)
    # Undo the sqrt(2) TX power split and the ||H||^2 combining gain.
    estimates[0::2] = s1_hat * np.sqrt(2.0) / norm
    estimates[1::2] = s2_hat * np.sqrt(2.0) / norm
    effective_gain = norm / 2.0
    return estimates, effective_gain


def alamouti_post_snr(channel, snr_linear):
    """Post-combining SNR for a (Nr, 2) channel at total-TX SNR ``snr_linear``."""
    channel = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    return snr_linear * np.sum(np.abs(channel) ** 2) / 2.0
