"""MIMO channel capacity: the information-theoretic basis of the paper's
"fundamental breakthroughs in information theory" narrative.

Open-loop capacity of an Nr x Nt channel H at total-TX SNR rho with equal
power allocation:

    C = log2 det(I + (rho / Nt) H H^H)   [bps/Hz]

Ergodic and outage variants average/quantile this over an i.i.d. Rayleigh
ensemble, reproducing the linear-in-min(Nt,Nr) scaling that makes
15 bps/Hz reachable where SISO saturates.
"""

from __future__ import annotations

import numpy as np

from repro.core.mc import run_trials
from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


def rayleigh_channel(n_rx, n_tx, rng=None):
    """An i.i.d. CN(0,1) channel matrix draw."""
    rng = as_generator(rng)
    return (
        rng.normal(size=(n_rx, n_tx)) + 1j * rng.normal(size=(n_rx, n_tx))
    ) / np.sqrt(2.0)


def rayleigh_channels(n_draws, n_rx, n_tx, rng=None):
    """``n_draws`` stacked i.i.d. CN(0,1) channel draws, shape (n, rx, tx).

    The ``(n, 2, rx, tx)`` normal block consumes the generator in
    exactly the order ``n_draws`` sequential :func:`rayleigh_channel`
    calls would (real block then imaginary block per draw), so batched
    ensembles are bit-identical to the seed-era scalar loops.
    """
    rng = as_generator(rng)
    z = rng.normal(size=(int(n_draws), 2, int(n_rx), int(n_tx)))
    return (z[:, 0] + 1j * z[:, 1]) / np.sqrt(2.0)


def capacity_bps_hz(channel, snr_linear):
    """Deterministic open-loop MIMO capacity at total-TX SNR ``snr_linear``."""
    h = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    n_tx = h.shape[1]
    gram = np.eye(h.shape[0]) + (snr_linear / n_tx) * (h @ h.conj().T)
    sign, logdet = np.linalg.slogdet(gram)
    if sign.real <= 0:
        raise ConfigurationError("capacity determinant non-positive")
    return float(logdet / np.log(2.0))


def ergodic_capacity(n_rx, n_tx, snr_db, n_draws=2000, rng=None, *,
                     precision=None, max_trials=None, confidence=0.95,
                     batch_size=500, return_result=False):
    """Mean capacity over an i.i.d. Rayleigh ensemble [bps/Hz].

    Channel draws and eigendecompositions run in vectorised batches
    through the MC engine; the fixed-budget result (``precision=None``)
    is bit-identical to the seed-era per-draw loop at the same seed.
    With a precision target the ensemble grows until the normal-theory
    CI on the mean is relatively tight enough at every SNR point.
    ``return_result=True`` yields the :class:`~repro.core.mc.McResult`
    (estimate, CI and trial count) instead of the bare mean.
    """
    rng = as_generator(rng)
    snr = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    snr = np.atleast_1d(snr)

    def batch(rng, m):
        h = rayleigh_channels(m, n_rx, n_tx, rng)
        eig = np.linalg.eigvalsh(h @ h.conj().transpose(0, 2, 1)).real
        eig = np.maximum(eig, 0.0)
        caps = np.log2(1.0 + snr[None, :, None] / n_tx
                       * eig[:, None, :]).sum(axis=2)
        return {"capacity_bps_hz": caps}

    mc = run_trials(batch, n_trials=int(n_draws), target="capacity_bps_hz",
                    rng=rng, precision=precision, max_trials=max_trials,
                    confidence=confidence, batch_size=batch_size,
                    estimand="mean", vectorized=True)
    if return_result:
        return mc
    return mc.estimate


def outage_capacity(n_rx, n_tx, snr_db, outage=0.1, n_draws=4000, rng=None,
                    *, precision=None, max_trials=None, confidence=0.95,
                    batch_size=1000, return_result=False):
    """Capacity supported in all but ``outage`` of channel draws [bps/Hz].

    Batched draws and log-determinants through the MC engine;
    bit-identical to the seed-era loop in fixed-budget mode. Adaptive
    mode grows the ensemble until the distribution-free order-statistic
    CI on the outage quantile is relatively tight enough.
    """
    if not 0 < outage < 1:
        raise ConfigurationError(f"outage must be in (0, 1), got {outage}")
    rng = as_generator(rng)
    snr = 10.0 ** (float(snr_db) / 10.0)

    def batch(rng, m):
        h = rayleigh_channels(m, n_rx, n_tx, rng)
        gram = (np.eye(int(n_rx))
                + (snr / n_tx) * (h @ h.conj().transpose(0, 2, 1)))
        sign, logdet = np.linalg.slogdet(gram)
        if np.any(sign.real <= 0):
            raise ConfigurationError("capacity determinant non-positive")
        return {"capacity_bps_hz": logdet / np.log(2.0)}

    mc = run_trials(batch, n_trials=int(n_draws), target="capacity_bps_hz",
                    rng=rng, precision=precision, max_trials=max_trials,
                    confidence=confidence, batch_size=batch_size,
                    estimand="quantile", quantile=outage, vectorized=True)
    if return_result:
        return mc
    return float(mc.estimate)


def siso_shannon_bound(snr_db):
    """SISO AWGN capacity log2(1+SNR) [bps/Hz] — the wall the paper says
    the OFDM generation had essentially reached."""
    snr = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    return np.log2(1.0 + snr)
