"""MIMO channel capacity: the information-theoretic basis of the paper's
"fundamental breakthroughs in information theory" narrative.

Open-loop capacity of an Nr x Nt channel H at total-TX SNR rho with equal
power allocation:

    C = log2 det(I + (rho / Nt) H H^H)   [bps/Hz]

Ergodic and outage variants average/quantile this over an i.i.d. Rayleigh
ensemble, reproducing the linear-in-min(Nt,Nr) scaling that makes
15 bps/Hz reachable where SISO saturates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator


def rayleigh_channel(n_rx, n_tx, rng=None):
    """An i.i.d. CN(0,1) channel matrix draw."""
    rng = as_generator(rng)
    return (
        rng.normal(size=(n_rx, n_tx)) + 1j * rng.normal(size=(n_rx, n_tx))
    ) / np.sqrt(2.0)


def capacity_bps_hz(channel, snr_linear):
    """Deterministic open-loop MIMO capacity at total-TX SNR ``snr_linear``."""
    h = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    n_tx = h.shape[1]
    gram = np.eye(h.shape[0]) + (snr_linear / n_tx) * (h @ h.conj().T)
    sign, logdet = np.linalg.slogdet(gram)
    if sign.real <= 0:
        raise ConfigurationError("capacity determinant non-positive")
    return float(logdet / np.log(2.0))


def ergodic_capacity(n_rx, n_tx, snr_db, n_draws=2000, rng=None):
    """Mean capacity over an i.i.d. Rayleigh ensemble [bps/Hz]."""
    rng = as_generator(rng)
    snr = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    snr = np.atleast_1d(snr)
    totals = np.zeros(snr.size)
    for _ in range(int(n_draws)):
        h = rayleigh_channel(n_rx, n_tx, rng)
        eig = np.linalg.eigvalsh(h @ h.conj().T).real
        eig = np.maximum(eig, 0.0)
        totals += np.log2(1.0 + np.outer(snr / n_tx, eig)).sum(axis=1)
    result = totals / n_draws
    return result if result.size > 1 else float(result[0])


def outage_capacity(n_rx, n_tx, snr_db, outage=0.1, n_draws=4000, rng=None):
    """Capacity supported in all but ``outage`` of channel draws [bps/Hz]."""
    if not 0 < outage < 1:
        raise ConfigurationError(f"outage must be in (0, 1), got {outage}")
    rng = as_generator(rng)
    snr = 10.0 ** (float(snr_db) / 10.0)
    caps = np.empty(int(n_draws))
    for i in range(int(n_draws)):
        caps[i] = capacity_bps_hz(rayleigh_channel(n_rx, n_tx, rng), snr)
    return float(np.quantile(caps, outage))


def siso_shannon_bound(snr_db):
    """SISO AWGN capacity log2(1+SNR) [bps/Hz] — the wall the paper says
    the OFDM generation had essentially reached."""
    snr = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    return np.log2(1.0 + snr)
