"""Spatial-multiplexing detectors and diversity combining.

Convention: ``y = H x + n`` with **unit power per stream** (E[x x^H] = I)
and complex noise variance ``noise_var`` per receive antenna. Callers that
split a total power budget across streams fold the 1/sqrt(Nt) into H (the
HT transceiver does exactly this, and channel estimation then absorbs it
automatically).

All detectors return per-stream symbol estimates (Nt, T) plus the
post-detection SINR of each stream, so soft demappers can weight their
LLRs correctly.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ConfigurationError, DemodulationError


def _check_shapes(y, h):
    y = np.atleast_2d(np.asarray(y, dtype=np.complex128))
    h = np.atleast_2d(np.asarray(h, dtype=np.complex128))
    if y.shape[0] != h.shape[0]:
        raise DemodulationError(
            f"receive dim {y.shape[0]} does not match channel rows {h.shape[0]}"
        )
    return y, h


def detect_zero_forcing(y, h, noise_var):
    """Zero-forcing detection: invert the channel, ignore noise colouring.

    Returns
    -------
    (estimates, post_sinr) : ((Nt, T) array, (Nt,) array)
        ``post_sinr`` is the per-stream SNR after ZF:
        ``1 / (noise_var * [(H^H H)^-1]_kk)``.
    """
    y, h = _check_shapes(y, h)
    nt = h.shape[1]
    if h.shape[0] < nt:
        raise ConfigurationError(
            f"zero forcing needs Nr >= Nt, got {h.shape[0]} < {nt}"
        )
    gram = h.conj().T @ h
    try:
        gram_inv = np.linalg.inv(gram)
    except np.linalg.LinAlgError as exc:
        raise DemodulationError("channel is rank deficient for ZF") from exc
    w = gram_inv @ h.conj().T
    estimates = w @ y
    noise_amp = np.real(np.diag(gram_inv))
    post_sinr = 1.0 / np.maximum(noise_var * noise_amp, 1e-30)
    return estimates, post_sinr


def detect_mmse(y, h, noise_var):
    """Linear MMSE detection with per-stream SINR.

    The filter is ``W = (H^H H + sigma^2 I)^-1 H^H``; estimates are
    bias-corrected so constellation decisions can be applied directly.
    Post-detection SINR comes from the error covariance
    ``E = (I + H^H H / sigma^2)^-1`` as ``1/E_kk - 1``.
    """
    y, h = _check_shapes(y, h)
    nt = h.shape[1]
    noise_var = max(float(noise_var), 1e-30)
    gram = h.conj().T @ h
    w = np.linalg.inv(gram + noise_var * np.eye(nt)) @ h.conj().T
    wh_diag = np.real(np.diag(w @ h))
    if np.any(wh_diag <= 1e-15):
        raise DemodulationError("MMSE filter collapsed (diagonal ~ 0)")
    estimates = (w @ y) / wh_diag[:, None]
    error_cov = np.linalg.inv(np.eye(nt) + gram / noise_var)
    e_kk = np.clip(np.real(np.diag(error_cov)), 1e-12, 1.0 - 1e-12)
    post_sinr = 1.0 / e_kk - 1.0
    return estimates, post_sinr


def detect_ml(y, h, constellation):
    """Exact maximum-likelihood joint detection (exponential in Nt).

    Practical for Nt <= 2-3 with QPSK/16-QAM; the quality yardstick in the
    detector ablation benchmark.

    Returns
    -------
    numpy.ndarray of shape (Nt, T)
        The ML symbol decisions (members of ``constellation`` per stream).
    """
    y, h = _check_shapes(y, h)
    nt = h.shape[1]
    constellation = np.asarray(constellation, dtype=np.complex128).ravel()
    if constellation.size ** nt > 1 << 20:
        raise ConfigurationError(
            f"ML search space {constellation.size}^{nt} is too large"
        )
    candidates = np.array(
        list(itertools.product(constellation, repeat=nt)), dtype=np.complex128
    ).T  # (Nt, M^Nt)
    predicted = h @ candidates  # (Nr, M^Nt)
    dists = (
        np.abs(y[:, None, :] - predicted[:, :, None]) ** 2
    ).sum(axis=0)  # (M^Nt, T)
    best = np.argmin(dists, axis=0)
    return candidates[:, best]


def maximum_ratio_combine(y, h):
    """MRC for a single transmit stream and Nr receive antennas.

    Parameters
    ----------
    y : array (Nr, T)
    h : array (Nr,)

    Returns
    -------
    (estimates, gain) : ((T,) array, float)
        ``gain`` is ||h||^2, the array (SNR) gain over a unit SISO link.
    """
    y = np.atleast_2d(np.asarray(y, dtype=np.complex128))
    h = np.asarray(h, dtype=np.complex128).ravel()
    if y.shape[0] != h.size:
        raise DemodulationError(
            f"{y.shape[0]} receive rows but {h.size} channel gains"
        )
    norm = np.sum(np.abs(h) ** 2)
    if norm < 1e-24:
        raise DemodulationError("channel is numerically zero")
    estimates = (np.conj(h)[:, None] * y).sum(axis=0) / norm
    return estimates, float(norm)
