"""Multi-user MIMO downlink (802.11ac-style MU-MIMO).

An access point with ``n_tx`` antennas serves several users *at once* by
zero-forcing precoding: the per-subcarrier precoder places each user's
streams in the null space of every other user's channel, so each
receiver sees only its own data. This is the mechanism 802.11ac added on
top of the 11n chain, and it runs here on the same
:class:`~repro.phy.mimo.ht.HtPhy`/``VhtPhy`` machinery — per-user
waveforms are built with per-subcarrier ``precoders`` and summed on the
array.

Channel estimation needs no side information: every user's LTFs are
precoded identically to its data, and the *sum* of all users' training
collapses to the user's own effective channel because the zero-forcing
condition H_u W_v = 0 (v != u) nulls the cross terms on data tones.

A closed-form throughput model (:func:`mu_su_throughput`) compares ZF
MU-MIMO against single-user TDMA service for the trend experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.mimo.ht import VhtPhy
from repro.standards.mcs import get_family


def zf_precoders(channels):
    """Per-subcarrier zero-forcing precoders for a set of user channels.

    Parameters
    ----------
    channels : array (n_users, n_sc, s, n_tx)
        Each user's channel on every data subcarrier; ``s`` receive
        dimensions per user (one per served stream).

    Returns
    -------
    numpy.ndarray of shape (n_users, n_sc, n_tx, s)
        Precoders satisfying H_u W_v = delta_uv on every subcarrier,
        scaled so the summed transmission has unit total power per
        subcarrier.
    """
    channels = np.asarray(channels, dtype=np.complex128)
    if channels.ndim != 4:
        raise ConfigurationError(
            "channels must have shape (n_users, n_sc, s, n_tx), got "
            f"{channels.shape}"
        )
    n_users, n_sc, s, n_tx = channels.shape
    if n_users * s > n_tx:
        raise ConfigurationError(
            f"{n_users} users x {s} streams exceed {n_tx} TX antennas"
        )
    # Stack everyone's rows: H is (n_sc, S, n_tx) with S = n_users * s.
    h = channels.transpose(1, 0, 2, 3).reshape(n_sc, n_users * s, n_tx)
    gram = np.einsum("cst,cut->csu", h, h.conj())
    w = np.einsum("cst,csu->ctu", h.conj(), np.linalg.inv(gram))
    # Unit total power per subcarrier across all users' columns.
    norm = np.sqrt(np.sum(np.abs(w) ** 2, axis=(1, 2), keepdims=True))
    w = w / np.maximum(norm, 1e-30)
    return w.reshape(n_sc, n_tx, n_users, s).transpose(2, 0, 1, 3)


class MuMimoDownlink:
    """ZF MU-MIMO downlink on the VHT waveform chain.

    Parameters
    ----------
    n_users : int
    n_tx : int
        AP array size; must fit ``n_users * spatial_streams``.
    mcs : int
        VHT MCS index used for every user.
    spatial_streams : int
        Streams per user.
    bandwidth_mhz : int
    detector, scrambler_seed :
        Forwarded to each user's :class:`VhtPhy`.

    Examples
    --------
    >>> dl = MuMimoDownlink(n_users=2, n_tx=4, mcs=2)
    >>> h = np.random.default_rng(0).normal(
    ...     size=(2, dl.phys[0].n_data_sc, 1, 4))  # real channels for demo
    >>> tx = dl.transmit([b"user0", b"user1"], h)   # (4, n_samples)
    """

    def __init__(self, n_users, n_tx, mcs=0, spatial_streams=1,
                 bandwidth_mhz=20, detector="mmse", scrambler_seed=0x5D):
        n_users = int(n_users)
        n_tx = int(n_tx)
        if n_users < 1:
            raise ConfigurationError(f"need >= 1 user, got {n_users}")
        if n_users * spatial_streams > n_tx:
            raise ConfigurationError(
                f"{n_users} users x {spatial_streams} streams exceed "
                f"{n_tx} TX antennas"
            )
        self.n_users = n_users
        self.n_tx = n_tx
        self.spatial_streams = int(spatial_streams)
        #: One VHT chain per user; each receiver has one antenna per
        #: served stream. Distinct scrambler seeds decorrelate payloads.
        self.phys = [
            VhtPhy(
                mcs=mcs,
                spatial_streams=spatial_streams,
                bandwidth_mhz=bandwidth_mhz,
                n_rx=spatial_streams,
                detector=detector,
                scrambler_seed=(scrambler_seed + u) % 128 or 0x5D,
            )
            for u in range(n_users)
        ]
        self.n_data_sc = self.phys[0].n_data_sc

    def precoders(self, channels):
        """ZF precoders for per-user channels (see :func:`zf_precoders`)."""
        channels = np.asarray(channels, dtype=np.complex128)
        expect = (self.n_users, self.n_data_sc, self.spatial_streams,
                  self.n_tx)
        if channels.shape != expect:
            raise ConfigurationError(
                f"channels must have shape {expect}, got {channels.shape}"
            )
        return zf_precoders(channels)

    def transmit(self, psdus, channels):
        """The summed (n_tx, n_samples) array waveform for all users.

        All PSDUs must span the same number of OFDM symbols (equal
        lengths is the simple way), so the per-user waveforms align.
        """
        if len(psdus) != self.n_users:
            raise ConfigurationError(
                f"expected {self.n_users} PSDUs, got {len(psdus)}"
            )
        n_sym = {self.phys[0].n_symbols(len(p)) for p in psdus}
        if len(n_sym) != 1:
            raise ConfigurationError(
                "all PSDUs must occupy the same number of OFDM symbols "
                f"for waveform alignment, got symbol counts {sorted(n_sym)}"
            )
        w = self.precoders(channels)
        tx = None
        for u, psdu in enumerate(psdus):
            wave = self.phys[u].transmit(psdu, precoders=w[u])
            tx = wave if tx is None else tx + wave
        return tx

    def receive_user(self, user, samples, noise_var, psdu_bytes=None):
        """Decode one user's PSDU from its received waveform.

        ``samples`` is the array waveform passed through user ``user``'s
        channel — shape (spatial_streams, n_samples).
        """
        if not 0 <= user < self.n_users:
            raise DemodulationError(
                f"user must be 0-{self.n_users - 1}, got {user}"
            )
        return self.phys[user].receive(samples, noise_var,
                                       psdu_bytes=psdu_bytes)


def mu_su_throughput(channels, snr_db, bandwidth_mhz=20, family="VHT",
                     guard_interval="short"):
    """Closed-form MU-MIMO vs single-user TDMA downlink throughput.

    For each user the model picks the highest MCS whose required SNR is
    met (3 dB/extra-stream rule folded in by the family tables; here
    every user gets one stream) and sums goodput:

    - **MU (ZF)**: all users served simultaneously; user ``u``'s
      post-precoding SNR is ``P / (sigma^2 * U * ||w_u||^2)`` with the
      unnormalised ZF column ``w_u`` and equal power split.
    - **SU (TDMA + MRT)**: users served one at a time with the full
      array beamformed at them (``SNR = P ||h_u||^2 / sigma^2``) but
      only ``1/U`` of the airtime each.

    Parameters
    ----------
    channels : array (n_users, n_tx)
        Flat (frequency-independent) per-user channel rows.
    snr_db : float
        Total transmit power over noise, ``P / sigma^2`` in dB.

    Returns
    -------
    dict with ``mu_mbps``, ``su_mbps``, ``mu_user_snr_db``,
    ``su_user_snr_db`` (per-user arrays) and ``gain`` (MU / SU).
    """
    h = np.atleast_2d(np.asarray(channels, dtype=np.complex128))
    n_users, n_tx = h.shape
    if n_users > n_tx:
        raise ConfigurationError(
            f"{n_users} users exceed {n_tx} TX antennas"
        )
    fam = get_family(family)
    snr_lin = 10.0 ** (snr_db / 10.0)

    # ZF: W = H^H (H H^H)^-1 gives H W = I; the unnormalised column
    # norms set how much power each user's unit-gain direction costs.
    gram = h @ h.conj().T
    w = h.conj().T @ np.linalg.inv(gram)
    cost = np.sum(np.abs(w) ** 2, axis=0)
    mu_snr = snr_lin / (n_users * cost)
    su_snr = snr_lin * np.sum(np.abs(h) ** 2, axis=1)

    def best_rate(snr_linear):
        sdb = 10.0 * np.log10(max(snr_linear, 1e-30))
        best = 0.0
        for i in range(fam.n_schemes):
            if fam.required_snr(i, 1) <= sdb:
                best = max(best, fam.mcs(i, 1).data_rate_mbps(
                    bandwidth_mhz, guard_interval))
        return best

    mu_mbps = sum(best_rate(s) for s in mu_snr)
    su_mbps = sum(best_rate(s) for s in su_snr) / n_users
    return {
        "mu_mbps": mu_mbps,
        "su_mbps": su_mbps,
        "mu_user_snr_db": 10.0 * np.log10(np.maximum(mu_snr, 1e-30)),
        "su_user_snr_db": 10.0 * np.log10(np.maximum(su_snr, 1e-30)),
        "gain": mu_mbps / su_mbps if su_mbps > 0 else np.inf,
    }
