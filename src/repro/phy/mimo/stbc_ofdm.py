"""Alamouti space-time block coding over OFDM (2 TX antennas).

The waveform-level embodiment of the paper's transmit-diversity claim:
"through the availability of spatial diversity provided by multiple
antennas, the range ... is extended several-fold". Symbols are Alamouti-
encoded **per subcarrier across pairs of OFDM symbols** (space-time, as in
802.11n's STBC mode):

    symbol 2t   : antenna1 -> S1_k,    antenna2 -> S2_k
    symbol 2t+1 : antenna1 -> -S2_k*,  antenna2 -> S1_k*

The receiver estimates the two per-subcarrier channels from P-matrix
training symbols and combines linearly, collecting full 2 x Nr diversity
with no rate loss. The data chain (scrambler, Viterbi, interleaver)
matches the clause-17 OFDM PHY so results compare directly with
:class:`repro.phy.ofdm.OfdmPhy`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    OFDM_CP_LENGTH,
    OFDM_DATA_SUBCARRIERS,
    OFDM_FFT_SIZE,
    OFDM_SYMBOL_SAMPLES,
)
from repro.errors import ConfigurationError, DemodulationError
from repro.phy import convolutional as cc
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import Modulator
from repro.phy.ofdm import (
    OFDM_RATES,
    _DATA_BINS,
    _PILOT_BINS,
    _USED_BINS,
    _LTF_FREQ,
    _PILOT_BASE,
    pilot_polarity,
)
from repro.phy.scrambler import scramble
from repro.utils.bits import bits_from_bytes, bytes_from_bits

_N_LTF = 2
_P = np.array([[1.0, -1.0], [1.0, 1.0]])  # 2x2 orthogonal training map


class StbcOfdmPhy:
    """2-TX Alamouti OFDM transceiver (802.11a rate set, Nr >= 1).

    Parameters
    ----------
    rate_mbps : int
        One of the 802.11a rates (6..54).
    n_rx : int
        Receive antennas.
    scrambler_seed : int

    Notes
    -----
    Rate-relevant parameters (n_cbps, code rate) are taken from the
    clause-17 tables; the PPDU is two training symbols followed by an even
    number of data symbols (zero-padded), with total TX power split across
    the two antennas.
    """

    def __init__(self, rate_mbps=6, n_rx=1, scrambler_seed=0x5D):
        if rate_mbps not in OFDM_RATES:
            raise ConfigurationError(
                f"rate must be one of {sorted(OFDM_RATES)}, got {rate_mbps}"
            )
        if n_rx < 1:
            raise ConfigurationError("need at least one RX antenna")
        self.rate = OFDM_RATES[rate_mbps]
        self.rate_mbps = rate_mbps
        self.n_rx = int(n_rx)
        self.modulator = Modulator(self.rate.bits_per_subcarrier)
        self.scrambler_seed = scrambler_seed

    # -- sizing -----------------------------------------------------------

    def n_symbols(self, psdu_bytes):
        """Data OFDM symbols (rounded up to an even count for ST pairs)."""
        n_bits = 16 + 8 * psdu_bytes + 6
        n_sym = int(np.ceil(n_bits / self.rate.n_dbps))
        return n_sym + (n_sym % 2)

    def n_samples(self, psdu_bytes):
        """Per-antenna waveform length."""
        return (_N_LTF + self.n_symbols(psdu_bytes)) * OFDM_SYMBOL_SAMPLES

    # -- waveform helpers ---------------------------------------------------

    @staticmethod
    def _freq_to_time(bins):
        return np.fft.ifft(bins) * (OFDM_FFT_SIZE / np.sqrt(len(_USED_BINS)))

    @staticmethod
    def _time_to_freq(samples):
        return np.fft.fft(samples) * (np.sqrt(len(_USED_BINS)) / OFDM_FFT_SIZE)

    def _symbol(self, data_carriers, symbol_index):
        bins = np.zeros(OFDM_FFT_SIZE, dtype=np.complex128)
        bins[_DATA_BINS] = data_carriers
        bins[_PILOT_BINS] = (_PILOT_BASE * pilot_polarity(symbol_index)
                             / np.sqrt(2.0))
        sym = self._freq_to_time(bins)
        return np.concatenate([sym[-OFDM_CP_LENGTH:], sym])

    def _training(self):
        """(2, 2*symbol_samples) orthogonal per-antenna training."""
        out = np.zeros((2, _N_LTF * OFDM_SYMBOL_SAMPLES), dtype=np.complex128)
        for n in range(_N_LTF):
            for antenna in range(2):
                bins = np.zeros(OFDM_FFT_SIZE, dtype=np.complex128)
                bins[_USED_BINS] = _P[antenna, n] * _LTF_FREQ / np.sqrt(2.0)
                sym = self._freq_to_time(bins)
                start = n * OFDM_SYMBOL_SAMPLES
                out[antenna, start : start + OFDM_CP_LENGTH] = (
                    sym[-OFDM_CP_LENGTH:]
                )
                out[antenna, start + OFDM_CP_LENGTH :
                    start + OFDM_SYMBOL_SAMPLES] = sym
        return out

    # -- TX -------------------------------------------------------------------

    def transmit(self, psdu):
        """Build the (2, n_samples) Alamouti-OFDM waveform."""
        psdu = bytes(psdu)
        n_sym = self.n_symbols(len(psdu))
        n_data_bits = n_sym * self.rate.n_dbps
        payload = bits_from_bytes(psdu)
        data = np.concatenate([
            np.zeros(16, dtype=np.int8), payload,
            np.zeros(n_data_bits - 16 - payload.size, dtype=np.int8),
        ])
        scrambled = scramble(data, seed=self.scrambler_seed)
        scrambled[16 + payload.size : 22 + payload.size] = 0
        coded = cc.puncture(cc.encode(scrambled, terminate=False),
                            rate=self.rate.code_rate)
        interleaved = interleave(coded, self.rate.n_cbps,
                                 self.rate.bits_per_subcarrier)
        symbols = self.modulator.modulate(interleaved).reshape(
            n_sym, OFDM_DATA_SUBCARRIERS
        )
        wave = np.zeros((2, self.n_samples(len(psdu))), dtype=np.complex128)
        wave[:, : _N_LTF * OFDM_SYMBOL_SAMPLES] = self._training()
        cursor = _N_LTF * OFDM_SYMBOL_SAMPLES
        amp = 1.0 / np.sqrt(2.0)
        for pair in range(n_sym // 2):
            s1 = symbols[2 * pair]
            s2 = symbols[2 * pair + 1]
            # Space-time mapping per subcarrier.
            wave[0, cursor : cursor + OFDM_SYMBOL_SAMPLES] = self._symbol(
                amp * s1, 2 * pair + 1
            )
            wave[1, cursor : cursor + OFDM_SYMBOL_SAMPLES] = self._symbol(
                amp * s2, 2 * pair + 1
            )
            cursor += OFDM_SYMBOL_SAMPLES
            wave[0, cursor : cursor + OFDM_SYMBOL_SAMPLES] = self._symbol(
                -amp * np.conj(s2), 2 * pair + 2
            )
            wave[1, cursor : cursor + OFDM_SYMBOL_SAMPLES] = self._symbol(
                amp * np.conj(s1), 2 * pair + 2
            )
            cursor += OFDM_SYMBOL_SAMPLES
        return wave

    # -- RX -------------------------------------------------------------------

    def estimate_channel(self, training_block):
        """(n_used, n_rx, 2) channel estimate from the training symbols."""
        training_block = np.atleast_2d(training_block)
        obs = np.empty((len(_USED_BINS), self.n_rx, _N_LTF),
                       dtype=np.complex128)
        for n in range(_N_LTF):
            start = n * OFDM_SYMBOL_SAMPLES + OFDM_CP_LENGTH
            for r in range(self.n_rx):
                freq = self._time_to_freq(
                    training_block[r, start : start + OFDM_FFT_SIZE]
                )
                obs[:, r, n] = freq[_USED_BINS] / _LTF_FREQ
        return obs @ _P.T / _N_LTF * np.sqrt(2.0)

    def receive(self, samples, noise_var, psdu_bytes=None):
        """Demodulate an (n_rx, n_samples) waveform into PSDU bytes."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.complex128))
        if samples.shape[0] != self.n_rx:
            raise DemodulationError(
                f"expected {self.n_rx} RX streams, got {samples.shape[0]}"
            )
        min_len = (_N_LTF + 2) * OFDM_SYMBOL_SAMPLES
        if samples.shape[1] < min_len:
            raise DemodulationError("waveform shorter than training + pair")
        h_used = self.estimate_channel(
            samples[:, : _N_LTF * OFDM_SYMBOL_SAMPLES]
        )
        used_pos = {b: i for i, b in enumerate(_USED_BINS)}
        data_rows = np.array([used_pos[b] for b in _DATA_BINS])
        h = h_used[data_rows] / np.sqrt(2.0)  # fold in the TX power split

        n_sym = (samples.shape[1] // OFDM_SYMBOL_SAMPLES) - _N_LTF
        n_sym -= n_sym % 2
        cursor = _N_LTF * OFDM_SYMBOL_SAMPLES
        carrier_nv = noise_var * len(_USED_BINS) / OFDM_FFT_SIZE
        soft = np.empty(n_sym * self.rate.n_cbps)
        norm = np.sum(np.abs(h) ** 2, axis=(1, 2))  # per-subcarrier ||H||^2
        if np.any(norm < 1e-18):
            raise DemodulationError("channel has a spatial null")
        for pair in range(n_sym // 2):
            freq = np.empty((self.n_rx, 2, OFDM_FFT_SIZE),
                            dtype=np.complex128)
            for t in range(2):
                for r in range(self.n_rx):
                    freq[r, t] = self._time_to_freq(
                        samples[r, cursor + OFDM_CP_LENGTH :
                                cursor + OFDM_SYMBOL_SAMPLES]
                    )
                cursor += OFDM_SYMBOL_SAMPLES
            y1 = freq[:, 0, :][:, _DATA_BINS]  # (n_rx, n_sc) at time 1
            y2 = freq[:, 1, :][:, _DATA_BINS]
            h1 = h[:, :, 0].T  # (n_rx, n_sc): antenna-1 channel
            h2 = h[:, :, 1].T
            s1_hat = (np.conj(h1) * y1 + h2 * np.conj(y2)).sum(axis=0)
            s2_hat = (np.conj(h2) * y1 - h1 * np.conj(y2)).sum(axis=0)
            s1_hat = s1_hat / norm
            s2_hat = s2_hat / norm
            nv_eff = carrier_nv / norm
            base = pair * 2 * self.rate.n_cbps
            for idx, est in ((0, s1_hat), (1, s2_hat)):
                llr = self.modulator.demodulate_soft(est, nv_eff)
                start = base + idx * self.rate.n_cbps
                soft[start : start + self.rate.n_cbps] = deinterleave(
                    llr, self.rate.n_cbps, self.rate.bits_per_subcarrier
                )
        decoded = cc.viterbi_decode(
            soft, n_sym * self.rate.n_dbps, rate=self.rate.code_rate,
            terminated=False,
        )
        descrambled = scramble(decoded, seed=self.scrambler_seed)
        payload_bits = descrambled[16:]
        max_bytes = (payload_bits.size - 6) // 8
        n_bytes = max_bytes if psdu_bytes is None else int(psdu_bytes)
        if n_bytes > max_bytes:
            raise DemodulationError(
                f"waveform carries at most {max_bytes} bytes"
            )
        return bytes_from_bits(payload_bits[: 8 * n_bytes])
