"""HT (802.11n-class) and VHT (802.11ac-class) MIMO-OFDM transceivers.

Implements the High-Throughput PHY as the paper anticipated it: 1-4
spatial streams, 20 or 40 MHz channels, the HT MCS table, per-stream
orthogonal training (the P-matrix HT-LTFs), and linear MMSE/ZF or exact ML
detection — and, through the same generation-parameterized chain,
:class:`VhtPhy`: up to 8 streams, 80/160 MHz tone plans, 256-QAM, and
the 8-column LTF matrix. Closed-loop SVD eigen-beamforming is supported by supplying
per-subcarrier precoders; channel estimation transparently learns the
*effective* precoded channel, exactly as real closed-loop 11n does.
(Alamouti transmit diversity lives in :mod:`repro.phy.mimo.stbc` and is
exercised at symbol level by the link engine.)

Simplifications vs the full standard (see DESIGN.md): the legacy and
HT-SIG header symbols are omitted (both ends are configured with the MCS),
pilots are transmitted but not used for phase tracking (the simulation has
no oscillator impairments), and the short guard interval is handled
analytically in the rate table rather than at waveform level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DemodulationError
from repro.phy import convolutional as cc
from repro.phy.interleaver import ht_deinterleave, ht_interleave
from repro.phy.mimo.detection import detect_ml, detect_mmse, detect_zero_forcing
from repro.phy.modulation import Modulator
from repro.phy.scrambler import scramble
from repro.standards.mcs import HT_MCS_TABLE, get_family
from repro.standards.plans import tone_plan
from repro.utils.bits import bits_from_bytes, bytes_from_bits

#: Number of LTF training symbols per spatial-stream count. 1-4 streams
#: follow 802.11n; 5-8 streams use the full 8-column VHT matrix (see
#: DESIGN.md — the real standard's 6-LTF option for 5-6 streams trades
#: orthogonality bookkeeping for air time we don't model).
N_LTF = {1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 6: 8, 7: 8, 8: 8}

#: The HT-LTF mapping matrix (rows = streams, columns = LTF symbols).
P_HTLTF = np.array(
    [
        [1, -1, 1, 1],
        [1, 1, -1, 1],
        [1, 1, 1, -1],
        [-1, 1, 1, 1],
    ],
    dtype=float,
)

#: The 8-stream VHT-LTF mapping matrix: the standard's block extension
#: [[P4, P4], [P4, -P4]], orthogonal (P8 P8^T = 8 I).
P_VHTLTF = np.block([[P_HTLTF, P_HTLTF], [P_HTLTF, -P_HTLTF]])


class HtPhy:
    """802.11n HT MIMO-OFDM transceiver.

    Parameters
    ----------
    mcs : int
        HT MCS index 0-31 (index // 8 + 1 spatial streams).
    bandwidth_mhz : int
        20 or 40.
    n_rx : int
        Receive antennas (>= spatial streams for linear detection).
    detector : str
        "mmse" (default), "zf" or "ml".
    scrambler_seed : int

    Examples
    --------
    >>> phy = HtPhy(mcs=8, n_rx=2)         # 2-stream QPSK 1/2
    >>> tx = phy.transmit(b"data")          # (2, n_samples)
    >>> h = np.eye(2)[:, :, None] * np.ones(phy.n_data_sc)  # flat channel
    >>> # apply channel externally, then:   phy.receive(rx, noise_var)
    """

    #: MCS family whose tables and timing this chain uses.
    FAMILY = "HT"
    #: Preamble air time before the per-stream LTFs (L-STF + L-LTF +
    #: L-SIG + HT-SIG + HT-STF = 8+8+4+8+4 us).
    PREAMBLE_US = 32.0

    def __init__(self, mcs=0, bandwidth_mhz=20, n_rx=None, detector="mmse",
                 scrambler_seed=0x5D):
        if mcs not in HT_MCS_TABLE:
            raise ConfigurationError(f"MCS index must be 0-31, got {mcs}")
        self._init_chain(
            HT_MCS_TABLE[mcs], bandwidth_mhz, n_rx, detector, scrambler_seed
        )

    def _init_chain(self, entry, bandwidth_mhz, n_rx, detector,
                    scrambler_seed):
        """Shared constructor: geometry, MCS, and training parameters all
        derive from the family's generation data plus the tone plan."""
        family = get_family(self.FAMILY)
        if bandwidth_mhz not in family.data_subcarriers:
            raise ConfigurationError(
                f"{self.FAMILY} bandwidth must be one of "
                f"{sorted(family.data_subcarriers)} MHz, got {bandwidth_mhz}"
            )
        if detector not in ("mmse", "zf", "ml"):
            raise ConfigurationError(f"unknown detector {detector!r}")
        num, den = (int(p) for p in entry.code_rate.split("/"))
        if entry.n_cbps(bandwidth_mhz) * num % den:
            # Mirrors the standard's excluded combinations (e.g. VHT
            # MCS 9 at 20 MHz): the coded bits of one OFDM symbol must
            # carry a whole number of data bits.
            raise ConfigurationError(
                f"{self.FAMILY} {entry.modulation} {entry.code_rate} x"
                f"{entry.spatial_streams} is not valid at {bandwidth_mhz} "
                f"MHz (non-integral data bits per symbol)"
            )
        self.mcs = entry
        self.n_ss = entry.spatial_streams
        self.n_tx = self.n_ss
        self.n_rx = self.n_ss if n_rx is None else int(n_rx)
        if detector in ("mmse", "zf") and self.n_rx < self.n_ss:
            raise ConfigurationError(
                f"linear detection of {self.n_ss} streams needs >= {self.n_ss}"
                f" RX antennas, got {self.n_rx}"
            )
        self.detector = detector
        self.bandwidth_mhz = bandwidth_mhz
        self._family = family
        plan = tone_plan(bandwidth_mhz)
        self.fft_size = plan.fft_size
        self.cp = plan.cp
        self.sample_rate = plan.sample_rate
        self.symbol_samples = self.fft_size + self.cp
        used = plan.used
        self.data_indices = np.array(plan.data)
        self.pilot_indices = np.array(plan.pilots)
        self.n_data_sc = len(self.data_indices)
        self.n_used = len(used)
        self._data_bins = np.array([k % self.fft_size for k in self.data_indices])
        self._pilot_bins = np.array([k % self.fft_size for k in self.pilot_indices])
        self._used_bins = np.array([k % self.fft_size for k in used])
        # LTF values: reuse the legacy +/-1 pattern extended cyclically.
        rng = np.random.default_rng(0x11AC)
        self._ltf_freq = 1.0 - 2.0 * rng.integers(0, 2, self.n_used).astype(float)
        self.modulator = Modulator(entry.bits_per_subcarrier)
        self.scrambler_seed = scrambler_seed
        self.n_cbpss = self.n_data_sc * entry.bits_per_subcarrier  # per stream
        self.n_cbps = self.n_cbpss * self.n_ss
        self.n_dbps = entry.n_dbps(bandwidth_mhz)
        self._n_ltf = N_LTF[self.n_ss]
        p_full = P_HTLTF if self._n_ltf <= 4 else P_VHTLTF
        self._p = p_full[: self.n_ss, : self._n_ltf]

    # -- sizing ------------------------------------------------------------

    def n_symbols(self, psdu_bytes):
        """DATA OFDM symbols for a PSDU of ``psdu_bytes`` bytes."""
        n_bits = 16 + 8 * psdu_bytes + 6
        return int(np.ceil(n_bits / self.n_dbps))

    def n_samples(self, psdu_bytes):
        """Per-antenna waveform length for a PSDU."""
        return (self._n_ltf + self.n_symbols(psdu_bytes)) * self.symbol_samples

    def frame_duration_s(self, psdu_bytes, guard_interval="long"):
        """Air time including the standard's full preamble overhead."""
        preamble_us = self.PREAMBLE_US + 4.0 * self._n_ltf
        sym_us = self._family.symbol_time(guard_interval)
        return (preamble_us + sym_us * self.n_symbols(psdu_bytes)) * 1e-6

    # -- waveform building ---------------------------------------------------

    def _freq_to_time(self, bins):
        return np.fft.ifft(bins, axis=-1) * (self.fft_size / np.sqrt(self.n_used))

    def _time_to_freq(self, samples):
        return np.fft.fft(samples, axis=-1) * (np.sqrt(self.n_used) / self.fft_size)

    def _ofdm_symbol(self, data_carriers):
        """One stream's OFDM symbol (data carriers already scaled)."""
        return self._ofdm_symbols(np.asarray(data_carriers)[None, :])[0]

    def _ofdm_symbols(self, data_carriers):
        """CP-prefixed OFDM symbols for a (n_sym, n_data_sc) carrier block."""
        n_sym = data_carriers.shape[0]
        bins = np.zeros((n_sym, self.fft_size), dtype=np.complex128)
        bins[:, self._data_bins] = data_carriers
        bins[:, self._pilot_bins] = 1.0 / np.sqrt(self.n_ss)
        symbols = self._freq_to_time(bins)
        return np.concatenate([symbols[:, -self.cp :], symbols], axis=1)

    def _ltf_symbols(self, precoders=None):
        """(n_tx, n_ltf * symbol_samples) per-antenna training waveforms.

        When ``precoders`` are supplied (data-subcarrier spatial maps),
        they are applied to the training tones on those subcarriers too,
        so the receiver estimates the *effective* channel H V — exactly
        how closed-loop 11n sounding behaves. Pilot subcarriers keep the
        direct (identity) mapping.

        A precoder may map onto more antennas than the chain's own
        ``n_tx`` (an AP transmitting several users' streams from one
        array); the waveform then has ``precoders.shape[1]`` rows.
        """
        n_out = self.n_tx if precoders is None else int(precoders.shape[1])
        out = np.zeros(
            (n_out, self._n_ltf * self.symbol_samples), dtype=np.complex128
        )
        # Per-used-subcarrier spatial map: identity except on data bins.
        maps = np.tile(np.eye(n_out, self.n_ss, dtype=np.complex128),
                       (self.n_used, 1, 1))
        if precoders is not None:
            used_pos = {b: i for i, b in enumerate(self._used_bins)}
            for c, b in enumerate(self._data_bins):
                maps[used_pos[b]] = precoders[c]
        for n in range(self._n_ltf):
            # Per-subcarrier TX vector: map @ (P column), scaled by LTF tone.
            tx_vec = np.einsum("uts,s->ut", maps, self._p[:, n])
            tx_vec = tx_vec * (self._ltf_freq / np.sqrt(self.n_ss))[:, None]
            bins = np.zeros((n_out, self.fft_size), dtype=np.complex128)
            bins[:, self._used_bins] = tx_vec.T
            sym = self._freq_to_time(bins)
            start = n * self.symbol_samples
            out[:, start + self.cp : start + self.symbol_samples] = sym
            out[:, start : start + self.cp] = sym[:, -self.cp :]
        return out

    # -- stream parser -------------------------------------------------------

    def _parse_streams(self, coded_bits):
        """Round-robin s-bit groups across streams (802.11n stream parser)."""
        s = max(self.mcs.bits_per_subcarrier // 2, 1)
        groups = coded_bits.reshape(-1, s)
        n_groups_per_stream = groups.shape[0] // self.n_ss
        streams = np.empty((self.n_ss, n_groups_per_stream * s),
                           dtype=coded_bits.dtype)
        for k in range(self.n_ss):
            streams[k] = groups[k :: self.n_ss].ravel()
        return streams

    def _deparse_streams(self, streams):
        """Inverse of :meth:`_parse_streams` (operates on soft values too)."""
        s = max(self.mcs.bits_per_subcarrier // 2, 1)
        n_groups_per_stream = streams.shape[1] // s
        out = np.empty(streams.size, dtype=streams.dtype)
        groups = out.reshape(-1, s)
        for k in range(self.n_ss):
            groups[k :: self.n_ss] = streams[k].reshape(n_groups_per_stream, s)
        return out

    # -- TX -------------------------------------------------------------------

    def transmit(self, psdu, precoders=None):
        """Build the (n_tx, n_samples) HT waveform for a PSDU.

        Parameters
        ----------
        psdu : bytes-like
        precoders : array (n_data_sc, n_tx, n_ss), optional
            Per-data-subcarrier spatial mapping (e.g. SVD beamformers).
            Training symbols are precoded identically so the receiver's
            channel estimate covers the effective channel. Identity
            (direct mapping) when omitted.
        """
        psdu = bytes(psdu)
        n_sym = self.n_symbols(len(psdu))
        n_data_bits = n_sym * self.n_dbps
        payload = bits_from_bytes(psdu)
        data = np.concatenate([
            np.zeros(16, dtype=np.int8),
            payload,
            np.zeros(6 + n_data_bits - 16 - payload.size - 6, dtype=np.int8),
        ])
        scrambled = scramble(data, seed=self.scrambler_seed)
        scrambled[16 + payload.size : 22 + payload.size] = 0
        coded = cc.puncture(
            cc.encode(scrambled, terminate=False), rate=self.mcs.code_rate
        )
        streams = self._parse_streams(coded)
        amp = 1.0 / np.sqrt(self.n_ss)
        # Interleave and map every stream and symbol in one shot: the block
        # interleaver permutes each n_cbpss-bit segment independently.
        inter = ht_interleave(
            streams, self.mcs.bits_per_subcarrier, self.bandwidth_mhz
        )
        carriers = self.modulator.modulate(inter).reshape(
            self.n_ss, n_sym, self.n_data_sc
        ) * amp
        if precoders is not None:
            carriers = np.einsum("cts,sic->tic", precoders, carriers)
        n_out = carriers.shape[0]
        data = self._ofdm_symbols(
            carriers.reshape(n_out * n_sym, self.n_data_sc)
        ).reshape(n_out, n_sym * self.symbol_samples)
        return np.concatenate([self._ltf_symbols(precoders), data], axis=1)

    # -- RX -------------------------------------------------------------------

    def estimate_channel(self, ltf_block):
        """Per-used-subcarrier MIMO channel from the HT-LTFs.

        Parameters
        ----------
        ltf_block : array (n_rx, n_ltf * symbol_samples)

        Returns
        -------
        numpy.ndarray of shape (n_used, n_rx, n_ss)
        """
        ltf_block = np.atleast_2d(ltf_block)
        # FFT all (rx, ltf) symbols at once: (n_rx, n_ltf, fft_size).
        body = ltf_block[:, : self._n_ltf * self.symbol_samples].reshape(
            self.n_rx, self._n_ltf, self.symbol_samples
        )[:, :, self.cp :]
        freq = self._time_to_freq(body)
        obs = np.transpose(
            freq[:, :, self._used_bins] / self._ltf_freq, (2, 0, 1)
        )  # (n_used, n_rx, n_ltf)
        # obs = H_eff * P  (per subcarrier);  P P^H = n_ltf I
        h = obs @ self._p.T.conj() / self._n_ltf  # (n_used, n_rx, n_ss)
        return h * np.sqrt(self.n_ss)  # undo the LTF amplitude split

    def receive(self, samples, noise_var, psdu_bytes=None,
                return_details=False):
        """Demodulate an (n_rx, n_samples) waveform back into PSDU bytes.

        Without an HT-SIG header the payload length is inferred from the
        waveform length, which includes the pad region; pass ``psdu_bytes``
        (carried by HT-SIG in the real standard) to truncate exactly.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=np.complex128))
        if samples.shape[0] != self.n_rx:
            raise DemodulationError(
                f"expected {self.n_rx} receive streams, got {samples.shape[0]}"
            )
        min_len = (self._n_ltf + 1) * self.symbol_samples
        if samples.shape[1] < min_len:
            raise DemodulationError("waveform shorter than training + 1 symbol")
        h_all = self.estimate_channel(
            samples[:, : self._n_ltf * self.symbol_samples]
        )
        # Map estimates onto data bins. The estimate includes the 1/sqrt(nss)
        # data amplitude via the sqrt undo above, so fold it back in.
        used_pos = {k: i for i, k in enumerate(self._used_bins)}
        data_rows = np.array([used_pos[b] for b in self._data_bins])
        h_data = h_all[data_rows] / np.sqrt(self.n_ss)  # (n_data_sc, nr, nss)

        n_sym = (samples.shape[1] // self.symbol_samples) - self._n_ltf
        carrier_nv = noise_var * self.n_used / self.fft_size
        cursor = self._n_ltf * self.symbol_samples
        bpsc = self.mcs.bits_per_subcarrier
        # FFT every (rx, symbol) block in one call: (n_sym, n_rx, fft_size).
        blocks = samples[
            :, cursor : cursor + n_sym * self.symbol_samples
        ].reshape(self.n_rx, n_sym, self.symbol_samples)[:, :, self.cp :]
        freq = np.transpose(self._time_to_freq(blocks), (1, 0, 2))
        # The channel is constant over the burst, so each subcarrier's
        # detection filter is computed once and applied to all symbols.
        est_all = np.empty(
            (self.n_data_sc, self.n_ss, n_sym), dtype=np.complex128
        )
        nv_all = np.empty((self.n_data_sc, self.n_ss))
        for c in range(self.n_data_sc):
            y_c = freq[:, :, self._data_bins[c]].T  # (n_rx, n_sym)
            h_c = h_data[c]
            if self.detector == "mmse":
                est, sinr = detect_mmse(y_c, h_c, carrier_nv)
                nv_eff = 1.0 / np.maximum(sinr, 1e-12)
            elif self.detector == "zf":
                est, sinr = detect_zero_forcing(y_c, h_c, carrier_nv)
                nv_eff = 1.0 / np.maximum(sinr, 1e-12)
            else:
                est = detect_ml(y_c, h_c, self.modulator.constellation)
                nv_eff = np.full(self.n_ss, 1e-3)
            est_all[c] = est
            nv_all[c] = nv_eff
        # One soft demap for every (subcarrier, stream, symbol) at once.
        nv_full = np.broadcast_to(nv_all[:, :, None], est_all.shape)
        llrs = self.modulator.demodulate_soft(
            est_all.ravel(), np.ascontiguousarray(nv_full).ravel()
        ).reshape(self.n_data_sc, self.n_ss, n_sym, bpsc)
        # llr_sym[k, i, c*bpsc + j] = llrs[c, k, i, j]
        llr_all = np.transpose(llrs, (1, 2, 0, 3)).reshape(
            self.n_ss, n_sym, self.n_cbpss
        )
        soft_streams = ht_deinterleave(
            llr_all, bpsc, self.bandwidth_mhz
        ).reshape(self.n_ss, n_sym * self.n_cbpss)
        soft = self._deparse_streams(soft_streams)
        decoded = cc.viterbi_decode(
            soft, n_sym * self.n_dbps, rate=self.mcs.code_rate,
            terminated=False,
        )
        descrambled = scramble(decoded, seed=self.scrambler_seed)
        payload_bits = descrambled[16:]
        n_bytes = (payload_bits.size - 6) // 8
        if psdu_bytes is not None:
            if psdu_bytes > n_bytes:
                raise DemodulationError(
                    f"waveform carries at most {n_bytes} bytes, "
                    f"{psdu_bytes} requested"
                )
            n_bytes = psdu_bytes
        psdu = bytes_from_bits(payload_bits[: 8 * n_bytes])
        if return_details:
            return psdu, {"channel": h_data, "n_symbols": n_sym}
        return psdu

    def data_rate_mbps(self, guard_interval="long"):
        """PHY rate for this configuration."""
        return self.mcs.data_rate_mbps(self.bandwidth_mhz, guard_interval)


class VhtPhy(HtPhy):
    """802.11ac VHT MIMO-OFDM transceiver.

    The HT chain with the VHT generation's parameters: MCS 0-9 signalled
    independently of the stream count (1-8 streams), 20/40/80/160 MHz
    tone plans, 256-QAM, and the 8-column LTF mapping matrix for 5-8
    streams. All waveform machinery is inherited — only the generation
    data differs.

    Parameters
    ----------
    mcs : int
        VHT MCS index 0-9.
    spatial_streams : int
        1-8.
    bandwidth_mhz : int
        20, 40, 80 or 160.
    n_rx, detector, scrambler_seed :
        As for :class:`HtPhy`.

    Examples
    --------
    >>> phy = VhtPhy(mcs=8, spatial_streams=2, bandwidth_mhz=80, n_rx=2)
    >>> round(phy.data_rate_mbps("short"), 1)
    780.0
    """

    FAMILY = "VHT"
    #: L-STF + L-LTF + L-SIG + VHT-SIG-A + VHT-STF + VHT-SIG-B
    #: = 8+8+4+8+4+4 us, then the VHT-LTFs.
    PREAMBLE_US = 36.0

    def __init__(self, mcs=0, spatial_streams=1, bandwidth_mhz=20,
                 n_rx=None, detector="mmse", scrambler_seed=0x5D):
        entry = get_family(self.FAMILY).mcs(mcs, spatial_streams)
        self._init_chain(entry, bandwidth_mhz, n_rx, detector,
                         scrambler_seed)
