"""802.11n MIMO physical layer.

The paper identifies MIMO as *the* emerging technology for 802.11: spatial
multiplexing multiplies rate (up to 600 Mbps / 15 bps/Hz), spatial
diversity extends range "several-fold", and closed-loop beamforming
improves both. Each mechanism lives in its own module:

stbc
    Alamouti space-time block coding (transmit diversity).
detection
    Zero-forcing, MMSE and maximum-likelihood spatial-multiplexing
    detectors, plus maximum-ratio combining for receive diversity.
beamforming
    SVD eigen-beamforming with optional water-filling power allocation —
    the closed-loop scheme the paper expects 802.11n to specify.
capacity
    Deterministic, ergodic and outage MIMO channel capacity.
ht
    Complete HT (802.11n-class) and VHT (802.11ac-class) MIMO-OFDM
    transceivers built on the clause-17 OFDM engine with per-stream
    training symbols.
"""

from repro.phy.mimo.beamforming import (
    svd_beamformer,
    water_filling,
)
from repro.phy.mimo.capacity import (
    capacity_bps_hz,
    ergodic_capacity,
    outage_capacity,
)
from repro.phy.mimo.detection import (
    detect_ml,
    detect_mmse,
    detect_zero_forcing,
    maximum_ratio_combine,
)
from repro.phy.mimo.ht import HtPhy, VhtPhy
from repro.phy.mimo.stbc import alamouti_decode, alamouti_encode

__all__ = [
    "svd_beamformer",
    "water_filling",
    "capacity_bps_hz",
    "ergodic_capacity",
    "outage_capacity",
    "detect_ml",
    "detect_mmse",
    "detect_zero_forcing",
    "maximum_ratio_combine",
    "HtPhy",
    "VhtPhy",
    "alamouti_decode",
    "alamouti_encode",
]
