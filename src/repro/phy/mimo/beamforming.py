"""Closed-loop SVD eigen-beamforming.

The paper anticipates that 802.11n "may specify closed loop, transmit side
beamforming ... to improve rate and reach" and notes that the same feedback
enables transmit power control. With channel knowledge at the transmitter,
precoding by the right singular vectors V and combining with U^H turns the
MIMO channel into parallel eigen-channels with gains sigma_k^2; power can
then be water-filled across them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def svd_beamformer(channel):
    """Decompose a channel into eigen-beams.

    Returns
    -------
    dict with keys
        ``precoder`` (Nt, K), ``combiner`` (K, Nr), ``gains`` (K,) —
        singular values sorted descending; K = rank dimensions.
    """
    h = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    u, s, vh = np.linalg.svd(h, full_matrices=False)
    return {
        "precoder": vh.conj().T,  # columns = transmit directions
        "combiner": u.conj().T,  # rows = receive combiners
        "gains": s,
    }


def beamforming_gain_db(channel):
    """SNR gain of single-stream eigen-beamforming over open-loop SISO.

    Equal to sigma_max^2 (in dB) for a channel normalised to unit average
    element power.
    """
    h = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    sigma_max = np.linalg.svd(h, compute_uv=False)[0]
    return float(20.0 * np.log10(max(sigma_max, 1e-30)))


def water_filling(gains, total_power, noise_var=1.0):
    """Water-filling power allocation across eigen-channels.

    Parameters
    ----------
    gains : array of float
        Eigen-channel amplitude gains (singular values sigma_k).
    total_power : float
        Power budget to distribute.
    noise_var : float
        Noise variance per channel.

    Returns
    -------
    numpy.ndarray
        Optimal powers p_k >= 0 summing to ``total_power``.
    """
    gains = np.asarray(gains, dtype=float).ravel()
    if total_power <= 0:
        raise ConfigurationError("total_power must be positive")
    inv_snr = noise_var / np.maximum(gains ** 2, 1e-30)
    order = np.argsort(inv_snr)
    inv_sorted = inv_snr[order]
    # Find the largest active set where the water level exceeds every floor.
    n = gains.size
    powers_sorted = np.zeros(n)
    for active in range(n, 0, -1):
        level = (total_power + inv_sorted[:active].sum()) / active
        if level > inv_sorted[active - 1]:
            powers_sorted[:active] = level - inv_sorted[:active]
            break
    powers = np.zeros(n)
    powers[order] = powers_sorted
    return powers


def beamformed_capacity(channel, snr_linear, waterfill=True):
    """Closed-loop capacity of the channel at total-power SNR ``snr_linear``.

    With water-filling this is the true channel capacity; with equal power
    it is the open-loop-with-precoding rate. Units: bps/Hz.
    """
    h = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    s = np.linalg.svd(h, compute_uv=False)
    gains2 = s ** 2
    if waterfill:
        powers = water_filling(s, total_power=float(snr_linear))
    else:
        k = gains2.size
        powers = np.full(k, float(snr_linear) / k)
    return float(np.sum(np.log2(1.0 + powers * gains2)))


def transmit_power_control_db(channel, target_snr_linear, noise_var=1.0):
    """TX power (dB, relative to unit) needed to hit a target post-combining
    SNR using the dominant eigen-beam.

    Negative values are the power *saving* closed-loop operation permits —
    the paper's "effective transmit power control" opportunity.
    """
    h = np.atleast_2d(np.asarray(channel, dtype=np.complex128))
    sigma_max = np.linalg.svd(h, compute_uv=False)[0]
    if sigma_max < 1e-15:
        raise ConfigurationError("channel is numerically zero")
    required_power = target_snr_linear * noise_var / sigma_max ** 2
    return float(10.0 * np.log10(required_power))
