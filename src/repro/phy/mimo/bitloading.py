"""Adaptive per-subcarrier bit loading.

A closed-loop refinement in the spirit of the paper's beamforming
discussion: with channel knowledge at the transmitter, each subcarrier
(or eigen-channel) carries the densest constellation its SNR supports,
instead of one uniform modulation chosen for the worst tone. Classic
Hughes-Hartogs greedy loading plus a simple threshold loader.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: SNR (dB) each constellation needs for ~1e-5 raw symbol errors.
CONSTELLATION_SNR_DB = {0: -np.inf, 1: 9.6, 2: 12.6, 4: 19.5, 6: 26.5}

_SUPPORTED_BITS = (0, 1, 2, 4, 6)


def threshold_loading(subcarrier_snr_db, margin_db=0.0):
    """Bits per subcarrier: the densest constellation each tone supports."""
    snrs = np.asarray(subcarrier_snr_db, dtype=float).ravel()
    bits = np.zeros(snrs.size, dtype=int)
    for b in _SUPPORTED_BITS[1:]:
        bits[snrs >= CONSTELLATION_SNR_DB[b] + margin_db] = b
    return bits


def greedy_loading(subcarrier_gains, total_power, target_bits,
                   noise_var=1.0):
    """Hughes-Hartogs greedy bit loading.

    Repeatedly grants one more bit to the subcarrier where that bit is
    cheapest in power, until ``target_bits`` are placed or the budget is
    exhausted.

    Parameters
    ----------
    subcarrier_gains : array of float
        Amplitude gains |H_k|.
    total_power : float
        Power budget to distribute.
    target_bits : int
        Bits to place per OFDM symbol.
    noise_var : float

    Returns
    -------
    (bits, powers) : (int array, float array)
        Per-subcarrier constellation sizes and transmit powers. When the
        budget runs out early, fewer than ``target_bits`` are placed.
    """
    gains = np.asarray(subcarrier_gains, dtype=float).ravel()
    if np.any(gains < 0) or total_power <= 0 or target_bits < 0:
        raise ConfigurationError("gains >= 0, power > 0, bits >= 0 required")
    n = gains.size
    bits = np.zeros(n, dtype=int)
    powers = np.zeros(n)
    # Power needed on subcarrier k for b bits: SNR_req(b) * nv / |H_k|^2.
    snr_req = {b: 10 ** (CONSTELLATION_SNR_DB[b] / 10.0)
               for b in _SUPPORTED_BITS[1:]}
    next_step = {0: 1, 1: 2, 2: 4, 4: 6, 6: None}
    spent = 0.0
    placed = 0
    while placed < target_bits:
        best_cost = np.inf
        best_k = -1
        for k in range(n):
            nxt = next_step[bits[k]]
            if nxt is None or gains[k] <= 0:
                continue
            need = snr_req[nxt] * noise_var / gains[k] ** 2
            cost = need - powers[k]
            if cost < best_cost:
                best_cost = cost
                best_k = k
        if best_k < 0 or spent + best_cost > total_power:
            break
        nxt = next_step[bits[best_k]]
        placed += nxt - bits[best_k]
        spent += best_cost
        powers[best_k] += best_cost
        bits[best_k] = nxt
    return bits, powers


def loaded_rate_mbps(bits, symbol_duration_s=4e-6, code_rate=0.75):
    """Data rate of a loading pattern."""
    bits = np.asarray(bits)
    return float(bits.sum() * code_rate / symbol_duration_s / 1e6)


def uniform_vs_loaded(subcarrier_snr_db, margin_db=0.0):
    """Compare uniform (worst-tone) modulation with per-tone loading.

    Returns a dict with bits/symbol under both policies; the gap is the
    frequency-selectivity loss the closed loop recovers.
    """
    snrs = np.asarray(subcarrier_snr_db, dtype=float).ravel()
    loaded = threshold_loading(snrs, margin_db)
    worst = threshold_loading(np.array([snrs.min()]), margin_db)[0]
    return {
        "loaded_bits_per_symbol": int(loaded.sum()),
        "uniform_bits_per_symbol": int(worst * snrs.size),
        "gain": float(loaded.sum() / max(worst * snrs.size, 1)),
    }
