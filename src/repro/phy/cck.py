"""Complementary Code Keying — the 802.11b high-rate PHY (5.5 / 11 Mbps).

CCK replaced the Barker spreader when the FCC's 10 dB processing-gain rule
was relaxed: the 8-chip complementary codewords keep a DSSS-like spectral
signature while carrying 4 or 8 bits per symbol, lifting spectral
efficiency to 0.5 bps/Hz — the fivefold step the paper describes.

A CCK codeword is built from four phases:

    c = (e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)}, -e^{j(p1+p4)},
         e^{j(p1+p2+p3)},    e^{j(p1+p3)},    -e^{j(p1+p2)},   e^{j(p1)})

At 11 Mbps, (p2, p3, p4) carry 6 bits (QPSK each) and p1 carries 2 bits
differentially. At 5.5 Mbps, p2/p4 carry one bit each with p3 = 0.

The receiver is the maximum-likelihood bank-of-correlators: each received
8-chip block is correlated against all base codewords (p1 = 0) and the
codeword/quadrant pair with the largest magnitude wins.

Simplification vs the full standard: the even/odd-symbol pi rotation of p1
is omitted (it only shifts the constellation, not error performance).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ConfigurationError, DemodulationError

CHIPS_PER_SYMBOL = 8
CHIP_RATE_HZ = 11e6
SYMBOL_RATE_HZ = CHIP_RATE_HZ / CHIPS_PER_SYMBOL  # 1.375 Msymbol/s

#: QPSK dibit -> phase (Gray), used for p1 (differential) and p2..p4 (11 Mbps).
_QPSK_PHASES = {(0, 0): 0.0, (0, 1): np.pi / 2, (1, 1): np.pi, (1, 0): -np.pi / 2}
_QPSK_BITS = {0: (0, 0), 1: (0, 1), 2: (1, 1), 3: (1, 0)}  # quadrant -> dibit


def cck_codeword(p1, p2, p3, p4):
    """The 8-chip CCK codeword for phases (p1, p2, p3, p4)."""
    return np.array(
        [
            np.exp(1j * (p1 + p2 + p3 + p4)),
            np.exp(1j * (p1 + p3 + p4)),
            np.exp(1j * (p1 + p2 + p4)),
            -np.exp(1j * (p1 + p4)),
            np.exp(1j * (p1 + p2 + p3)),
            np.exp(1j * (p1 + p3)),
            -np.exp(1j * (p1 + p2)),
            np.exp(1j * p1),
        ]
    )


def _phases_11mbps(bits6):
    """(p2, p3, p4) for the six non-differential bits at 11 Mbps."""
    d = tuple(int(b) for b in bits6)
    return (
        _QPSK_PHASES[(d[0], d[1])],
        _QPSK_PHASES[(d[2], d[3])],
        _QPSK_PHASES[(d[4], d[5])],
    )


def _phases_5mbps(bits2):
    """(p2, p3, p4) for the two non-differential bits at 5.5 Mbps.

    Per 802.11b: p2 = d2*pi + pi/2, p3 = 0, p4 = d3*pi.
    """
    d2, d3 = (int(b) for b in bits2)
    return (d2 * np.pi + np.pi / 2, 0.0, d3 * np.pi)


class CckPhy:
    """802.11b CCK modem at 5.5 or 11 Mbps with an ML correlation receiver.

    Parameters
    ----------
    rate_mbps : float
        5.5 or 11.
    """

    SUPPORTED_RATES = (5.5, 11)

    def __init__(self, rate_mbps=11):
        if rate_mbps not in self.SUPPORTED_RATES:
            raise ConfigurationError(
                f"CCK rate must be 5.5 or 11 Mbps, got {rate_mbps}"
            )
        self.rate_mbps = rate_mbps
        self.bits_per_symbol = 8 if rate_mbps == 11 else 4
        self._codebook, self._codebook_bits = self._build_codebook()

    def _build_codebook(self):
        """All base codewords (p1 = 0) and the data bits they encode."""
        n_free_bits = self.bits_per_symbol - 2
        words = []
        labels = []
        for bits in itertools.product((0, 1), repeat=n_free_bits):
            if self.rate_mbps == 11:
                p2, p3, p4 = _phases_11mbps(bits)
            else:
                p2, p3, p4 = _phases_5mbps(bits)
            words.append(cck_codeword(0.0, p2, p3, p4))
            labels.append(bits)
        return np.array(words), np.array(labels, dtype=np.int8)

    @property
    def codebook(self):
        """The (M, 8) matrix of base codewords (copy)."""
        return self._codebook.copy()

    # -- TX ---------------------------------------------------------------

    def modulate(self, bits):
        """Map bits to a unit-power chip stream (8 chips/symbol).

        A reference symbol (all-zero data, p1 = 0) is prepended to seed the
        differential p1 chain.
        """
        bits = np.asarray(bits).astype(int).ravel()
        if bits.size % self.bits_per_symbol != 0:
            raise ConfigurationError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        chips = [cck_codeword(0.0, *(_phases_11mbps([0] * 6)
                                     if self.rate_mbps == 11
                                     else _phases_5mbps([0, 0])))]
        p1 = 0.0
        for group in groups:
            p1 = p1 + _QPSK_PHASES[(int(group[0]), int(group[1]))]
            if self.rate_mbps == 11:
                p2, p3, p4 = _phases_11mbps(group[2:])
            else:
                p2, p3, p4 = _phases_5mbps(group[2:])
            chips.append(cck_codeword(p1, p2, p3, p4))
        return np.concatenate(chips)

    # -- RX ---------------------------------------------------------------

    def demodulate(self, chips):
        """ML correlation detection returning the recovered bits."""
        chips = np.asarray(chips, dtype=np.complex128).ravel()
        if chips.size % CHIPS_PER_SYMBOL != 0:
            raise DemodulationError(
                f"chip count {chips.size} is not a multiple of 8"
            )
        blocks = chips.reshape(-1, CHIPS_PER_SYMBOL)
        if blocks.shape[0] < 2:
            raise DemodulationError("need the reference symbol plus data")
        # Correlate every block against every base codeword.
        corr = blocks @ self._codebook.conj().T  # (n_blocks, M)
        best = np.argmax(np.abs(corr), axis=1)
        peak = corr[np.arange(blocks.shape[0]), best]  # complex, phase = p1
        bits_out = []
        for i in range(1, blocks.shape[0]):
            delta = peak[i] * np.conj(peak[i - 1])
            quadrant = int(np.round(np.angle(delta) / (np.pi / 2))) % 4
            bits_out.extend(_QPSK_BITS[quadrant])
            bits_out.extend(self._codebook_bits[best[i]])
        return np.array(bits_out, dtype=np.int8)

    def n_chips(self, n_bits):
        """Chip-stream length for ``n_bits`` input bits."""
        return (n_bits // self.bits_per_symbol + 1) * CHIPS_PER_SYMBOL

    def spectral_efficiency(self, bandwidth_hz=20e6):
        """Peak spectral efficiency in bps/Hz (0.55 for 11 Mbps in 20 MHz)."""
        return self.rate_mbps * 1e6 / bandwidth_hz
