"""The 802.11 frequency-hopping spread-spectrum PHY (1 and 2 Mbps).

FHSS was the alternative spread-spectrum option in the original standard:
79 one-MHz channels in the 2.4 GHz ISM band, pseudo-random hop patterns,
and 2-level (1 Mbps) or 4-level (2 Mbps) GFSK modulation.

Included here:

* the standard's hop-sequence family ``f_x(i) = (b(i) + x) mod 79``,
  approximated with a maximally scrambled base permutation;
* a complex-baseband GFSK modem (Gaussian pulse shaping, FM modulation,
  phase-discriminator detection);
* a hop-collision model for co-located networks, the mechanism by which
  FHSS shares spectrum.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve

from repro.errors import ConfigurationError, DemodulationError
from repro.utils.rng import as_generator

N_CHANNELS = 79
CHANNEL_SPACING_HZ = 1e6
MIN_HOP_DISTANCE = 6  # the standard requires consecutive hops >= 6 channels


def hop_sequence(pattern_index, n_hops, rng_seed=2005):
    """A pseudo-random 79-channel hop sequence.

    Sequences in the same family (same ``rng_seed``) with different
    ``pattern_index`` are cyclic shifts of one base permutation, mirroring
    the standard's ``(b(i) + x) mod 79`` family structure, so any two
    sequences collide on exactly one channel index per cycle.
    """
    rng = np.random.default_rng(rng_seed)
    base = _min_distance_permutation(rng)
    seq = (base + pattern_index) % N_CHANNELS
    reps = int(np.ceil(n_hops / N_CHANNELS))
    return np.tile(seq, reps)[:n_hops]


def _min_distance_permutation(rng, max_attempts=500):
    """Random permutation of 0..78 whose consecutive steps are >= 6 apart."""
    for _ in range(max_attempts):
        perm = rng.permutation(N_CHANNELS)
        gaps = np.abs(np.diff(perm))
        if np.all(gaps >= MIN_HOP_DISTANCE):
            return perm
    # Fallback: deterministic large-stride pattern (stride 23 is coprime
    # with 79 and always >= 6 away modulo wrap-around).
    return (23 * np.arange(N_CHANNELS)) % N_CHANNELS


def collision_probability(n_networks):
    """Probability a given hop suffers a co-channel collision.

    With ``n`` co-located, unsynchronised networks each occupying one of the
    79 channels per dwell, the probability that at least one other network
    lands on our channel is ``1 - (1 - 1/79)^(n-1)``.
    """
    if n_networks < 1:
        raise ConfigurationError("need at least one network")
    return 1.0 - (1.0 - 1.0 / N_CHANNELS) ** (n_networks - 1)


def gaussian_pulse(bt=0.5, samples_per_symbol=8, span=4):
    """Gaussian frequency-pulse (unit area) for GFSK with bandwidth-time bt."""
    if bt <= 0:
        raise ConfigurationError(f"BT product must be positive, got {bt}")
    t = np.arange(-span / 2, span / 2, 1.0 / samples_per_symbol)
    sigma = np.sqrt(np.log(2.0)) / (2.0 * np.pi * bt)
    pulse = np.exp(-(t ** 2) / (2.0 * sigma ** 2))
    return pulse / pulse.sum()


class GfskModem:
    """2- or 4-level GFSK at one hop channel (complex baseband).

    Parameters
    ----------
    levels : int
        2 (1 Mbps) or 4 (2 Mbps).
    modulation_index : float
        Peak frequency deviation as a fraction of the symbol rate; 0.32 is
        the 802.11 FH value for 2GFSK.
    samples_per_symbol : int
    bt : float
        Gaussian filter bandwidth-time product (802.11 uses 0.5).
    """

    def __init__(self, levels=2, modulation_index=0.32,
                 samples_per_symbol=8, bt=0.5):
        if levels not in (2, 4):
            raise ConfigurationError(f"GFSK levels must be 2 or 4, got {levels}")
        self.levels = levels
        self.bits_per_symbol = 1 if levels == 2 else 2
        self.modulation_index = modulation_index
        self.sps = int(samples_per_symbol)
        self.bt = bt
        self._pulse = gaussian_pulse(bt=bt, samples_per_symbol=self.sps)

    def _symbols(self, bits):
        bits = np.asarray(bits).astype(int).ravel()
        if bits.size % self.bits_per_symbol != 0:
            raise ConfigurationError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        if self.levels == 2:
            return 2.0 * bits - 1.0  # -1, +1
        pairs = bits.reshape(-1, 2)
        value = pairs[:, 0] * 2 + pairs[:, 1]
        # Gray-coded 4 levels: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3
        level_of = np.array([-3.0, -1.0, 3.0, 1.0])
        return level_of[value]

    def modulate(self, bits):
        """GFSK-modulate bits into a unit-envelope complex baseband signal."""
        symbols = self._symbols(bits)
        impulses = np.zeros(symbols.size * self.sps)
        impulses[:: self.sps] = symbols
        freq = fftconvolve(impulses, self._pulse, mode="full")
        # The pulse has unit area, so each +/-1 symbol contributes a total
        # phase of pi * h (cycles: h/2) — the CPFSK definition of the
        # modulation index.
        phase = 2.0 * np.pi * (self.modulation_index / 2.0) * np.cumsum(freq)
        return np.exp(1j * phase)

    def demodulate(self, signal, n_bits):
        """Discriminator (phase-difference) detection."""
        signal = np.asarray(signal, dtype=np.complex128).ravel()
        inst_freq = np.angle(signal[1:] * np.conj(signal[:-1]))
        # Integrate-and-dump over a window centred on each pulse peak.
        delay = len(self._pulse) // 2
        n_symbols = n_bits // self.bits_per_symbol
        decisions = np.empty(n_symbols)
        for k in range(n_symbols):
            start = max(delay + k * self.sps - self.sps // 2, 0)
            stop = start + self.sps
            if stop > inst_freq.size:
                raise DemodulationError("signal too short for requested bits")
            decisions[k] = inst_freq[start:stop].mean()
        # Per-sample frequency of a lone +/-1 symbol, accounting for the
        # fraction of the Gaussian pulse mass inside the decision window.
        centre = len(self._pulse) // 2
        window_mass = self._pulse[
            max(centre - self.sps // 2, 0) : centre + self.sps // 2
        ].sum()
        scale = np.pi * self.modulation_index * window_mass / self.sps
        normalised = decisions / scale
        if self.levels == 2:
            return (normalised > 0).astype(np.int8)
        edges = np.array([-2.0, 0.0, 2.0])
        idx = np.digitize(normalised, edges)  # 0..3 for -3,-1,+1,+3
        bits_of_level = {0: (0, 0), 1: (0, 1), 2: (1, 1), 3: (1, 0)}
        out = []
        for i in idx:
            out.extend(bits_of_level[int(i)])
        return np.array(out, dtype=np.int8)


class FhssPhy:
    """FHSS link abstraction: GFSK modem + hop pattern + collision model.

    ``transmit_dwell``/``receive_dwell`` move one dwell period's bits; a
    collision (another network on the same channel) is modelled as a jamming
    interferer added at the given interference-to-signal ratio.
    """

    def __init__(self, rate_mbps=1, pattern_index=0):
        if rate_mbps not in (1, 2):
            raise ConfigurationError(f"FHSS rate must be 1 or 2, got {rate_mbps}")
        self.rate_mbps = rate_mbps
        self.pattern_index = pattern_index
        self.modem = GfskModem(levels=2 if rate_mbps == 1 else 4)

    def channel_for_hop(self, hop_index):
        """Channel number used on dwell ``hop_index``."""
        return int(hop_sequence(self.pattern_index, hop_index + 1)[-1])

    def transmit_dwell(self, bits):
        """Modulate one dwell's bits."""
        return self.modem.modulate(bits)

    def receive_dwell(self, signal, n_bits, collided=False,
                      interference_db=0.0, rng=None):
        """Demodulate one dwell, optionally jammed by a colliding network."""
        rng = as_generator(rng)
        signal = np.asarray(signal, dtype=np.complex128)
        if collided:
            # A colliding GFSK burst is well modelled as a constant-envelope
            # random-phase interferer at the same centre frequency.
            isr = 10.0 ** (interference_db / 10.0)
            phase = rng.uniform(0, 2 * np.pi, signal.size)
            signal = signal + np.sqrt(isr) * np.exp(1j * np.cumsum(
                0.3 * rng.normal(size=signal.size)) + 1j * phase[0])
        return self.modem.demodulate(signal, n_bits)
