"""OFDMA resource-unit model (802.11ax-style scheduling).

802.11ax subdivides a channel into resource units (RUs) of 26 to 2x996
tones and serves one user per RU simultaneously. This module models that
scheduler analytically: RU tone counts and per-bandwidth availability
follow the published HE tone plans, and per-RU data rates use the HE MCS
ladder on the RU's data tones with the 12.8 us symbol clock — the same
``Nss * Nbpsc * Rcode * Nsd / Tsym`` formula as the full-channel tables.

No OFDMA waveform chain is built (see DESIGN.md); the model feeds the
generational-trend experiments and gives the registry's 11ax entry its
multi-user story.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.standards.mcs import get_family

#: Data tones per RU size (RU size counts total tones incl. pilots).
RU_DATA_TONES = {
    26: 24,
    52: 48,
    106: 102,
    242: 234,
    484: 468,
    996: 980,
    1992: 1960,
}

#: How many RUs of each size fit in a channel, per the HE tone plans.
RU_COUNTS = {
    20: {26: 9, 52: 4, 106: 2, 242: 1},
    40: {26: 18, 52: 8, 106: 4, 242: 2, 484: 1},
    80: {26: 37, 52: 16, 106: 8, 242: 4, 484: 2, 996: 1},
    160: {26: 74, 52: 32, 106: 16, 242: 8, 484: 4, 996: 2, 1992: 1},
}


def ru_data_rate_mbps(ru_tones, mcs, spatial_streams=1,
                      guard_interval="short"):
    """Data rate of one HE resource unit in Mbps."""
    if ru_tones not in RU_DATA_TONES:
        raise ConfigurationError(
            f"RU size must be one of {sorted(RU_DATA_TONES)} tones, "
            f"got {ru_tones}"
        )
    fam = get_family("HE")
    entry = fam.mcs(mcs, spatial_streams)
    n_dbps = int(round(
        entry.spatial_streams * entry.bits_per_subcarrier
        * entry.code_rate_value * RU_DATA_TONES[ru_tones]
    ))
    return n_dbps / fam.symbol_time(guard_interval)


@dataclass(frozen=True)
class RuAllocation:
    """One user's resource-unit assignment."""

    user: int
    ru_tones: int
    mcs: int
    spatial_streams: int
    data_rate_mbps: float


def largest_equal_ru(bandwidth_mhz, n_users):
    """The largest RU size that gives every user its own RU."""
    if bandwidth_mhz not in RU_COUNTS:
        raise ConfigurationError(
            f"bandwidth must be one of {sorted(RU_COUNTS)} MHz, "
            f"got {bandwidth_mhz}"
        )
    counts = RU_COUNTS[bandwidth_mhz]
    fitting = [size for size, count in counts.items() if count >= n_users]
    if not fitting:
        raise ConfigurationError(
            f"{bandwidth_mhz} MHz fits at most {max(counts.values())} "
            f"users ({n_users} requested)"
        )
    return max(fitting)


def schedule(bandwidth_mhz, user_mcs, spatial_streams=1,
             guard_interval="short"):
    """Assign equal-size RUs to users and compute per-user rates.

    Parameters
    ----------
    bandwidth_mhz : int
        20, 40, 80 or 160.
    user_mcs : sequence of int
        One HE MCS index per user (the scheduler's link adaptation
        decision for that user's RU).

    Returns
    -------
    list of :class:`RuAllocation`, one per user.
    """
    user_mcs = list(user_mcs)
    if not user_mcs:
        raise ConfigurationError("need at least one user")
    ru = largest_equal_ru(bandwidth_mhz, len(user_mcs))
    return [
        RuAllocation(
            user=u,
            ru_tones=ru,
            mcs=mcs,
            spatial_streams=spatial_streams,
            data_rate_mbps=ru_data_rate_mbps(
                ru, mcs, spatial_streams, guard_interval
            ),
        )
        for u, mcs in enumerate(user_mcs)
    ]


def aggregate_rate_mbps(allocations):
    """Summed downlink rate of an RU allocation."""
    return sum(a.data_rate_mbps for a in allocations)
