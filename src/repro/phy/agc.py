"""Automatic gain control: scaling the waveform into the ADC's window.

The front-end piece between the antenna and :mod:`repro.phy.quantization`:
measure power over the STF (that is what the short training field is for),
apply a gain that puts the signal at the chosen back-off below the ADC's
full scale, and report the settled gain. Together with the quantiser this
completes a realistic receive front end for the OFDM PHYs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DemodulationError


class AutomaticGainControl:
    """One-shot (preamble-settled) AGC.

    Parameters
    ----------
    full_scale : float
        The ADC's per-rail full-scale amplitude.
    backoff_db : float
        Target RMS this many dB below full scale (headroom for PAPR;
        9-12 dB suits OFDM, ~3 dB suits constant-envelope signals).
    measure_samples : int
        Samples used for the power estimate (the 160-sample STF default).
    """

    def __init__(self, full_scale=1.0, backoff_db=10.0,
                 measure_samples=160):
        if full_scale <= 0:
            raise ConfigurationError("full scale must be positive")
        if measure_samples < 8:
            raise ConfigurationError("need at least 8 measure samples")
        self.full_scale = float(full_scale)
        self.backoff_db = float(backoff_db)
        self.measure_samples = int(measure_samples)

    def settle(self, samples):
        """Measure the leading samples; returns the linear gain to apply."""
        samples = np.asarray(samples, dtype=np.complex128).ravel()
        if samples.size < self.measure_samples:
            raise DemodulationError("waveform shorter than the AGC window")
        power = float(np.mean(
            np.abs(samples[: self.measure_samples]) ** 2
        ))
        if power <= 0:
            raise DemodulationError("no signal power in the AGC window")
        target_rms = self.full_scale * 10.0 ** (-self.backoff_db / 20.0)
        return target_rms / np.sqrt(power)

    def apply(self, samples):
        """Settle on the preamble and scale the whole waveform.

        Returns
        -------
        (scaled, gain_db) : (numpy.ndarray, float)
        """
        gain = self.settle(samples)
        return np.asarray(samples) * gain, float(20.0 * np.log10(gain))

    def clip_fraction(self, samples):
        """Fraction of rail samples that would clip after this AGC."""
        scaled, _ = self.apply(samples)
        over = ((np.abs(scaled.real) > self.full_scale)
                | (np.abs(scaled.imag) > self.full_scale))
        return float(np.mean(over))
