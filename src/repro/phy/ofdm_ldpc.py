"""OFDM with LDPC coding — the 802.11n advanced coding option at waveform
level.

The paper expects LDPC to extend range over the mandatory convolutional
code. :class:`LdpcOfdmPhy` keeps the clause-17 OFDM air interface
(preambles, 48 data subcarriers, pilots, channel estimation) but carries
LDPC codewords (n = 648/1296/1944) instead of the convolutional stream, so
the two code families can be compared on identical waveforms
(benchmark E7 runs the coded-BER comparison; this class closes the loop at
PPDU level).

Framing: the PSDU is scrambled, split into k-bit blocks (zero-padded at
the tail), each encoded to an n-bit codeword, and the codeword stream is
mapped across OFDM symbols. No SIGNAL field — both ends share the
configuration, and the true PSDU length is passed to ``receive`` (or
inferred as the maximum that fits).
"""

from __future__ import annotations

import numpy as np

from repro.constants import OFDM_DATA_SUBCARRIERS, OFDM_SYMBOL_SAMPLES
from repro.errors import ConfigurationError, DemodulationError
from repro.phy.ldpc import LdpcCode
from repro.phy.modulation import Modulator
from repro.phy.ofdm import (
    PREAMBLE_SAMPLES,
    _DATA_BINS,
    _USED_BINS,
    long_training_field,
    short_training_field,
)
from repro.phy.ofdm import OfdmPhy as _LegacyOfdm
from repro.phy.scrambler import scramble
from repro.utils.bits import bits_from_bytes, bytes_from_bits


class LdpcOfdmPhy:
    """802.11a-style OFDM carrying LDPC codewords.

    Parameters
    ----------
    bits_per_subcarrier : int
        1, 2, 4 or 6.
    block_length : int
        LDPC n: 648, 1296 or 1944.
    code_rate : str
        "1/2", "2/3", "3/4" or "5/6".
    decoder : str
        "min-sum" or "sum-product".
    max_iterations : int
        BP iteration cap.
    scrambler_seed : int
    """

    def __init__(self, bits_per_subcarrier=2, block_length=648,
                 code_rate="1/2", decoder="min-sum", max_iterations=40,
                 scrambler_seed=0x5D, rng=0):
        self.modulator = Modulator(bits_per_subcarrier)
        self.code = LdpcCode.from_standard(block_length, code_rate, rng=rng)
        self.decoder = decoder
        self.max_iterations = int(max_iterations)
        self.scrambler_seed = scrambler_seed
        self.n_cbps = OFDM_DATA_SUBCARRIERS * bits_per_subcarrier
        # Shared helpers from the legacy PHY (symbol assembly, FFT scaling).
        self._legacy = _LegacyOfdm(
            {1: 6, 2: 12, 4: 24, 6: 48}[bits_per_subcarrier]
        )

    # -- sizing ---------------------------------------------------------

    def n_blocks(self, psdu_bytes):
        """LDPC codewords needed for a PSDU."""
        return int(np.ceil(max(8 * psdu_bytes, 1) / self.code.k))

    def n_symbols(self, psdu_bytes):
        """OFDM symbols needed for a PSDU."""
        coded_bits = self.n_blocks(psdu_bytes) * self.code.n
        return int(np.ceil(coded_bits / self.n_cbps))

    def data_rate_mbps(self):
        """Nominal PHY rate of this configuration."""
        return (self.n_cbps * self.code.rate) / 4.0  # bits per 4 us symbol

    def frame_duration_s(self, psdu_bytes):
        """PPDU air time (preamble + data symbols)."""
        n_samples = (PREAMBLE_SAMPLES
                     + self.n_symbols(psdu_bytes) * OFDM_SYMBOL_SAMPLES)
        return n_samples / 20e6

    # -- TX ---------------------------------------------------------------

    def transmit(self, psdu):
        """Build the PPDU waveform for a PSDU (bytes-like)."""
        psdu = bytes(psdu)
        if not psdu:
            raise ConfigurationError("PSDU must be non-empty")
        payload = scramble(bits_from_bytes(psdu), seed=self.scrambler_seed)
        n_blocks = self.n_blocks(len(psdu))
        padded = np.zeros(n_blocks * self.code.k, dtype=np.int8)
        padded[: payload.size] = payload
        # All codewords in one GF(2) matmul (exact integer arithmetic).
        coded = self.code.encode(padded.reshape(n_blocks, self.code.k)).ravel()
        n_sym = self.n_symbols(len(psdu))
        stream = np.zeros(n_sym * self.n_cbps, dtype=np.int8)
        stream[: coded.size] = coded
        carriers = self.modulator.modulate(stream).reshape(
            n_sym, OFDM_DATA_SUBCARRIERS
        )
        data = self._legacy._assemble_symbols(
            carriers, np.arange(1, n_sym + 1)
        ).ravel()
        return np.concatenate(
            [short_training_field(), long_training_field(), data]
        )

    # -- RX ---------------------------------------------------------------

    def receive(self, samples, noise_var, psdu_bytes=None,
                return_details=False):
        """Demodulate a PPDU back into PSDU bytes.

        ``psdu_bytes`` bounds the payload (otherwise the maximum carried by
        the waveform is returned, including pad bytes).
        """
        samples = np.asarray(samples, dtype=np.complex128).ravel()
        if samples.size < PREAMBLE_SAMPLES + OFDM_SYMBOL_SAMPLES:
            raise DemodulationError("waveform shorter than preamble + 1 sym")
        h = self._legacy.estimate_channel(samples[160:320])
        if np.any(np.abs(h[_USED_BINS]) < 1e-12):
            raise DemodulationError("channel estimate has a null")
        carrier_nv = noise_var * len(_USED_BINS) / 64
        n_sym = (samples.size - PREAMBLE_SAMPLES) // OFDM_SYMBOL_SAMPLES
        cursor = PREAMBLE_SAMPLES
        blocks = samples[
            cursor : cursor + n_sym * OFDM_SYMBOL_SAMPLES
        ].reshape(n_sym, OFDM_SYMBOL_SAMPLES)
        freq = self._legacy._fft_symbols(blocks)
        eq = freq[:, _DATA_BINS] / h[_DATA_BINS][None, :]
        nv = carrier_nv / np.abs(h[_DATA_BINS]) ** 2
        llrs = self.modulator.demodulate_soft(
            eq.ravel(), np.ascontiguousarray(np.broadcast_to(nv, eq.shape)).ravel()
        )
        n_blocks = (n_sym * self.n_cbps) // self.code.n
        if n_blocks < 1:
            raise DemodulationError("waveform carries no complete codeword")
        info_bits = []
        converged_all = True
        iterations = []
        for b in range(n_blocks):
            block_llrs = llrs[b * self.code.n : (b + 1) * self.code.n]
            decoded, converged, iters = self.code.decode(
                block_llrs, max_iterations=self.max_iterations,
                algorithm=self.decoder,
            )
            converged_all &= converged
            iterations.append(iters)
            info_bits.append(self.code.extract_info(decoded))
        bits = scramble(np.concatenate(info_bits),
                        seed=self.scrambler_seed)
        max_bytes = bits.size // 8
        n_bytes = max_bytes if psdu_bytes is None else int(psdu_bytes)
        if n_bytes > max_bytes:
            raise DemodulationError(
                f"waveform carries at most {max_bytes} bytes"
            )
        psdu = bytes_from_bits(bits[: 8 * n_bytes])
        if return_details:
            return psdu, {
                "converged": converged_all,
                "iterations": iterations,
                "n_blocks": n_blocks,
            }
        return psdu
