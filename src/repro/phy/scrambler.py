"""The 802.11 frame-synchronous scrambler (clause 17.3.5.4).

Generator polynomial ``S(x) = x^7 + x^4 + 1``. The same operation both
scrambles and descrambles: XOR the data with the PRBS produced by the
seeded 7-bit LFSR. 802.11a transmits a 7-bit nonzero seed in the SERVICE
field; the all-ones seed is the customary default.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def scrambler_sequence(length, seed=0x7F):
    """Return ``length`` bits of the x^7+x^4+1 PRBS for a 7-bit ``seed``."""
    if not 0 < seed < 128:
        raise ConfigurationError(f"scrambler seed must be 1..127, got {seed}")
    state = [(seed >> i) & 1 for i in range(7)]  # state[0] = x^1 ... state[6] = x^7
    out = np.empty(int(length), dtype=np.int8)
    for i in range(int(length)):
        feedback = state[6] ^ state[3]  # x^7 xor x^4
        out[i] = feedback
        state = [feedback] + state[:6]
    return out


def scramble(bits, seed=0x7F):
    """Scramble (or descramble) a bit array with the 802.11 PRBS."""
    bits = np.asarray(bits).astype(np.int8)
    return bits ^ scrambler_sequence(bits.size, seed=seed)


def descramble(bits, seed=0x7F):
    """Alias of :func:`scramble`; the operation is an involution."""
    return scramble(bits, seed=seed)


def sequence_period(seed=0x7F):
    """Period of the PRBS (127 for any nonzero seed; useful for tests)."""
    seq = scrambler_sequence(4 * 127, seed=seed)
    for period in range(1, 2 * 127 + 1):
        if np.array_equal(seq[:-period], seq[period:]):
            return period
    return -1
