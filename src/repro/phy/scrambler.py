"""The 802.11 frame-synchronous scrambler (clause 17.3.5.4).

Generator polynomial ``S(x) = x^7 + x^4 + 1``. The same operation both
scrambles and descrambles: XOR the data with the PRBS produced by the
seeded 7-bit LFSR. 802.11a transmits a 7-bit nonzero seed in the SERVICE
field; the all-ones seed is the customary default.

The polynomial is primitive, so the PRBS from any nonzero seed is
periodic with period 127. The LFSR is therefore stepped exactly once per
seed (127 scalar steps, cached) and every request is served by tiling
that base period — the per-bit loop never runs on a hot path.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError

#: Period of the x^7 + x^4 + 1 PRBS for any nonzero seed.
PERIOD = 127


@lru_cache(maxsize=None)
def _base_period(seed):
    """One 127-bit period of the PRBS for ``seed``, as immutable bytes."""
    state = [(seed >> i) & 1 for i in range(7)]  # state[0] = x^1 ... x^7
    out = bytearray(PERIOD)
    for i in range(PERIOD):
        feedback = state[6] ^ state[3]  # x^7 xor x^4
        out[i] = feedback
        state = [feedback] + state[:6]
    return bytes(out)


def scrambler_sequence(length, seed=0x7F):
    """Return ``length`` bits of the x^7+x^4+1 PRBS for a 7-bit ``seed``."""
    if not 0 < seed < 128:
        raise ConfigurationError(f"scrambler seed must be 1..127, got {seed}")
    length = int(length)
    base = np.frombuffer(_base_period(seed), dtype=np.int8)
    reps = -(-length // PERIOD)  # ceil division
    return np.tile(base, max(reps, 1))[:length]


def scramble(bits, seed=0x7F):
    """Scramble (or descramble) a bit array with the 802.11 PRBS.

    Accepts 1-D bit vectors or 2-D batches (one row per frame); every row
    is XORed with the same seeded PRBS, matching a per-frame scramble.
    """
    bits = np.asarray(bits).astype(np.int8)
    return bits ^ scrambler_sequence(bits.shape[-1], seed=seed)


def descramble(bits, seed=0x7F):
    """Alias of :func:`scramble`; the operation is an involution."""
    return scramble(bits, seed=seed)


def sequence_period(seed=0x7F):
    """Period of the PRBS (127 for any nonzero seed; useful for tests)."""
    seq = scrambler_sequence(4 * 127, seed=seed)
    for period in range(1, 2 * 127 + 1):
        if np.array_equal(seq[:-period], seq[period:]):
            return period
    return -1
