"""The 802.11 K=7 convolutional code with Viterbi decoding and puncturing.

The mother code is the industry-standard rate-1/2 constraint-length-7 code
with generators g0 = 133 (octal) and g1 = 171 (octal). Rates 2/3, 3/4 and
5/6 are obtained by puncturing exactly as 802.11a/n specify.

The Viterbi decoder is vectorised across the 64 trellis states and accepts
either hard bits or soft LLRs (positive LLR favouring bit 0); punctured
positions are treated as erasures (LLR 0).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import CodingError, ConfigurationError
from repro.phy import kernels

CONSTRAINT_LENGTH = 7
N_STATES = 64
G0 = 0o133
G1 = 0o171

#: Puncturing masks as (keep_a, keep_b) pairs over the pattern period.
PUNCTURE_PATTERNS = {
    "1/2": ((1, 1),),
    "2/3": ((1, 1), (1, 0)),
    "3/4": ((1, 1), (1, 0), (0, 1)),
    "5/6": ((1, 1), (1, 0), (0, 1), (1, 0), (0, 1)),
}

#: Numeric value of each supported code rate.
CODE_RATES = {"1/2": 0.5, "2/3": 2.0 / 3.0, "3/4": 0.75, "5/6": 5.0 / 6.0}


def _parity(values):
    """Bitwise parity of each element of an integer array."""
    values = np.asarray(values, dtype=np.int64)
    result = np.zeros_like(values)
    shift = 0
    while np.any(values >> shift):
        result ^= (values >> shift) & 1
        shift += 1
    return result


def _build_tables():
    """Output bits and decoded input for every (state, input) transition.

    The 7-bit window is ``(input << 6) | state`` with the window's MSB being
    the newest bit; the next state is ``window >> 1``.
    """
    states = np.arange(N_STATES)
    outputs_a = np.empty((N_STATES, 2), dtype=np.int8)
    outputs_b = np.empty((N_STATES, 2), dtype=np.int8)
    next_state = np.empty((N_STATES, 2), dtype=np.int64)
    for bit in (0, 1):
        window = (bit << 6) | states
        outputs_a[:, bit] = _parity(window & G0)
        outputs_b[:, bit] = _parity(window & G1)
        next_state[:, bit] = window >> 1
    return outputs_a, outputs_b, next_state


_OUT_A, _OUT_B, _NEXT_STATE = _build_tables()

# Predecessor structure: state ns has predecessors (ns & 31) << 1 | {0, 1},
# and the input bit consumed on the way in is ns >> 5.
_PRED0 = (np.arange(N_STATES) & 31) << 1
_PRED1 = _PRED0 | 1
_INPUT_OF_STATE = np.arange(N_STATES) >> 5

# Expected (a, b) output bits on the transition into each next-state from
# each of its two predecessors.
_EXP_A = np.empty((N_STATES, 2), dtype=np.int8)
_EXP_B = np.empty((N_STATES, 2), dtype=np.int8)
for _ns in range(N_STATES):
    _bit = _ns >> 5
    _EXP_A[_ns, 0] = _OUT_A[_PRED0[_ns], _bit]
    _EXP_B[_ns, 0] = _OUT_B[_PRED0[_ns], _bit]
    _EXP_A[_ns, 1] = _OUT_A[_PRED1[_ns], _bit]
    _EXP_B[_ns, 1] = _OUT_B[_PRED1[_ns], _bit]
_SIGN_A = 1.0 - 2.0 * _EXP_A  # +1 for expected bit 0, -1 for expected bit 1
_SIGN_B = 1.0 - 2.0 * _EXP_B

# Tap delays of each generator: output bit i is the XOR of input bits
# x[i - d] for every delay d in the generator's tap set. This is the
# sliding-window identity that lets encode() run as pure shifted XORs
# instead of stepping the shift register bit by bit.
_TAPS_A = tuple(6 - p for p in range(6, -1, -1) if (G0 >> p) & 1)
_TAPS_B = tuple(6 - p for p in range(6, -1, -1) if (G1 >> p) & 1)


def encode(bits, terminate=True):
    """Encode at the rate-1/2 mother code.

    Parameters
    ----------
    bits : array of 0/1
        Information bits: a 1-D vector, or a 2-D batch (one row per
        independent frame, each starting from the zero state).
    terminate : bool
        Append six zero tail bits to drive the encoder back to state 0
        (802.11 always does this).

    Returns
    -------
    numpy.ndarray
        Coded bits, interleaved as ``a0 b0 a1 b1 ...`` along the last
        axis (int8, same leading batch shape as the input).
    """
    bits = np.asarray(bits).astype(np.int8)
    if bits.ndim == 1:
        return _encode_2d(bits[None, :], terminate)[0]
    if bits.ndim != 2:
        raise CodingError(f"bits must be 1-D or 2-D, got shape {bits.shape}")
    return _encode_2d(bits, terminate)


def _encode_2d(bits, terminate):
    """Vectorised encoder over a (batch, n_bits) block of frames."""
    batch, n = bits.shape
    if terminate:
        n += 6
    # Six leading zeros stand in for the all-zero initial encoder state;
    # terminating tail zeros are implicit in the padded length.
    padded = np.zeros((batch, n + 6), dtype=np.int8)
    padded[:, 6 : 6 + bits.shape[1]] = bits
    coded = np.zeros((batch, 2 * n), dtype=np.int8)
    a = coded[:, 0::2]
    b = coded[:, 1::2]
    for d in _TAPS_A:
        a ^= padded[:, 6 - d : 6 - d + n]
    for d in _TAPS_B:
        b ^= padded[:, 6 - d : 6 - d + n]
    return coded


def puncture(coded_bits, rate="1/2"):
    """Delete coded bits according to the 802.11 puncturing pattern.

    Applies along the last axis, so a 2-D batch of frames punctures all
    rows at once.
    """
    coded_bits = np.asarray(coded_bits)
    mask = _puncture_mask(coded_bits.shape[-1], rate)
    return coded_bits[..., mask]


def depuncture_llrs(llrs, rate="1/2", n_mother_bits=None):
    """Re-insert zeros (erasures) where ``puncture`` deleted bits.

    ``llrs`` holds one soft value per *transmitted* coded bit; the result
    has one value per *mother-code* bit.

    Parameters
    ----------
    llrs : array of float
        Soft values for the surviving (transmitted) coded bits.
    rate : str
        Puncturing rate the transmitter used.
    n_mother_bits : int, optional
        Exact mother-code length to reconstruct. If omitted, the smallest
        even length whose puncture mask keeps exactly ``len(llrs)`` bits
        is used.
    """
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown code rate {rate!r}")
    llrs = np.asarray(llrs, dtype=float).ravel()
    if n_mother_bits is None:
        pattern = np.array(PUNCTURE_PATTERNS[rate]).ravel().astype(bool)
        n_mother_bits = 0
        kept = 0
        while kept < llrs.size or n_mother_bits % 2:
            if pattern[n_mother_bits % pattern.size]:
                kept += 1
            n_mother_bits += 1
    mask = _puncture_mask(n_mother_bits, rate)
    n_kept = int(mask.sum())
    if n_kept != llrs.size:
        raise CodingError(
            f"{llrs.size} soft bits cannot fill a {n_mother_bits}-bit mother "
            f"block at rate {rate} (needs {n_kept})"
        )
    out = np.zeros(n_mother_bits, dtype=float)
    out[mask] = llrs
    return out


def _puncture_mask(n_coded, rate):
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown code rate {rate!r}")
    return _cached_puncture_mask(int(n_coded), rate)


@lru_cache(maxsize=512)
def _cached_puncture_mask(n_coded, rate):
    pattern = np.array(PUNCTURE_PATTERNS[rate]).ravel().astype(bool)
    reps = int(np.ceil(n_coded / pattern.size))
    mask = np.tile(pattern, reps)[:n_coded]
    mask.setflags(write=False)
    return mask


def coded_length(n_info_bits, rate="1/2", terminate=True):
    """Number of transmitted coded bits for ``n_info_bits`` information bits."""
    n = n_info_bits + (6 if terminate else 0)
    mother = 2 * n
    mask = _puncture_mask(mother, rate)
    return int(mask.sum())


@lru_cache(maxsize=512)
def _decode_plan(n_info_bits, rate, terminated):
    """Cached per-(length, rate, termination) decode tables.

    Everything ``viterbi_decode`` needs beyond the soft bits themselves
    — the expected input length, the trellis depth and the depuncture
    scatter mask — is a pure function of these three arguments, so
    repeated decodes of the same frame geometry (every packet of a
    Monte-Carlo run) do no table construction work at all. A
    micro-benchmark assertion in ``tests/test_convolutional.py`` keeps
    it that way.
    """
    expected = coded_length(n_info_bits, rate=rate, terminate=terminated)
    n_steps = n_info_bits + (6 if terminated else 0)
    keep = _puncture_mask(2 * n_steps, rate)
    return expected, n_steps, keep


def viterbi_decode(soft_bits, n_info_bits, rate="1/2", terminated=True,
                   kernels_backend=None):
    """Maximum-likelihood sequence decoding of the (133, 171) code.

    Parameters
    ----------
    soft_bits : array of float
        One value per transmitted coded bit. For soft decisions pass LLRs
        (positive favouring bit 0); for hard decisions pass ``1 - 2*bit``.
    n_info_bits : int
        Number of information bits to recover (excluding tail).
    rate : str
        "1/2", "2/3", "3/4" or "5/6".
    terminated : bool
        Whether the encoder appended six tail zeros (forces the traceback
        to end in state 0).
    kernels_backend : str or None
        Kernel backend override (``"numpy"`` / ``"numba"``); ``None``
        follows :func:`repro.phy.kernels.resolve_backend`. Both
        backends are bit-identical.

    Returns
    -------
    numpy.ndarray
        Decoded information bits (int8). A 2-D ``(batch, n_coded)`` input
        decodes every frame in one trellis sweep and returns a
        ``(batch, n_info_bits)`` array.
    """
    soft = np.asarray(soft_bits, dtype=float)
    if soft.ndim == 1:
        return _viterbi_2d(soft[None, :], n_info_bits, rate, terminated,
                           kernels_backend)[0]
    if soft.ndim != 2:
        raise CodingError(f"soft bits must be 1-D or 2-D, got shape {soft.shape}")
    return _viterbi_2d(soft, n_info_bits, rate, terminated, kernels_backend)


def _viterbi_2d(soft, n_info_bits, rate, terminated, backend=None):
    """One add-compare-select sweep shared by a whole batch of frames."""
    expected, n_steps, keep = _decode_plan(int(n_info_bits), rate,
                                           bool(terminated))
    if soft.shape[1] != expected:
        raise CodingError(
            f"expected {expected} coded bits for {n_info_bits} info bits at "
            f"rate {rate}, got {soft.shape[1]}"
        )
    batch = soft.shape[0]
    mother = np.zeros((batch, 2 * n_steps))
    mother[:, keep] = soft
    llr_a = mother[:, 0::2]
    llr_b = mother[:, 1::2]

    # The ACS sweep and traceback run on the selected kernels backend;
    # see repro.phy.kernels for the (bit-identical) implementations.
    decisions, metrics = kernels.viterbi_forward(llr_a, llr_b,
                                                 _SIGN_A, _SIGN_B,
                                                 backend=backend)
    if terminated:
        state = np.zeros(batch, dtype=np.int64)
    else:
        state = np.argmax(metrics, axis=1)
    decoded = kernels.viterbi_traceback(decisions, state, backend=backend)
    return decoded[:, :n_info_bits]


def encode_punctured(bits, rate="1/2", terminate=True):
    """Convenience: encode then puncture in one call."""
    return puncture(encode(bits, terminate=terminate), rate=rate)


def hard_to_soft(bits):
    """Map hard bits {0,1} to the +/-1 soft convention used by the decoder."""
    return 1.0 - 2.0 * np.asarray(bits, dtype=float)


def free_distance(rate="1/2"):
    """Free distance of the (possibly punctured) code, from the literature.

    Used by the analysis module for union-bound BER estimates.
    """
    known = {"1/2": 10, "2/3": 6, "3/4": 5, "5/6": 4}
    if rate not in known:
        raise ConfigurationError(f"unknown code rate {rate!r}")
    return known[rate]
