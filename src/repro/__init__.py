"""repro — reproduction of "Wireless LAN: Past, Present, and Future"
(Keith Holt, DATE 2005).

A full-stack 802.11 simulation library covering every generation the
paper surveys:

* ``repro.phy`` — baseband PHYs: DSSS/FHSS (802.11), CCK (802.11b),
  OFDM (802.11a/g), MIMO-OFDM with STBC/beamforming (802.11n), plus the
  complete FEC chain (scrambler, convolutional/Viterbi, LDPC).
* ``repro.channel`` — AWGN, Rayleigh/Ricean fading, TGn-style multipath,
  dual-slope path loss.
* ``repro.standards`` — rate tables, MCS tables, timing for each
  generation.
* ``repro.mac`` — DCF CSMA/CA discrete-event simulation, the Bianchi
  model, 802.11 power save.
* ``repro.mesh`` — mesh topologies, airtime-metric routing, coverage.
* ``repro.coop`` — cooperative diversity (DF/AF relaying, outage theory).
* ``repro.power`` — PAPR, PA back-off, MIMO chain power, platform budgets.
* ``repro.core`` — the link-level engine and the paper's evolution
  framework.
* ``repro.campaign`` — declarative parameter sweeps run on a process
  pool with per-point seed substreams and a persistent results store.
* ``repro.obs`` — structured tracing and run telemetry: nestable
  spans, counters, per-process JSONL traces, ``repro trace report``.
* ``repro.analysis`` — closed-form BER/capacity/link-budget yardsticks.

Quick start::

    from repro import LinkSimulator
    result = LinkSimulator("ofdm-54", "awgn", rng=0).run(snr_db=30)
    print(result.per, result.goodput_mbps)
"""

from repro.analysis.linkbudget import LinkBudget
from repro.campaign import CampaignSpec, ResultsStore, run_campaign
from repro.core.evolution import evolution_report, format_evolution_table
from repro.core.link import LinkResult, LinkSimulator
from repro.errors import (
    CodingError,
    ConfigurationError,
    DemodulationError,
    LinkBudgetError,
    ReproError,
    SimulationError,
)
from repro.mac.dcf import DcfSimulator
from repro.mesh.network import MeshNetwork
from repro.standards.registry import GENERATIONS, get_standard

__version__ = "1.0.0"

__all__ = [
    "CampaignSpec",
    "LinkBudget",
    "ResultsStore",
    "run_campaign",
    "evolution_report",
    "format_evolution_table",
    "LinkResult",
    "LinkSimulator",
    "CodingError",
    "ConfigurationError",
    "DemodulationError",
    "LinkBudgetError",
    "ReproError",
    "SimulationError",
    "DcfSimulator",
    "MeshNetwork",
    "GENERATIONS",
    "get_standard",
    "__version__",
]
