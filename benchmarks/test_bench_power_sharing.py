"""E14 — cooperative power sharing (claim C17).

Paper: cooperative/mesh schemes "could 'share' some of the power burden
with willing third party devices that are less power constrained, such as
a device that is drawing power from an electrical outlet".

A battery device's transmit energy per delivered bit: direct to the
destination vs via a mains-powered relay at the midpoint.
"""

from repro.coop.power_sharing import cooperative_energy_per_bit
from repro.power.energy import battery_life_hours

DISTANCES = [30.0, 45.0, 60.0, 75.0, 100.0]


def _sweep():
    return {d: cooperative_energy_per_bit(d, relay_fraction=0.5)
            for d in DISTANCES}


def test_bench_power_sharing(benchmark, report):
    results = benchmark(_sweep)
    lines = ["distance | direct nJ/bit | via-relay nJ/bit | battery saving"]
    for d, r in results.items():
        direct = r["direct_j_per_bit"]
        coop = r["cooperative_j_per_bit"]
        direct_s = f"{direct * 1e9:8.1f}" if direct else " (no link)"
        saving = (f"{r['saving_ratio']:.1f}x"
                  if r["saving_ratio"] else "link rescued")
        lines.append(f"  {d:4.0f} m |   {direct_s}   |     "
                     f"{coop * 1e9:8.1f}     |  {saving}")
    lines.append("the relay both saves battery energy and extends reach "
                 "past the direct link's death")
    report("E14: cooperative power sharing (mains-powered relay)", lines)
    assert results[60.0]["saving_ratio"] > 1.5
    assert results[100.0]["direct_j_per_bit"] is None
    assert results[100.0]["cooperative_j_per_bit"] is not None


def test_bench_battery_life_impact(benchmark, report):
    def run():
        # 5 Wh handheld battery, streaming 2 Mbps.
        direct = cooperative_energy_per_bit(60.0, 0.5)
        p_direct = direct["direct_j_per_bit"] * 2e6
        p_coop = direct["cooperative_j_per_bit"] * 2e6
        return (battery_life_hours(5.0, p_direct),
                battery_life_hours(5.0, p_coop))

    life_direct, life_coop = benchmark(run)
    report(
        "E14b: handheld battery life streaming 2 Mbps at 60 m",
        [f"direct         : {life_direct:6.1f} h",
         f"via mains relay: {life_coop:6.1f} h "
         f"({life_coop / life_direct:.1f}x)"],
    )
    assert life_coop > life_direct
