"""E3 — DSSS and CCK rate ladder vs SNR (claims C1, C3).

Paper: 802.11b raised the rate from 2 to 11 Mbps (0.1 -> 0.5 bps/Hz) by
replacing Barker spreading with CCK. The waterfall shows each rate's SNR
cost: robustness decreases monotonically up the ladder, so 11 Mbps needs
~8-10 dB more SNR than 1 Mbps.
"""

from repro.campaign import builtin_campaign, run_campaign

SPEC = builtin_campaign("e3-dsss-cck")
PHYS = list(SPEC.factors["phy"])
SNRS = list(SPEC.factors["snr_db"])


def _waterfall():
    # The sweep goes through the campaign orchestrator: one point per
    # (phy, snr) with an independent seed substream, so this table is
    # bit-identical to `python -m repro campaign run e3-dsss-cck` at any
    # worker count.
    result = run_campaign(SPEC)
    table = {phy: [None] * len(SNRS) for phy in PHYS}
    for rec in result.records:
        table[rec["params"]["phy"]][SNRS.index(rec["params"]["snr_db"])] = \
            rec["metrics"]["per"]
    return table


def test_bench_dsss_cck_waterfall(benchmark, report):
    table = benchmark.pedantic(_waterfall, rounds=1, iterations=1)
    lines = ["SNR (dB):        " + "".join(f"{s:>8.0f}" for s in SNRS)]
    for phy in PHYS:
        lines.append(
            f"{phy:<12} PER " + "".join(f"{p:>8.2f}" for p in table[phy])
        )
    lines.append("(higher rates need more SNR: the rate-vs-robustness trade)")
    report("E3: 802.11/802.11b PER waterfalls (2 -> 11 Mbps ladder)", lines)
    # Every PHY eventually works...
    for phy in PHYS:
        assert table[phy][-1] <= 0.1, phy
    # ...and the most robust mode at harsh SNR is the slowest one.
    assert table["dsss-1"][1] <= table["cck-11"][1]
    benchmark.extra_info["per_table"] = {k: list(map(float, v))
                                         for k, v in table.items()}
