"""E3 — DSSS and CCK rate ladder vs SNR (claims C1, C3).

Paper: 802.11b raised the rate from 2 to 11 Mbps (0.1 -> 0.5 bps/Hz) by
replacing Barker spreading with CCK. The waterfall shows each rate's SNR
cost: robustness decreases monotonically up the ladder, so 11 Mbps needs
~8-10 dB more SNR than 1 Mbps.
"""

import numpy as np

from repro.core.link import LinkSimulator

PHYS = ["dsss-1", "dsss-2", "cck-5.5", "cck-11"]
SNRS = [-2.0, 2.0, 6.0, 10.0, 14.0]


def _waterfall():
    table = {}
    for phy in PHYS:
        sim = LinkSimulator(phy, "awgn", rng=42)
        table[phy] = [sim.run(snr, n_packets=25, payload_bytes=50).per
                      for snr in SNRS]
    return table


def test_bench_dsss_cck_waterfall(benchmark, report):
    table = benchmark.pedantic(_waterfall, rounds=1, iterations=1)
    lines = ["SNR (dB):        " + "".join(f"{s:>8.0f}" for s in SNRS)]
    for phy in PHYS:
        lines.append(
            f"{phy:<12} PER " + "".join(f"{p:>8.2f}" for p in table[phy])
        )
    lines.append("(higher rates need more SNR: the rate-vs-robustness trade)")
    report("E3: 802.11/802.11b PER waterfalls (2 -> 11 Mbps ladder)", lines)
    # Every PHY eventually works...
    for phy in PHYS:
        assert table[phy][-1] <= 0.1, phy
    # ...and the most robust mode at harsh SNR is the slowest one.
    assert table["dsss-1"][1] <= table["cck-11"][1]
    benchmark.extra_info["per_table"] = {k: list(map(float, v))
                                         for k, v in table.items()}
