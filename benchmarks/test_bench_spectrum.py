"""E20 (supplementary) — the 5 GHz spectrum opening, quantified.

Paper: "the large commercial success of wireless LAN products based on
these early standards motivated regulatory bodies in many countries around
the world to open additional spectrum at 5 GHz". More non-overlapping
channels means a dense deployment can actually be frequency planned: a
3x3 AP grid on 2.4 GHz (3 channels) vs 5 GHz (8 channels).
"""

from repro.mesh.spectrum import assign_channels, deployment_capacity
from repro.mesh.topology import grid_positions


def _compare():
    positions = grid_positions(3, 60.0)
    results = {}
    for band in ("2.4GHz", "5GHz", "5GHz-extended"):
        results[band] = deployment_capacity(
            positions, band, n_clients=250, area_side_m=160.0, rng=6,
        )
    return results


def test_bench_spectrum_opening(benchmark, report):
    results = benchmark.pedantic(_compare, rounds=1, iterations=1)
    lines = ["band          | channels | reuse conflicts | mean client rate "
             "| outage"]
    for band, r in results.items():
        lines.append(
            f"{band:<14}|    {r['n_channels']:2d}    |       {r['conflicts']:2d}"
            f"        |   {r['mean_rate_mbps']:5.1f} Mbps    "
            f"|  {100 * r['outage_fraction']:4.1f}%"
        )
    lines.append("9 APs, 60 m grid: 3 channels force co-channel reuse; the "
                 "5 GHz plans remove it (the paper's spectrum payoff)")
    report("E20: channel reuse under the 2.4 vs 5 GHz band plans", lines)
    assert results["5GHz"]["mean_rate_mbps"] > (
        results["2.4GHz"]["mean_rate_mbps"]
    )
    assert results["5GHz"]["conflicts"] <= results["2.4GHz"]["conflicts"]
    _, conflicts3 = assign_channels(grid_positions(3, 60.0), 3)
    assert conflicts3 > 0


def test_bench_erp_protection(benchmark, report):
    """E20b: the other 2.4 GHz tax — ERP protection when OFDM (802.11g)
    shares a cell with legacy 802.11b radios."""
    from repro.mac.protection import coexistence_study

    rows = benchmark(coexistence_study)
    lines = [f"{label:<36} {value:5.1f} Mbps" for label, value in rows]
    lines.append("one legacy client forces DSSS-rate protection around "
                 "every OFDM frame; g still beats pure b, but the 54 Mbps "
                 "sticker is long gone")
    report("E20b: 802.11g/b coexistence (ERP protection)", lines)
    values = dict(rows)
    assert values["mixed cell, RTS/CTS @1 Mbps"] < 0.5 * values[
        "pure 802.11g (no protection)"
    ]
    assert values["mixed cell, RTS/CTS @1 Mbps"] > values[
        "pure 802.11b @11 Mbps"
    ]
