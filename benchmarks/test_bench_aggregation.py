"""E23 (supplementary) — the MAC throughput ceiling and aggregation.

The paper charts PHY rates to 600 Mbps; this bench shows why the MAC had
to change to deliver them: with one ACK per 1500-byte frame, goodput
saturates near 65 Mbps *no matter how fast the PHY gets*. A-MPDU
aggregation (what 802.11n actually shipped) restores linear scaling.
"""

from repro.mac.aggregation import (
    aggregation_study,
    throughput_ceiling_mbps,
)


def test_bench_aggregation_ceiling(benchmark, report):
    rows = benchmark(aggregation_study)
    ceiling = throughput_ceiling_mbps()
    lines = ["PHY rate | single-frame | A-MPDU x8 | A-MPDU x32 | "
             "single eff."]
    for rate, single, agg8, agg32, eff in rows:
        lines.append(
            f"  {rate:5.0f}  |   {single:5.1f}      |  {agg8:6.1f}   |"
            f"  {agg32:6.1f}    |   {eff:5.1%}"
        )
    lines.append(f"single-frame ceiling (infinite PHY rate): "
                 f"{ceiling:.1f} Mbps — preamble+IFS+ACK never shrink")
    lines.append("aggregation amortises the overhead: the paper's 600 Mbps "
                 "becomes ~446 Mbps of goodput instead of ~58")
    report("E23: MAC throughput ceiling vs frame aggregation", lines)
    by_rate = {r[0]: r for r in rows}
    assert by_rate[600.0][1] < 0.12 * 600.0      # single-frame collapse
    assert by_rate[600.0][3] > 0.70 * 600.0       # aggregation recovery
    assert all(r[1] <= ceiling + 1e-9 for r in rows)
