"""E8 — closed-loop beamforming gain and TX power control (claims C9, C16).

Paper: "closed loop, transmit side beamforming may be specified in order
to improve rate and reach" and "closed loop beamforming techniques could
allow for effective transmit power control".
"""

import numpy as np

from repro.analysis.range import range_ratio_from_gain_db
from repro.phy.mimo.beamforming import (
    beamformed_capacity,
    beamforming_gain_db,
    transmit_power_control_db,
)
from repro.phy.mimo.capacity import capacity_bps_hz, rayleigh_channel


def _study(n_draws=500):
    rng = np.random.default_rng(12)
    gains = {}
    cap_gain = {}
    power_saving = {}
    for n in (2, 4):
        g = []
        dc = []
        ps = []
        for _ in range(n_draws):
            h = rayleigh_channel(n, n, rng)
            g.append(beamforming_gain_db(h))
            dc.append(beamformed_capacity(h, 10.0, waterfill=True)
                      - capacity_bps_hz(h, 10.0))
            # Power to hit 15 dB post-combining SNR vs blind SISO-style TX.
            ps.append(15.0 - transmit_power_control_db(h, 10 ** 1.5))
        gains[n] = float(np.mean(g))
        cap_gain[n] = float(np.mean(dc))
        power_saving[n] = float(np.mean(ps))
    return gains, cap_gain, power_saving


def test_bench_beamforming(benchmark, report):
    gains, cap_gain, power_saving = benchmark.pedantic(
        _study, rounds=1, iterations=1
    )
    lines = []
    for n in (2, 4):
        lines.append(
            f"{n}x{n}: eigen-beam SNR gain {gains[n]:4.1f} dB -> range x"
            f"{range_ratio_from_gain_db(gains[n]):4.2f}; "
            f"capacity gain {cap_gain[n]:+4.2f} bps/Hz @10 dB; "
            f"TX power saved {power_saving[n]:4.1f} dB"
        )
    lines.append("paper: beamforming 'improves rate and reach' and enables "
                 "TX power control")
    report("E8: closed-loop SVD beamforming", lines)
    assert gains[2] > 2.0 and gains[4] > 5.0
    assert power_saving[4] > power_saving[2] > 0.0
    benchmark.extra_info["gain_db"] = {str(k): round(v, 2)
                                       for k, v in gains.items()}
