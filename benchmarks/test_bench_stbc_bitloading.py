"""E21 (supplementary) — waveform-level transmit diversity and closed-loop
bit loading.

Two refinements of the paper's MIMO story measured on real waveforms:
Alamouti-OFDM vs SISO OFDM packet survival in per-packet Rayleigh fading
(the E6 range mechanism, now end to end), and per-subcarrier bit loading
vs uniform modulation on frequency-selective channels.
"""

import numpy as np

from repro.errors import DemodulationError
from repro.channel.models import tgn_channel
from repro.phy.mimo.bitloading import uniform_vs_loaded
from repro.phy.mimo.stbc_ofdm import StbcOfdmPhy
from repro.phy.ofdm import OfdmPhy


def _stbc_vs_siso(snr_db=13.0, n_trials=20):
    rng = np.random.default_rng(14)
    msg = bytes(rng.integers(0, 256, 100, dtype=np.uint8).tolist())
    nv = 10 ** (-snr_db / 10)
    siso = OfdmPhy(6)
    stbc = StbcOfdmPhy(6, n_rx=1)
    fails = {"siso": 0, "stbc 2x1": 0}
    for _ in range(n_trials):
        h = (rng.normal() + 1j * rng.normal()) / np.sqrt(2)
        wave = siso.transmit(msg)
        y = h * wave + np.sqrt(nv / 2) * (
            rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)
        )
        try:
            fails["siso"] += siso.receive(y, nv) != msg
        except DemodulationError:
            fails["siso"] += 1
        tx = stbc.transmit(msg)
        h2 = (rng.normal(size=(1, 2)) + 1j * rng.normal(size=(1, 2)))
        h2 /= np.sqrt(2)
        y2 = h2 @ tx + np.sqrt(nv / 2) * (
            rng.normal(size=(1, tx.shape[1]))
            + 1j * rng.normal(size=(1, tx.shape[1]))
        )
        try:
            fails["stbc 2x1"] += stbc.receive(y2, nv,
                                              psdu_bytes=len(msg)) != msg
        except DemodulationError:
            fails["stbc 2x1"] += 1
    return {k: v / n_trials for k, v in fails.items()}


def _loading_study():
    rng = np.random.default_rng(15)
    gains = {}
    for model in ("B", "D", "F"):
        tdl = tgn_channel(model, rng=rng)
        study = []
        for _ in range(60):
            freq = tdl.frequency_response(tdl.draw())[:, 0, 0]
            snr_db = 22.0 + 20 * np.log10(np.maximum(np.abs(freq), 1e-6))
            study.append(uniform_vs_loaded(snr_db[:48])["gain"])
        gains[model] = float(np.mean(study))
    return gains


def test_bench_stbc_waveform(benchmark, report):
    fails = benchmark.pedantic(_stbc_vs_siso, rounds=1, iterations=1)
    report(
        "E21a: Alamouti-OFDM vs SISO OFDM in per-packet Rayleigh (13 dB)",
        [f"SISO OFDM 6 Mbps : PER {fails['siso']:.2f}",
         f"2x1 STBC OFDM    : PER {fails['stbc 2x1']:.2f}",
         "the E6 fade-margin collapse, demonstrated on full PPDUs"],
    )
    assert fails["stbc 2x1"] <= fails["siso"]


def test_bench_bit_loading(benchmark, report):
    gains = benchmark.pedantic(_loading_study, rounds=1, iterations=1)
    report(
        "E21b: per-subcarrier bit loading vs uniform modulation",
        [f"TGn-{m}: loading carries {g:.2f}x the bits of worst-tone uniform"
         for m, g in gains.items()]
        + ["gain grows with frequency selectivity (delay spread B < D < F)"],
    )
    assert gains["F"] >= gains["B"] >= 1.0
