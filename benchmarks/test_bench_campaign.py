"""Campaign orchestrator: determinism, caching, and parallel scaling.

Not a paper claim — this validates the execution layer the experiment
sweeps ride on (see ISSUE 1 acceptance criteria):

* the E3 DSSS/CCK waterfall campaign at ``--workers 4`` is bit-identical
  to ``--workers 1`` for the same base seed;
* an immediate re-run is 100% cache hits and executes zero points;
* the E6 MIMO-range campaign's wall clock at 4 workers vs serial. The
  speedup assertion needs real cores: on hosts with fewer than 4 CPUs
  the measurement is still reported, but only bit-identity is enforced
  (a 1-CPU container cannot exhibit wall-clock parallel speedup).
"""

import os
import tempfile
import time

from repro.campaign import ResultsStore, builtin_campaign, run_campaign

_CPUS = os.cpu_count() or 1


def test_bench_campaign_bitwise_and_cache(benchmark, report):
    spec = builtin_campaign("e3-dsss-cck")

    def run_twice_two_ways():
        with tempfile.TemporaryDirectory() as d1, \
                tempfile.TemporaryDirectory() as d2:
            serial = run_campaign(spec, workers=1, store=ResultsStore(d1))
            parallel = run_campaign(spec, workers=4, store=ResultsStore(d2))
            rerun = run_campaign(spec, workers=4, store=ResultsStore(d2))
        return serial, parallel, rerun

    serial, parallel, rerun = benchmark.pedantic(run_twice_two_ways,
                                                 rounds=1, iterations=1)
    identical = serial.metrics_by_index() == parallel.metrics_by_index()
    report(
        "E-campaign: orchestrator determinism + cache (e3-dsss-cck grid)",
        [f"points: {serial.n_points} (4 PHYs x 5 SNRs)",
         f"workers=4 bit-identical to workers=1: {identical}",
         f"re-run: {rerun.n_cached}/{rerun.n_points} cached "
         f"({100 * rerun.cache_hit_rate:.0f}%), "
         f"{rerun.n_executed} executed",
         f"serial {serial.wall_time_s:.2f}s vs 4-worker "
         f"{parallel.wall_time_s:.2f}s on {_CPUS} CPU(s)"],
        metrics=[
            {"name": "serial_wall", "value": serial.wall_time_s,
             "units": "s"},
            {"name": "parallel_wall", "value": parallel.wall_time_s,
             "units": "s"},
            {"name": "rerun_cache_hit_rate",
             "value": rerun.cache_hit_rate, "units": "fraction"},
        ],
    )
    assert identical
    assert rerun.n_executed == 0
    assert rerun.cache_hit_rate == 1.0
    # Distinct pool pids prove the points really ran out-of-process.
    fresh_workers = {r["worker"] for r in parallel.records}
    assert os.getpid() not in fresh_workers


def test_bench_campaign_parallel_speedup(benchmark, report):
    spec = builtin_campaign("e6-mimo-range")

    def measure():
        t0 = time.perf_counter()
        serial = run_campaign(spec, workers=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_campaign(spec, workers=4)
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    speedup = t_serial / t_parallel if t_parallel else float("inf")
    report(
        "E-campaign-b: parallel scaling (e6-mimo-range, 4 points)",
        [f"host CPUs: {_CPUS}",
         f"serial: {t_serial:.2f}s | 4 workers: {t_parallel:.2f}s | "
         f"speedup {speedup:.2f}x",
         f"bit-identical: "
         f"{serial.metrics_by_index() == parallel.metrics_by_index()}",
         "(>=2x expected with >=4 real cores; single-CPU hosts cannot "
         "show wall-clock speedup)"],
        metrics=[
            {"name": "serial_wall", "value": t_serial, "units": "s"},
            {"name": "parallel_wall", "value": t_parallel, "units": "s"},
            {"name": "speedup", "value": speedup, "units": "x"},
        ],
    )
    assert serial.metrics_by_index() == parallel.metrics_by_index()
    if _CPUS >= 4:
        assert speedup >= 2.0, f"expected >=2x at 4 workers, got {speedup:.2f}x"
