"""E5 — MIMO spatial-multiplexing rate scaling (claim C5).

Paper: 802.11n will reach "potentially as high as 600 Mbps in a 40 MHz
channel" at ~15 bps/Hz, a fivefold step over 802.11a/g, via MIMO spatial
multiplexing. The bench walks the MCS table (1-4 streams, 20/40 MHz) and
verifies the real transceiver moves bits at MCS indices across the range.
"""

import numpy as np

from repro.phy.mimo.capacity import ergodic_capacity
from repro.phy.mimo.ht import HtPhy
from repro.standards.mcs import HT_MCS_TABLE, ht_data_rate_mbps


def _rate_table():
    rows = []
    for streams in (1, 2, 3, 4):
        mcs = 8 * streams - 1  # top MCS of each stream count
        rows.append((
            streams,
            ht_data_rate_mbps(mcs, 20, "long"),
            ht_data_rate_mbps(mcs, 40, "short"),
        ))
    return rows


def _transceiver_check():
    rng = np.random.default_rng(3)
    msg = bytes(rng.integers(0, 256, 100, dtype=np.uint8).tolist())
    ok = {}
    for mcs in (7, 15, 31):
        phy = HtPhy(mcs=mcs, bandwidth_mhz=40, n_rx=mcs // 8 + 1)
        n_rx, n_tx = phy.n_rx, phy.n_tx
        tx = phy.transmit(msg)
        taps = (rng.normal(size=(n_rx, n_tx, 2))
                + 1j * rng.normal(size=(n_rx, n_tx, 2))) / 2.0
        y = np.zeros((n_rx, tx.shape[1]), dtype=complex)
        for r in range(n_rx):
            for t in range(n_tx):
                y[r] += np.convolve(tx[t], taps[r, t])[: tx.shape[1]]
        nv = 10 ** (-32 / 10)
        y += np.sqrt(nv / 2) * (rng.normal(size=y.shape)
                                + 1j * rng.normal(size=y.shape))
        ok[mcs] = phy.receive(y, nv, psdu_bytes=len(msg)) == msg
    return ok


def test_bench_mimo_rate_scaling(benchmark, report):
    rows = benchmark(_rate_table)
    ok = _transceiver_check()
    lines = ["streams | 20 MHz LGI | 40 MHz SGI"]
    for streams, r20, r40 in rows:
        lines.append(f"   {streams}    | {r20:7.1f}    | {r40:7.1f} Mbps")
    lines.append(f"MCS31 @ 40 MHz SGI = {rows[-1][2]:.0f} Mbps "
                 f"= {rows[-1][2] / 40:.1f} bps/Hz  (paper: 600 / 15)")
    lines.append(f"waveform-level round trips (multipath): {ok}")
    report("E5: 802.11n MIMO rate scaling to 600 Mbps", lines)
    assert rows[-1][2] == 600.0
    assert all(ok.values())
    # Rate scales linearly with streams.
    r1 = rows[0][2]
    assert rows[3][2] == 4 * r1


def test_bench_mimo_capacity_scaling(benchmark, report):
    caps = benchmark.pedantic(
        lambda: {n: ergodic_capacity(n, n, 21.0, n_draws=300, rng=1)
                 for n in (1, 2, 4)},
        rounds=1, iterations=1,
    )
    report(
        "E5b: ergodic capacity at 21 dB (information-theoretic basis)",
        [f"{n}x{n}: {c:5.1f} bps/Hz" for n, c in caps.items()]
        + [f"4x4 / 1x1 ratio: {caps[4] / caps[1]:.1f}x "
           "(linear min(Nt,Nr) scaling)"],
    )
    assert caps[4] > 15.0 > caps[1]
    assert 3.0 < caps[4] / caps[1] < 5.0
