"""E9 — mesh multi-hop vs single-hop spectral efficiency (claim C10).

Paper: meshes can "boost overall spectral efficiencies attained by
selecting multiple hops over high capacity links rather than single hops
over low capacity links". A line of nodes is swept in length; at each
length the direct link's rate is compared with the airtime-routed path.
Includes the airtime-vs-hop-count routing ablation.
"""

import numpy as np

from repro.mesh.network import MeshNetwork
from repro.mesh.topology import line_positions

DISTANCES = [10.0, 20.0, 30.0, 40.0, 56.0, 70.0]


def _sweep():
    rows = []
    for total in DISTANCES:
        net = MeshNetwork(line_positions(3, total / 2.0))
        direct = net.link_rate_mbps(0, 2) or 0.0
        routed = net.end_to_end_throughput_mbps(0, 2, metric="airtime")
        hops = net.end_to_end_throughput_mbps(0, 2, metric="hops")
        rows.append((total, direct, routed, hops))
    return rows


def test_bench_mesh_multihop(benchmark, report):
    rows = benchmark(_sweep)
    lines = ["distance | direct 1-hop | airtime-routed | hop-count-routed"]
    for total, direct, routed, hops in rows:
        winner = "multi-hop" if routed > direct else "direct"
        lines.append(
            f"  {total:4.0f} m | {direct:7.1f} Mbps | {routed:8.2f} Mbps  "
            f"| {hops:8.2f} Mbps   <- {winner}"
        )
    lines.append("crossover: once the direct link falls down the rate "
                 "ladder, two fast hops win (the paper's claim)")
    report("E9: mesh multi-hop vs single-hop", lines)
    by_dist = {r[0]: r for r in rows}
    # Short distances: direct wins (no relaying overhead beats 54 Mbps).
    assert by_dist[10.0][1] >= by_dist[10.0][2]
    # Long distances: the routed path beats the weak direct link.
    assert by_dist[56.0][2] > by_dist[56.0][1]
    # The airtime metric never loses to naive hop-count routing.
    assert all(r[2] >= r[3] - 1e-9 for r in rows)
    benchmark.extra_info["crossover_table"] = [
        [float(x) for x in r] for r in rows
    ]


def test_bench_hwmp_discovery(benchmark, report):
    """E9b: distributed HWMP-style discovery finds the same airtime-optimal
    routes as omniscient Dijkstra ('sufficiently intelligent routing')."""
    from repro.mesh.hwmp import HwmpRouter
    from repro.mesh.topology import grid_positions

    def run():
        net = MeshNetwork(grid_positions(3, 40.0))
        router = HwmpRouter(net)
        agreements = 0
        pairs = [(0, 8), (2, 6), (0, 4), (1, 7), (3, 5)]
        details = []
        for src, dst in pairs:
            flooded = router.discover(src, dst)
            central = net.best_path(src, dst, metric="airtime")
            agreements += flooded.path == central
            details.append((src, dst, flooded.path,
                            flooded.preq_broadcasts,
                            flooded.discovery_time_s * 1e3))
        return agreements, len(pairs), details

    agreements, total, details = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    lines = [f"{s}->{d}: path {p}, {b} PREQ broadcasts, "
             f"discovered in {t:.0f} ms" for s, d, p, b, t in details]
    lines.append(f"agreement with centralised routing: {agreements}/{total}")
    report("E9b: distributed route discovery (HWMP-style flooding)", lines)
    assert agreements == total
