"""E17 — the fivefold law and its extrapolation (claim C6).

Paper: 15 bps/Hz "maintains the historical trend of fivefold increases
with each new standard". The bench fits the geometric law and
extrapolates one generation — a falsifiable prediction the 2005 author
implicitly made (the real 802.11ac VHT160/8SS landed at ~43 bps/Hz,
within the fitted law's ballpark).
"""

import numpy as np

from repro.analysis.capacity import snr_required_db
from repro.analysis.trends import fit_exponential_trend, predict_next_generation
from repro.core.evolution import spectral_efficiency_series


def _fit_and_predict():
    names, effs = spectral_efficiency_series()
    ratio, prefactor = fit_exponential_trend(np.arange(effs.size), effs)
    nxt = predict_next_generation(effs)
    return names, effs, ratio, nxt


def test_bench_trend_extrapolation(benchmark, report):
    names, effs, ratio, nxt = benchmark(_fit_and_predict)
    lines = []
    for name, eff in zip(names, effs):
        lines.append(f"{name:<10} {eff:6.2f} bps/Hz")
    lines.append(f"fitted multiplier: {ratio:.2f}x per generation "
                 "(paper: ~5x)")
    lines.append(f"extrapolated next generation: {nxt:.0f} bps/Hz "
                 "(802.11ac eventually shipped ~43 bps/Hz)")
    lines.append(
        f"SISO Shannon SNR for 15 bps/Hz: {snr_required_db(15.0):.0f} dB "
        "-- unreachable, hence MIMO (the paper's 'heretofore unreachable')"
    )
    report("E17: the fivefold spectral-efficiency law", lines)
    assert 4.5 < ratio < 6.0
    assert 40.0 < nxt < 120.0
    benchmark.extra_info["ratio"] = round(ratio, 2)
    benchmark.extra_info["next_gen_bps_hz"] = round(nxt, 1)
