"""E6 — MIMO range extension (claim C7).

Paper: "the range of a wireless LAN network in a fading multipath
environment is extended several-fold relative to a conventional single
antenna or SISO system."

Mechanism measured here: at a 1% outage target in Rayleigh fading, SISO
needs a ~20 dB fade margin; MRC/STBC diversity collapses that margin.
Margin saved maps to range through the 3.5-exponent path loss:
range ratio = 10^(saved_dB / 35). Includes the MMSE-vs-ZF ablation.
"""

import numpy as np

from repro.analysis.ber_theory import ber_rayleigh_mrc
from repro.analysis.range import range_ratio_from_gain_db
from repro.campaign import builtin_campaign, run_campaign

TARGET_OUTAGE = 0.01


def _range_table():
    # Diversity combining of Nr x Nt i.i.d. Rayleigh branches with
    # total-power normalisation (||H||_F^2 / Nt); each config is one
    # campaign point (kind "mimo-range") with its own seed substream.
    result = run_campaign(builtin_campaign("e6-mimo-range"))
    rows = []
    siso_margin = None
    for rec in result.records:
        n_tx, n_rx = (int(x) for x in rec["params"]["antennas"].split("x"))
        margin = rec["metrics"]["margin_db"]
        if siso_margin is None:
            siso_margin = margin
        saved = siso_margin - margin
        rows.append((n_rx, n_tx, margin, saved,
                     float(range_ratio_from_gain_db(saved))))
    return rows


def test_bench_mimo_range_extension(benchmark, report):
    rows = benchmark.pedantic(_range_table, rounds=1, iterations=1)
    lines = ["config | 1%-outage fade margin | margin saved | range ratio"]
    for n_rx, n_tx, margin, saved, ratio in rows:
        lines.append(
            f" {n_tx}x{n_rx}   |      {margin:5.1f} dB        |"
            f"   {saved:5.1f} dB   |   {ratio:4.2f}x"
        )
    lines.append("paper: 'extended several-fold' -- 4x4 lands at ~3-4x")
    report("E6: MIMO diversity range extension in Rayleigh fading", lines)
    ratios = {f"{r[1]}x{r[0]}": r[4] for r in rows}
    assert ratios["1x2"] > 1.5            # even 1x2 MRC helps a lot
    assert ratios["4x4"] > 2.5            # "several-fold"
    assert ratios["4x4"] > ratios["2x2"] > 1.0
    benchmark.extra_info["range_ratios"] = {k: round(v, 2)
                                            for k, v in ratios.items()}


def test_bench_detector_ablation(benchmark, report):
    """MMSE vs ZF vs ML on a real 2-stream HT link at low SNR (the
    detector ablation DESIGN.md calls out for E6)."""
    import numpy as np
    from repro.errors import ReproError
    from repro.phy.mimo.ht import HtPhy

    def run():
        rng = np.random.default_rng(33)
        msg = bytes(rng.integers(0, 256, 60, dtype=np.uint8).tolist())
        fails = {}
        for detector in ("zf", "mmse", "ml"):
            phy = HtPhy(mcs=8, n_rx=2, detector=detector)
            bad = 0
            for trial in range(12):
                local = np.random.default_rng(500 + trial)
                tx = phy.transmit(msg)
                h = (local.normal(size=(2, 2))
                     + 1j * local.normal(size=(2, 2))) / np.sqrt(2)
                y = h @ tx
                nv = 10 ** (-13 / 10)
                y = y + np.sqrt(nv / 2) * (
                    local.normal(size=y.shape) + 1j * local.normal(size=y.shape)
                )
                try:
                    bad += phy.receive(y, nv, psdu_bytes=len(msg)) != msg
                except ReproError:
                    bad += 1
            fails[detector] = bad / 12
        return fails

    fails = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E6c: detector ablation (2-stream QPSK, 13 dB, flat Rayleigh)",
        [f"{d.upper():<5}: PER {p:.2f}" for d, p in fails.items()]
        + ["ML bounds the linear detectors; MMSE >= ZF at low SNR"],
    )
    assert fails["ml"] <= fails["zf"] + 0.1
    assert fails["mmse"] <= fails["zf"] + 0.1


def test_bench_diversity_order_check(benchmark, report):
    """Cross-check: closed-form MRC BER slopes show diversity order."""
    snrs = np.array([15.0, 25.0])

    def orders():
        result = {}
        for branches in (1, 2, 4):
            ber = ber_rayleigh_mrc(snrs, branches)
            result[branches] = float(
                -(np.log10(ber[1]) - np.log10(ber[0]))
                / ((snrs[1] - snrs[0]) / 10)
            )
        return result

    got = benchmark(orders)
    report(
        "E6b: diversity order (BER slope per decade of SNR)",
        [f"{b} branches: slope {o:.2f} (expected {b})"
         for b, o in got.items()],
    )
    for branches, order in got.items():
        assert abs(order - branches) < 0.25
