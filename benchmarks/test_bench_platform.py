"""E16 — platform power budget share (claim C19).

Paper: "In computer notebooks, wireless power consumption represents only
a fraction of the overall platform power budget. On the other hand,
smaller form factor devices impose more stringent power requirements."
"""

from repro.power.chains import MimoPowerModel
from repro.power.platform import PLATFORMS, wlan_power_share


def _shares():
    # A duty-cycled 2x2 client: 10% RX, 5% TX, 85% idle listen.
    model = MimoPowerModel(2, 2)
    avg = (0.10 * model.rx_power_w(130.0)
           + 0.05 * model.tx_power_total_w(130.0)
           + 0.85 * model.idle_listen_power_w())
    return avg, {name: wlan_power_share(avg, name) for name in PLATFORMS}


def test_bench_platform_share(benchmark, report):
    avg, shares = benchmark(_shares)
    lines = [f"modelled 2x2 WLAN average power: {1000 * avg:.0f} mW", ""]
    for name, share in sorted(shares.items(), key=lambda kv: kv[1]):
        bar = "#" * int(50 * min(share, 1.0))
        lines.append(f"{name:<15} {100 * share:5.1f}% {bar}")
    lines.append("paper: a fraction of a notebook, dominant in handhelds")
    report("E16: WLAN share of the platform power budget", lines)
    assert shares["notebook"] < 0.10
    assert shares["pda"] > 0.30
    assert shares["voip-handset"] > shares["pda"]
    benchmark.extra_info["shares"] = {k: round(v, 3)
                                      for k, v in shares.items()}
