"""E10 — mesh coverage area (claim C11).

Paper: "Mesh networks have the potential to dramatically increase the
area served by a wireless network." Coverage fraction of a 240 m campus
at >= 6 Mbps: one AP vs growing meshes with one wired portal.
"""

import numpy as np

from repro.mesh.coverage import coverage_fraction, single_ap_radius_m
from repro.mesh.topology import grid_positions

AREA = 240.0


def _coverage_vs_mesh_size():
    results = {}
    results[1] = coverage_fraction(
        np.array([[AREA / 2, AREA / 2]]), AREA, n_samples=2500, rng=3
    )
    results[4] = coverage_fraction(
        grid_positions(2, 55.0) + (AREA - 55.0) / 2, AREA,
        n_samples=2500, rng=3,
    )
    results[9] = coverage_fraction(
        grid_positions(3, 55.0) + (AREA - 110.0) / 2, AREA,
        n_samples=2500, rng=3,
    )
    return results


def test_bench_mesh_coverage(benchmark, report):
    results = benchmark.pedantic(_coverage_vs_mesh_size, rounds=1,
                                 iterations=1)
    radius = single_ap_radius_m()
    lines = [f"single-AP usable radius @6 Mbps: {radius:.1f} m"]
    for n, frac in results.items():
        lines.append(f"{n:>2} mesh point(s): {100 * frac:5.1f}% of the "
                     f"{AREA:.0f} m x {AREA:.0f} m area covered "
                     f"({frac * AREA ** 2:8.0f} m^2)")
    lines.append(f"9-node mesh vs lone AP: "
                 f"{results[9] / results[1]:.1f}x the served area")
    report("E10: mesh coverage scaling", lines)
    assert results[1] < results[4] < results[9]
    assert results[9] / results[1] > 2.0  # "dramatically"
    benchmark.extra_info["coverage"] = {str(k): round(v, 3)
                                        for k, v in results.items()}
