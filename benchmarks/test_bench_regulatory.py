"""E18 (supplementary) — the regulatory narrative, measured.

The paper's historical section is regulatory: the FCC's 10 dB spreading
mandate capped 802.11 at 0.1 bps/Hz; its relaxation enabled CCK; its
absence at 5 GHz enabled OFDM. This bench runs the rules on the library's
own waveforms: processing gain per mechanism, occupied bandwidth, and the
802.11a transmit-mask check.
"""

import numpy as np

from repro.phy.dsss import DsssPhy
from repro.phy.ofdm import OfdmPhy
from repro.standards.regulatory import (
    check_spectral_mask,
    meets_spreading_mandate,
    occupied_bandwidth_hz,
    regulatory_report,
)
from repro.utils.bits import random_bits


def _measurements():
    rng = np.random.default_rng(19)
    msg = bytes(rng.integers(0, 256, 400, dtype=np.uint8).tolist())
    ofdm = OfdmPhy(54).transmit(msg)
    dsss = DsssPhy(2).modulate(random_bits(3000, rng))
    return {
        "report": regulatory_report(),
        "ofdm_obw_mhz": occupied_bandwidth_hz(ofdm, 20e6) / 1e6,
        "dsss_obw_mhz": occupied_bandwidth_hz(dsss, 11e6) / 1e6,
        "mask": check_spectral_mask(ofdm, 20e6),
    }


def test_bench_regulatory_narrative(benchmark, report):
    out = benchmark.pedantic(_measurements, rounds=1, iterations=1)
    lines = []
    for row in out["report"]:
        gain = row["processing_gain_db"]
        gain_s = f"{gain:5.1f} dB" if gain is not None else "  n/a  "
        lines.append(f"{row['standard']:<18} {gain_s}  {row['status']}")
    lines.append("")
    lines.append(f"measured occupied BW: DSSS {out['dsss_obw_mhz']:.1f} MHz "
                 f"(spread), OFDM {out['ofdm_obw_mhz']:.1f} MHz "
                 "(52 x 312.5 kHz subcarriers)")
    lines.append(f"802.11a transmit mask: "
                 f"{'PASS' if out['mask']['compliant'] else 'FAIL'} "
                 f"(worst margin {out['mask']['worst_margin_db']:.1f} dB)")
    report("E18: regulatory constraints as measurements", lines)
    assert meets_spreading_mandate(11)
    assert not meets_spreading_mandate(8)
    assert out["mask"]["compliant"]
    assert 14.0 < out["ofdm_obw_mhz"] < 18.0
