"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's quantitative claims (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-measured
records). Result blocks bypass pytest's capture (so they are always
visible) and are also appended to ``benchmarks/results.txt`` as a durable
artifact of the last run.
"""

import os
import sys

import pytest

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
_run_started = False


def emit(title, lines):
    """Print an experiment's result block and log it to results.txt."""
    global _run_started
    out = ["", "=" * 72, title, "-" * 72]
    out.extend(str(line) for line in lines)
    out.append("=" * 72)
    text = "\n".join(out)
    # sys.__stdout__ bypasses pytest's capture of sys.stdout.
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    mode = "a" if _run_started else "w"
    _run_started = True
    with open(_RESULTS_PATH, mode) as fh:
        fh.write(text + "\n")


@pytest.fixture
def report():
    """Fixture handing benchmarks the emit helper."""
    return emit
