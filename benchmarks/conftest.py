"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's quantitative claims (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-measured
records). Result blocks bypass pytest's capture (so they are always
visible) and are also appended to ``benchmarks/results.txt`` as a durable
artifact of the last run.

Machine-readable output: run with ``--bench-json PATH`` to also dump a
JSON document of benchmark metrics — every benchmark's wall-clock
duration is recorded automatically, and benchmarks that pass
``metrics=[{"name", "value", "units"}, ...]`` to the ``report`` fixture
contribute their domain numbers (trial counts, speedups, packets
saved). This is the seed for the ``BENCH_*.json`` perf trajectory:
``results.txt`` stays the human view, the JSON is the one tooling
diffs across commits.
"""

import json
import os
import sys

import pytest

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
_run_started = False

# Structured metrics accumulated over the session, dumped by
# pytest_sessionfinish when --bench-json was given.
_metrics = []


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="PATH",
        help="write benchmark metrics (name/metric/value/units) as JSON",
    )


def emit(title, lines, metrics=None):
    """Print an experiment's result block and log it to results.txt.

    ``metrics`` is an optional list of ``{"name", "value", "units"}``
    dicts recorded into the ``--bench-json`` document under this
    benchmark's title.
    """
    global _run_started
    out = ["", "=" * 72, title, "-" * 72]
    out.extend(str(line) for line in lines)
    out.append("=" * 72)
    text = "\n".join(out)
    # sys.__stdout__ bypasses pytest's capture of sys.stdout.
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    mode = "a" if _run_started else "w"
    _run_started = True
    with open(_RESULTS_PATH, mode) as fh:
        fh.write(text + "\n")
    for metric in metrics or []:
        _metrics.append({
            "benchmark": title,
            "name": str(metric["name"]),
            "value": metric["value"],
            "units": str(metric.get("units", "")),
        })


@pytest.fixture
def report():
    """Fixture handing benchmarks the emit helper."""
    return emit


def pytest_runtest_logreport(report):
    """Auto-record every benchmark's wall-clock duration."""
    if report.when == "call" and report.passed:
        _metrics.append({
            "benchmark": report.nodeid,
            "name": "duration",
            "value": float(report.duration),
            "units": "s",
        })


def pytest_sessionfinish(session):
    path = session.config.getoption("--bench-json", default=None)
    if not path:
        return
    document = {"schema": 1, "metrics": _metrics}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
