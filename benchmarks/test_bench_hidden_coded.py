"""E22 (supplementary) — hidden terminals and coded cooperation.

Two deeper cuts at the paper's MAC and cooperation threads:

* hidden terminals — the spatial failure mode RTS/CTS exists for (and a
  preview of mesh coordination problems);
* coded cooperation — the paper's "regenerate and relay, with appropriate
  coding": the relay sends *new parity* instead of a repeat.
"""

import numpy as np

from repro.coop.coded import CodedCooperationSimulator
from repro.mac.hidden import HiddenTerminalSimulator

HIDDEN_PAIR = np.array([[70.0, 0.0], [-70.0, 0.0]])


def _hidden_study():
    rows = {}
    for rts in (False, True):
        sim = HiddenTerminalSimulator(
            HIDDEN_PAIR, carrier_sense_range_m=80.0,
            attempt_rate_per_s=300.0, rts_cts=rts, rng=7,
        )
        rows["RTS/CTS" if rts else "basic"] = sim.run(3.0)
    return rows


def _coded_study():
    sim = CodedCooperationSimulator(info_bits=96, relay_gain_db=3.0, rng=5)
    return {snr: sim.run(snr, n_blocks=200) for snr in (6.0, 10.0, 14.0)}


def test_bench_hidden_terminal(benchmark, report):
    rows = benchmark.pedantic(_hidden_study, rounds=1, iterations=1)
    lines = ["mode    | attempts | delivered | collisions | loss"]
    for name, r in rows.items():
        lines.append(
            f"{name:<8}|   {r.attempts:4d}   |   {r.successes:4d}    |"
            f"    {r.collisions:4d}    | {100 * (1 - r.success_ratio):4.1f}%"
        )
    lines.append("two stations that reach the AP but not each other: "
                 "RTS/CTS shrinks the vulnerable window to the handshake")
    report("E22a: hidden terminals, basic vs RTS/CTS", lines)
    assert rows["basic"].collisions > 0
    assert (1 - rows["RTS/CTS"].success_ratio) < (
        1 - rows["basic"].success_ratio
    )


def test_bench_coded_cooperation(benchmark, report):
    rows = benchmark.pedantic(_coded_study, rounds=1, iterations=1)
    lines = ["SNR | direct BLER | repetition DF | coded coop | relay ok"]
    for snr, r in rows.items():
        lines.append(
            f" {snr:3.0f} |   {r.bler_direct:6.3f}    |    {r.bler_repetition:6.3f}"
            f"     |  {r.bler_coded:6.3f}    |  {100 * r.relay_decode_rate:3.0f}%"
        )
    lines.append("both relay schemes beat the direct link; repetition "
                 "maximises per-bit diversity, coded cooperation trades "
                 "some of it for coding gain")
    report("E22b: coded cooperation ('with appropriate coding')", lines)
    for r in rows.values():
        assert r.bler_repetition <= r.bler_direct
        assert r.bler_coded <= r.bler_direct
