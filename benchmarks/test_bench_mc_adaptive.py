"""MC engine — adaptive precision targeting vs fixed trial budgets.

The claim: with a relative-precision target the engine spends trials
where the statistics need them. A saturated E3 waterfall point (PER
near 1) settles within a few batches; the same point under a fixed
budget burns every packet for no extra information. Both modes report
Wilson confidence intervals, so the saving is visible and honest.
"""

import numpy as np

from repro.core.link import LinkSimulator

# A representative E3 operating point: cck-11 deep in the waterfall
# (see the e3-dsss-cck campaign grid: -2 dB is its harshest column).
PHY, CHANNEL, SNR_DB = "cck-11", "awgn", -2.0
FIXED_BUDGET = 1000
PRECISION = 0.1  # the default relative CI half-width target
PAYLOAD = 50


def _compare():
    fixed = LinkSimulator(PHY, CHANNEL, rng=42).run(
        SNR_DB, n_packets=FIXED_BUDGET, payload_bytes=PAYLOAD)
    adaptive = LinkSimulator(PHY, CHANNEL, rng=42).run(
        SNR_DB, n_packets=FIXED_BUDGET, payload_bytes=PAYLOAD,
        precision=PRECISION, max_trials=FIXED_BUDGET, batch_size=50)
    return fixed, adaptive


def test_bench_mc_adaptive_vs_fixed(benchmark, report):
    fixed, adaptive = benchmark.pedantic(_compare, rounds=1, iterations=1)
    f_lo, f_hi = fixed.per_ci()
    a_lo, a_hi = adaptive.per_ci()
    lines = [
        f"point: {PHY} over {CHANNEL} @ {SNR_DB} dB "
        f"(precision target {PRECISION:.0%} rel. half-width)",
        f"fixed    : PER {fixed.per:.3f} [{f_lo:.3f}, {f_hi:.3f}]  "
        f"{fixed.n_packets} packets ({fixed.mc.stop_reason})",
        f"adaptive : PER {adaptive.per:.3f} [{a_lo:.3f}, {a_hi:.3f}]  "
        f"{adaptive.n_packets} packets ({adaptive.mc.stop_reason})",
        f"saving   : {FIXED_BUDGET / adaptive.n_packets:.0f}x fewer "
        f"packets for the same certified precision",
    ]
    report("MC: adaptive precision targeting vs a fixed trial budget",
           lines,
           metrics=[
               {"name": "fixed_trials", "value": fixed.n_packets,
                "units": "packets"},
               {"name": "adaptive_trials", "value": adaptive.n_packets,
                "units": "packets"},
               {"name": "packet_saving",
                "value": FIXED_BUDGET / adaptive.n_packets, "units": "x"},
           ])

    # The acceptance criterion: the adaptive run reaches the default
    # PER precision with measurably fewer trials than the fixed budget.
    assert adaptive.mc.stop_reason == "precision"
    assert adaptive.n_packets < FIXED_BUDGET / 2
    assert adaptive.mc.rel_half_width <= PRECISION
    # Both intervals cover the other mode's estimate: same physics.
    assert a_lo <= fixed.per <= a_hi

    benchmark.extra_info["fixed_trials"] = fixed.n_packets
    benchmark.extra_info["adaptive_trials"] = adaptive.n_packets
    benchmark.extra_info["adaptive_ci"] = [float(a_lo), float(a_hi)]


def test_bench_mc_adaptive_waterfall_allocation(benchmark, report):
    """Across a whole waterfall, adaptive mode spends packets at the
    knee and almost none at the saturated edges."""
    snrs = [-2.0, 2.0, 6.0, 10.0, 14.0]

    def sweep():
        sim = LinkSimulator("cck-5.5", CHANNEL, rng=7)
        return sim.waterfall(snrs, n_packets=400, payload_bytes=PAYLOAD,
                             precision=PRECISION, max_trials=400,
                             batch_size=25)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["SNR (dB)   PER    [95% CI]          packets  stop"]
    for snr, r in zip(snrs, results):
        lo, hi = r.per_ci()
        lines.append(f"{snr:>7.1f}  {r.per:5.2f}  [{lo:.3f}, {hi:.3f}]  "
                     f"{r.n_packets:>7d}  {r.mc.stop_reason}")
    total = sum(r.n_packets for r in results)
    lines.append(f"total packets: {total} (fixed sweep would use "
                 f"{400 * len(snrs)})")
    report("MC: adaptive packet allocation across a PER waterfall", lines,
           metrics=[
               {"name": "total_packets", "value": total, "units": "packets"},
               {"name": "fixed_equivalent", "value": 400 * len(snrs),
                "units": "packets"},
           ])

    assert total < 400 * len(snrs)
    # The zero-error tail can never certify relative precision — it must
    # honestly run to its ceiling instead of stopping early on 0.0.
    assert results[-1].per == 0.0
    assert results[-1].mc.stop_reason == "max_trials"
    assert np.isfinite([r.per for r in results]).all()
