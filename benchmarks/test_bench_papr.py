"""E12 — PAPR and PA efficiency (claim C13).

Paper: "beginning with the introduction of OFDM, the high peak-to-average
ratios characteristic of spectrally efficient modulation have resulted in
low power efficiency of the power amplifier".

PAPR is measured on the library's own waveforms (GFSK, Barker DSSS, CCK,
OFDM, 2-stream HT), back-off is set at the 1% CCDF point, and the PA
efficiency that survives is computed for class A and AB amplifiers.
"""

import numpy as np

from repro.phy.cck import CckPhy
from repro.phy.dsss import DsssPhy
from repro.phy.fhss import GfskModem
from repro.phy.mimo.ht import HtPhy
from repro.phy.ofdm import OfdmPhy
from repro.power.pa import pa_efficiency
from repro.power.papr import papr_at_probability
from repro.utils.bits import random_bits


def _waveforms():
    rng = np.random.default_rng(77)
    payload = bytes(rng.integers(0, 256, 400, dtype=np.uint8).tolist())
    waves = {
        "FHSS GFSK (802.11)": GfskModem().modulate(random_bits(2000, rng)),
        "DSSS Barker (802.11)": DsssPhy(2).modulate(random_bits(2000, rng)),
        "CCK (802.11b)": CckPhy(11).modulate(random_bits(4000, rng)),
        "OFDM (802.11a/g)": OfdmPhy(54).transmit(payload),
        "MIMO-OFDM (802.11n)": HtPhy(mcs=12, n_rx=2).transmit(payload)[0],
    }
    return waves


def test_bench_papr_and_pa_efficiency(benchmark, report):
    waves = benchmark.pedantic(_waveforms, rounds=1, iterations=1)
    lines = ["waveform              | PAPR(1%) | eta class A | eta class AB"]
    table = {}
    for name, wave in waves.items():
        papr = papr_at_probability(wave, 0.01, block_len=80)
        eta_a = pa_efficiency(papr, "A")
        eta_ab = pa_efficiency(papr, "AB")
        table[name] = papr
        lines.append(f"{name:<22}| {papr:5.1f} dB |   {100 * eta_a:4.1f}%    "
                     f"|   {100 * eta_ab:4.1f}%")
    lines.append("paper: OFDM's PAPR forces back-off that collapses PA "
                 "efficiency; constant-envelope GFSK does not")
    report("E12: PAPR by generation and the PA-efficiency cost", lines)
    assert table["FHSS GFSK (802.11)"] < 1.0
    assert table["DSSS Barker (802.11)"] < 3.0
    assert table["OFDM (802.11a/g)"] > 7.0
    assert table["OFDM (802.11a/g)"] > table["CCK (802.11b)"]
    benchmark.extra_info["papr_db"] = {k: round(v, 2)
                                       for k, v in table.items()}


def test_bench_adc_cost_of_papr(benchmark, report):
    """E12b: PAPR's converter tax — bits (and mW) the ADC needs per
    waveform generation for a 30 dB SQNR."""
    from repro.phy.quantization import required_bits
    from repro.power.components import adc_power_w

    def run():
        rng = np.random.default_rng(88)
        payload = bytes(rng.integers(0, 256, 300, dtype=np.uint8).tolist())
        waves = {
            "DSSS (802.11)": (DsssPhy(2).modulate(random_bits(2000, rng)),
                              11e6),
            "OFDM (802.11a)": (OfdmPhy(54).transmit(payload), 20e6),
            "HT-40 (802.11n)": (
                HtPhy(mcs=3, bandwidth_mhz=40, n_rx=1).transmit(payload)[0],
                40e6,
            ),
        }
        rows = {}
        for name, (wave, fs) in waves.items():
            # Clip-free AGC: full scale sits at the waveform's peak, so
            # high-PAPR signals spend quantiser range on rare excursions.
            peak = float(np.abs(wave).max())
            bits = required_bits(wave, 30.0, clip_level=peak)
            rows[name] = (bits, adc_power_w(fs, bits) * 1e3 if bits else None)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["waveform        | ADC bits for 30 dB | ADC power (pair)"]
    for name, (bits, mw) in rows.items():
        lines.append(f"{name:<16}|        {bits}           |  {2 * mw:6.1f} mW")
    lines.append("every PAPR dB and bandwidth MHz lands in the converter "
                 "budget: 2^bits x fs")
    report("E12b: the ADC cost of spectrally efficient waveforms", lines)
    assert rows["OFDM (802.11a)"][0] >= rows["DSSS (802.11)"][0]
    assert rows["HT-40 (802.11n)"][1] > rows["OFDM (802.11a)"][1]


def test_bench_pa_linearity(benchmark, report):
    """E12c: the Rapp PA closes the loop — *why* the back-off is needed.

    EVM through a realistic solid-state PA vs input back-off, mapped onto
    the 802.11a TX-EVM requirements per rate.
    """
    from repro.power.pa_nonlinear import (RappPa, backoff_for_rate, evm_db,
                                          max_rate_for_evm)

    def run():
        rng = np.random.default_rng(90)
        wave = OfdmPhy(54).transmit(
            bytes(rng.integers(0, 256, 300, dtype=np.uint8).tolist())
        )
        pa = RappPa()
        curve = []
        for backoff in (0.0, 3.0, 6.0, 9.0):
            e = evm_db(wave, pa.amplify(wave, backoff_db=backoff))
            curve.append((backoff, e, max_rate_for_evm(e),
                          pa_efficiency(backoff, "AB")))
        need54 = backoff_for_rate(wave, 54, pa)
        need6 = backoff_for_rate(wave, 6, pa)
        return curve, need54, need6

    curve, need54, need6 = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["back-off | TX EVM   | max rate | PA eta (AB)"]
    for backoff, e, rate, eta in curve:
        lines.append(f"  {backoff:4.1f} dB | {e:6.1f} dB |"
                     f" {rate if rate else '--':>4} Mbps | {eta:5.1%}")
    lines.append(f"back-off needed: 6 Mbps -> {need6:.1f} dB, "
                 f"54 Mbps -> {need54:.1f} dB")
    lines.append("linearity for 64-QAM costs the PA its efficiency — the "
                 "paper's core low-power complaint, now mechanistic")
    report("E12c: PA nonlinearity (Rapp) vs the rate ladder", lines)
    assert need54 >= need6 + 3.0
    assert curve[0][2] is None or curve[0][2] < 54
