"""E13 — MIMO chain power and adaptive chain switching (claims C14, C15).

Paper: "Multiple transmit and receive RF chains ... significantly
increase the power consumption over single antenna devices" and "MIMO
systems could reduce power by switching off all but one receive chain
until a packet is detected".
"""

from repro.power.adaptive import adaptive_rx_power_w
from repro.power.chains import MimoPowerModel

CONFIGS = [(1, 1, 54.0, 1.0), (2, 2, 130.0, 1.0), (3, 3, 195.0, 1.0),
           (4, 4, 270.0, 1.0), (4, 4, 540.0, 2.0)]


def _power_table():
    rows = []
    for n_tx, n_rx, rate, bw in CONFIGS:
        model = MimoPowerModel(n_tx, n_rx, bandwidth_scale=bw)
        rows.append((
            f"{n_tx}x{n_rx}" + (" @40MHz" if bw > 1 else ""),
            model.rx_power_w(rate),
            model.tx_power_total_w(rate),
            model.idle_listen_power_w(),
            model.sniff_power_w(),
        ))
    return rows


def test_bench_chain_power(benchmark, report):
    rows = benchmark(_power_table)
    lines = ["config      |   RX    |   TX    |  idle   | sniff(1ch)"]
    for name, rx, tx, idle, sniff in rows:
        lines.append(f"{name:<12}| {1000 * rx:6.0f}mW| {1000 * tx:6.0f}mW| "
                     f"{1000 * idle:6.0f}mW| {1000 * sniff:6.0f}mW")
    siso_rx = rows[0][1]
    mimo_rx = rows[3][1]
    lines.append(f"4x4 RX / 1x1 RX = {mimo_rx / siso_rx:.1f}x "
                 "(paper: 'significantly increase')")
    report("E13: device power vs MIMO chain count", lines)
    assert mimo_rx / siso_rx > 2.5
    assert rows[4][1] > rows[3][1]  # 40 MHz costs more still
    benchmark.extra_info["rx_mw"] = {r[0]: round(1000 * r[1]) for r in rows}


def test_bench_adaptive_chain_switching(benchmark, report):
    model = MimoPowerModel(4, 4)

    def sweep():
        return {busy: adaptive_rx_power_w(model, busy, packets_per_s=50)
                for busy in (0.01, 0.05, 0.2, 0.5)}

    out = benchmark(sweep)
    lines = ["busy fraction | static | adaptive | saving"]
    for busy, r in out.items():
        lines.append(f"    {busy:5.2f}     | {1000 * r['static_w']:5.0f}mW "
                     f"| {1000 * r['adaptive_w']:5.0f}mW  "
                     f"| {100 * r['saving_fraction']:4.1f}%")
    lines.append("paper: sleep all but one RX chain until packet detect")
    report("E13b: adaptive RX chain switching (4x4 device)", lines)
    assert out[0.01]["saving_fraction"] > 0.5
    assert out[0.01]["saving_fraction"] > out[0.5]["saving_fraction"]
