"""E2 — Barker DSSS processing gain (claim C2).

Paper: the FCC mandated 10 dB of processing gain; the 11-chip Barker
spreader provides 10 log10(11) = 10.4 dB.
"""

from repro.constants import FCC_PROCESSING_GAIN_DB
from repro.phy.dsss import measure_processing_gain, processing_gain_db


def test_bench_processing_gain(benchmark, report):
    measured = benchmark(measure_processing_gain, n_symbols=3000,
                         chip_snr_db=0.0, rng=7)
    theory = processing_gain_db()
    report(
        "E2: DSSS processing gain (paper/FCC: >= 10 dB mandated)",
        [f"theoretical 10*log10(11) : {theory:6.2f} dB",
         f"measured by despreading  : {measured:6.2f} dB",
         f"FCC mandate              : {FCC_PROCESSING_GAIN_DB:6.2f} dB  "
         f"-> {'MET' if measured >= FCC_PROCESSING_GAIN_DB else 'MISSED'}"],
    )
    assert measured >= FCC_PROCESSING_GAIN_DB
    assert abs(measured - theory) < 1.0
    benchmark.extra_info["measured_db"] = round(measured, 2)
