"""E7 — LDPC coding gain over the convolutional code (claim C8).

Paper: "Other likely enhancements in the 802.11n standard will also
increase the range of wireless networks, such as the use of LDPC codes."

Both codes run at rate 1/2 over BPSK/AWGN; the Eb/N0 each needs for
BER <= 1e-3 is bisected, and the gain maps to a range multiple. Includes
the min-sum-vs-sum-product and soft-vs-hard Viterbi ablations DESIGN.md
calls out.
"""

import numpy as np

from repro.analysis.range import range_ratio_from_gain_db
from repro.phy import convolutional as cc
from repro.phy.ldpc import LdpcCode

TARGET_BER = 1e-3


def _ldpc_ber(code, ebn0_db, rng, n_blocks=12, algorithm="min-sum"):
    sigma2 = 1.0 / (2 * code.rate * 10 ** (ebn0_db / 10))
    errs = 0
    total = 0
    for _ in range(n_blocks):
        info = rng.integers(0, 2, code.k).astype(np.int8)
        cw = code.encode(info)
        y = (1.0 - 2.0 * cw) + rng.normal(0, np.sqrt(sigma2), code.n)
        decoded, _, _ = code.decode(2 * y / sigma2, max_iterations=40,
                                    algorithm=algorithm)
        errs += int((code.extract_info(decoded) != info).sum())
        total += code.k
    return errs / total


def _viterbi_ber(ebn0_db, rng, n_blocks=12, n_info=324, soft=True):
    sigma2 = 1.0 / (2 * 0.5 * 10 ** (ebn0_db / 10))
    errs = 0
    total = 0
    for _ in range(n_blocks):
        bits = rng.integers(0, 2, n_info).astype(np.int8)
        coded = cc.encode(bits)
        y = (1.0 - 2.0 * coded) + rng.normal(0, np.sqrt(sigma2), coded.size)
        soft_in = 2 * y / sigma2 if soft else cc.hard_to_soft(
            (y < 0).astype(np.int8)
        )
        decoded = cc.viterbi_decode(soft_in, n_info)
        errs += int((decoded != bits).sum())
        total += n_info
    return errs / total


def _threshold(ber_fn, lo=0.0, hi=8.0, steps=7):
    """Smallest Eb/N0 on a grid where BER <= TARGET_BER."""
    for ebn0 in np.linspace(lo, hi, steps):
        if ber_fn(ebn0) <= TARGET_BER:
            return float(ebn0)
    return float(hi)


def test_bench_ldpc_vs_convolutional(benchmark, report):
    def run():
        rng = np.random.default_rng(8)
        code = LdpcCode.from_standard(648, "1/2")
        ldpc_thr = _threshold(lambda e: _ldpc_ber(code, e, rng))
        vit_thr = _threshold(lambda e: _viterbi_ber(e, rng))
        return ldpc_thr, vit_thr

    ldpc_thr, vit_thr = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = vit_thr - ldpc_thr
    ratio = float(range_ratio_from_gain_db(gain))
    report(
        "E7: LDPC vs K=7 convolutional at rate 1/2 (BER 1e-3 threshold)",
        [f"convolutional threshold : {vit_thr:4.1f} dB Eb/N0",
         f"LDPC (n=648) threshold  : {ldpc_thr:4.1f} dB Eb/N0",
         f"coding gain             : {gain:4.1f} dB",
         f"-> range multiple       : {ratio:4.2f}x  "
         "(paper: LDPC 'will increase range')"],
    )
    assert gain >= 0.9  # LDPC visibly ahead
    benchmark.extra_info["coding_gain_db"] = round(gain, 2)


def test_bench_decoder_ablations(benchmark, report):
    """Ablations: sum-product vs min-sum; soft vs hard Viterbi."""

    def run():
        rng = np.random.default_rng(21)
        code = LdpcCode.from_standard(648, "1/2")
        at = 2.0
        return {
            "ldpc_min_sum": _ldpc_ber(code, at, rng, algorithm="min-sum"),
            "ldpc_sum_product": _ldpc_ber(code, at, rng,
                                          algorithm="sum-product"),
            "viterbi_soft": _viterbi_ber(4.0, rng, soft=True),
            "viterbi_hard": _viterbi_ber(4.0, rng, soft=False),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E7b: decoder ablations",
        [f"LDPC @2dB   min-sum     BER {out['ldpc_min_sum']:.2e}",
         f"LDPC @2dB   sum-product BER {out['ldpc_sum_product']:.2e}",
         f"Viterbi @4dB soft       BER {out['viterbi_soft']:.2e}",
         f"Viterbi @4dB hard       BER {out['viterbi_hard']:.2e}",
         "(soft decisions are worth ~2 dB; SP edges min-sum)"],
    )
    assert out["viterbi_soft"] <= out["viterbi_hard"]
