"""E15 — DCF MAC behaviour and power save (claims C18 and MAC overhead).

Paper: "Wireless LAN protocols currently make few concessions to issues
of power management as compared to cellular air interface standards."

Part 1 validates the DCF simulator against the Bianchi model across
station counts (with the RTS/CTS ablation); part 2 quantifies what legacy
PSM buys over constantly-awake operation and what it costs in latency.
"""

import numpy as np

from repro.mac.bianchi import bianchi_saturation_throughput
from repro.mac.dcf import DcfSimulator
from repro.mac.powersave import PowerSaveModel

STATIONS = [1, 5, 15, 35]


def _dcf_vs_bianchi():
    rows = []
    for n in STATIONS:
        sim = DcfSimulator(n, "802.11a", 54, 1500, rng=13).run(0.4)
        model = bianchi_saturation_throughput(n, "802.11a", 54, 1500)
        rts = DcfSimulator(n, "802.11a", 54, 1500, rts_cts=True,
                           rng=13).run(0.4)
        rows.append((n, sim.throughput_mbps, model, rts.throughput_mbps,
                     sim.collision_probability))
    return rows


def test_bench_dcf_vs_bianchi(benchmark, report):
    rows = benchmark.pedantic(_dcf_vs_bianchi, rounds=1, iterations=1)
    lines = ["stations | DCF sim | Bianchi | RTS/CTS sim | P(collision)"]
    for n, sim, model, rts, pcol in rows:
        lines.append(f"   {n:3d}   | {sim:5.1f}   | {model:5.1f}   |"
                     f"   {rts:5.1f}     |    {pcol:4.2f}")
    lines.append("54 Mbps PHY -> ~29 Mbps MAC goodput: protocol overhead; "
                 "simulation tracks Bianchi's model")
    report("E15: DCF saturation throughput vs the Bianchi model", lines)
    for n, sim, model, _, _ in rows:
        assert abs(sim - model) / model < 0.12, f"n={n}"
    # Contention decay is graceful, RTS/CTS flattens it at high n.
    assert rows[0][1] > rows[-1][1]
    benchmark.extra_info["rows"] = [[float(x) for x in r] for r in rows]


def test_bench_multirate_anomaly(benchmark, report):
    """The rate ladder's MAC-layer sting: one slow station caps the cell."""

    def run():
        uniform = DcfSimulator(4, "802.11a", 54, 1500, rng=29).run(0.4)
        mixed = DcfSimulator(4, "802.11a", [54, 54, 54, 6], 1500,
                             rng=29).run(0.4)
        return uniform, mixed

    uniform, mixed = benchmark.pedantic(run, rounds=1, iterations=1)
    per = mixed.per_station_throughput_mbps()
    report(
        "E15c: the multirate performance anomaly",
        [f"4 stations all at 54 Mbps : {uniform.throughput_mbps:5.1f} Mbps",
         f"3 at 54 + 1 at 6 Mbps     : {mixed.throughput_mbps:5.1f} Mbps "
         f"({mixed.throughput_mbps / uniform.throughput_mbps:.0%} of uniform)",
         "per-station goodput (mixed): "
         + ", ".join(f"{p:.1f}" for p in per)
         + " Mbps -- DCF equalises packets, so everyone pays for the "
           "laggard's airtime"],
    )
    assert mixed.throughput_mbps < 0.6 * uniform.throughput_mbps


def test_bench_overhead_breakdown(benchmark, report):
    """Where the airtime goes: the arithmetic behind MAC inefficiency."""
    from repro.mac.timing import MacTiming

    def run():
        rows = {}
        for std, rate in (("802.11b", 11.0), ("802.11a", 54.0)):
            rows[(std, rate)] = MacTiming.for_standard(std).overhead_breakdown(
                1500, rate
            )
        return rows

    rows = benchmark(run)
    lines = ["config           | payload | preamble | headers |  ack  | ifs"]
    for (std, rate), b in rows.items():
        lines.append(
            f"{std} @ {rate:4.0f} Mbps |  {100 * b['payload']:4.1f}%  |"
            f"  {100 * b['preamble']:4.1f}%   |  {100 * b['headers']:4.1f}%  |"
            f" {100 * b['ack']:4.1f}% | {100 * b['ifs']:4.1f}%"
        )
    lines.append("the payload share *is* the MAC efficiency ceiling; "
                 "higher PHY rates shrink it (preambles don't scale)")
    report("E15d: airtime overhead breakdown", lines)
    assert rows[("802.11a", 54.0)]["payload"] < 0.75
    assert rows[("802.11b", 11.0)]["payload"] > rows[
        ("802.11a", 54.0)]["payload"] - 0.5


def test_bench_fragmentation(benchmark, report):
    """E15e: the fragmentation threshold — whole frames on clean channels,
    small fragments when the BER bites."""
    from repro.mac.fragmentation import fragmentation_study

    rows = benchmark(fragmentation_study)
    lines = ["BER    | best fragment | goodput | unfragmented"]
    for ber, thr, best, whole in rows:
        lines.append(f"{ber:6.0e} |    {thr:5d} B    | {best:5.1f}   |"
                     f"   {whole:5.1f} Mbps")
    lines.append("fragmentation: the original MAC's one link-adaptation "
                 "knob, optimal size shrinking as the channel degrades")
    report("E15e: fragmentation threshold vs channel quality", lines)
    assert rows[0][1] >= rows[-1][1]  # clean channel -> bigger fragments
    assert rows[-1][2] > rows[-1][3]  # dirty channel -> fragmentation wins


def test_bench_power_save(benchmark, report):
    model = PowerSaveModel()

    def run():
        psm = model.simulate("psm", 30.0, 5.0, 500, rng=2)
        cam = model.simulate("cam", 30.0, 5.0, 500, rng=2)
        return psm, cam

    psm, cam = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E15b: legacy 802.11 power save (PSM) vs constantly awake (CAM)",
        [f"CAM: {1000 * cam.average_power_w:6.1f} mW, "
         f"latency {1e6 * cam.mean_latency_s:8.1f} us",
         f"PSM: {1000 * psm.average_power_w:6.1f} mW "
         f"({cam.energy_j / psm.energy_j:.1f}x less energy), "
         f"latency {1000 * psm.mean_latency_s:6.1f} ms",
         "paper: WLAN power management is crude next to cellular -- the "
         "saving is real but costs ~half a beacon interval of latency"],
    )
    assert cam.energy_j / psm.energy_j > 3.0
    assert psm.mean_latency_s > 100 * cam.mean_latency_s
