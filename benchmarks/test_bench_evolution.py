"""E1 — the evolution table (claims C1-C6).

Paper: 2 Mbps/0.1 bps/Hz (802.11) -> 11 Mbps/0.5 (802.11b) ->
54 Mbps/2.7 (802.11a/g) -> 600 Mbps/15 (802.11n), a ~fivefold spectral
efficiency step per generation.
"""

from repro.core.evolution import (
    evolution_report,
    fivefold_law,
    format_evolution_table,
)


def test_bench_evolution_table(benchmark, report):
    rows = benchmark(evolution_report)
    ratio, effs = fivefold_law()
    report(
        "E1: WLAN evolution (paper: 0.1 -> 0.5 -> 2.7 -> 15 bps/Hz, ~5x/gen)",
        [format_evolution_table(rows),
         f"fitted per-generation multiplier: {ratio:.2f}x (paper: ~5x)"],
    )
    by_name = {r["standard"]: r for r in rows}
    assert by_name["802.11"]["spectral_efficiency_bps_hz"] == 0.1
    assert by_name["802.11n"]["spectral_efficiency_bps_hz"] == 15.0
    assert by_name["802.11n"]["max_rate_mbps"] == 600.0
    assert 4.5 < ratio < 6.0
    benchmark.extra_info["fivefold_ratio"] = round(ratio, 3)
    benchmark.extra_info["efficiencies"] = [round(e, 2) for e in effs]
