"""E19 (supplementary) — rate adaptation over the 802.11a ladder.

The paper's rate ladders only deliver their headline numbers if stations
track the channel. ARF (what 2005 cards shipped) is compared with
genie-aided SNR selection and with the best fixed rate, over a Jakes-faded
channel — an ablation of the "intelligence" needed to exploit the ladder.
"""

import numpy as np

from repro.mac.rate_adaptation import (
    ArfController,
    SnrRateController,
    fading_snr_trace,
    simulate_rate_adaptation,
)
from repro.standards.registry import get_standard


class _FixedRate:
    """Baseline controller pinned to one rung of the ladder."""

    def __init__(self, rate_mbps):
        std = get_standard("802.11a")
        self.entry = next(r for r in std.rates if r.rate_mbps == rate_mbps)

    def choose_rate(self, snr_db):
        return self.entry

    def record(self, success):
        pass


def _contest():
    trace = fading_snr_trace(24.0, 4000, doppler_hz=2.0, rng=5)
    rows = {}
    for name, controller in [
        ("fixed 6 Mbps", _FixedRate(6.0)),
        ("fixed 54 Mbps", _FixedRate(54.0)),
        ("fixed 24 Mbps", _FixedRate(24.0)),
        ("ARF", ArfController()),
        ("SNR genie", SnrRateController()),
    ]:
        rows[name] = simulate_rate_adaptation(
            controller, trace, rng=np.random.default_rng(2)
        )
    return rows


def test_bench_rate_adaptation(benchmark, report):
    rows = benchmark.pedantic(_contest, rounds=1, iterations=1)
    lines = ["controller     | goodput | delivery | mean rate | switches"]
    for name, r in rows.items():
        lines.append(f"{name:<15}| {r.throughput_mbps:5.1f}   |"
                     f"  {100 * r.success_ratio:5.1f}%  |"
                     f" {r.mean_rate_mbps:5.1f}     | {r.rate_switches}")
    lines.append("mean SNR 24 dB, Rayleigh-faded: adaptation beats any "
                 "fixed rung; ARF chases the genie")
    report("E19: rate adaptation over the 6-54 Mbps ladder", lines)
    genie = rows["SNR genie"].throughput_mbps
    assert genie > rows["fixed 6 Mbps"].throughput_mbps
    assert genie > rows["fixed 54 Mbps"].throughput_mbps
    assert rows["ARF"].throughput_mbps > rows["fixed 6 Mbps"].throughput_mbps
    assert rows["SNR genie"].success_ratio > rows["fixed 54 Mbps"].success_ratio
