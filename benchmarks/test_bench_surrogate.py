"""E24 — network-scale simulation off a precomputed PER surface.

The waveform simulator prices every packet at full baseband cost;
a PER surface prices it at one table lookup. This benchmark measures
both sides honestly: the waveform per-packet cost on the same PHY,
the surrogate's bulk sample rate serving a 1000-station mesh, and the
speedup of the surrogate over the waveform path *extrapolated to the
same packet count* (the waveform path would take minutes; we never run
it at that scale, which is the point).
"""

from repro import obs
from repro.core.link import LinkSimulator
from repro.mesh.coverage import coverage_result
from repro.mesh.topology import random_positions
from repro.surrogate import AbstractLink, build_surface

N_STATIONS = 1000
AREA_M = 1500.0
N_SAMPLES = 40000
PAYLOAD_BYTES = 1500  # MTU-sized mesh data frames
WAVEFORM_PROBE_PACKETS = 60


def _waveform_per_packet_cost():
    """Seconds per waveform packet at the surface's operating point."""
    sim = LinkSimulator("ofdm-6", "awgn", rng=1)
    sim.run(4.0, 3, PAYLOAD_BYTES)  # warm caches outside the timed window
    with obs.timed() as clock:
        sim.run(4.0, WAVEFORM_PROBE_PACKETS, PAYLOAD_BYTES)
    return clock.seconds / WAVEFORM_PROBE_PACKETS


def _surrogate_mesh_run():
    surface = build_surface(
        "bench-e24", ["ofdm-6"],
        snr_db=[-2.0, 0.0, 2.0, 4.0, 6.0, 10.0],
        payload_bytes=[PAYLOAD_BYTES], n_packets=30, base_seed=18)
    link = AbstractLink(surface, rng=18)
    positions = random_positions(N_STATIONS, AREA_M, rng=18)
    with obs.timed() as clock:
        result = coverage_result(positions, AREA_M, link=link,
                                 max_per=0.1, n_samples=N_SAMPLES, rng=18)
    return surface, result, clock.seconds


def test_bench_surrogate_mesh(benchmark, report):
    t_packet = _waveform_per_packet_cost()
    surface, result, t_mesh = benchmark.pedantic(
        _surrogate_mesh_run, rounds=1, iterations=1)

    frac = result.n_events / result.n_trials
    rate = result.n_trials / t_mesh if t_mesh > 0 else float("inf")
    t_waveform_equiv = t_packet * result.n_trials
    speedup = t_waveform_equiv / t_mesh if t_mesh > 0 else float("inf")

    lines = [
        f"surface: {surface.n_cells} cells / "
        f"{surface.total_trials} waveform packets (one-time cost)",
        f"mesh   : {N_STATIONS} stations over "
        f"{AREA_M:.0f} m x {AREA_M:.0f} m",
        f"coverage (PER <= 0.1): {frac:.1%} "
        f"[{result.ci_low:.1%}, {result.ci_high:.1%}]",
        f"waveform cost : {1e6 * t_packet:8.1f} us/packet "
        f"-> {t_waveform_equiv:6.1f} s for {result.n_trials} packets",
        f"surrogate cost: {t_mesh:8.2f} s total ({rate:,.0f} packets/s)",
        f"speedup vs waveform path: {speedup:,.0f}x",
    ]
    report("E24: 1000-station mesh off a PER surface", lines, metrics=[
        {"name": "waveform_us_per_packet", "value": 1e6 * t_packet,
         "units": "us"},
        {"name": "surrogate_packets_per_s", "value": rate, "units": "1/s"},
        {"name": "surrogate_wall", "value": t_mesh, "units": "s"},
        {"name": "speedup_vs_waveform", "value": speedup, "units": "x"},
        {"name": "coverage_fraction", "value": frac, "units": "fraction"},
    ])
    # The acceptance bar: the surrogate must beat the waveform path by
    # >= 100x at equal packet counts. Measured margin is far larger.
    assert speedup >= 100.0
    assert 0.0 < frac < 1.0  # percolation region, not a trivial grid
    benchmark.extra_info["speedup"] = round(speedup)
    benchmark.extra_info["coverage"] = round(frac, 3)
