"""E4 — 802.11a OFDM rate set (claim C4).

Paper: OFDM reached 54 Mbps / 2.7 bps/Hz, "essentially the best that
could be achieved within the practical constraints of cost and range".
The bench regenerates the 8-rate waterfall in AWGN and a multipath (TGn-C)
check at the top rate.
"""

import time

from repro.core.link import LinkSimulator
from repro.phy.ofdm import OFDM_RATES

SNRS = [4.0, 10.0, 16.0, 22.0, 28.0]


def _waterfall():
    table = {}
    for rate in sorted(OFDM_RATES):
        sim = LinkSimulator(f"ofdm-{rate}", "awgn", rng=17)
        table[rate] = [sim.run(snr, n_packets=12, payload_bytes=60).per
                       for snr in SNRS]
    return table


def test_bench_ofdm_waterfall(benchmark, report):
    table = benchmark.pedantic(_waterfall, rounds=1, iterations=1)
    lines = ["SNR (dB):      " + "".join(f"{s:>7.0f}" for s in SNRS)]
    for rate, pers in table.items():
        lines.append(f"{rate:>3} Mbps  PER " +
                     "".join(f"{p:>7.2f}" for p in pers))
    lines.append("54 Mbps in 20 MHz = 2.7 bps/Hz (paper's OFDM ceiling)")
    report("E4: 802.11a OFDM PER waterfalls, 6-54 Mbps", lines)
    assert table[6][-1] == 0.0
    assert table[54][-1] <= 0.2
    assert table[54][0] >= table[6][0]  # top rate dies first at low SNR
    benchmark.extra_info["per_table"] = {str(k): list(map(float, v))
                                         for k, v in table.items()}


def test_bench_ofdm_multipath(benchmark, report):
    sim = LinkSimulator("ofdm-24", "tgn-C", rng=5)
    result = benchmark.pedantic(
        lambda: sim.run(26.0, n_packets=20, payload_bytes=60),
        rounds=1, iterations=1,
    )
    report(
        "E4b: OFDM through TGn-C multipath (channel estimation + EQ)",
        [f"24 Mbps @ 26 dB in TGn-C: PER = {result.per:.2f}, "
         f"goodput = {result.goodput_mbps:.1f} Mbps"],
    )
    assert result.per < 0.6


def _waterfall_timed(vectorized):
    """The E4 waterfall grid with an explicit per-packet/batched switch."""
    table = {}
    t0 = time.perf_counter()
    for rate in sorted(OFDM_RATES):
        sim = LinkSimulator(f"ofdm-{rate}", "awgn", rng=17)
        table[rate] = [sim.run(snr, n_packets=12, payload_bytes=60,
                               vectorized=vectorized).per
                       for snr in SNRS]
    return time.perf_counter() - t0, table


def test_bench_ofdm_batching_speedup(benchmark, report):
    """Batched PHY kernels vs the per-packet path on the same waterfall.

    Both paths feed the channel generator identically, so every PER on
    the grid must agree exactly; the batched path just amortises the
    FFT/interleave/Viterbi kernels over all packets of each run.
    """
    _waterfall_timed(True)  # warm the cached kernels before timing

    def both():
        t_scalar, table_scalar = _waterfall_timed(False)
        t_batched, table_batched = _waterfall_timed(True)
        return t_scalar, t_batched, table_scalar, table_batched

    t_scalar, t_batched, table_scalar, table_batched = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    speedup = t_scalar / t_batched
    report(
        "E4c: batched OFDM PHY kernels vs per-packet simulation",
        [f"per-packet {t_scalar:.3f} s for the 8-rate x 5-SNR waterfall",
         f"batched    {t_batched:.3f} s  ->  {speedup:.2f}x single-core",
         "PER identical at every grid point (same seed, same draw order)"],
        metrics=[
            {"name": "scalar_waterfall", "value": t_scalar, "units": "s"},
            {"name": "batched_waterfall", "value": t_batched, "units": "s"},
            {"name": "batching_speedup", "value": speedup, "units": "x"},
        ],
    )
    assert table_scalar == table_batched
    # Loose CI floor; locally the batched path runs >5x faster.
    assert speedup >= 2.0
