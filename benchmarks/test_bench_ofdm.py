"""E4 — 802.11a OFDM rate set (claim C4).

Paper: OFDM reached 54 Mbps / 2.7 bps/Hz, "essentially the best that
could be achieved within the practical constraints of cost and range".
The bench regenerates the 8-rate waterfall in AWGN and a multipath (TGn-C)
check at the top rate.
"""

import time

from repro.core.link import LinkSimulator, run_link_grid
from repro.phy.ofdm import OFDM_RATES

SNRS = [4.0, 10.0, 16.0, 22.0, 28.0]


def _waterfall():
    table = {}
    for rate in sorted(OFDM_RATES):
        sim = LinkSimulator(f"ofdm-{rate}", "awgn", rng=17)
        table[rate] = [sim.run(snr, n_packets=12, payload_bytes=60).per
                       for snr in SNRS]
    return table


def test_bench_ofdm_waterfall(benchmark, report):
    table = benchmark.pedantic(_waterfall, rounds=1, iterations=1)
    lines = ["SNR (dB):      " + "".join(f"{s:>7.0f}" for s in SNRS)]
    for rate, pers in table.items():
        lines.append(f"{rate:>3} Mbps  PER " +
                     "".join(f"{p:>7.2f}" for p in pers))
    lines.append("54 Mbps in 20 MHz = 2.7 bps/Hz (paper's OFDM ceiling)")
    report("E4: 802.11a OFDM PER waterfalls, 6-54 Mbps", lines)
    assert table[6][-1] == 0.0
    assert table[54][-1] <= 0.2
    assert table[54][0] >= table[6][0]  # top rate dies first at low SNR
    benchmark.extra_info["per_table"] = {str(k): list(map(float, v))
                                         for k, v in table.items()}


def test_bench_ofdm_multipath(benchmark, report):
    sim = LinkSimulator("ofdm-24", "tgn-C", rng=5)
    result = benchmark.pedantic(
        lambda: sim.run(26.0, n_packets=20, payload_bytes=60),
        rounds=1, iterations=1,
    )
    report(
        "E4b: OFDM through TGn-C multipath (channel estimation + EQ)",
        [f"24 Mbps @ 26 dB in TGn-C: PER = {result.per:.2f}, "
         f"goodput = {result.goodput_mbps:.1f} Mbps"],
    )
    assert result.per < 0.6


def _waterfall_timed(vectorized):
    """The E4 waterfall grid with an explicit per-packet/batched switch."""
    table = {}
    t0 = time.perf_counter()
    for rate in sorted(OFDM_RATES):
        sim = LinkSimulator(f"ofdm-{rate}", "awgn", rng=17)
        table[rate] = [sim.run(snr, n_packets=12, payload_bytes=60,
                               vectorized=vectorized).per
                       for snr in SNRS]
    return time.perf_counter() - t0, table


def test_bench_ofdm_batching_speedup(benchmark, report):
    """Batched PHY kernels vs the per-packet path on the same waterfall.

    Both paths feed the channel generator identically, so every PER on
    the grid must agree exactly; the batched path just amortises the
    FFT/interleave/Viterbi kernels over all packets of each run.
    """
    _waterfall_timed(True)  # warm the cached kernels before timing

    def both():
        t_scalar, table_scalar = _waterfall_timed(False)
        t_batched, table_batched = _waterfall_timed(True)
        return t_scalar, t_batched, table_scalar, table_batched

    t_scalar, t_batched, table_scalar, table_batched = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    speedup = t_scalar / t_batched
    report(
        "E4c: batched OFDM PHY kernels vs per-packet simulation",
        [f"per-packet {t_scalar:.3f} s for the 8-rate x 5-SNR waterfall",
         f"batched    {t_batched:.3f} s  ->  {speedup:.2f}x single-core",
         "PER identical at every grid point (same seed, same draw order)"],
        metrics=[
            {"name": "scalar_waterfall", "value": t_scalar, "units": "s"},
            {"name": "batched_waterfall", "value": t_batched, "units": "s"},
            {"name": "batching_speedup", "value": speedup, "units": "x"},
        ],
    )
    assert table_scalar == table_batched
    # Loose CI floor; locally the batched path runs >5x faster.
    assert speedup >= 2.0


def test_bench_ofdm_grid_fast_path(benchmark, report):
    """Cross-point grid + analytic fast path vs the per-point waterfall.

    Same E4c workload (8 rates x 5 SNRs x 12 packets), two executions:
    the per-point batched waterfall (one ``sim.run`` per grid cell, the
    fastest pre-grid path) against one ``run_link_grid`` call with the
    union-bound fast path at a 1e-6 PER floor. The grid skips the
    saturated high-SNR cells analytically and amortises each transmit
    over all SNRs of its rate; only the waterfall knee still pays for
    Monte Carlo packets. Timings take the best of two runs on both
    sides so machine jitter does not masquerade as a speedup change.
    """
    phys = [f"ofdm-{r}" for r in sorted(OFDM_RATES)]

    def grid():
        return run_link_grid(phys, SNRS, n_packets=12, payload_bytes=60,
                             rng=17, analytic_floor=1e-6)

    _waterfall_timed(True)  # warm the cached kernels before timing
    grid()

    def both():
        t_point = min(_waterfall_timed(True)[0] for _ in range(2))
        samples = []
        for _ in range(2):
            t0 = time.perf_counter()
            rows = grid()
            samples.append(time.perf_counter() - t0)
        return t_point, min(samples), rows

    t_point, t_grid, rows = benchmark.pedantic(both, rounds=1,
                                               iterations=1)
    speedup = t_point / t_grid
    flat = [r for row in rows for r in row]
    n_analytic = sum(r.analytic for r in flat)
    n_mc = len(flat) - n_analytic
    report(
        "E4c-grid: cross-point batching + analytic fast path",
        [f"per-point  {t_point:.3f} s for the 8-rate x 5-SNR waterfall",
         f"grid       {t_grid:.3f} s  ->  {speedup:.2f}x single-core",
         f"{n_analytic}/{len(flat)} cells settled by the union bound "
         f"(floor 1e-6), {n_mc} ran Monte Carlo"],
        metrics=[
            {"name": "pointwise_waterfall", "value": t_point, "units": "s"},
            {"name": "grid_waterfall", "value": t_grid, "units": "s"},
            {"name": "grid_speedup", "value": speedup, "units": "x"},
            {"name": "analytic_points", "value": n_analytic,
             "units": "points"},
            {"name": "mc_points", "value": n_mc, "units": "points"},
        ],
    )
    # The analytic cells really are below the floor, and the knee is
    # still simulated: the bound never silently replaces a lossy cell.
    assert all(r.per <= 1e-6 for r in flat if r.analytic)
    assert n_mc > 0
    # Loose CI floor; locally the grid runs >4x faster (BENCH_10.json).
    assert speedup >= 3.0
