"""E11 — cooperative diversity (claim C12).

Paper: third parties that decode an exchange "regenerate and relay ...
the original transmission in order to improve the effective link quality".

Outage vs SNR for the direct link, decode-and-forward relaying (theory +
symbol-level Monte Carlo), and best-of-N selection — showing the
diversity-order change from 1 to 2 (and N+1). Includes the relay-selection
ablation.
"""

import numpy as np

from repro.coop.outage import (
    df_outage_probability,
    direct_outage_probability,
    diversity_order,
    selection_outage_probability,
)
from repro.coop.relay import RelaySimulator
from repro.coop.selection import best_relay_index

SNRS = np.array([10.0, 15.0, 20.0, 25.0])


def _theory_and_sim():
    direct = direct_outage_probability(SNRS)
    df = df_outage_probability(SNRS)
    sel2 = selection_outage_probability(SNRS, n_relays=2)
    sim = RelaySimulator("df", rng=9)
    mc = sim.sweep([10.0, 20.0], n_blocks=250, block_bits=32)
    return direct, df, sel2, mc


def test_bench_cooperative_diversity(benchmark, report):
    direct, df, sel2, mc = benchmark.pedantic(_theory_and_sim, rounds=1,
                                              iterations=1)
    lines = ["SNR (dB):        " + "".join(f"{s:>10.0f}" for s in SNRS)]
    lines.append("direct outage:   " + "".join(f"{p:>10.2e}" for p in direct))
    lines.append("DF relay outage: " + "".join(f"{p:>10.2e}" for p in df))
    lines.append("best-of-2 sel.:  " + "".join(f"{p:>10.2e}" for p in sel2))
    lines.append(
        f"diversity orders: direct {diversity_order(SNRS, direct):.1f}, "
        f"DF {diversity_order(SNRS, df):.1f}, "
        f"selection(2) {diversity_order(SNRS, sel2):.1f}"
    )
    for r in mc:
        lines.append(
            f"Monte-Carlo @{r.snr_db:.0f} dB: block outage "
            f"{r.outage_direct:.3f} -> {r.outage_cooperative:.3f} "
            f"(relay decoded {100 * r.relay_decode_rate:.0f}%)"
        )
    report("E11: cooperative diversity outage", lines)
    assert diversity_order(SNRS, df) > 1.6
    assert all(r.outage_cooperative <= r.outage_direct for r in mc)


def test_bench_relay_selection_ablation(benchmark, report):
    """Best-relay vs random-relay selection among 4 candidates."""

    def run():
        rng = np.random.default_rng(31)
        best_fail = rand_fail = 0
        trials = 3000
        for _ in range(trials):
            sr = 10 * np.log10(rng.exponential(10.0, 4))
            rd = 10 * np.log10(rng.exponential(10.0, 4))
            threshold_db = 10 * np.log10(3.0)  # outage threshold
            best = best_relay_index(sr, rd)
            rand = int(rng.integers(0, 4))
            best_fail += min(sr[best], rd[best]) < threshold_db
            rand_fail += min(sr[rand], rd[rand]) < threshold_db
        return best_fail / trials, rand_fail / trials

    best, rand = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E11b: relay selection ablation (4 candidates)",
        [f"random relay path-failure probability: {rand:.3f}",
         f"max-min selected relay failure       : {best:.3f}",
         f"selection cuts relay-path outage by  : {rand / max(best, 1e-9):.1f}x"],
    )
    assert best < rand
