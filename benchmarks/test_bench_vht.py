"""E25/E26 support — 802.11ac VHT waveform chain (extended claim C6).

The paper's arc stops at 802.11n's anticipated 600 Mbps / 15 bps/Hz.
This bench exercises the post-paper continuation at waveform level: a
256-QAM VHT PER waterfall on an 80 MHz channel, and the wide-channel
rate ladder the registry's 802.11ac entry is built from.
"""

from repro.core.link import LinkSimulator

SNRS = [16.0, 24.0, 32.0, 40.0]

#: (name, MCS) pairs for the 80 MHz single-stream waterfall; MCS 8/9 are
#: the 256-QAM points 802.11ac added beyond the HT ladder.
CONFIGS = [("vht80-0", 0), ("vht80-4", 4), ("vht80-8", 8), ("vht80-9", 9)]


def _waterfall():
    table = {}
    for name, _ in CONFIGS:
        sim = LinkSimulator(name, "awgn", rng=17)
        table[name] = [sim.run(snr, n_packets=10, payload_bytes=60).per
                       for snr in SNRS]
    return table


def test_bench_vht_waterfall(benchmark, report):
    table = benchmark.pedantic(_waterfall, rounds=1, iterations=1)
    rates = {name: LinkSimulator(name, "awgn").rate_mbps
             for name, _ in CONFIGS}
    lines = ["SNR (dB):              " + "".join(f"{s:>7.0f}" for s in SNRS)]
    for name, _ in CONFIGS:
        lines.append(f"{name:>8} {rates[name]:>7.1f} Mbps  PER " +
                     "".join(f"{p:>7.2f}" for p in table[name]))
    lines.append("256-QAM 5/6 on 80 MHz: 390 Mbps from one spatial stream")
    report(
        "E25a: 802.11ac VHT PER waterfalls, BPSK to 256-QAM on 80 MHz",
        lines,
        metrics=[
            {"name": "vht80_mcs9_rate", "value": rates["vht80-9"],
             "units": "Mbps"},
            {"name": "vht80_mcs9_per_40db", "value": table["vht80-9"][-1],
             "units": "PER"},
        ],
    )
    # BPSK decodes everywhere on this grid; 256-QAM needs the high end.
    assert table["vht80-0"][-1] == 0.0
    assert table["vht80-9"][-1] <= 0.2
    assert table["vht80-9"][0] >= table["vht80-0"][0]


def test_bench_vht_wide_channel_ladder(benchmark, report):
    """The 20->160 MHz rate ladder behind the registry's 6.93 Gbps."""
    def ladder():
        out = {}
        # MCS 9 at 20 MHz is an excluded combination (non-integral data
        # bits per symbol), exactly as in the real standard; the 20 MHz
        # anchor uses MCS 8 instead.
        for name in ("vht-8", "vht40-9", "vht80-9", "vht160-9"):
            sim = LinkSimulator(name, "awgn", rng=3)
            res = sim.run(42.0, n_packets=4, payload_bytes=60)
            out[name] = (sim.rate_mbps, res.per)
        return out

    out = benchmark.pedantic(ladder, rounds=1, iterations=1)
    lines = [f"{name:>9}: {rate:>7.1f} Mbps (long GI), PER {per:.2f} @ 42 dB"
             for name, (rate, per) in out.items()]
    lines.append("doubling the channel doubles the rate; x8 streams and "
                 "short GI reach 6933 Mbps")
    report("E25b: VHT wide-channel ladder, 256-QAM", lines,
           metrics=[{"name": "vht160_mcs9_rate",
                     "value": out["vht160-9"][0], "units": "Mbps"}])
    widths = [out[n][0] for n in ("vht-8", "vht40-9", "vht80-9",
                                  "vht160-9")]
    assert all(b > 1.9 * a for a, b in zip(widths, widths[1:]))
    assert all(per == 0.0 for _, per in out.values())
