"""Quickstart: send bytes over every WLAN generation's PHY.

Runs a packet through the 1997 DSSS PHY, the 802.11b CCK PHY, the
802.11a/g OFDM PHY and a 2x2 802.11n MIMO link — the whole arc of the
paper in one script.

    python examples/quickstart.py
"""

import numpy as np

from repro import LinkSimulator, format_evolution_table


def main():
    print("The paper's evolution table, regenerated:\n")
    print(format_evolution_table())

    print("\nOne 100-byte packet per generation, AWGN at a comfortable SNR:")
    configs = [
        ("dsss-2", 10.0, "802.11   DSSS  2 Mbps"),
        ("cck-11", 16.0, "802.11b  CCK   11 Mbps"),
        ("ofdm-54", 30.0, "802.11a/g OFDM 54 Mbps"),
        ("ht-12", 30.0, "802.11n  MIMO  2x2 78 Mbps"),
    ]
    for phy, snr, label in configs:
        sim = LinkSimulator(phy, "awgn", rng=1)
        result = sim.run(snr_db=snr, n_packets=20, payload_bytes=100)
        print(f"  {label:<28} @ {snr:4.1f} dB: PER {result.per:4.2f}, "
              f"goodput {result.goodput_mbps:6.1f} Mbps")

    print("\nSame 802.11a link, but in Rayleigh fading (why MIMO matters):")
    for channel in ("awgn", "rayleigh"):
        result = LinkSimulator("ofdm-54", channel, rng=2).run(
            snr_db=26.0, n_packets=50, payload_bytes=100
        )
        print(f"  54 Mbps over {channel:<9}: PER {result.per:4.2f}")
    print("  (fades kill packets even with 26 dB of *average* SNR -- "
          "diversity is the cure)")


if __name__ == "__main__":
    main()
