"""Scenario: covering an office campus with a mesh.

A 240 m x 240 m campus gets one wired AP, then a growing mesh. The script
shows (a) the coverage jump, (b) a client in the far corner whose direct
link is dead but whose mesh path delivers real throughput, and (c) why
the 802.11s airtime metric beats naive hop-count routing.

    python examples/office_mesh.py
"""

import numpy as np

from repro.mesh.coverage import coverage_fraction, single_ap_radius_m
from repro.mesh.network import MeshNetwork
from repro.mesh.routing import compare_direct_vs_relay
from repro.mesh.topology import grid_positions

AREA = 240.0


def coverage_story():
    print(f"Campus: {AREA:.0f} m x {AREA:.0f} m; "
          f"single-AP radius at 6 Mbps: {single_ap_radius_m():.0f} m\n")
    single = np.array([[AREA / 2, AREA / 2]])
    mesh9 = grid_positions(3, 55.0) + (AREA - 110.0) / 2
    for name, nodes in [("one AP", single), ("9-node mesh", mesh9)]:
        frac = coverage_fraction(nodes, AREA, n_samples=3000, rng=4)
        print(f"  {name:<12}: {100 * frac:5.1f}% covered "
              f"({frac * AREA ** 2:7.0f} m^2)")


def corner_client_story():
    # Portal at the centre, relays toward the corner, client in the corner.
    nodes = np.array([
        [120.0, 120.0],   # 0: wired portal
        [160.0, 160.0],   # 1: mesh point
        [200.0, 200.0],   # 2: mesh point
        [232.0, 232.0],   # 3: corner client
    ])
    net = MeshNetwork(nodes)
    result = compare_direct_vs_relay(net, 0, 3)
    print("\nCorner client, 158 m from the portal:")
    direct = result["direct_rate_mbps"]
    print(f"  direct link rate : "
          f"{'dead' if direct is None else f'{direct} Mbps'}")
    print(f"  mesh path        : {result['routed_path']} at "
          f"{result['routed_hop_rates']} Mbps per hop")
    print(f"  end-to-end       : {result['routed_throughput_mbps']:.1f} Mbps")


def routing_metric_story():
    nodes = np.array([[0.0, 0.0], [28.0, 0.0], [56.0, 0.0]])
    net = MeshNetwork(nodes)
    print("\n56 m span, relay at the midpoint:")
    for metric in ("hops", "airtime"):
        path = net.best_path(0, 2, metric=metric)
        tput = net.path_throughput_mbps(path)
        print(f"  {metric:<8} routing picks {path}: {tput:5.1f} Mbps")
    print("  -> 'sufficiently intelligent routing algorithms' (the airtime "
          "metric) realise the paper's multi-hop efficiency boost")


if __name__ == "__main__":
    coverage_story()
    corner_client_story()
    routing_metric_story()
