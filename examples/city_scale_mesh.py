"""Scenario: a thousand-station mesh served from a precomputed PER surface.

The waveform simulator prices every packet at full baseband cost, so the
paper's city-scale mesh vision is unreachable with it directly. This
script walks the surrogate workflow end to end:

1. *Build* a small PER surface (one waveform campaign, cached).
2. *Validate* it against fresh waveform runs (CI overlap per cell).
3. *Scale*: coverage of a 1000-station municipal mesh, and a rate
   controller driven by measured PER instead of a logistic stand-in —
   both answered from the table at five-figure packets per second.

    python examples/city_scale_mesh.py
"""

from repro import obs
from repro.mac.rate_adaptation import (ArfController, fading_snr_trace,
                                       simulate_rate_adaptation)
from repro.mesh.coverage import coverage_result
from repro.mesh.topology import random_positions
from repro.standards.registry import RateEntry, Standard
from repro.surrogate import AbstractLink, build_surface, validate_surface

AREA = 2500.0
N_STATIONS = 1000


def build_story():
    print("Step 1 — precompute the PHY (one campaign, cached):")
    surface = build_surface(
        "city-mesh-demo", ["dsss-1", "dsss-2"],
        snr_db=[-4.0, -2.0, 0.0, 2.0, 4.0, 8.0],
        payload_bytes=[50], n_packets=40, base_seed=7)
    for line in surface.summary_lines():
        print(f"  {line}")
    return surface


def validate_story(surface):
    print("\nStep 2 — keep the table honest (fresh seeds, CI overlap):")
    report = validate_surface(surface, snr_db=[-2.0, 2.0],
                              n_packets=60, seed=1234)
    for line in report.lines():
        print(f"  {line}")
    if not report.ok:
        raise SystemExit("surface disagrees with the waveform path")


def coverage_story(surface):
    print(f"\nStep 3a — {N_STATIONS} stations over "
          f"{AREA:.0f} m x {AREA:.0f} m, access at 1 Mbps DSSS:")
    link = AbstractLink(surface, "dsss-1", rng=7)
    positions = random_positions(N_STATIONS, AREA, rng=7)
    with obs.timed() as clock:
        result = coverage_result(positions, AREA, standard="802.11",
                                 link=link, max_per=0.1,
                                 n_samples=20000, rng=7)
    frac = result.n_events / result.n_trials
    rate = result.n_trials / clock.seconds if clock.seconds > 0 else 0.0
    print(f"  coverage (PER <= 10%): {frac:.1%} "
          f"[{result.ci_low:.1%}, {result.ci_high:.1%}]")
    print(f"  {result.n_trials} sample points in {clock.seconds:.2f} s "
          f"({rate:,.0f}/s) — every one a table lookup, not a waveform")


def rate_adaptation_story(surface):
    print("\nStep 3b — ARF over measured PER (not the logistic model):")
    # A two-rung 802.11 ladder whose rates both live on the surface.
    ladder = Standard(
        name="802.11-surface", year=1997, phy_type="DSSS",
        band_ghz=2.4, bandwidth_mhz=22.0,
        rates=(RateEntry(1.0, 2.0, "DBPSK"), RateEntry(2.0, 5.0, "DQPSK")),
    )
    link = AbstractLink(surface, "dsss-1", rng=8)
    trace = fading_snr_trace(6.0, 4000, doppler_hz=8.0, rng=8)
    arf = simulate_rate_adaptation(ArfController(ladder), trace,
                                   payload_bits=400, rng=8, link=link)
    print(f"  4000 fading packets: {arf.success_ratio:.1%} delivered, "
          f"mean rate {arf.mean_rate_mbps:.2f} Mbps, "
          f"{arf.rate_switches} rate switches, "
          f"goodput {arf.throughput_mbps:.2f} Mbps")


def main():
    surface = build_story()
    validate_story(surface)
    coverage_story(surface)
    rate_adaptation_story(surface)


if __name__ == "__main__":
    main()
