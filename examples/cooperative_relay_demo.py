"""Scenario: the paper's "future development" — cooperative diversity.

A weak source-destination link recruits a third-party relay. The script
runs the symbol-level decode-and-forward simulation, compares it with the
closed-form outage theory, shows relay selection among several
bystanders, and demonstrates the diversity-order change.

    python examples/cooperative_relay_demo.py
"""

import numpy as np

from repro.coop.outage import (
    df_outage_probability,
    direct_outage_probability,
    diversity_order,
)
from repro.coop.relay import RelaySimulator
from repro.coop.selection import best_relay_index


def monte_carlo_story():
    print("Decode-and-forward relaying, flat Rayleigh, BPSK blocks:\n")
    print("SNR | direct BER -> coop BER | direct outage -> coop outage | "
          "relay decoded")
    sim = RelaySimulator("df", relay_gain_db=3.0, rng=11)
    for snr in (8.0, 12.0, 16.0, 20.0):
        r = sim.run(snr, n_blocks=400, block_bits=64)
        print(f" {snr:4.0f} | {r.ber_direct:8.4f} -> {r.ber_cooperative:8.4f}"
              f" | {r.outage_direct:8.3f}  -> {r.outage_cooperative:8.3f}  "
              f" |   {100 * r.relay_decode_rate:4.0f}%")


def theory_story():
    snrs = np.array([10.0, 15.0, 20.0, 25.0, 30.0])
    direct = direct_outage_probability(snrs)
    coop = df_outage_probability(snrs)
    print("\nClosed-form outage (R = 1 bps/Hz):")
    print("  SNR:   " + "".join(f"{s:>10.0f}" for s in snrs))
    print("  direct:" + "".join(f"{p:>10.1e}" for p in direct))
    print("  DF:    " + "".join(f"{p:>10.1e}" for p in coop))
    print(f"  diversity order: direct {diversity_order(snrs, direct):.1f}, "
          f"cooperative {diversity_order(snrs, coop):.1f} "
          "(the slope change is the whole story)")


def selection_story():
    rng = np.random.default_rng(6)
    sr = 10 * np.log10(rng.exponential(10.0, 5))
    rd = 10 * np.log10(rng.exponential(10.0, 5))
    chosen = best_relay_index(sr, rd)
    print("\nFive bystanders offer to relay (SNRs in dB):")
    for i, (a, b) in enumerate(zip(sr, rd)):
        marker = "  <- selected (max-min)" if i == chosen else ""
        print(f"  relay {i}: source->relay {a:5.1f}, relay->dest {b:5.1f}"
              f"{marker}")


if __name__ == "__main__":
    monte_carlo_story()
    theory_story()
    selection_story()
