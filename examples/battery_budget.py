"""Scenario: designing a low-power 802.11n handheld.

Walks the paper's whole "Low Power" section: the PA-efficiency cost of
OFDM's PAPR, what four RF chains do to the power budget, and the three
mitigations the paper proposes — adaptive chain switching, beamforming
TX power control, and shifting the burden to a mains-powered relay —
plus legacy PSM, ending with battery-life numbers.

    python examples/battery_budget.py
"""

import numpy as np

from repro.coop.power_sharing import cooperative_energy_per_bit
from repro.mac.powersave import PowerSaveModel
from repro.phy.mimo.beamforming import transmit_power_control_db
from repro.phy.mimo.capacity import rayleigh_channel
from repro.phy.ofdm import OfdmPhy
from repro.power.adaptive import adaptive_rx_power_w
from repro.power.chains import MimoPowerModel
from repro.power.energy import battery_life_hours
from repro.power.pa import pa_efficiency
from repro.power.papr import papr_at_probability

BATTERY_WH = 5.0  # typical 2005 handheld


def papr_cost():
    rng = np.random.default_rng(2)
    wave = OfdmPhy(54).transmit(bytes(rng.integers(0, 256, 300,
                                                   dtype=np.uint8).tolist()))
    papr = papr_at_probability(wave, 0.01)
    print(f"OFDM PAPR (1% point): {papr:.1f} dB "
          f"-> class-AB PA efficiency {100 * pa_efficiency(papr):.0f}% "
          "(the paper's PA complaint)")


def chain_cost_and_mitigation():
    handheld = MimoPowerModel(4, 4)
    print(f"\n4x4 receive power: {1000 * handheld.rx_power_w(270.0):.0f} mW; "
          f"idle listen: {1000 * handheld.idle_listen_power_w():.0f} mW")
    adaptive = adaptive_rx_power_w(handheld, busy_fraction=0.05,
                                   packets_per_s=50)
    print(f"adaptive chain switching at 5% airtime: "
          f"{1000 * adaptive['static_w']:.0f} mW -> "
          f"{1000 * adaptive['adaptive_w']:.0f} mW "
          f"({100 * adaptive['saving_fraction']:.0f}% saved)")


def beamforming_power_control():
    rng = np.random.default_rng(9)
    savings = [15.0 - transmit_power_control_db(rayleigh_channel(4, 4, rng),
                                                10 ** 1.5)
               for _ in range(500)]
    print(f"\nclosed-loop beamforming TX power control: "
          f"{np.mean(savings):.1f} dB less transmit power on average "
          "for the same 15 dB delivered SNR")


def relay_sharing():
    result = cooperative_energy_per_bit(60.0, relay_fraction=0.5)
    print(f"\nmains-powered relay at the midpoint of a 60 m link: "
          f"battery TX energy {1e9 * result['direct_j_per_bit']:.0f} -> "
          f"{1e9 * result['cooperative_j_per_bit']:.0f} nJ/bit "
          f"({result['saving_ratio']:.1f}x)")


def psm_and_battery_life():
    model = PowerSaveModel()
    psm = model.simulate("psm", 30.0, 5.0, 500, rng=1)
    cam = model.simulate("cam", 30.0, 5.0, 500, rng=1)
    print("\nlegacy power save, 5 pkts/s of downlink:")
    for result in (cam, psm):
        life = battery_life_hours(BATTERY_WH, result.average_power_w)
        print(f"  {result.mode.upper():<4}: "
              f"{1000 * result.average_power_w:6.1f} mW avg -> "
              f"{life:6.1f} h on a {BATTERY_WH:.0f} Wh battery "
              f"(delivery latency {1000 * result.mean_latency_s:5.1f} ms)")
    print("\nthe paper: 'future wireless LAN standards could benefit from "
          "more attention in this area'")


if __name__ == "__main__":
    papr_cost()
    chain_cost_and_mitigation()
    beamforming_power_control()
    relay_sharing()
    psm_and_battery_life()
