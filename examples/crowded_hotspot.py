"""Scenario: a crowded conference hotspot.

Fifty laptops share one 802.11a cell. The script shows how MAC overhead
caps goodput well below the PHY rate, how contention erodes it further,
what RTS/CTS buys, and what the same crowd looks like on 2 Mbps 802.11 —
a concrete feel for why the rate race of the paper mattered.

    python examples/crowded_hotspot.py
"""

from repro.mac.bianchi import bianchi_saturation_throughput
from repro.mac.dcf import DcfSimulator


def contention_sweep():
    print("Saturated 802.11a cell, 1500-byte frames at 54 Mbps:\n")
    print("stations | goodput (sim) | goodput (Bianchi) | per-station | "
          "P(coll)")
    for n in (1, 5, 10, 25, 50):
        sim = DcfSimulator(n, "802.11a", 54, 1500, rng=3).run(0.4)
        model = bianchi_saturation_throughput(n, "802.11a", 54, 1500)
        print(f"   {n:3d}   |  {sim.throughput_mbps:5.1f} Mbps   |"
              f"     {model:5.1f} Mbps    |"
              f" {sim.throughput_mbps / n:6.2f} Mbps |  "
              f"{sim.collision_probability:4.2f}")
    print("\n54 Mbps of PHY becomes ~20-29 Mbps of goodput: preambles, "
          "IFS, backoff and ACKs.")


def rts_cts_choice():
    print("\nShould the 50-laptop cell turn on RTS/CTS?")
    for rts in (False, True):
        result = DcfSimulator(50, "802.11a", 54, 1500, rts_cts=rts,
                              rng=4).run(0.4)
        label = "RTS/CTS" if rts else "basic  "
        print(f"  {label}: {result.throughput_mbps:5.1f} Mbps "
              f"(collisions cost "
              f"{'20 us RTSes' if rts else '250 us frames'})")


def generation_contrast():
    print("\nThe same 50-station crowd on the original 1997 standard:")
    result = DcfSimulator(50, "802.11", 2, 1500, rng=5).run(2.0)
    print(f"  802.11 @ 2 Mbps: {result.throughput_mbps:4.2f} Mbps total "
          f"({1000 * result.throughput_mbps / 50:.0f} kbps per laptop) -- "
          "the demand pressure behind the paper's rate race")


if __name__ == "__main__":
    contention_sweep()
    rts_cts_choice()
    generation_contrast()
