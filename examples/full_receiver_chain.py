"""Scenario: everything a real receiver does, sample by sample.

A weak, delayed, frequency-offset 802.11a packet arrives through a TGn-B
channel. The script walks the complete receive chain the library
provides: AGC settling, packet detection, CFO estimation and correction,
fine timing, 8-bit digitisation, channel estimation and decoding —
the machinery behind every PER number in the benchmarks.

    python examples/full_receiver_chain.py
"""

import numpy as np

from repro.channel.models import tgn_channel
from repro.phy.agc import AutomaticGainControl
from repro.phy.ofdm import OfdmPhy
from repro.phy.quantization import quantization_snr_db, quantize
from repro.phy.sync import apply_cfo, detect_packet, synchronise


def main():
    rng = np.random.default_rng(7)
    message = b"the quick brown fox, 54 megabits at a time"
    phy = OfdmPhy(24)

    # --- the air -----------------------------------------------------------
    wave = phy.transmit(message)
    wave = apply_cfo(wave, 73e3)                      # oscillator mismatch
    channel = tgn_channel("B", rng=rng)
    faded = channel.apply(wave[None, :]).ravel()      # residential multipath
    arrival = 0.002 * np.concatenate(                 # -54 dB of path loss,
        [np.zeros(188, complex), faded]               # unknown start time
    )
    snr_db = 24.0
    noise_var = float(np.mean(np.abs(arrival) ** 2)) / 10 ** (snr_db / 10)
    arrival += np.sqrt(noise_var / 2) * (
        rng.normal(size=arrival.size) + 1j * rng.normal(size=arrival.size)
    )
    print(f"on-air: {arrival.size} samples, "
          f"RMS {np.sqrt(np.mean(np.abs(arrival)**2)):.4f}, "
          f"CFO 73 kHz, delay 188 samples, TGn-B multipath, {snr_db:.0f} dB")

    # --- the receiver ---------------------------------------------------------
    hit = detect_packet(arrival)
    print(f"1. detection      : energy+periodicity metric fires at sample "
          f"{hit}")

    agc = AutomaticGainControl(full_scale=1.0, backoff_db=11.0)
    scaled, gain_db = agc.apply(arrival[hit:])
    print(f"2. AGC            : +{gain_db:.1f} dB to sit 11 dB below full "
          f"scale (clip fraction {agc.clip_fraction(arrival[hit:]):.4f})")

    digitised = quantize(scaled, 8, clip_level=1.0)
    sqnr = quantization_snr_db(scaled, 8, clip_level=1.0)
    print(f"3. 8-bit ADC      : SQNR {sqnr:.1f} dB (comfortably above the "
          f"{snr_db:.0f} dB channel)")

    aligned, info = synchronise(digitised)
    print(f"4. sync           : packet start {hit + info['packet_start']}, "
          f"CFO estimate {info['total_cfo_hz'] / 1e3:.1f} kHz "
          f"(true 73.0)")

    # The AGC scaled the noise too; recompute its variance at the ADC.
    nv_scaled = noise_var * 10 ** (gain_db / 10)
    decoded = phy.receive(aligned, noise_var=nv_scaled)
    print(f"5. decode         : channel estimated from the LTF, Viterbi, "
          f"descramble ->")
    print(f"\n   {decoded!r}")
    print(f"\nround trip {'OK' if decoded == message else 'FAILED'}")


if __name__ == "__main__":
    main()
