"""Scenario: planning a dense office deployment, 2.4 vs 5 GHz.

The paper's history pivots on regulators opening 5 GHz. This script makes
the payoff concrete for a network planner in 2005: a 9-AP office grid
frequency-planned with the 3 channels of 2.4 GHz vs the 8 of 5 GHz, plus
the per-waveform compliance checks (occupied bandwidth, spectral mask,
the old processing-gain mandate).

    python examples/spectrum_planning.py
"""

import numpy as np

from repro.mesh.spectrum import (
    assign_channels,
    deployment_capacity,
)
from repro.mesh.topology import grid_positions
from repro.phy.dsss import DsssPhy
from repro.phy.ofdm import OfdmPhy
from repro.standards.regulatory import (
    check_spectral_mask,
    occupied_bandwidth_hz,
    regulatory_report,
)
from repro.utils.bits import random_bits


def planning_story():
    positions = grid_positions(3, 60.0)
    print("9 APs on a 60 m grid, clients scattered over the floor:\n")
    print("band          | channels | conflicts | mean rate | outage")
    for band in ("2.4GHz", "5GHz"):
        out = deployment_capacity(positions, band, n_clients=300,
                                  area_side_m=160.0, rng=8)
        print(f"{band:<14}|    {out['n_channels']}     |"
              f"     {out['conflicts']}     | {out['mean_rate_mbps']:5.1f} Mbps"
              f" | {100 * out['outage_fraction']:4.1f}%")
    _, conflicts = assign_channels(positions, 3)
    print(f"\nWith 3 channels the colouring is forced into {conflicts} "
          "co-channel conflicts; 8 channels remove them all.")


def compliance_story():
    rng = np.random.default_rng(3)
    msg = bytes(rng.integers(0, 256, 300, dtype=np.uint8).tolist())
    ofdm = OfdmPhy(54).transmit(msg)
    dsss = DsssPhy(2).modulate(random_bits(2000, rng))
    print("\nPer-waveform measurements:")
    print(f"  DSSS occupied bandwidth : "
          f"{occupied_bandwidth_hz(dsss, 11e6) / 1e6:5.1f} MHz")
    print(f"  OFDM occupied bandwidth : "
          f"{occupied_bandwidth_hz(ofdm, 20e6) / 1e6:5.1f} MHz")
    mask = check_spectral_mask(ofdm, 20e6)
    print(f"  OFDM vs 802.11a TX mask : "
          f"{'PASS' if mask['compliant'] else 'FAIL'} "
          f"(margin {mask['worst_margin_db']:.1f} dB)")
    print("\nThe regulatory arc the paper narrates:")
    for row in regulatory_report():
        gain = row["processing_gain_db"]
        gain_s = f"{gain:5.1f} dB" if gain is not None else "   -- "
        print(f"  {row['standard']:<18} {gain_s}  {row['status']}")


if __name__ == "__main__":
    planning_story()
    compliance_story()
