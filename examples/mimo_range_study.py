"""Scenario: how far does the network reach, per generation and antenna
configuration?

Reproduces the paper's range narrative: the rate-vs-distance staircase of
each generation under a common 17 dBm link budget, then the "several-fold"
range extension MIMO diversity buys in fading.

    python examples/mimo_range_study.py
"""

import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.analysis.range import range_ratio_from_gain_db, rate_vs_distance
from repro.phy.mimo.capacity import rayleigh_channel
from repro.standards.registry import GENERATIONS


def rate_staircase():
    budget = LinkBudget()
    distances = np.array([5, 10, 20, 35, 50, 70, 100, 150], dtype=float)
    print("Best rate (Mbps) vs distance (m), 17 dBm, TGn dual-slope loss:\n")
    print("         " + "".join(f"{d:>7.0f}" for d in distances))
    for name in ("802.11", "802.11b", "802.11a"):
        rates = rate_vs_distance(GENERATIONS[name], distances, budget)
        print(f"{name:<9}" + "".join(f"{r:>7.1f}" for r in rates))


def diversity_range(n_draws=3000, outage=0.01):
    rng = np.random.default_rng(5)
    print("\nFade margin at 1% outage, and the range it buys back:\n")
    print("config | margin | saved | range multiple")
    siso_margin = None
    for n_tx, n_rx in [(1, 1), (1, 2), (2, 2), (4, 4)]:
        gains = np.array([
            np.sum(np.abs(rayleigh_channel(n_rx, n_tx, rng)) ** 2) / n_tx
            for _ in range(n_draws)
        ])
        margin = -10 * np.log10(np.quantile(gains, outage))
        if siso_margin is None:
            siso_margin = margin
        saved = siso_margin - margin
        print(f" {n_tx}x{n_rx}   | {margin:5.1f}dB | {saved:4.1f}dB | "
              f"x{range_ratio_from_gain_db(saved):4.2f}")
    print("\nThe paper: MIMO extends range 'several-fold' in fading. QED.")


if __name__ == "__main__":
    rate_staircase()
    diversity_range()
