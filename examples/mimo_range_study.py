"""Scenario: how far does the network reach, per generation and antenna
configuration?

Reproduces the paper's range narrative: the rate-vs-distance staircase of
each generation under a common 17 dBm link budget, then the "several-fold"
range extension MIMO diversity buys in fading.

    python examples/mimo_range_study.py

The diversity sweep runs through the ``repro.campaign`` orchestrator:
the same spec, run from the shell, executes in parallel with a
persistent results store —

    python -m repro campaign run e6-mimo-range --workers 4 --report
"""

import numpy as np

from repro.analysis.linkbudget import LinkBudget
from repro.analysis.range import range_ratio_from_gain_db, rate_vs_distance
from repro.campaign import CampaignSpec, run_campaign
from repro.standards.registry import GENERATIONS


def rate_staircase():
    budget = LinkBudget()
    distances = np.array([5, 10, 20, 35, 50, 70, 100, 150], dtype=float)
    print("Best rate (Mbps) vs distance (m), 17 dBm, TGn dual-slope loss:\n")
    print("         " + "".join(f"{d:>7.0f}" for d in distances))
    for name in ("802.11", "802.11b", "802.11a"):
        rates = rate_vs_distance(GENERATIONS[name], distances, budget)
        print(f"{name:<9}" + "".join(f"{r:>7.1f}" for r in rates))


def diversity_range(n_draws=3000, outage=0.01):
    spec = CampaignSpec(
        name="mimo-range-example", kind="mimo-range",
        factors={"antennas": ["1x1", "1x2", "2x2", "4x4"]},
        fixed={"n_draws": n_draws, "outage": outage},
        base_seed=5,
    )
    # In-memory campaign run (store=None); each antenna config is one
    # sweep point with its own seed substream, so `workers=4` would give
    # the exact same numbers.
    result = run_campaign(spec)
    print("\nFade margin at 1% outage, and the range it buys back:\n")
    print("config | margin | saved | range multiple")
    siso_margin = None
    for rec in result.records:
        margin = rec["metrics"]["margin_db"]
        if siso_margin is None:
            siso_margin = margin
        saved = siso_margin - margin
        print(f" {rec['params']['antennas']}   | {margin:5.1f}dB | "
              f"{saved:4.1f}dB | x{range_ratio_from_gain_db(saved):4.2f}")
    print("\nThe paper: MIMO extends range 'several-fold' in fading. QED.")


if __name__ == "__main__":
    rate_staircase()
    diversity_range()
