"""Scenario: why does my '54 Mbps' network move 29 Mbps — and how did
802.11n's 600 become real?

Dissects the gap between PHY rate and user throughput: the airtime
breakdown of one exchange, the single-frame throughput ceiling, the
multirate anomaly, and the aggregation cure — the MAC arithmetic wrapped
around every rate in the paper's table.

    python examples/throughput_anatomy.py
"""

from repro.mac.aggregation import (
    aggregation_study,
    single_frame_efficiency,
    throughput_ceiling_mbps,
)
from repro.mac.dcf import DcfSimulator
from repro.mac.timing import MacTiming


def airtime_anatomy():
    timing = MacTiming.for_standard("802.11a")
    breakdown = timing.overhead_breakdown(1500, 54.0)
    print("Anatomy of one 1500 B exchange at 54 Mbps:\n")
    for part, share in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(44 * share)
        print(f"  {part:<9} {100 * share:4.1f}% {bar}")
    print(f"\n  payload share x PHY rate = "
          f"{breakdown['payload'] * 54:.1f} Mbps — the goodput ceiling "
          "for this frame size")


def the_ceiling():
    print("\nSingle-frame goodput vs PHY rate (1500 B frames):\n")
    for rate in (54.0, 130.0, 300.0, 600.0):
        goodput = single_frame_efficiency(rate)
        print(f"  PHY {rate:5.0f} Mbps -> {goodput:5.1f} Mbps goodput "
              f"({100 * goodput / rate:4.1f}%)")
    print(f"  PHY   inf      -> {throughput_ceiling_mbps():5.1f} Mbps: "
          "the preamble/IFS/ACK wall")


def the_cure():
    print("\nA-MPDU aggregation (what 802.11n shipped):\n")
    for rate, single, agg8, agg32, _ in aggregation_study():
        print(f"  PHY {rate:5.0f}: single {single:5.1f} | x8 {agg8:6.1f} | "
              f"x32 {agg32:6.1f} Mbps")


def the_anomaly():
    uniform = DcfSimulator(4, "802.11a", 54, 1500, rng=1).run(0.3)
    mixed = DcfSimulator(4, "802.11a", [54, 54, 54, 6], 1500, rng=1).run(0.3)
    print("\nAnd one more trap — the multirate anomaly:\n")
    print(f"  4 stations at 54 Mbps      : {uniform.throughput_mbps:5.1f} "
          "Mbps total")
    print(f"  3 at 54 + one laggard at 6 : {mixed.throughput_mbps:5.1f} "
          "Mbps total")
    print("  DCF shares packets, not airtime — everyone pays for the "
          "slow station.")


if __name__ == "__main__":
    airtime_anatomy()
    the_ceiling()
    the_cure()
    the_anomaly()
